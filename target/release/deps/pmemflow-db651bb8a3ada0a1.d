/root/repo/target/release/deps/pmemflow-db651bb8a3ada0a1.d: src/main.rs

/root/repo/target/release/deps/pmemflow-db651bb8a3ada0a1: src/main.rs

src/main.rs:
