/root/repo/target/release/deps/pmemflow_core-9caba22f8ae7bc43.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/coschedule.rs crates/core/src/executor.rs crates/core/src/metrics.rs crates/core/src/native.rs crates/core/src/report.rs crates/core/src/runner.rs

/root/repo/target/release/deps/libpmemflow_core-9caba22f8ae7bc43.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/coschedule.rs crates/core/src/executor.rs crates/core/src/metrics.rs crates/core/src/native.rs crates/core/src/report.rs crates/core/src/runner.rs

/root/repo/target/release/deps/libpmemflow_core-9caba22f8ae7bc43.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/coschedule.rs crates/core/src/executor.rs crates/core/src/metrics.rs crates/core/src/native.rs crates/core/src/report.rs crates/core/src/runner.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/coschedule.rs:
crates/core/src/executor.rs:
crates/core/src/metrics.rs:
crates/core/src/native.rs:
crates/core/src/report.rs:
crates/core/src/runner.rs:
