/root/repo/target/release/deps/pmemflow_des-4f9b0e89207b98ca.d: crates/des/src/lib.rs crates/des/src/engine.rs crates/des/src/flow.rs crates/des/src/process.rs crates/des/src/rng.rs crates/des/src/stats.rs crates/des/src/time.rs crates/des/src/trace.rs

/root/repo/target/release/deps/libpmemflow_des-4f9b0e89207b98ca.rlib: crates/des/src/lib.rs crates/des/src/engine.rs crates/des/src/flow.rs crates/des/src/process.rs crates/des/src/rng.rs crates/des/src/stats.rs crates/des/src/time.rs crates/des/src/trace.rs

/root/repo/target/release/deps/libpmemflow_des-4f9b0e89207b98ca.rmeta: crates/des/src/lib.rs crates/des/src/engine.rs crates/des/src/flow.rs crates/des/src/process.rs crates/des/src/rng.rs crates/des/src/stats.rs crates/des/src/time.rs crates/des/src/trace.rs

crates/des/src/lib.rs:
crates/des/src/engine.rs:
crates/des/src/flow.rs:
crates/des/src/process.rs:
crates/des/src/rng.rs:
crates/des/src/stats.rs:
crates/des/src/time.rs:
crates/des/src/trace.rs:
