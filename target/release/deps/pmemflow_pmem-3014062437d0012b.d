/root/repo/target/release/deps/pmemflow_pmem-3014062437d0012b.d: crates/pmem/src/lib.rs crates/pmem/src/allocator.rs crates/pmem/src/curves.rs crates/pmem/src/devicebench.rs crates/pmem/src/dimmsim.rs crates/pmem/src/interleave.rs crates/pmem/src/profile.rs crates/pmem/src/region.rs crates/pmem/src/xpbuffer.rs

/root/repo/target/release/deps/libpmemflow_pmem-3014062437d0012b.rlib: crates/pmem/src/lib.rs crates/pmem/src/allocator.rs crates/pmem/src/curves.rs crates/pmem/src/devicebench.rs crates/pmem/src/dimmsim.rs crates/pmem/src/interleave.rs crates/pmem/src/profile.rs crates/pmem/src/region.rs crates/pmem/src/xpbuffer.rs

/root/repo/target/release/deps/libpmemflow_pmem-3014062437d0012b.rmeta: crates/pmem/src/lib.rs crates/pmem/src/allocator.rs crates/pmem/src/curves.rs crates/pmem/src/devicebench.rs crates/pmem/src/dimmsim.rs crates/pmem/src/interleave.rs crates/pmem/src/profile.rs crates/pmem/src/region.rs crates/pmem/src/xpbuffer.rs

crates/pmem/src/lib.rs:
crates/pmem/src/allocator.rs:
crates/pmem/src/curves.rs:
crates/pmem/src/devicebench.rs:
crates/pmem/src/dimmsim.rs:
crates/pmem/src/interleave.rs:
crates/pmem/src/profile.rs:
crates/pmem/src/region.rs:
crates/pmem/src/xpbuffer.rs:
