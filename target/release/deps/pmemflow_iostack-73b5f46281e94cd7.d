/root/repo/target/release/deps/pmemflow_iostack-73b5f46281e94cd7.d: crates/iostack/src/lib.rs crates/iostack/src/codec.rs crates/iostack/src/cost.rs crates/iostack/src/hash.rs crates/iostack/src/nova.rs crates/iostack/src/nvstream.rs crates/iostack/src/store.rs

/root/repo/target/release/deps/libpmemflow_iostack-73b5f46281e94cd7.rlib: crates/iostack/src/lib.rs crates/iostack/src/codec.rs crates/iostack/src/cost.rs crates/iostack/src/hash.rs crates/iostack/src/nova.rs crates/iostack/src/nvstream.rs crates/iostack/src/store.rs

/root/repo/target/release/deps/libpmemflow_iostack-73b5f46281e94cd7.rmeta: crates/iostack/src/lib.rs crates/iostack/src/codec.rs crates/iostack/src/cost.rs crates/iostack/src/hash.rs crates/iostack/src/nova.rs crates/iostack/src/nvstream.rs crates/iostack/src/store.rs

crates/iostack/src/lib.rs:
crates/iostack/src/codec.rs:
crates/iostack/src/cost.rs:
crates/iostack/src/hash.rs:
crates/iostack/src/nova.rs:
crates/iostack/src/nvstream.rs:
crates/iostack/src/store.rs:
