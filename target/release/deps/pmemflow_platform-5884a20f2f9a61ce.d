/root/repo/target/release/deps/pmemflow_platform-5884a20f2f9a61ce.d: crates/platform/src/lib.rs crates/platform/src/pinning.rs crates/platform/src/topology.rs

/root/repo/target/release/deps/libpmemflow_platform-5884a20f2f9a61ce.rlib: crates/platform/src/lib.rs crates/platform/src/pinning.rs crates/platform/src/topology.rs

/root/repo/target/release/deps/libpmemflow_platform-5884a20f2f9a61ce.rmeta: crates/platform/src/lib.rs crates/platform/src/pinning.rs crates/platform/src/topology.rs

crates/platform/src/lib.rs:
crates/platform/src/pinning.rs:
crates/platform/src/topology.rs:
