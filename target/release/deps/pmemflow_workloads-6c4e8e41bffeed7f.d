/root/repo/target/release/deps/pmemflow_workloads-6c4e8e41bffeed7f.d: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/import.rs crates/workloads/src/kernels.rs crates/workloads/src/spec.rs crates/workloads/src/suite.rs

/root/repo/target/release/deps/libpmemflow_workloads-6c4e8e41bffeed7f.rlib: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/import.rs crates/workloads/src/kernels.rs crates/workloads/src/spec.rs crates/workloads/src/suite.rs

/root/repo/target/release/deps/libpmemflow_workloads-6c4e8e41bffeed7f.rmeta: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/import.rs crates/workloads/src/kernels.rs crates/workloads/src/spec.rs crates/workloads/src/suite.rs

crates/workloads/src/lib.rs:
crates/workloads/src/apps.rs:
crates/workloads/src/import.rs:
crates/workloads/src/kernels.rs:
crates/workloads/src/spec.rs:
crates/workloads/src/suite.rs:
