/root/repo/target/release/deps/pmemflow_sched-ab2b81b4d4ad608d.d: crates/sched/src/lib.rs crates/sched/src/adaptive.rs crates/sched/src/characterize.rs crates/sched/src/crossover.rs crates/sched/src/model_driven.rs crates/sched/src/planner.rs crates/sched/src/profile.rs crates/sched/src/rules.rs crates/sched/src/table2.rs

/root/repo/target/release/deps/libpmemflow_sched-ab2b81b4d4ad608d.rlib: crates/sched/src/lib.rs crates/sched/src/adaptive.rs crates/sched/src/characterize.rs crates/sched/src/crossover.rs crates/sched/src/model_driven.rs crates/sched/src/planner.rs crates/sched/src/profile.rs crates/sched/src/rules.rs crates/sched/src/table2.rs

/root/repo/target/release/deps/libpmemflow_sched-ab2b81b4d4ad608d.rmeta: crates/sched/src/lib.rs crates/sched/src/adaptive.rs crates/sched/src/characterize.rs crates/sched/src/crossover.rs crates/sched/src/model_driven.rs crates/sched/src/planner.rs crates/sched/src/profile.rs crates/sched/src/rules.rs crates/sched/src/table2.rs

crates/sched/src/lib.rs:
crates/sched/src/adaptive.rs:
crates/sched/src/characterize.rs:
crates/sched/src/crossover.rs:
crates/sched/src/model_driven.rs:
crates/sched/src/planner.rs:
crates/sched/src/profile.rs:
crates/sched/src/rules.rs:
crates/sched/src/table2.rs:
