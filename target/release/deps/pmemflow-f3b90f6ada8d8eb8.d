/root/repo/target/release/deps/pmemflow-f3b90f6ada8d8eb8.d: src/lib.rs src/cli.rs

/root/repo/target/release/deps/libpmemflow-f3b90f6ada8d8eb8.rlib: src/lib.rs src/cli.rs

/root/repo/target/release/deps/libpmemflow-f3b90f6ada8d8eb8.rmeta: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:
