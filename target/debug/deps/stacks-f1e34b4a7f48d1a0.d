/root/repo/target/debug/deps/stacks-f1e34b4a7f48d1a0.d: crates/bench/src/bin/stacks.rs Cargo.toml

/root/repo/target/debug/deps/libstacks-f1e34b4a7f48d1a0.rmeta: crates/bench/src/bin/stacks.rs Cargo.toml

crates/bench/src/bin/stacks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
