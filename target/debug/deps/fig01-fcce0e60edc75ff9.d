/root/repo/target/debug/deps/fig01-fcce0e60edc75ff9.d: crates/bench/src/bin/fig01.rs

/root/repo/target/debug/deps/libfig01-fcce0e60edc75ff9.rmeta: crates/bench/src/bin/fig01.rs

crates/bench/src/bin/fig01.rs:
