/root/repo/target/debug/deps/calibrate-801f6dc86af48641.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/debug/deps/calibrate-801f6dc86af48641: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
