/root/repo/target/debug/deps/properties-2a3e4646bd780e74.d: crates/pmem/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-2a3e4646bd780e74.rmeta: crates/pmem/tests/properties.rs Cargo.toml

crates/pmem/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
