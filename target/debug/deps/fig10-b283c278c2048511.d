/root/repo/target/debug/deps/fig10-b283c278c2048511.d: crates/bench/src/bin/fig10.rs Cargo.toml

/root/repo/target/debug/deps/libfig10-b283c278c2048511.rmeta: crates/bench/src/bin/fig10.rs Cargo.toml

crates/bench/src/bin/fig10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
