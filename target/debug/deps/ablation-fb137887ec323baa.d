/root/repo/target/debug/deps/ablation-fb137887ec323baa.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/libablation-fb137887ec323baa.rmeta: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
