/root/repo/target/debug/deps/fig07-5bf3181cba32011a.d: crates/bench/src/bin/fig07.rs

/root/repo/target/debug/deps/fig07-5bf3181cba32011a: crates/bench/src/bin/fig07.rs

crates/bench/src/bin/fig07.rs:
