/root/repo/target/debug/deps/devicebench-7d513600627a8b04.d: crates/bench/src/bin/devicebench.rs

/root/repo/target/debug/deps/devicebench-7d513600627a8b04: crates/bench/src/bin/devicebench.rs

crates/bench/src/bin/devicebench.rs:
