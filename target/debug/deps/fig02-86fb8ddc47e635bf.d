/root/repo/target/debug/deps/fig02-86fb8ddc47e635bf.d: crates/bench/src/bin/fig02.rs

/root/repo/target/debug/deps/libfig02-86fb8ddc47e635bf.rmeta: crates/bench/src/bin/fig02.rs

crates/bench/src/bin/fig02.rs:
