/root/repo/target/debug/deps/model_properties-974169ed2f7d6e2d.d: crates/pmem/tests/model_properties.rs Cargo.toml

/root/repo/target/debug/deps/libmodel_properties-974169ed2f7d6e2d.rmeta: crates/pmem/tests/model_properties.rs Cargo.toml

crates/pmem/tests/model_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
