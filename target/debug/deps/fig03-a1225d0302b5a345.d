/root/repo/target/debug/deps/fig03-a1225d0302b5a345.d: crates/bench/src/bin/fig03.rs

/root/repo/target/debug/deps/libfig03-a1225d0302b5a345.rmeta: crates/bench/src/bin/fig03.rs

crates/bench/src/bin/fig03.rs:
