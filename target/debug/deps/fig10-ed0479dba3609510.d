/root/repo/target/debug/deps/fig10-ed0479dba3609510.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/libfig10-ed0479dba3609510.rmeta: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
