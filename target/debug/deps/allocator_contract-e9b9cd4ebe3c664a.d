/root/repo/target/debug/deps/allocator_contract-e9b9cd4ebe3c664a.d: crates/des/tests/allocator_contract.rs

/root/repo/target/debug/deps/liballocator_contract-e9b9cd4ebe3c664a.rmeta: crates/des/tests/allocator_contract.rs

crates/des/tests/allocator_contract.rs:
