/root/repo/target/debug/deps/gen2-63e5a744e148834f.d: crates/bench/src/bin/gen2.rs

/root/repo/target/debug/deps/libgen2-63e5a744e148834f.rmeta: crates/bench/src/bin/gen2.rs

crates/bench/src/bin/gen2.rs:
