/root/repo/target/debug/deps/table1-989bc982fa8830cb.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-989bc982fa8830cb: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
