/root/repo/target/debug/deps/devicebench-c18c229a57c27906.d: crates/bench/src/bin/devicebench.rs

/root/repo/target/debug/deps/libdevicebench-c18c229a57c27906.rmeta: crates/bench/src/bin/devicebench.rs

crates/bench/src/bin/devicebench.rs:
