/root/repo/target/debug/deps/fig01-1b73fce9b1933b83.d: crates/bench/src/bin/fig01.rs

/root/repo/target/debug/deps/fig01-1b73fce9b1933b83: crates/bench/src/bin/fig01.rs

crates/bench/src/bin/fig01.rs:
