/root/repo/target/debug/deps/gen2-4ba8fd292000d6c3.d: crates/bench/src/bin/gen2.rs

/root/repo/target/debug/deps/gen2-4ba8fd292000d6c3: crates/bench/src/bin/gen2.rs

crates/bench/src/bin/gen2.rs:
