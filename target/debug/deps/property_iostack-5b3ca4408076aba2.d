/root/repo/target/debug/deps/property_iostack-5b3ca4408076aba2.d: tests/property_iostack.rs

/root/repo/target/debug/deps/property_iostack-5b3ca4408076aba2: tests/property_iostack.rs

tests/property_iostack.rs:
