/root/repo/target/debug/deps/iostack_ops-be55dade1046e80b.d: crates/bench/benches/iostack_ops.rs

/root/repo/target/debug/deps/libiostack_ops-be55dade1046e80b.rmeta: crates/bench/benches/iostack_ops.rs

crates/bench/benches/iostack_ops.rs:
