/root/repo/target/debug/deps/ablation-a674dde2d44c428e.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-a674dde2d44c428e.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
