/root/repo/target/debug/deps/fig06-e32ffbd3e414cb55.d: crates/bench/src/bin/fig06.rs

/root/repo/target/debug/deps/libfig06-e32ffbd3e414cb55.rmeta: crates/bench/src/bin/fig06.rs

crates/bench/src/bin/fig06.rs:
