/root/repo/target/debug/deps/fig05-fdee6533f5d01477.d: crates/bench/src/bin/fig05.rs

/root/repo/target/debug/deps/libfig05-fdee6533f5d01477.rmeta: crates/bench/src/bin/fig05.rs

crates/bench/src/bin/fig05.rs:
