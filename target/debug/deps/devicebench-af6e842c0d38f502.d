/root/repo/target/debug/deps/devicebench-af6e842c0d38f502.d: crates/bench/src/bin/devicebench.rs

/root/repo/target/debug/deps/devicebench-af6e842c0d38f502: crates/bench/src/bin/devicebench.rs

crates/bench/src/bin/devicebench.rs:
