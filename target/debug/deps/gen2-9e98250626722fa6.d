/root/repo/target/debug/deps/gen2-9e98250626722fa6.d: crates/bench/src/bin/gen2.rs

/root/repo/target/debug/deps/libgen2-9e98250626722fa6.rmeta: crates/bench/src/bin/gen2.rs

crates/bench/src/bin/gen2.rs:
