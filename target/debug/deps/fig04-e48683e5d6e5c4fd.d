/root/repo/target/debug/deps/fig04-e48683e5d6e5c4fd.d: crates/bench/src/bin/fig04.rs

/root/repo/target/debug/deps/fig04-e48683e5d6e5c4fd: crates/bench/src/bin/fig04.rs

crates/bench/src/bin/fig04.rs:
