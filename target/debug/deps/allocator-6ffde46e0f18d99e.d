/root/repo/target/debug/deps/allocator-6ffde46e0f18d99e.d: crates/bench/benches/allocator.rs Cargo.toml

/root/repo/target/debug/deps/liballocator-6ffde46e0f18d99e.rmeta: crates/bench/benches/allocator.rs Cargo.toml

crates/bench/benches/allocator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
