/root/repo/target/debug/deps/spec_properties-f42f3d34fa6a3751.d: crates/workloads/tests/spec_properties.rs Cargo.toml

/root/repo/target/debug/deps/libspec_properties-f42f3d34fa6a3751.rmeta: crates/workloads/tests/spec_properties.rs Cargo.toml

crates/workloads/tests/spec_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
