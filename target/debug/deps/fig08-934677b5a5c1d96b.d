/root/repo/target/debug/deps/fig08-934677b5a5c1d96b.d: crates/bench/src/bin/fig08.rs

/root/repo/target/debug/deps/fig08-934677b5a5c1d96b: crates/bench/src/bin/fig08.rs

crates/bench/src/bin/fig08.rs:
