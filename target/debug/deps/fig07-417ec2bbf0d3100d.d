/root/repo/target/debug/deps/fig07-417ec2bbf0d3100d.d: crates/bench/src/bin/fig07.rs

/root/repo/target/debug/deps/libfig07-417ec2bbf0d3100d.rmeta: crates/bench/src/bin/fig07.rs

crates/bench/src/bin/fig07.rs:
