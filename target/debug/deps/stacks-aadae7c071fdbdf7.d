/root/repo/target/debug/deps/stacks-aadae7c071fdbdf7.d: crates/bench/src/bin/stacks.rs

/root/repo/target/debug/deps/stacks-aadae7c071fdbdf7: crates/bench/src/bin/stacks.rs

crates/bench/src/bin/stacks.rs:
