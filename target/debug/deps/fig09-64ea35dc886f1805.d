/root/repo/target/debug/deps/fig09-64ea35dc886f1805.d: crates/bench/src/bin/fig09.rs

/root/repo/target/debug/deps/libfig09-64ea35dc886f1805.rmeta: crates/bench/src/bin/fig09.rs

crates/bench/src/bin/fig09.rs:
