/root/repo/target/debug/deps/tune-c6e816b0fcf3af39.d: crates/bench/src/bin/tune.rs

/root/repo/target/debug/deps/tune-c6e816b0fcf3af39: crates/bench/src/bin/tune.rs

crates/bench/src/bin/tune.rs:
