/root/repo/target/debug/deps/engine_scenarios-ff01decdad041b6f.d: crates/des/tests/engine_scenarios.rs

/root/repo/target/debug/deps/libengine_scenarios-ff01decdad041b6f.rmeta: crates/des/tests/engine_scenarios.rs

crates/des/tests/engine_scenarios.rs:
