/root/repo/target/debug/deps/fig08-e9b666ea70e9be15.d: crates/bench/src/bin/fig08.rs

/root/repo/target/debug/deps/libfig08-e9b666ea70e9be15.rmeta: crates/bench/src/bin/fig08.rs

crates/bench/src/bin/fig08.rs:
