/root/repo/target/debug/deps/ablation-1f42b407d67cf289.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/libablation-1f42b407d67cf289.rmeta: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
