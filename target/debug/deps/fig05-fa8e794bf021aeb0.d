/root/repo/target/debug/deps/fig05-fa8e794bf021aeb0.d: crates/bench/src/bin/fig05.rs

/root/repo/target/debug/deps/libfig05-fa8e794bf021aeb0.rmeta: crates/bench/src/bin/fig05.rs

crates/bench/src/bin/fig05.rs:
