/root/repo/target/debug/deps/devicebench-886dc71db2502033.d: crates/bench/src/bin/devicebench.rs Cargo.toml

/root/repo/target/debug/deps/libdevicebench-886dc71db2502033.rmeta: crates/bench/src/bin/devicebench.rs Cargo.toml

crates/bench/src/bin/devicebench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
