/root/repo/target/debug/deps/property_iostack-ca8fb170aaee99ba.d: tests/property_iostack.rs Cargo.toml

/root/repo/target/debug/deps/libproperty_iostack-ca8fb170aaee99ba.rmeta: tests/property_iostack.rs Cargo.toml

tests/property_iostack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
