/root/repo/target/debug/deps/table2-b9619ca7ca1abd0c.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/libtable2-b9619ca7ca1abd0c.rmeta: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
