/root/repo/target/debug/deps/pmemflow_des-2a798682f29a3282.d: crates/des/src/lib.rs crates/des/src/engine.rs crates/des/src/flow.rs crates/des/src/process.rs crates/des/src/rng.rs crates/des/src/stats.rs crates/des/src/time.rs crates/des/src/trace.rs

/root/repo/target/debug/deps/libpmemflow_des-2a798682f29a3282.rmeta: crates/des/src/lib.rs crates/des/src/engine.rs crates/des/src/flow.rs crates/des/src/process.rs crates/des/src/rng.rs crates/des/src/stats.rs crates/des/src/time.rs crates/des/src/trace.rs

crates/des/src/lib.rs:
crates/des/src/engine.rs:
crates/des/src/flow.rs:
crates/des/src/process.rs:
crates/des/src/rng.rs:
crates/des/src/stats.rs:
crates/des/src/time.rs:
crates/des/src/trace.rs:
