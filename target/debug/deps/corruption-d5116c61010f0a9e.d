/root/repo/target/debug/deps/corruption-d5116c61010f0a9e.d: crates/iostack/tests/corruption.rs

/root/repo/target/debug/deps/libcorruption-d5116c61010f0a9e.rmeta: crates/iostack/tests/corruption.rs

crates/iostack/tests/corruption.rs:
