/root/repo/target/debug/deps/table2_winners-55e1e87f94052af1.d: tests/table2_winners.rs

/root/repo/target/debug/deps/libtable2_winners-55e1e87f94052af1.rmeta: tests/table2_winners.rs

tests/table2_winners.rs:
