/root/repo/target/debug/deps/cli-27b3b646d7c65e7b.d: tests/cli.rs

/root/repo/target/debug/deps/libcli-27b3b646d7c65e7b.rmeta: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_pmemflow=placeholder:pmemflow
