/root/repo/target/debug/deps/fig06-2121128d8b0b0f91.d: crates/bench/src/bin/fig06.rs

/root/repo/target/debug/deps/libfig06-2121128d8b0b0f91.rmeta: crates/bench/src/bin/fig06.rs

crates/bench/src/bin/fig06.rs:
