/root/repo/target/debug/deps/pmemflow_bench-af2353e74af85b7e.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libpmemflow_bench-af2353e74af85b7e.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libpmemflow_bench-af2353e74af85b7e.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
