/root/repo/target/debug/deps/pmemflow_pmem-4c64ab115f84ee8f.d: crates/pmem/src/lib.rs crates/pmem/src/allocator.rs crates/pmem/src/curves.rs crates/pmem/src/devicebench.rs crates/pmem/src/dimmsim.rs crates/pmem/src/interleave.rs crates/pmem/src/profile.rs crates/pmem/src/region.rs crates/pmem/src/xpbuffer.rs Cargo.toml

/root/repo/target/debug/deps/libpmemflow_pmem-4c64ab115f84ee8f.rmeta: crates/pmem/src/lib.rs crates/pmem/src/allocator.rs crates/pmem/src/curves.rs crates/pmem/src/devicebench.rs crates/pmem/src/dimmsim.rs crates/pmem/src/interleave.rs crates/pmem/src/profile.rs crates/pmem/src/region.rs crates/pmem/src/xpbuffer.rs Cargo.toml

crates/pmem/src/lib.rs:
crates/pmem/src/allocator.rs:
crates/pmem/src/curves.rs:
crates/pmem/src/devicebench.rs:
crates/pmem/src/dimmsim.rs:
crates/pmem/src/interleave.rs:
crates/pmem/src/profile.rs:
crates/pmem/src/region.rs:
crates/pmem/src/xpbuffer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
