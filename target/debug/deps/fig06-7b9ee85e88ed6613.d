/root/repo/target/debug/deps/fig06-7b9ee85e88ed6613.d: crates/bench/src/bin/fig06.rs

/root/repo/target/debug/deps/fig06-7b9ee85e88ed6613: crates/bench/src/bin/fig06.rs

crates/bench/src/bin/fig06.rs:
