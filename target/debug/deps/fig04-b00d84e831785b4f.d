/root/repo/target/debug/deps/fig04-b00d84e831785b4f.d: crates/bench/src/bin/fig04.rs Cargo.toml

/root/repo/target/debug/deps/libfig04-b00d84e831785b4f.rmeta: crates/bench/src/bin/fig04.rs Cargo.toml

crates/bench/src/bin/fig04.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
