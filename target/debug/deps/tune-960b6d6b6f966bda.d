/root/repo/target/debug/deps/tune-960b6d6b6f966bda.d: crates/bench/src/bin/tune.rs Cargo.toml

/root/repo/target/debug/deps/libtune-960b6d6b6f966bda.rmeta: crates/bench/src/bin/tune.rs Cargo.toml

crates/bench/src/bin/tune.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
