/root/repo/target/debug/deps/model_properties-b363c9234304d366.d: crates/pmem/tests/model_properties.rs

/root/repo/target/debug/deps/libmodel_properties-b363c9234304d366.rmeta: crates/pmem/tests/model_properties.rs

crates/pmem/tests/model_properties.rs:
