/root/repo/target/debug/deps/fig10-e045f9a6f74a9c8f.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-e045f9a6f74a9c8f: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
