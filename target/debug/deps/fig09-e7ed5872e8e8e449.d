/root/repo/target/debug/deps/fig09-e7ed5872e8e8e449.d: crates/bench/src/bin/fig09.rs

/root/repo/target/debug/deps/fig09-e7ed5872e8e8e449: crates/bench/src/bin/fig09.rs

crates/bench/src/bin/fig09.rs:
