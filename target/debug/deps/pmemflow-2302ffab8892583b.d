/root/repo/target/debug/deps/pmemflow-2302ffab8892583b.d: src/lib.rs src/cli.rs

/root/repo/target/debug/deps/pmemflow-2302ffab8892583b: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:
