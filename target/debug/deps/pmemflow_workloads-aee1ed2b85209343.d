/root/repo/target/debug/deps/pmemflow_workloads-aee1ed2b85209343.d: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/import.rs crates/workloads/src/kernels.rs crates/workloads/src/spec.rs crates/workloads/src/suite.rs

/root/repo/target/debug/deps/libpmemflow_workloads-aee1ed2b85209343.rlib: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/import.rs crates/workloads/src/kernels.rs crates/workloads/src/spec.rs crates/workloads/src/suite.rs

/root/repo/target/debug/deps/libpmemflow_workloads-aee1ed2b85209343.rmeta: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/import.rs crates/workloads/src/kernels.rs crates/workloads/src/spec.rs crates/workloads/src/suite.rs

crates/workloads/src/lib.rs:
crates/workloads/src/apps.rs:
crates/workloads/src/import.rs:
crates/workloads/src/kernels.rs:
crates/workloads/src/spec.rs:
crates/workloads/src/suite.rs:
