/root/repo/target/debug/deps/fig05-50931b75e0ce32d4.d: crates/bench/src/bin/fig05.rs

/root/repo/target/debug/deps/fig05-50931b75e0ce32d4: crates/bench/src/bin/fig05.rs

crates/bench/src/bin/fig05.rs:
