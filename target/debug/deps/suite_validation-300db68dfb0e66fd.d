/root/repo/target/debug/deps/suite_validation-300db68dfb0e66fd.d: crates/sched/tests/suite_validation.rs

/root/repo/target/debug/deps/suite_validation-300db68dfb0e66fd: crates/sched/tests/suite_validation.rs

crates/sched/tests/suite_validation.rs:
