/root/repo/target/debug/deps/iostack_ops-b00c7978c77d6729.d: crates/bench/benches/iostack_ops.rs Cargo.toml

/root/repo/target/debug/deps/libiostack_ops-b00c7978c77d6729.rmeta: crates/bench/benches/iostack_ops.rs Cargo.toml

crates/bench/benches/iostack_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
