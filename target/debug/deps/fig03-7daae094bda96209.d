/root/repo/target/debug/deps/fig03-7daae094bda96209.d: crates/bench/src/bin/fig03.rs

/root/repo/target/debug/deps/fig03-7daae094bda96209: crates/bench/src/bin/fig03.rs

crates/bench/src/bin/fig03.rs:
