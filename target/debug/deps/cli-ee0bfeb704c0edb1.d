/root/repo/target/debug/deps/cli-ee0bfeb704c0edb1.d: tests/cli.rs

/root/repo/target/debug/deps/cli-ee0bfeb704c0edb1: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_pmemflow=/root/repo/target/debug/pmemflow
