/root/repo/target/debug/deps/paper_claims-d15f8a0e1a2ebc6c.d: tests/paper_claims.rs

/root/repo/target/debug/deps/libpaper_claims-d15f8a0e1a2ebc6c.rmeta: tests/paper_claims.rs

tests/paper_claims.rs:
