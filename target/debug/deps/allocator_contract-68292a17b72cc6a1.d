/root/repo/target/debug/deps/allocator_contract-68292a17b72cc6a1.d: crates/des/tests/allocator_contract.rs

/root/repo/target/debug/deps/allocator_contract-68292a17b72cc6a1: crates/des/tests/allocator_contract.rs

crates/des/tests/allocator_contract.rs:
