/root/repo/target/debug/deps/spec_properties-b4fd25e513053dc0.d: crates/workloads/tests/spec_properties.rs

/root/repo/target/debug/deps/spec_properties-b4fd25e513053dc0: crates/workloads/tests/spec_properties.rs

crates/workloads/tests/spec_properties.rs:
