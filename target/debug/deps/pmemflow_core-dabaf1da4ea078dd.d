/root/repo/target/debug/deps/pmemflow_core-dabaf1da4ea078dd.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/coschedule.rs crates/core/src/executor.rs crates/core/src/metrics.rs crates/core/src/native.rs crates/core/src/report.rs crates/core/src/runner.rs Cargo.toml

/root/repo/target/debug/deps/libpmemflow_core-dabaf1da4ea078dd.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/coschedule.rs crates/core/src/executor.rs crates/core/src/metrics.rs crates/core/src/native.rs crates/core/src/report.rs crates/core/src/runner.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/coschedule.rs:
crates/core/src/executor.rs:
crates/core/src/metrics.rs:
crates/core/src/native.rs:
crates/core/src/report.rs:
crates/core/src/runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
