/root/repo/target/debug/deps/pmemflow-2fa39be64cf6ed6f.d: src/lib.rs src/cli.rs

/root/repo/target/debug/deps/libpmemflow-2fa39be64cf6ed6f.rlib: src/lib.rs src/cli.rs

/root/repo/target/debug/deps/libpmemflow-2fa39be64cf6ed6f.rmeta: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:
