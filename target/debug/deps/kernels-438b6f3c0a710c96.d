/root/repo/target/debug/deps/kernels-438b6f3c0a710c96.d: crates/bench/benches/kernels.rs Cargo.toml

/root/repo/target/debug/deps/libkernels-438b6f3c0a710c96.rmeta: crates/bench/benches/kernels.rs Cargo.toml

crates/bench/benches/kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
