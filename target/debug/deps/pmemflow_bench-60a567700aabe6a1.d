/root/repo/target/debug/deps/pmemflow_bench-60a567700aabe6a1.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libpmemflow_bench-60a567700aabe6a1.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
