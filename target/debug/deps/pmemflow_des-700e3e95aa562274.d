/root/repo/target/debug/deps/pmemflow_des-700e3e95aa562274.d: crates/des/src/lib.rs crates/des/src/engine.rs crates/des/src/flow.rs crates/des/src/process.rs crates/des/src/rng.rs crates/des/src/stats.rs crates/des/src/time.rs crates/des/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libpmemflow_des-700e3e95aa562274.rmeta: crates/des/src/lib.rs crates/des/src/engine.rs crates/des/src/flow.rs crates/des/src/process.rs crates/des/src/rng.rs crates/des/src/stats.rs crates/des/src/time.rs crates/des/src/trace.rs Cargo.toml

crates/des/src/lib.rs:
crates/des/src/engine.rs:
crates/des/src/flow.rs:
crates/des/src/process.rs:
crates/des/src/rng.rs:
crates/des/src/stats.rs:
crates/des/src/time.rs:
crates/des/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
