/root/repo/target/debug/deps/stacks-80f995adafbd3d21.d: crates/bench/src/bin/stacks.rs

/root/repo/target/debug/deps/libstacks-80f995adafbd3d21.rmeta: crates/bench/src/bin/stacks.rs

crates/bench/src/bin/stacks.rs:
