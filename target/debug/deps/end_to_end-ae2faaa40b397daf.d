/root/repo/target/debug/deps/end_to_end-ae2faaa40b397daf.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-ae2faaa40b397daf: tests/end_to_end.rs

tests/end_to_end.rs:
