/root/repo/target/debug/deps/gen2-b571799beac03818.d: crates/bench/src/bin/gen2.rs Cargo.toml

/root/repo/target/debug/deps/libgen2-b571799beac03818.rmeta: crates/bench/src/bin/gen2.rs Cargo.toml

crates/bench/src/bin/gen2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
