/root/repo/target/debug/deps/pmemflow_bench-e71ed9768d775919.d: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

/root/repo/target/debug/deps/libpmemflow_bench-e71ed9768d775919.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
