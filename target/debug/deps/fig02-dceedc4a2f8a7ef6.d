/root/repo/target/debug/deps/fig02-dceedc4a2f8a7ef6.d: crates/bench/src/bin/fig02.rs

/root/repo/target/debug/deps/fig02-dceedc4a2f8a7ef6: crates/bench/src/bin/fig02.rs

crates/bench/src/bin/fig02.rs:
