/root/repo/target/debug/deps/property_des-bb85b3dedd24c801.d: tests/property_des.rs

/root/repo/target/debug/deps/property_des-bb85b3dedd24c801: tests/property_des.rs

tests/property_des.rs:
