/root/repo/target/debug/deps/ablation-ea6eb0df0639428f.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-ea6eb0df0639428f: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
