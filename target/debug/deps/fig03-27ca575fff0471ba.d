/root/repo/target/debug/deps/fig03-27ca575fff0471ba.d: crates/bench/src/bin/fig03.rs

/root/repo/target/debug/deps/libfig03-27ca575fff0471ba.rmeta: crates/bench/src/bin/fig03.rs

crates/bench/src/bin/fig03.rs:
