/root/repo/target/debug/deps/pmemflow_iostack-3dc1e206b694ec58.d: crates/iostack/src/lib.rs crates/iostack/src/codec.rs crates/iostack/src/cost.rs crates/iostack/src/hash.rs crates/iostack/src/nova.rs crates/iostack/src/nvstream.rs crates/iostack/src/store.rs

/root/repo/target/debug/deps/libpmemflow_iostack-3dc1e206b694ec58.rmeta: crates/iostack/src/lib.rs crates/iostack/src/codec.rs crates/iostack/src/cost.rs crates/iostack/src/hash.rs crates/iostack/src/nova.rs crates/iostack/src/nvstream.rs crates/iostack/src/store.rs

crates/iostack/src/lib.rs:
crates/iostack/src/codec.rs:
crates/iostack/src/cost.rs:
crates/iostack/src/hash.rs:
crates/iostack/src/nova.rs:
crates/iostack/src/nvstream.rs:
crates/iostack/src/store.rs:
