/root/repo/target/debug/deps/paper_claims-c88fa2ab355ff258.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-c88fa2ab355ff258: tests/paper_claims.rs

tests/paper_claims.rs:
