/root/repo/target/debug/deps/fig07-224dd35823cab343.d: crates/bench/src/bin/fig07.rs

/root/repo/target/debug/deps/libfig07-224dd35823cab343.rmeta: crates/bench/src/bin/fig07.rs

crates/bench/src/bin/fig07.rs:
