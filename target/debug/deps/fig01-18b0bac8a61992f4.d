/root/repo/target/debug/deps/fig01-18b0bac8a61992f4.d: crates/bench/src/bin/fig01.rs

/root/repo/target/debug/deps/libfig01-18b0bac8a61992f4.rmeta: crates/bench/src/bin/fig01.rs

crates/bench/src/bin/fig01.rs:
