/root/repo/target/debug/deps/fig05-0d276f177c1f370e.d: crates/bench/src/bin/fig05.rs Cargo.toml

/root/repo/target/debug/deps/libfig05-0d276f177c1f370e.rmeta: crates/bench/src/bin/fig05.rs Cargo.toml

crates/bench/src/bin/fig05.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
