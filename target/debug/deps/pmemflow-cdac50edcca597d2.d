/root/repo/target/debug/deps/pmemflow-cdac50edcca597d2.d: src/main.rs

/root/repo/target/debug/deps/pmemflow-cdac50edcca597d2: src/main.rs

src/main.rs:
