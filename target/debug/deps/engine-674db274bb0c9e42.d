/root/repo/target/debug/deps/engine-674db274bb0c9e42.d: crates/bench/benches/engine.rs

/root/repo/target/debug/deps/libengine-674db274bb0c9e42.rmeta: crates/bench/benches/engine.rs

crates/bench/benches/engine.rs:
