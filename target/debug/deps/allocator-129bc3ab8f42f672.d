/root/repo/target/debug/deps/allocator-129bc3ab8f42f672.d: crates/bench/benches/allocator.rs

/root/repo/target/debug/deps/liballocator-129bc3ab8f42f672.rmeta: crates/bench/benches/allocator.rs

crates/bench/benches/allocator.rs:
