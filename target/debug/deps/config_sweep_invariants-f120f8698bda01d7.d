/root/repo/target/debug/deps/config_sweep_invariants-f120f8698bda01d7.d: crates/core/tests/config_sweep_invariants.rs Cargo.toml

/root/repo/target/debug/deps/libconfig_sweep_invariants-f120f8698bda01d7.rmeta: crates/core/tests/config_sweep_invariants.rs Cargo.toml

crates/core/tests/config_sweep_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
