/root/repo/target/debug/deps/pmemflow_core-c717266cec0009ec.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/coschedule.rs crates/core/src/executor.rs crates/core/src/metrics.rs crates/core/src/native.rs crates/core/src/report.rs crates/core/src/runner.rs

/root/repo/target/debug/deps/libpmemflow_core-c717266cec0009ec.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/coschedule.rs crates/core/src/executor.rs crates/core/src/metrics.rs crates/core/src/native.rs crates/core/src/report.rs crates/core/src/runner.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/coschedule.rs:
crates/core/src/executor.rs:
crates/core/src/metrics.rs:
crates/core/src/native.rs:
crates/core/src/report.rs:
crates/core/src/runner.rs:
