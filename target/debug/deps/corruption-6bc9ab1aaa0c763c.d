/root/repo/target/debug/deps/corruption-6bc9ab1aaa0c763c.d: crates/iostack/tests/corruption.rs Cargo.toml

/root/repo/target/debug/deps/libcorruption-6bc9ab1aaa0c763c.rmeta: crates/iostack/tests/corruption.rs Cargo.toml

crates/iostack/tests/corruption.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
