/root/repo/target/debug/deps/pmemflow_platform-e93fd8ec957514c2.d: crates/platform/src/lib.rs crates/platform/src/pinning.rs crates/platform/src/topology.rs

/root/repo/target/debug/deps/libpmemflow_platform-e93fd8ec957514c2.rmeta: crates/platform/src/lib.rs crates/platform/src/pinning.rs crates/platform/src/topology.rs

crates/platform/src/lib.rs:
crates/platform/src/pinning.rs:
crates/platform/src/topology.rs:
