/root/repo/target/debug/deps/pmemflow-6dbadef617aa2f6d.d: src/main.rs

/root/repo/target/debug/deps/libpmemflow-6dbadef617aa2f6d.rmeta: src/main.rs

src/main.rs:
