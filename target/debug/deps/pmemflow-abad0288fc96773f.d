/root/repo/target/debug/deps/pmemflow-abad0288fc96773f.d: src/main.rs Cargo.toml

/root/repo/target/debug/deps/libpmemflow-abad0288fc96773f.rmeta: src/main.rs Cargo.toml

src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
