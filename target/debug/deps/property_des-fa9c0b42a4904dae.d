/root/repo/target/debug/deps/property_des-fa9c0b42a4904dae.d: tests/property_des.rs Cargo.toml

/root/repo/target/debug/deps/libproperty_des-fa9c0b42a4904dae.rmeta: tests/property_des.rs Cargo.toml

tests/property_des.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
