/root/repo/target/debug/deps/coschedule_scenarios-12c2f3eaef3b549f.d: crates/core/tests/coschedule_scenarios.rs

/root/repo/target/debug/deps/coschedule_scenarios-12c2f3eaef3b549f: crates/core/tests/coschedule_scenarios.rs

crates/core/tests/coschedule_scenarios.rs:
