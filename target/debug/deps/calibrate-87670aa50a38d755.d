/root/repo/target/debug/deps/calibrate-87670aa50a38d755.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/debug/deps/calibrate-87670aa50a38d755: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
