/root/repo/target/debug/deps/config_sweep_invariants-36f0b5fae912f2d6.d: crates/core/tests/config_sweep_invariants.rs

/root/repo/target/debug/deps/config_sweep_invariants-36f0b5fae912f2d6: crates/core/tests/config_sweep_invariants.rs

crates/core/tests/config_sweep_invariants.rs:
