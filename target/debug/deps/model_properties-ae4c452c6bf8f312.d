/root/repo/target/debug/deps/model_properties-ae4c452c6bf8f312.d: crates/pmem/tests/model_properties.rs

/root/repo/target/debug/deps/model_properties-ae4c452c6bf8f312: crates/pmem/tests/model_properties.rs

crates/pmem/tests/model_properties.rs:
