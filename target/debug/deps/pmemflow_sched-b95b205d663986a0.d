/root/repo/target/debug/deps/pmemflow_sched-b95b205d663986a0.d: crates/sched/src/lib.rs crates/sched/src/adaptive.rs crates/sched/src/characterize.rs crates/sched/src/crossover.rs crates/sched/src/model_driven.rs crates/sched/src/planner.rs crates/sched/src/profile.rs crates/sched/src/rules.rs crates/sched/src/table2.rs Cargo.toml

/root/repo/target/debug/deps/libpmemflow_sched-b95b205d663986a0.rmeta: crates/sched/src/lib.rs crates/sched/src/adaptive.rs crates/sched/src/characterize.rs crates/sched/src/crossover.rs crates/sched/src/model_driven.rs crates/sched/src/planner.rs crates/sched/src/profile.rs crates/sched/src/rules.rs crates/sched/src/table2.rs Cargo.toml

crates/sched/src/lib.rs:
crates/sched/src/adaptive.rs:
crates/sched/src/characterize.rs:
crates/sched/src/crossover.rs:
crates/sched/src/model_driven.rs:
crates/sched/src/planner.rs:
crates/sched/src/profile.rs:
crates/sched/src/rules.rs:
crates/sched/src/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
