/root/repo/target/debug/deps/suite_runner-3a3d79dacec787cd.d: tests/suite_runner.rs

/root/repo/target/debug/deps/suite_runner-3a3d79dacec787cd: tests/suite_runner.rs

tests/suite_runner.rs:
