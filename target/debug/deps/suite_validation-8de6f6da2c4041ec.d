/root/repo/target/debug/deps/suite_validation-8de6f6da2c4041ec.d: crates/sched/tests/suite_validation.rs Cargo.toml

/root/repo/target/debug/deps/libsuite_validation-8de6f6da2c4041ec.rmeta: crates/sched/tests/suite_validation.rs Cargo.toml

crates/sched/tests/suite_validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
