/root/repo/target/debug/deps/fig04-52d5764547d21d1d.d: crates/bench/src/bin/fig04.rs

/root/repo/target/debug/deps/libfig04-52d5764547d21d1d.rmeta: crates/bench/src/bin/fig04.rs

crates/bench/src/bin/fig04.rs:
