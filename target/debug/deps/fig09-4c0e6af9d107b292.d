/root/repo/target/debug/deps/fig09-4c0e6af9d107b292.d: crates/bench/src/bin/fig09.rs

/root/repo/target/debug/deps/fig09-4c0e6af9d107b292: crates/bench/src/bin/fig09.rs

crates/bench/src/bin/fig09.rs:
