/root/repo/target/debug/deps/calibrate-5cb3949eb8a5bff7.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/debug/deps/libcalibrate-5cb3949eb8a5bff7.rmeta: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
