/root/repo/target/debug/deps/tune-77d72682299fda80.d: crates/bench/src/bin/tune.rs

/root/repo/target/debug/deps/libtune-77d72682299fda80.rmeta: crates/bench/src/bin/tune.rs

crates/bench/src/bin/tune.rs:
