/root/repo/target/debug/deps/fig02-c13f68978b6a2d6f.d: crates/bench/src/bin/fig02.rs

/root/repo/target/debug/deps/fig02-c13f68978b6a2d6f: crates/bench/src/bin/fig02.rs

crates/bench/src/bin/fig02.rs:
