/root/repo/target/debug/deps/fig04-f686b24d456c35d8.d: crates/bench/src/bin/fig04.rs

/root/repo/target/debug/deps/libfig04-f686b24d456c35d8.rmeta: crates/bench/src/bin/fig04.rs

crates/bench/src/bin/fig04.rs:
