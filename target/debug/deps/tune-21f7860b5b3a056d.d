/root/repo/target/debug/deps/tune-21f7860b5b3a056d.d: crates/bench/src/bin/tune.rs

/root/repo/target/debug/deps/tune-21f7860b5b3a056d: crates/bench/src/bin/tune.rs

crates/bench/src/bin/tune.rs:
