/root/repo/target/debug/deps/engine_scenarios-c35485d8a6633a2a.d: crates/des/tests/engine_scenarios.rs

/root/repo/target/debug/deps/engine_scenarios-c35485d8a6633a2a: crates/des/tests/engine_scenarios.rs

crates/des/tests/engine_scenarios.rs:
