/root/repo/target/debug/deps/coschedule_scenarios-7c4947be1e2dbca5.d: crates/core/tests/coschedule_scenarios.rs

/root/repo/target/debug/deps/libcoschedule_scenarios-7c4947be1e2dbca5.rmeta: crates/core/tests/coschedule_scenarios.rs

crates/core/tests/coschedule_scenarios.rs:
