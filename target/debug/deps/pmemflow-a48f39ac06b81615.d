/root/repo/target/debug/deps/pmemflow-a48f39ac06b81615.d: src/main.rs

/root/repo/target/debug/deps/libpmemflow-a48f39ac06b81615.rmeta: src/main.rs

src/main.rs:
