/root/repo/target/debug/deps/fig07-9199a8ef8634da79.d: crates/bench/src/bin/fig07.rs

/root/repo/target/debug/deps/fig07-9199a8ef8634da79: crates/bench/src/bin/fig07.rs

crates/bench/src/bin/fig07.rs:
