/root/repo/target/debug/deps/property_des-f65b795fead74b3c.d: tests/property_des.rs

/root/repo/target/debug/deps/libproperty_des-f65b795fead74b3c.rmeta: tests/property_des.rs

tests/property_des.rs:
