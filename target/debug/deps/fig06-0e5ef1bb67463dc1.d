/root/repo/target/debug/deps/fig06-0e5ef1bb67463dc1.d: crates/bench/src/bin/fig06.rs Cargo.toml

/root/repo/target/debug/deps/libfig06-0e5ef1bb67463dc1.rmeta: crates/bench/src/bin/fig06.rs Cargo.toml

crates/bench/src/bin/fig06.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
