/root/repo/target/debug/deps/table2-7eb764e19f4b71ff.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/libtable2-7eb764e19f4b71ff.rmeta: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
