/root/repo/target/debug/deps/stacks-e740df5b2c8d205b.d: crates/bench/src/bin/stacks.rs

/root/repo/target/debug/deps/stacks-e740df5b2c8d205b: crates/bench/src/bin/stacks.rs

crates/bench/src/bin/stacks.rs:
