/root/repo/target/debug/deps/properties-60e79fb994dc3b77.d: crates/pmem/tests/properties.rs

/root/repo/target/debug/deps/properties-60e79fb994dc3b77: crates/pmem/tests/properties.rs

crates/pmem/tests/properties.rs:
