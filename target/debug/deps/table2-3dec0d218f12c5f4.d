/root/repo/target/debug/deps/table2-3dec0d218f12c5f4.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-3dec0d218f12c5f4: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
