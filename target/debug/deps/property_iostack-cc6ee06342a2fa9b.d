/root/repo/target/debug/deps/property_iostack-cc6ee06342a2fa9b.d: tests/property_iostack.rs

/root/repo/target/debug/deps/libproperty_iostack-cc6ee06342a2fa9b.rmeta: tests/property_iostack.rs

tests/property_iostack.rs:
