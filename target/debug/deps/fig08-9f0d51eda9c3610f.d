/root/repo/target/debug/deps/fig08-9f0d51eda9c3610f.d: crates/bench/src/bin/fig08.rs

/root/repo/target/debug/deps/fig08-9f0d51eda9c3610f: crates/bench/src/bin/fig08.rs

crates/bench/src/bin/fig08.rs:
