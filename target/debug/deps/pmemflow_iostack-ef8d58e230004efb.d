/root/repo/target/debug/deps/pmemflow_iostack-ef8d58e230004efb.d: crates/iostack/src/lib.rs crates/iostack/src/codec.rs crates/iostack/src/cost.rs crates/iostack/src/hash.rs crates/iostack/src/nova.rs crates/iostack/src/nvstream.rs crates/iostack/src/store.rs Cargo.toml

/root/repo/target/debug/deps/libpmemflow_iostack-ef8d58e230004efb.rmeta: crates/iostack/src/lib.rs crates/iostack/src/codec.rs crates/iostack/src/cost.rs crates/iostack/src/hash.rs crates/iostack/src/nova.rs crates/iostack/src/nvstream.rs crates/iostack/src/store.rs Cargo.toml

crates/iostack/src/lib.rs:
crates/iostack/src/codec.rs:
crates/iostack/src/cost.rs:
crates/iostack/src/hash.rs:
crates/iostack/src/nova.rs:
crates/iostack/src/nvstream.rs:
crates/iostack/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
