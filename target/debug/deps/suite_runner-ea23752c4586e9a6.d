/root/repo/target/debug/deps/suite_runner-ea23752c4586e9a6.d: tests/suite_runner.rs

/root/repo/target/debug/deps/libsuite_runner-ea23752c4586e9a6.rmeta: tests/suite_runner.rs

tests/suite_runner.rs:
