/root/repo/target/debug/deps/pmemflow-c19de49da3342567.d: src/lib.rs src/cli.rs

/root/repo/target/debug/deps/libpmemflow-c19de49da3342567.rmeta: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:
