/root/repo/target/debug/deps/pmemflow-82d5dcf7e3cb6e04.d: src/lib.rs src/cli.rs Cargo.toml

/root/repo/target/debug/deps/libpmemflow-82d5dcf7e3cb6e04.rmeta: src/lib.rs src/cli.rs Cargo.toml

src/lib.rs:
src/cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
