/root/repo/target/debug/deps/pmemflow-5fa7c4cc8c8a5bd5.d: src/main.rs

/root/repo/target/debug/deps/pmemflow-5fa7c4cc8c8a5bd5: src/main.rs

src/main.rs:
