/root/repo/target/debug/deps/pmemflow_workloads-3581e7e78761636a.d: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/import.rs crates/workloads/src/kernels.rs crates/workloads/src/spec.rs crates/workloads/src/suite.rs

/root/repo/target/debug/deps/libpmemflow_workloads-3581e7e78761636a.rmeta: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/import.rs crates/workloads/src/kernels.rs crates/workloads/src/spec.rs crates/workloads/src/suite.rs

crates/workloads/src/lib.rs:
crates/workloads/src/apps.rs:
crates/workloads/src/import.rs:
crates/workloads/src/kernels.rs:
crates/workloads/src/spec.rs:
crates/workloads/src/suite.rs:
