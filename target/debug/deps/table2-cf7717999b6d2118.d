/root/repo/target/debug/deps/table2-cf7717999b6d2118.d: crates/bench/src/bin/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-cf7717999b6d2118.rmeta: crates/bench/src/bin/table2.rs Cargo.toml

crates/bench/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
