/root/repo/target/debug/deps/table1-b9e04a4843340afd.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-b9e04a4843340afd: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
