/root/repo/target/debug/deps/fig06-e0846b410ff3f6a5.d: crates/bench/src/bin/fig06.rs

/root/repo/target/debug/deps/fig06-e0846b410ff3f6a5: crates/bench/src/bin/fig06.rs

crates/bench/src/bin/fig06.rs:
