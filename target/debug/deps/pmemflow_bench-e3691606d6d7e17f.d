/root/repo/target/debug/deps/pmemflow_bench-e3691606d6d7e17f.d: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

/root/repo/target/debug/deps/libpmemflow_bench-e3691606d6d7e17f.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
