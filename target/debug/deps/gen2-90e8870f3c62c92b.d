/root/repo/target/debug/deps/gen2-90e8870f3c62c92b.d: crates/bench/src/bin/gen2.rs Cargo.toml

/root/repo/target/debug/deps/libgen2-90e8870f3c62c92b.rmeta: crates/bench/src/bin/gen2.rs Cargo.toml

crates/bench/src/bin/gen2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
