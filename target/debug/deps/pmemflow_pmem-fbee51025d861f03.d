/root/repo/target/debug/deps/pmemflow_pmem-fbee51025d861f03.d: crates/pmem/src/lib.rs crates/pmem/src/allocator.rs crates/pmem/src/curves.rs crates/pmem/src/devicebench.rs crates/pmem/src/dimmsim.rs crates/pmem/src/interleave.rs crates/pmem/src/profile.rs crates/pmem/src/region.rs crates/pmem/src/xpbuffer.rs

/root/repo/target/debug/deps/libpmemflow_pmem-fbee51025d861f03.rmeta: crates/pmem/src/lib.rs crates/pmem/src/allocator.rs crates/pmem/src/curves.rs crates/pmem/src/devicebench.rs crates/pmem/src/dimmsim.rs crates/pmem/src/interleave.rs crates/pmem/src/profile.rs crates/pmem/src/region.rs crates/pmem/src/xpbuffer.rs

crates/pmem/src/lib.rs:
crates/pmem/src/allocator.rs:
crates/pmem/src/curves.rs:
crates/pmem/src/devicebench.rs:
crates/pmem/src/dimmsim.rs:
crates/pmem/src/interleave.rs:
crates/pmem/src/profile.rs:
crates/pmem/src/region.rs:
crates/pmem/src/xpbuffer.rs:
