/root/repo/target/debug/deps/stacks-8c7173eeba21ff34.d: crates/bench/src/bin/stacks.rs

/root/repo/target/debug/deps/libstacks-8c7173eeba21ff34.rmeta: crates/bench/src/bin/stacks.rs

crates/bench/src/bin/stacks.rs:
