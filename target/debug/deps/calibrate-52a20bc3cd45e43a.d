/root/repo/target/debug/deps/calibrate-52a20bc3cd45e43a.d: crates/bench/src/bin/calibrate.rs Cargo.toml

/root/repo/target/debug/deps/libcalibrate-52a20bc3cd45e43a.rmeta: crates/bench/src/bin/calibrate.rs Cargo.toml

crates/bench/src/bin/calibrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
