/root/repo/target/debug/deps/table2_winners-5c1bd9b9298d52a1.d: tests/table2_winners.rs

/root/repo/target/debug/deps/table2_winners-5c1bd9b9298d52a1: tests/table2_winners.rs

tests/table2_winners.rs:
