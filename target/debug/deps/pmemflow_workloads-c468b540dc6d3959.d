/root/repo/target/debug/deps/pmemflow_workloads-c468b540dc6d3959.d: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/import.rs crates/workloads/src/kernels.rs crates/workloads/src/spec.rs crates/workloads/src/suite.rs

/root/repo/target/debug/deps/pmemflow_workloads-c468b540dc6d3959: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/import.rs crates/workloads/src/kernels.rs crates/workloads/src/spec.rs crates/workloads/src/suite.rs

crates/workloads/src/lib.rs:
crates/workloads/src/apps.rs:
crates/workloads/src/import.rs:
crates/workloads/src/kernels.rs:
crates/workloads/src/spec.rs:
crates/workloads/src/suite.rs:
