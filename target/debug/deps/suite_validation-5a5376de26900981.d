/root/repo/target/debug/deps/suite_validation-5a5376de26900981.d: crates/sched/tests/suite_validation.rs

/root/repo/target/debug/deps/libsuite_validation-5a5376de26900981.rmeta: crates/sched/tests/suite_validation.rs

crates/sched/tests/suite_validation.rs:
