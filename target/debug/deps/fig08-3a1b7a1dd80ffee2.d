/root/repo/target/debug/deps/fig08-3a1b7a1dd80ffee2.d: crates/bench/src/bin/fig08.rs

/root/repo/target/debug/deps/libfig08-3a1b7a1dd80ffee2.rmeta: crates/bench/src/bin/fig08.rs

crates/bench/src/bin/fig08.rs:
