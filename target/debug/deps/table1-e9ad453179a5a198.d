/root/repo/target/debug/deps/table1-e9ad453179a5a198.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/libtable1-e9ad453179a5a198.rmeta: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
