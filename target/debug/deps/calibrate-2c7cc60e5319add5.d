/root/repo/target/debug/deps/calibrate-2c7cc60e5319add5.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/debug/deps/libcalibrate-2c7cc60e5319add5.rmeta: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
