/root/repo/target/debug/deps/config_sweep_invariants-4789f6b4e7226eb5.d: crates/core/tests/config_sweep_invariants.rs

/root/repo/target/debug/deps/libconfig_sweep_invariants-4789f6b4e7226eb5.rmeta: crates/core/tests/config_sweep_invariants.rs

crates/core/tests/config_sweep_invariants.rs:
