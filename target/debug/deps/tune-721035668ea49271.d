/root/repo/target/debug/deps/tune-721035668ea49271.d: crates/bench/src/bin/tune.rs Cargo.toml

/root/repo/target/debug/deps/libtune-721035668ea49271.rmeta: crates/bench/src/bin/tune.rs Cargo.toml

crates/bench/src/bin/tune.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
