/root/repo/target/debug/deps/pmemflow_platform-81e1bd2e20ecee63.d: crates/platform/src/lib.rs crates/platform/src/pinning.rs crates/platform/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/libpmemflow_platform-81e1bd2e20ecee63.rmeta: crates/platform/src/lib.rs crates/platform/src/pinning.rs crates/platform/src/topology.rs Cargo.toml

crates/platform/src/lib.rs:
crates/platform/src/pinning.rs:
crates/platform/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
