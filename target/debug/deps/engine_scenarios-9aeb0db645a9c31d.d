/root/repo/target/debug/deps/engine_scenarios-9aeb0db645a9c31d.d: crates/des/tests/engine_scenarios.rs Cargo.toml

/root/repo/target/debug/deps/libengine_scenarios-9aeb0db645a9c31d.rmeta: crates/des/tests/engine_scenarios.rs Cargo.toml

crates/des/tests/engine_scenarios.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
