/root/repo/target/debug/deps/stacks-85434838cbea8748.d: crates/bench/src/bin/stacks.rs Cargo.toml

/root/repo/target/debug/deps/libstacks-85434838cbea8748.rmeta: crates/bench/src/bin/stacks.rs Cargo.toml

crates/bench/src/bin/stacks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
