/root/repo/target/debug/deps/fig05-09fcbd0a521bf6d2.d: crates/bench/src/bin/fig05.rs

/root/repo/target/debug/deps/fig05-09fcbd0a521bf6d2: crates/bench/src/bin/fig05.rs

crates/bench/src/bin/fig05.rs:
