/root/repo/target/debug/deps/fig09-89d8de91fb91ccc7.d: crates/bench/src/bin/fig09.rs

/root/repo/target/debug/deps/libfig09-89d8de91fb91ccc7.rmeta: crates/bench/src/bin/fig09.rs

crates/bench/src/bin/fig09.rs:
