/root/repo/target/debug/deps/pmemflow-288d0c0b8bc199f5.d: src/lib.rs src/cli.rs

/root/repo/target/debug/deps/libpmemflow-288d0c0b8bc199f5.rmeta: src/lib.rs src/cli.rs

src/lib.rs:
src/cli.rs:
