/root/repo/target/debug/deps/coschedule_scenarios-2a42688e1c7f2e43.d: crates/core/tests/coschedule_scenarios.rs Cargo.toml

/root/repo/target/debug/deps/libcoschedule_scenarios-2a42688e1c7f2e43.rmeta: crates/core/tests/coschedule_scenarios.rs Cargo.toml

crates/core/tests/coschedule_scenarios.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
