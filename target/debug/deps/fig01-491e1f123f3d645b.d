/root/repo/target/debug/deps/fig01-491e1f123f3d645b.d: crates/bench/src/bin/fig01.rs

/root/repo/target/debug/deps/fig01-491e1f123f3d645b: crates/bench/src/bin/fig01.rs

crates/bench/src/bin/fig01.rs:
