/root/repo/target/debug/deps/pmemflow_sched-bd7004278b5bbd4a.d: crates/sched/src/lib.rs crates/sched/src/adaptive.rs crates/sched/src/characterize.rs crates/sched/src/crossover.rs crates/sched/src/model_driven.rs crates/sched/src/planner.rs crates/sched/src/profile.rs crates/sched/src/rules.rs crates/sched/src/table2.rs

/root/repo/target/debug/deps/libpmemflow_sched-bd7004278b5bbd4a.rmeta: crates/sched/src/lib.rs crates/sched/src/adaptive.rs crates/sched/src/characterize.rs crates/sched/src/crossover.rs crates/sched/src/model_driven.rs crates/sched/src/planner.rs crates/sched/src/profile.rs crates/sched/src/rules.rs crates/sched/src/table2.rs

crates/sched/src/lib.rs:
crates/sched/src/adaptive.rs:
crates/sched/src/characterize.rs:
crates/sched/src/crossover.rs:
crates/sched/src/model_driven.rs:
crates/sched/src/planner.rs:
crates/sched/src/profile.rs:
crates/sched/src/rules.rs:
crates/sched/src/table2.rs:
