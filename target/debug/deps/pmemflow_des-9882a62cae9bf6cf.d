/root/repo/target/debug/deps/pmemflow_des-9882a62cae9bf6cf.d: crates/des/src/lib.rs crates/des/src/engine.rs crates/des/src/flow.rs crates/des/src/process.rs crates/des/src/rng.rs crates/des/src/stats.rs crates/des/src/time.rs crates/des/src/trace.rs

/root/repo/target/debug/deps/libpmemflow_des-9882a62cae9bf6cf.rmeta: crates/des/src/lib.rs crates/des/src/engine.rs crates/des/src/flow.rs crates/des/src/process.rs crates/des/src/rng.rs crates/des/src/stats.rs crates/des/src/time.rs crates/des/src/trace.rs

crates/des/src/lib.rs:
crates/des/src/engine.rs:
crates/des/src/flow.rs:
crates/des/src/process.rs:
crates/des/src/rng.rs:
crates/des/src/stats.rs:
crates/des/src/time.rs:
crates/des/src/trace.rs:
