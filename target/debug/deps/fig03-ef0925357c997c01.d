/root/repo/target/debug/deps/fig03-ef0925357c997c01.d: crates/bench/src/bin/fig03.rs

/root/repo/target/debug/deps/fig03-ef0925357c997c01: crates/bench/src/bin/fig03.rs

crates/bench/src/bin/fig03.rs:
