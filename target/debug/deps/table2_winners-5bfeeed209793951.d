/root/repo/target/debug/deps/table2_winners-5bfeeed209793951.d: tests/table2_winners.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_winners-5bfeeed209793951.rmeta: tests/table2_winners.rs Cargo.toml

tests/table2_winners.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
