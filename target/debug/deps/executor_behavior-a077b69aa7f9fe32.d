/root/repo/target/debug/deps/executor_behavior-a077b69aa7f9fe32.d: crates/core/tests/executor_behavior.rs

/root/repo/target/debug/deps/libexecutor_behavior-a077b69aa7f9fe32.rmeta: crates/core/tests/executor_behavior.rs

crates/core/tests/executor_behavior.rs:
