/root/repo/target/debug/deps/determinism-a8e02906ef296441.d: tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-a8e02906ef296441.rmeta: tests/determinism.rs Cargo.toml

tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
