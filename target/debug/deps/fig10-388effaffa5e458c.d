/root/repo/target/debug/deps/fig10-388effaffa5e458c.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-388effaffa5e458c: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
