/root/repo/target/debug/deps/gen2-66b37951f4c0db89.d: crates/bench/src/bin/gen2.rs

/root/repo/target/debug/deps/gen2-66b37951f4c0db89: crates/bench/src/bin/gen2.rs

crates/bench/src/bin/gen2.rs:
