/root/repo/target/debug/deps/allocator_contract-c2ebeed25e0f8e59.d: crates/des/tests/allocator_contract.rs Cargo.toml

/root/repo/target/debug/deps/liballocator_contract-c2ebeed25e0f8e59.rmeta: crates/des/tests/allocator_contract.rs Cargo.toml

crates/des/tests/allocator_contract.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
