/root/repo/target/debug/deps/spec_properties-ebe706f3c64f50d5.d: crates/workloads/tests/spec_properties.rs

/root/repo/target/debug/deps/libspec_properties-ebe706f3c64f50d5.rmeta: crates/workloads/tests/spec_properties.rs

crates/workloads/tests/spec_properties.rs:
