/root/repo/target/debug/deps/devicebench-dad1d86f353df49b.d: crates/bench/src/bin/devicebench.rs

/root/repo/target/debug/deps/libdevicebench-dad1d86f353df49b.rmeta: crates/bench/src/bin/devicebench.rs

crates/bench/src/bin/devicebench.rs:
