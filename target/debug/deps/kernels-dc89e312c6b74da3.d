/root/repo/target/debug/deps/kernels-dc89e312c6b74da3.d: crates/bench/benches/kernels.rs

/root/repo/target/debug/deps/libkernels-dc89e312c6b74da3.rmeta: crates/bench/benches/kernels.rs

crates/bench/benches/kernels.rs:
