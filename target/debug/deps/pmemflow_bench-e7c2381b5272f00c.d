/root/repo/target/debug/deps/pmemflow_bench-e7c2381b5272f00c.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libpmemflow_bench-e7c2381b5272f00c.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
