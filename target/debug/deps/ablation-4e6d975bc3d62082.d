/root/repo/target/debug/deps/ablation-4e6d975bc3d62082.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-4e6d975bc3d62082: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
