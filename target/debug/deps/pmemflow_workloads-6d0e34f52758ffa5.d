/root/repo/target/debug/deps/pmemflow_workloads-6d0e34f52758ffa5.d: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/import.rs crates/workloads/src/kernels.rs crates/workloads/src/spec.rs crates/workloads/src/suite.rs Cargo.toml

/root/repo/target/debug/deps/libpmemflow_workloads-6d0e34f52758ffa5.rmeta: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/import.rs crates/workloads/src/kernels.rs crates/workloads/src/spec.rs crates/workloads/src/suite.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/apps.rs:
crates/workloads/src/import.rs:
crates/workloads/src/kernels.rs:
crates/workloads/src/spec.rs:
crates/workloads/src/suite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
