/root/repo/target/debug/deps/tune-877c665a00db0ec0.d: crates/bench/src/bin/tune.rs

/root/repo/target/debug/deps/libtune-877c665a00db0ec0.rmeta: crates/bench/src/bin/tune.rs

crates/bench/src/bin/tune.rs:
