/root/repo/target/debug/deps/executor_behavior-89f8e5c2119b8a1b.d: crates/core/tests/executor_behavior.rs

/root/repo/target/debug/deps/executor_behavior-89f8e5c2119b8a1b: crates/core/tests/executor_behavior.rs

crates/core/tests/executor_behavior.rs:
