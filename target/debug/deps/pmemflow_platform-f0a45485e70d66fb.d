/root/repo/target/debug/deps/pmemflow_platform-f0a45485e70d66fb.d: crates/platform/src/lib.rs crates/platform/src/pinning.rs crates/platform/src/topology.rs

/root/repo/target/debug/deps/libpmemflow_platform-f0a45485e70d66fb.rmeta: crates/platform/src/lib.rs crates/platform/src/pinning.rs crates/platform/src/topology.rs

crates/platform/src/lib.rs:
crates/platform/src/pinning.rs:
crates/platform/src/topology.rs:
