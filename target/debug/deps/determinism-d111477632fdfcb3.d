/root/repo/target/debug/deps/determinism-d111477632fdfcb3.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-d111477632fdfcb3: tests/determinism.rs

tests/determinism.rs:
