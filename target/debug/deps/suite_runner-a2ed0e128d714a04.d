/root/repo/target/debug/deps/suite_runner-a2ed0e128d714a04.d: tests/suite_runner.rs Cargo.toml

/root/repo/target/debug/deps/libsuite_runner-a2ed0e128d714a04.rmeta: tests/suite_runner.rs Cargo.toml

tests/suite_runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
