/root/repo/target/debug/deps/table2-43bd7b62f3ed609f.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-43bd7b62f3ed609f: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
