/root/repo/target/debug/deps/pmemflow_bench-918ce9a6c9390584.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/pmemflow_bench-918ce9a6c9390584: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
