/root/repo/target/debug/deps/pmemflow_iostack-a7e1848fdf8d01d6.d: crates/iostack/src/lib.rs crates/iostack/src/codec.rs crates/iostack/src/cost.rs crates/iostack/src/hash.rs crates/iostack/src/nova.rs crates/iostack/src/nvstream.rs crates/iostack/src/store.rs

/root/repo/target/debug/deps/libpmemflow_iostack-a7e1848fdf8d01d6.rlib: crates/iostack/src/lib.rs crates/iostack/src/codec.rs crates/iostack/src/cost.rs crates/iostack/src/hash.rs crates/iostack/src/nova.rs crates/iostack/src/nvstream.rs crates/iostack/src/store.rs

/root/repo/target/debug/deps/libpmemflow_iostack-a7e1848fdf8d01d6.rmeta: crates/iostack/src/lib.rs crates/iostack/src/codec.rs crates/iostack/src/cost.rs crates/iostack/src/hash.rs crates/iostack/src/nova.rs crates/iostack/src/nvstream.rs crates/iostack/src/store.rs

crates/iostack/src/lib.rs:
crates/iostack/src/codec.rs:
crates/iostack/src/cost.rs:
crates/iostack/src/hash.rs:
crates/iostack/src/nova.rs:
crates/iostack/src/nvstream.rs:
crates/iostack/src/store.rs:
