/root/repo/target/debug/deps/end_to_end-9a7afad2056e0f74.d: tests/end_to_end.rs

/root/repo/target/debug/deps/libend_to_end-9a7afad2056e0f74.rmeta: tests/end_to_end.rs

tests/end_to_end.rs:
