/root/repo/target/debug/deps/properties-1f674fea38920407.d: crates/pmem/tests/properties.rs

/root/repo/target/debug/deps/libproperties-1f674fea38920407.rmeta: crates/pmem/tests/properties.rs

crates/pmem/tests/properties.rs:
