/root/repo/target/debug/deps/devicebench-531cc93f5cfa7a32.d: crates/bench/src/bin/devicebench.rs Cargo.toml

/root/repo/target/debug/deps/libdevicebench-531cc93f5cfa7a32.rmeta: crates/bench/src/bin/devicebench.rs Cargo.toml

crates/bench/src/bin/devicebench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
