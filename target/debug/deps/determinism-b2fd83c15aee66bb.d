/root/repo/target/debug/deps/determinism-b2fd83c15aee66bb.d: tests/determinism.rs

/root/repo/target/debug/deps/libdeterminism-b2fd83c15aee66bb.rmeta: tests/determinism.rs

tests/determinism.rs:
