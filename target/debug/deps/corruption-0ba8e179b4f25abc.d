/root/repo/target/debug/deps/corruption-0ba8e179b4f25abc.d: crates/iostack/tests/corruption.rs

/root/repo/target/debug/deps/corruption-0ba8e179b4f25abc: crates/iostack/tests/corruption.rs

crates/iostack/tests/corruption.rs:
