/root/repo/target/debug/deps/pmemflow_platform-5cab87c6a9b0cd2e.d: crates/platform/src/lib.rs crates/platform/src/pinning.rs crates/platform/src/topology.rs

/root/repo/target/debug/deps/pmemflow_platform-5cab87c6a9b0cd2e: crates/platform/src/lib.rs crates/platform/src/pinning.rs crates/platform/src/topology.rs

crates/platform/src/lib.rs:
crates/platform/src/pinning.rs:
crates/platform/src/topology.rs:
