/root/repo/target/debug/deps/fig04-260c4a77e95f7b38.d: crates/bench/src/bin/fig04.rs

/root/repo/target/debug/deps/fig04-260c4a77e95f7b38: crates/bench/src/bin/fig04.rs

crates/bench/src/bin/fig04.rs:
