/root/repo/target/debug/deps/pmemflow-8eb4e07e7591b978.d: src/main.rs Cargo.toml

/root/repo/target/debug/deps/libpmemflow-8eb4e07e7591b978.rmeta: src/main.rs Cargo.toml

src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
