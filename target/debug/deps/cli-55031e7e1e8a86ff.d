/root/repo/target/debug/deps/cli-55031e7e1e8a86ff.d: tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-55031e7e1e8a86ff.rmeta: tests/cli.rs Cargo.toml

tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_pmemflow=placeholder:pmemflow
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
