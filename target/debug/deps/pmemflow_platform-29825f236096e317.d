/root/repo/target/debug/deps/pmemflow_platform-29825f236096e317.d: crates/platform/src/lib.rs crates/platform/src/pinning.rs crates/platform/src/topology.rs

/root/repo/target/debug/deps/libpmemflow_platform-29825f236096e317.rlib: crates/platform/src/lib.rs crates/platform/src/pinning.rs crates/platform/src/topology.rs

/root/repo/target/debug/deps/libpmemflow_platform-29825f236096e317.rmeta: crates/platform/src/lib.rs crates/platform/src/pinning.rs crates/platform/src/topology.rs

crates/platform/src/lib.rs:
crates/platform/src/pinning.rs:
crates/platform/src/topology.rs:
