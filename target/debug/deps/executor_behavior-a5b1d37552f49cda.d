/root/repo/target/debug/deps/executor_behavior-a5b1d37552f49cda.d: crates/core/tests/executor_behavior.rs Cargo.toml

/root/repo/target/debug/deps/libexecutor_behavior-a5b1d37552f49cda.rmeta: crates/core/tests/executor_behavior.rs Cargo.toml

crates/core/tests/executor_behavior.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
