/root/repo/target/debug/deps/fig02-1ffeaadf40f9c56f.d: crates/bench/src/bin/fig02.rs

/root/repo/target/debug/deps/libfig02-1ffeaadf40f9c56f.rmeta: crates/bench/src/bin/fig02.rs

crates/bench/src/bin/fig02.rs:
