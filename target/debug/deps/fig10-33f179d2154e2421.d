/root/repo/target/debug/deps/fig10-33f179d2154e2421.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/libfig10-33f179d2154e2421.rmeta: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
