/root/repo/target/debug/deps/ablation-fc112f97e5fa95af.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-fc112f97e5fa95af.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
