/root/repo/target/debug/deps/fig02-90c26de5d1bc37a5.d: crates/bench/src/bin/fig02.rs Cargo.toml

/root/repo/target/debug/deps/libfig02-90c26de5d1bc37a5.rmeta: crates/bench/src/bin/fig02.rs Cargo.toml

crates/bench/src/bin/fig02.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
