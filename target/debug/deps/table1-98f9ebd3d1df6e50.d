/root/repo/target/debug/deps/table1-98f9ebd3d1df6e50.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/libtable1-98f9ebd3d1df6e50.rmeta: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
