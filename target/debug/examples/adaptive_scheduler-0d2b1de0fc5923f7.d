/root/repo/target/debug/examples/adaptive_scheduler-0d2b1de0fc5923f7.d: examples/adaptive_scheduler.rs

/root/repo/target/debug/examples/libadaptive_scheduler-0d2b1de0fc5923f7.rmeta: examples/adaptive_scheduler.rs

examples/adaptive_scheduler.rs:
