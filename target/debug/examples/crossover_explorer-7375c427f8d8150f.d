/root/repo/target/debug/examples/crossover_explorer-7375c427f8d8150f.d: examples/crossover_explorer.rs Cargo.toml

/root/repo/target/debug/examples/libcrossover_explorer-7375c427f8d8150f.rmeta: examples/crossover_explorer.rs Cargo.toml

examples/crossover_explorer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
