/root/repo/target/debug/examples/crash_recovery-f1f3f241c1333a5b.d: examples/crash_recovery.rs

/root/repo/target/debug/examples/crash_recovery-f1f3f241c1333a5b: examples/crash_recovery.rs

examples/crash_recovery.rs:
