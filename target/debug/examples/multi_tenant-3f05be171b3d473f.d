/root/repo/target/debug/examples/multi_tenant-3f05be171b3d473f.d: examples/multi_tenant.rs

/root/repo/target/debug/examples/multi_tenant-3f05be171b3d473f: examples/multi_tenant.rs

examples/multi_tenant.rs:
