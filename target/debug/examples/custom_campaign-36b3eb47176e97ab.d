/root/repo/target/debug/examples/custom_campaign-36b3eb47176e97ab.d: examples/custom_campaign.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_campaign-36b3eb47176e97ab.rmeta: examples/custom_campaign.rs Cargo.toml

examples/custom_campaign.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
