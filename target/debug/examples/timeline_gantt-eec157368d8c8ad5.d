/root/repo/target/debug/examples/timeline_gantt-eec157368d8c8ad5.d: examples/timeline_gantt.rs

/root/repo/target/debug/examples/libtimeline_gantt-eec157368d8c8ad5.rmeta: examples/timeline_gantt.rs

examples/timeline_gantt.rs:
