/root/repo/target/debug/examples/crossover_explorer-ee4d44e8fa6ae2e9.d: examples/crossover_explorer.rs

/root/repo/target/debug/examples/libcrossover_explorer-ee4d44e8fa6ae2e9.rmeta: examples/crossover_explorer.rs

examples/crossover_explorer.rs:
