/root/repo/target/debug/examples/adaptive_scheduler-1b0143cb9f2f34db.d: examples/adaptive_scheduler.rs Cargo.toml

/root/repo/target/debug/examples/libadaptive_scheduler-1b0143cb9f2f34db.rmeta: examples/adaptive_scheduler.rs Cargo.toml

examples/adaptive_scheduler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
