/root/repo/target/debug/examples/multi_tenant-cf39fe996240acdd.d: examples/multi_tenant.rs

/root/repo/target/debug/examples/libmulti_tenant-cf39fe996240acdd.rmeta: examples/multi_tenant.rs

examples/multi_tenant.rs:
