/root/repo/target/debug/examples/gtc_campaign-10976468c8487b04.d: examples/gtc_campaign.rs

/root/repo/target/debug/examples/libgtc_campaign-10976468c8487b04.rmeta: examples/gtc_campaign.rs

examples/gtc_campaign.rs:
