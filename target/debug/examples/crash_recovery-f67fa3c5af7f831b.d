/root/repo/target/debug/examples/crash_recovery-f67fa3c5af7f831b.d: examples/crash_recovery.rs

/root/repo/target/debug/examples/libcrash_recovery-f67fa3c5af7f831b.rmeta: examples/crash_recovery.rs

examples/crash_recovery.rs:
