/root/repo/target/debug/examples/timeline_gantt-4f3176546b2a7450.d: examples/timeline_gantt.rs Cargo.toml

/root/repo/target/debug/examples/libtimeline_gantt-4f3176546b2a7450.rmeta: examples/timeline_gantt.rs Cargo.toml

examples/timeline_gantt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
