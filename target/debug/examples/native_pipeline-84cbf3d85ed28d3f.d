/root/repo/target/debug/examples/native_pipeline-84cbf3d85ed28d3f.d: examples/native_pipeline.rs Cargo.toml

/root/repo/target/debug/examples/libnative_pipeline-84cbf3d85ed28d3f.rmeta: examples/native_pipeline.rs Cargo.toml

examples/native_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
