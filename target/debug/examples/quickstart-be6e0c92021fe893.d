/root/repo/target/debug/examples/quickstart-be6e0c92021fe893.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-be6e0c92021fe893: examples/quickstart.rs

examples/quickstart.rs:
