/root/repo/target/debug/examples/timeline_gantt-63e3f6af3d0a7e4d.d: examples/timeline_gantt.rs

/root/repo/target/debug/examples/timeline_gantt-63e3f6af3d0a7e4d: examples/timeline_gantt.rs

examples/timeline_gantt.rs:
