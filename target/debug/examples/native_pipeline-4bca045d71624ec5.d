/root/repo/target/debug/examples/native_pipeline-4bca045d71624ec5.d: examples/native_pipeline.rs

/root/repo/target/debug/examples/native_pipeline-4bca045d71624ec5: examples/native_pipeline.rs

examples/native_pipeline.rs:
