/root/repo/target/debug/examples/gtc_campaign-fb52eb7fbee1adef.d: examples/gtc_campaign.rs Cargo.toml

/root/repo/target/debug/examples/libgtc_campaign-fb52eb7fbee1adef.rmeta: examples/gtc_campaign.rs Cargo.toml

examples/gtc_campaign.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
