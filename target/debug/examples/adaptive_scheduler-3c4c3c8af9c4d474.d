/root/repo/target/debug/examples/adaptive_scheduler-3c4c3c8af9c4d474.d: examples/adaptive_scheduler.rs

/root/repo/target/debug/examples/adaptive_scheduler-3c4c3c8af9c4d474: examples/adaptive_scheduler.rs

examples/adaptive_scheduler.rs:
