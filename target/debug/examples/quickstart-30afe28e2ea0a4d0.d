/root/repo/target/debug/examples/quickstart-30afe28e2ea0a4d0.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-30afe28e2ea0a4d0.rmeta: examples/quickstart.rs

examples/quickstart.rs:
