/root/repo/target/debug/examples/custom_campaign-3d03741d50a171ac.d: examples/custom_campaign.rs

/root/repo/target/debug/examples/custom_campaign-3d03741d50a171ac: examples/custom_campaign.rs

examples/custom_campaign.rs:
