/root/repo/target/debug/examples/crossover_explorer-6cbd78cb27e62951.d: examples/crossover_explorer.rs

/root/repo/target/debug/examples/crossover_explorer-6cbd78cb27e62951: examples/crossover_explorer.rs

examples/crossover_explorer.rs:
