/root/repo/target/debug/examples/custom_campaign-09491965365bb6e8.d: examples/custom_campaign.rs

/root/repo/target/debug/examples/libcustom_campaign-09491965365bb6e8.rmeta: examples/custom_campaign.rs

examples/custom_campaign.rs:
