/root/repo/target/debug/examples/native_pipeline-0ff19611cd75578a.d: examples/native_pipeline.rs

/root/repo/target/debug/examples/libnative_pipeline-0ff19611cd75578a.rmeta: examples/native_pipeline.rs

examples/native_pipeline.rs:
