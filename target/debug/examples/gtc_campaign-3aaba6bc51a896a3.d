/root/repo/target/debug/examples/gtc_campaign-3aaba6bc51a896a3.d: examples/gtc_campaign.rs

/root/repo/target/debug/examples/gtc_campaign-3aaba6bc51a896a3: examples/gtc_campaign.rs

examples/gtc_campaign.rs:
