//! A GTC fusion-simulation campaign: pick the scheduling configuration
//! for an in situ analytics pipeline across concurrency levels.
//!
//! ```sh
//! cargo run --release --example gtc_campaign
//! ```
//!
//! Walks the scenario from the paper's §VI: the GTC particle-in-cell code
//! streams 229 MB checkpoint arrays to a coupled analytics kernel. As the
//! rank count grows from 8 to 24 the optimal configuration shifts from
//! parallel/local-read (overlap wins, bandwidth is plentiful) to
//! serial/local-write (the workflow becomes write-bandwidth-bound) — and
//! the scheduler must follow.

use pmemflow::sched::{characterize, classify, recommend, RuleThresholds};
use pmemflow::workloads::{gtc_matmul, gtc_readonly, kernels};
use pmemflow::{decide, ExecutionParams};

fn main() {
    let params = ExecutionParams::default();
    let thresholds = RuleThresholds::default();

    // The real PIC kernel behind the proxy: one step, for flavour.
    let mut particles: Vec<kernels::Particle> = (0..10_000)
        .map(|i| kernels::Particle {
            x: (i as f64 * 0.618_033_988) % 1.0,
            v: 0.0,
            w: 1.0,
        })
        .collect();
    let mut grid = vec![0.0; 256];
    let charge = kernels::pic_step(&mut particles, &mut grid, 0.01);
    println!("GTC proxy kernel: one PIC step over 10k particles, total charge {charge:.0}\n");

    println!("workflow              ranks  rule-based  model-driven  predicted_s  loss_if_worst");
    for ranks in [8usize, 16, 24] {
        for spec in [gtc_readonly(ranks), gtc_matmul(ranks)] {
            let profile = characterize(&spec, &params).expect("characterization runs");
            let rule = recommend(&profile, &thresholds);
            let oracle = decide(&spec, &params).expect("model sweep runs");
            println!(
                "{:<21} {:>5}  {:<10}  {:<12}  {:>10.1}  {:>11.0}%",
                spec.name,
                ranks,
                rule.config.label(),
                oracle.config.label(),
                oracle.predicted_runtime,
                oracle.misconfiguration_loss_percent,
            );
            if let Some(row) = classify(&profile) {
                println!(
                    "        └─ Table II row {} ({}) — paper: {}",
                    row.row,
                    row.config.label(),
                    row.illustrated_by
                );
            }
        }
    }

    println!(
        "\nThe crossover: overlap (parallel) pays while the simulation's\n\
         compute phase hides analytics I/O, but once 24 writers saturate\n\
         the write path, serializing and keeping writes local wins (§VI-A)."
    );
}
