//! Multi-tenant node sharing: what happens when two coupled workflows
//! land on the same PMEM.
//!
//! ```sh
//! cargo run --release --example multi_tenant
//! ```
//!
//! The paper motivates its study with the multi-tenancy of in situ
//! platforms (§II-A). This example co-schedules pairs of workflows on the
//! modeled node and quantifies the interference each tenant suffers —
//! showing that a bandwidth-bound tenant is a far worse neighbour than a
//! compute-bound one, which is exactly what a cluster-level scheduler
//! needs to anticipate.

use pmemflow::core::{execute_coscheduled, Tenant};
use pmemflow::workloads::{gtc_matmul, micro_64mb, miniamr_readonly};
use pmemflow::{ExecutionParams, SchedConfig};

fn main() {
    let params = ExecutionParams::default();
    let pairs: Vec<(&str, Vec<Tenant>)> = vec![
        (
            "bandwidth-bound + bandwidth-bound",
            vec![
                Tenant {
                    spec: micro_64mb(8),
                    config: SchedConfig::S_LOC_W,
                },
                Tenant {
                    spec: micro_64mb(8),
                    config: SchedConfig::S_LOC_W,
                },
            ],
        ),
        (
            "bandwidth-bound + compute-bound",
            vec![
                Tenant {
                    spec: micro_64mb(8),
                    config: SchedConfig::S_LOC_W,
                },
                Tenant {
                    spec: gtc_matmul(8),
                    config: SchedConfig::P_LOC_R,
                },
            ],
        ),
        (
            "compute-bound + small-object streaming",
            vec![
                Tenant {
                    spec: gtc_matmul(8),
                    config: SchedConfig::P_LOC_R,
                },
                Tenant {
                    spec: miniamr_readonly(8),
                    config: SchedConfig::P_LOC_R,
                },
            ],
        ),
    ];

    for (label, tenants) in pairs {
        let out = execute_coscheduled(&tenants, &params).expect("fits the node");
        println!("== {label} ==");
        for (t, (m, i)) in tenants
            .iter()
            .zip(out.tenants.iter().zip(out.interference.iter()))
        {
            println!(
                "  {:<22} {:>7.1}s coscheduled  ({:.2}x vs solo)",
                t.spec.name, m.total, i
            );
        }
        println!("  makespan {:.1}s\n", out.makespan);
    }

    println!(
        "Bandwidth-bound tenants multiply each other's runtimes; a\n\
         compute-bound neighbour costs almost nothing. Cluster schedulers\n\
         for PMEM nodes should mix workload classes, not stack the same one."
    );
}
