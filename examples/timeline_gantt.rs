//! Visualize rank timelines: why serial beats parallel (or vice versa).
//!
//! ```sh
//! cargo run --release --example timeline_gantt
//! ```
//!
//! Renders ASCII Gantt charts of every rank's compute (`#`), I/O (`=`) and
//! wait (`.`) phases for the same workload under serial and parallel
//! execution, plus the fraction of time the device saw overlapping I/O —
//! the mechanism behind the paper's execution-mode decision made visible.
//! Also writes Chrome trace JSON files for `chrome://tracing`/Perfetto.

use pmemflow::workloads::{gtc_matmul, micro_64mb};
use pmemflow::{execute, ExecutionParams, SchedConfig};

fn main() {
    let params = ExecutionParams {
        record_timeline: true,
        ..Default::default()
    };

    for (spec, why) in [
        (
            micro_64mb(8),
            "pure-I/O workload: parallel execution makes reader I/O collide\n\
             with writer I/O (rows full of '=' overlap), which is why the\n\
             paper schedules it serially",
        ),
        (
            gtc_matmul(8),
            "compute-heavy workflow: I/O slots into the '#' compute phases,\n\
             so parallel execution hides it almost entirely",
        ),
    ] {
        for config in [SchedConfig::S_LOC_W, SchedConfig::P_LOC_R] {
            let m = execute(&spec, config, &params).expect("run");
            let tl = m.timeline.as_ref().expect("timeline recorded");
            println!(
                "=== {} under {} — {:.1}s total ===",
                spec.name, config, m.total
            );
            println!("{}", tl.ascii_gantt(96));
            println!(
                "device saw ≥2 concurrent I/O flows {:.0}% of the run\n",
                tl.io_overlap_fraction(2) * 100.0
            );
            let path = format!(
                "target/trace-{}-{}.json",
                spec.name.replace([' ', '/'], "_"),
                config.label()
            );
            if std::fs::write(&path, tl.chrome_trace_json()).is_ok() {
                println!("chrome trace written to {path}\n");
            }
        }
        println!("--- {why}\n");
    }
}
