//! Find the exact crossover points the paper's figures sketch.
//!
//! ```sh
//! cargo run --release --example crossover_explorer
//! ```
//!
//! The paper samples three concurrency levels (8/16/24) and reports where
//! winners flip; with a model the flip points can be located exactly. This
//! example sweeps rank counts at fine grain for each workload family, and
//! sweeps object size for the microbenchmark, printing every crossover.

use pmemflow::sched::{sweep_axis, Axis};
use pmemflow::workloads::{gtc_readonly, micro_2kb, miniamr_readonly};
use pmemflow::ExecutionParams;

fn main() {
    let params = ExecutionParams::default();
    let ranks: Vec<u64> = (2..=26).step_by(2).collect();

    for (name, spec) in [
        ("GTC+ReadOnly", gtc_readonly(8)),
        ("miniAMR+ReadOnly", miniamr_readonly(8)),
        ("micro-2KB", micro_2kb(8)),
    ] {
        let r = sweep_axis(&spec, Axis::Ranks, &ranks, &params).expect("sweep runs");
        println!("— {name}: winner vs rank count —");
        for p in &r.points {
            println!(
                "  {:>3} ranks: {:<7} ({:.1}s, margin {:.2}x)",
                p.value,
                p.winner.label(),
                p.runtime,
                p.margin
            );
        }
        if r.crossovers.is_empty() {
            println!("  no crossover in range\n");
        } else {
            for x in &r.crossovers {
                println!(
                    "  >> flips {} -> {} between {} and {} ranks",
                    x.from.label(),
                    x.to.label(),
                    x.from_value,
                    x.to_value
                );
            }
            println!();
        }
    }

    // Object-size axis at fixed high concurrency (Fig. 4 vs Fig. 5).
    let sizes: Vec<u64> = (11..=26).map(|p| 1u64 << p).collect(); // 2 KB .. 64 MB
    let r = sweep_axis(&micro_2kb(24), Axis::ObjectBytes, &sizes, &params).expect("sweep");
    println!("— micro @24 ranks: winner vs object size —");
    for x in &r.crossovers {
        println!(
            "  >> flips {} -> {} between {} and {} byte objects",
            x.from.label(),
            x.to.label(),
            x.from_value,
            x.to_value
        );
    }
    println!(
        "\nThe paper's Table II rows are exactly these regions; the model\n\
         places their boundaries."
    );
}
