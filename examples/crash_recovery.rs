//! Crash-consistency of the streaming channel.
//!
//! ```sh
//! cargo run --release --example crash_recovery
//! ```
//!
//! The paper's workflows assume the PMEM channel is a reliable versioned
//! store. This example exercises that assumption: it cuts power (drops all
//! volatile state) at every interesting point of both stacks' commit
//! protocols and shows that recovery always yields a consistent prefix of
//! the published versions — committed data intact, in-flight data cleanly
//! absent.

use pmemflow::iostack::{CrashPoint, NovaFs, NvStore, ObjectStore};
use pmemflow::pmem::{InterleaveGeometry, PmemRegion};

fn region() -> PmemRegion {
    PmemRegion::new(
        4 << 20,
        InterleaveGeometry {
            dimms: 6,
            chunk_bytes: 4096,
        },
    )
}

fn crash_label(c: CrashPoint) -> &'static str {
    match c {
        CrashPoint::AfterDataWrite => "after payload stores (no fence)",
        CrashPoint::AfterDataPersist => "after payload fence, before metadata",
        CrashPoint::AfterLogRecord => "after log record, before commit",
        CrashPoint::None => "no crash",
    }
}

fn main() {
    let snapshot = vec![0x42u8; 100_000];

    println!("— NVStream-like store —");
    for crash in [
        CrashPoint::AfterDataWrite,
        CrashPoint::AfterDataPersist,
        CrashPoint::AfterLogRecord,
    ] {
        let mut store = NvStore::format(region()).unwrap();
        store.put("sim/rank0", 1, &snapshot).unwrap();
        store
            .put_with_crash("sim/rank0", 2, &snapshot, crash)
            .unwrap();
        let mut r = store.into_region();
        let lost = r.crash();
        let mut recovered = NvStore::recover(r).expect("store is consistent");
        let versions = recovered.versions("sim/rank0");
        let v1 = recovered.get("sim/rank0", 1).unwrap();
        println!(
            "  power cut {} ({lost} volatile bytes lost): recovered versions {versions:?}, v1 intact: {}",
            crash_label(crash),
            v1 == snapshot
        );
        assert_eq!(versions, vec![1]);
    }

    println!("— NOVA-like filesystem —");
    for crash in [
        CrashPoint::AfterDataWrite,
        CrashPoint::AfterDataPersist,
        CrashPoint::AfterLogRecord,
    ] {
        let mut fs = NovaFs::format(region(), 16, 64 * 1024).unwrap();
        fs.put("sim/rank0", 1, &snapshot).unwrap();
        fs.put_with_crash("sim/rank0", 2, &snapshot, crash).unwrap();
        let mut r = fs.into_region();
        let lost = r.crash();
        let mut recovered = NovaFs::recover(r).expect("filesystem is consistent");
        let versions = recovered.versions("sim/rank0");
        let v1 = recovered.get("sim/rank0", 1).unwrap();
        println!(
            "  power cut {} ({lost} volatile bytes lost): recovered versions {versions:?}, v1 intact: {}",
            crash_label(crash),
            v1 == snapshot
        );
        assert_eq!(versions, vec![1]);
    }

    println!(
        "\nEvery crash point left the committed prefix readable and the\n\
         in-flight version invisible — the durability contract the paper's\n\
         streaming I/O channel relies on."
    );
}
