//! Bring-your-own workflow: import a workflow table, characterize, plan,
//! and schedule each entry.
//!
//! ```sh
//! cargo run --release --example custom_campaign
//! ```
//!
//! Demonstrates the full downstream-user path: describe workflows in the
//! plain-text table format (e.g. generated from job scripts or traces),
//! then let the library pick concurrency and configuration per workflow.

use pmemflow::sched::{plan, recommend, RuleThresholds};
use pmemflow::workloads::parse_workflows;
use pmemflow::{characterize, decide, ExecutionParams};

const CAMPAIGN: &str = "\
# name, ranks, iterations, writer_compute_s, reader_compute_s, objects, object_bytes
cfd-vis,        16, 10, 0.9,  0.05, 32,     8388608   # large slices, light viz
particle-feed,   8, 10, 0.05, 0.4,  120000, 4096      # small records, ML featurizer
checkpoint-scan, 24, 10, 0.0,  0.0,  8,      134217728 # pure streaming copy
";

fn main() {
    let params = ExecutionParams::default();
    let specs = parse_workflows(CAMPAIGN).expect("table parses");

    println!(
        "{:<16} {:>5}  {:<8} {:<8}  {:>9}  {:>12}",
        "workflow", "ranks", "rules", "oracle", "runtime_s", "plan(24s)"
    );
    for spec in &specs {
        let profile = characterize(spec, &params).expect("characterizes");
        let rule = recommend(&profile, &RuleThresholds::default());
        let oracle = decide(spec, &params).expect("decides");
        let p = plan(spec, &[8, 16, 24], 24.0, &params).expect("plans");
        let chosen = p
            .chosen
            .map(|pt| format!("{}r/{}", pt.ranks, pt.config.label()))
            .unwrap_or_else(|| "infeasible".into());
        println!(
            "{:<16} {:>5}  {:<8} {:<8}  {:>9.1}  {:>12}",
            spec.name,
            spec.ranks,
            rule.config.label(),
            oracle.config.label(),
            oracle.predicted_runtime,
            chosen,
        );
    }

    println!(
        "\nEach workflow got an individual decision from its measured profile —\n\
         the paper's point: classes, not defaults, drive PMEM scheduling."
    );
}
