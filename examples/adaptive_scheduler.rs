//! Online scheduling without a model: explore-then-commit.
//!
//! ```sh
//! cargo run --release --example adaptive_scheduler
//! ```
//!
//! The paper's future work asks how its recommendations can be
//! incorporated into scheduling systems (§X). One answer needs no model at
//! all: HPC workflows iterate, so a scheduler can spend the first
//! iterations probing each of the four configurations and commit to the
//! measured best. This example quantifies the regret of learning online
//! versus an oracle, across the full 18-workload suite.

use pmemflow::workloads::paper_suite;
use pmemflow::{explore_then_commit, ExecutionParams};

fn main() {
    let params = ExecutionParams::default();

    println!("workload                    ranks  committed  oracle_s  total_s  regret");
    let mut worst_regret: f64 = 1.0;
    let mut matches = 0;
    let mut total = 0;
    for entry in paper_suite() {
        let out = explore_then_commit(&entry.spec, 1, &params).expect("probes run");
        let regret = out.regret_ratio();
        worst_regret = worst_regret.max(regret);
        total += 1;
        if out.committed.label() == entry.paper_winner {
            matches += 1;
        }
        println!(
            "{:<27} {:>5}  {:<9}  {:>8.1}  {:>7.1}  {:>5.2}x",
            entry.family.name(),
            entry.ranks,
            out.committed.label(),
            out.oracle_runtime,
            out.total_runtime,
            regret,
        );
    }
    println!(
        "\ncommitted config == paper winner on {matches}/{total} workloads; \
         worst regret {worst_regret:.2}x."
    );
    println!(
        "One probe iteration per configuration is enough to land near the\n\
         oracle on every workload — configuration differences are stable\n\
         across iterations, which is what makes online scheduling viable."
    );
}
