//! Native mode: real threads streaming real bytes through the functional
//! stores, shaped by the device model.
//!
//! ```sh
//! cargo run --release --example native_pipeline
//! ```
//!
//! Everything the DES predicts, executed for real at laptop scale: writer
//! threads `put` versioned objects into an NVStream-like (then NOVA-like)
//! store over the simulated PMEM region; reader threads `get` and verify
//! every byte. The shaper applies the same Optane bandwidth curves the
//! fluid model uses, so relative timings are meaningful while payload
//! integrity is checked end to end.

use pmemflow::core::native::{run_native, NativeParams};
use pmemflow::iostack::StackKind;
use pmemflow::workloads::{ComponentSpec, IoPattern, WorkflowSpec};
use pmemflow::SchedConfig;

fn tiny_workflow() -> WorkflowSpec {
    let io = IoPattern {
        objects_per_snapshot: 32,
        object_bytes: 16 * 1024,
    };
    WorkflowSpec {
        name: "native-demo".into(),
        writer: ComponentSpec {
            name: "sim".into(),
            compute_per_iteration: 0.0,
            io,
        },
        reader: ComponentSpec {
            name: "analytics".into(),
            compute_per_iteration: 0.0,
            io,
        },
        ranks: 4,
        iterations: 5,
    }
}

fn main() {
    let spec = tiny_workflow();
    for stack in [StackKind::NvStream, StackKind::Nova] {
        println!("— {} store —", stack.name());
        for config in SchedConfig::ALL {
            let params = NativeParams {
                stack,
                region_bytes: 64 << 20,
                time_scale: 2e-5,
                ..Default::default()
            };
            let rep = run_native(&spec, config, &params).expect("native run");
            assert_eq!(rep.verification_failures, 0, "payload corruption!");
            println!(
                "  {}: {:6.0} ms wall, {:.1} MiB written, {:.1} MiB read+verified",
                config,
                rep.wall.as_secs_f64() * 1e3,
                rep.bytes_written as f64 / (1 << 20) as f64,
                rep.bytes_verified as f64 / (1 << 20) as f64,
            );
        }
    }
    println!("\nEvery byte read back matched the writer's payload on both stacks.");
}
