//! Quickstart: run one workflow under all four scheduler configurations.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Reproduces the paper's headline observation on a single workload: the
//! choice of execution mode (serial/parallel) and PMEM placement
//! (local-write vs local-read) changes end-to-end runtime by tens of
//! percent, and the winner depends on the workload.

use pmemflow::core::report::panel_table;
use pmemflow::workloads::{micro_2kb, micro_64mb};
use pmemflow::{sweep, ExecutionParams};

fn main() {
    let params = ExecutionParams::default();

    for spec in [micro_64mb(24), micro_2kb(8)] {
        let result = sweep(&spec, &params).expect("workflow executes");
        println!("{}", panel_table(&result));
        println!(
            "misconfiguration cost: picking {} instead of {} costs {:.0}%\n",
            result.worst().config,
            result.best().config,
            result.worst_case_loss_percent()
        );
    }

    println!(
        "Note how the two workloads prefer opposite configurations — the\n\
         paper's central point: no single configuration is optimal (§VII)."
    );
}
