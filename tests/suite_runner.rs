//! Integration test of the parallel suite runner through the `pmemflow`
//! facade: fanning a sub-matrix over worker threads must produce JSONL
//! output byte-identical to a sequential run, except for wall-clock time.

use pmemflow::iostack::StackKind;
use pmemflow::workloads::{micro_2kb, micro_64mb};
use pmemflow::{run_matrix, ExecutionParams, RunRequest, SchedConfig};

/// A 16-run sub-matrix: 2 workloads x 4 configurations x 2 stacks.
fn sub_matrix() -> Vec<RunRequest> {
    let mut reqs = Vec::new();
    for stack in [StackKind::NvStream, StackKind::Nova] {
        for (name, spec) in [("micro-2KB", micro_2kb(4)), ("micro-64MB", micro_64mb(4))] {
            for config in SchedConfig::ALL {
                reqs.push(RunRequest {
                    workflow: name.to_string(),
                    ranks: 4,
                    stack,
                    config,
                    spec: spec.clone(),
                });
            }
        }
    }
    reqs
}

#[test]
fn parallel_jsonl_is_byte_identical_to_sequential() {
    let params = ExecutionParams::default();
    let sequential = run_matrix(sub_matrix(), &params, 1);
    let parallel = run_matrix(sub_matrix(), &params, 4);
    assert_eq!(sequential.len(), 16);
    assert_eq!(parallel.len(), 16);

    let lines = |outcomes: &[pmemflow::RunOutcome]| {
        outcomes
            .iter()
            .map(|o| o.deterministic_jsonl())
            .collect::<Vec<_>>()
            .join("\n")
    };
    // Byte-identical modulo the wall-clock field, which deterministic_jsonl
    // zeroes on both sides.
    assert_eq!(lines(&sequential), lines(&parallel));

    for (s, p) in sequential.iter().zip(parallel.iter()) {
        let (ms, mp) = (s.result.as_ref().unwrap(), p.result.as_ref().unwrap());
        assert_eq!(
            ms.total.to_bits(),
            mp.total.to_bits(),
            "{} {}",
            s.workflow,
            s.config
        );
        assert_eq!(ms.events, mp.events);
        assert_eq!(ms.max_heap_depth, mp.max_heap_depth);
    }
}

#[test]
fn jsonl_records_carry_the_documented_schema() {
    let params = ExecutionParams::default();
    let outcomes = run_matrix(sub_matrix()[..4].to_vec(), &params, 2);
    for o in &outcomes {
        let line = o.to_jsonl();
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(!line.contains('\n'));
        for key in [
            "\"workflow\":",
            "\"ranks\":",
            "\"stack\":",
            "\"config\":",
            "\"ok\":true",
            "\"total_s\":",
            "\"serial_split\":",
            "\"writer\":",
            "\"reader\":",
            "\"compute_s\":",
            "\"io_s\":",
            "\"wait_s\":",
            "\"channel_waits\":",
            "\"device\":",
            "\"events\":",
            "\"max_heap_depth\":",
            "\"wall_secs\":",
        ] {
            assert!(line.contains(key), "missing {key} in {line}");
        }
    }
}
