//! Property-based tests of the fluid engine and the Optane allocator:
//! conservation, monotonicity, and bounds that must hold for every
//! workload shape.

use pmemflow::des::{
    Action, Direction, FairShareAllocator, FlowAttrs, Locality, RateAllocator, ScriptProcess,
    SimDuration, Simulation,
};
use pmemflow::pmem::{DeviceProfile, OptaneAllocator};
use proptest::prelude::*;

fn attrs(dir: Direction, loc: Locality, access: u64, sw_tpb: f64) -> FlowAttrs {
    let p = DeviceProfile::optane_gen1();
    FlowAttrs {
        direction: dir,
        locality: loc,
        access_bytes: access,
        sw_time_per_byte: sw_tpb,
        peak_device_rate: p.single_thread_rate(dir, loc, access),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bytes in == bytes out: the resource report accounts exactly the
    /// bytes submitted, for arbitrary flow populations.
    #[test]
    fn engine_conserves_bytes(
        n_flows in 1usize..12,
        kb in 1u64..4096,
        compute_ms in 0u64..50,
    ) {
        let mut sim = Simulation::new();
        let r = sim.add_resource(Box::new(OptaneAllocator::new(DeviceProfile::optane_gen1())));
        let bytes = (kb * 1024) as f64;
        for i in 0..n_flows {
            let dir = if i % 2 == 0 { Direction::Write } else { Direction::Read };
            let loc = if i % 3 == 0 { Locality::Remote } else { Locality::Local };
            sim.spawn(Box::new(ScriptProcess::new(
                format!("p{i}"),
                vec![
                    Action::Compute(SimDuration::from_secs(compute_ms as f64 * 1e-3 * i as f64)),
                    Action::Io { resource: r, bytes, attrs: attrs(dir, loc, 4096, 1e-10) },
                ],
            )));
        }
        let rep = sim.run().unwrap();
        let total = rep.resources[0].total_bytes();
        let expect = bytes * n_flows as f64;
        prop_assert!((total - expect).abs() / expect < 1e-6,
            "accounted {total} vs submitted {expect}");
        // Per-process accounting too.
        for p in &rep.processes {
            prop_assert!((p.io_bytes - bytes).abs() / bytes < 1e-6);
        }
    }

    /// More capacity never slows anything down (fair-share model).
    #[test]
    fn more_capacity_is_never_slower(
        n_flows in 1usize..10,
        mb in 1u64..64,
        cap_gb in 1u64..10,
    ) {
        let run = |capacity: f64| {
            let mut sim = Simulation::new();
            let r = sim.add_resource(Box::new(FairShareAllocator::new(capacity)));
            for i in 0..n_flows {
                sim.spawn(Box::new(ScriptProcess::new(
                    format!("p{i}"),
                    vec![Action::Io {
                        resource: r,
                        bytes: (mb * 1024 * 1024) as f64,
                        attrs: attrs(Direction::Write, Locality::Local, 1 << 20, 0.0),
                    }],
                )));
            }
            sim.run().unwrap().end_time.seconds()
        };
        let slow = run(cap_gb as f64 * 1e9);
        let fast = run(cap_gb as f64 * 2e9);
        prop_assert!(fast <= slow * (1.0 + 1e-9), "fast {fast} > slow {slow}");
    }

    /// The Optane allocator's rates are always positive, never exceed the
    /// intrinsic rate, and the aggregate never exceeds the best class peak.
    #[test]
    fn allocator_rates_are_bounded(
        n_w in 0usize..24,
        n_r in 0usize..24,
        small in proptest::bool::ANY,
        sw_ns_per_kb in 0u64..4000,
    ) {
        prop_assume!(n_w + n_r > 0);
        let access = if small { 2048 } else { 64 << 20 };
        let sw_tpb = sw_ns_per_kb as f64 * 1e-9 / 1024.0;
        let mut flows = Vec::new();
        for _ in 0..n_w {
            flows.push(pmemflow::des::FlowView {
                attrs: attrs(Direction::Write, Locality::Remote, access, sw_tpb),
                remaining: 1e9,
            });
        }
        for _ in 0..n_r {
            flows.push(pmemflow::des::FlowView {
                attrs: attrs(Direction::Read, Locality::Local, access, sw_tpb),
                remaining: 1e9,
            });
        }
        let alloc = OptaneAllocator::new(DeviceProfile::optane_gen1());
        let rates = alloc.allocate(&flows);
        prop_assert_eq!(rates.len(), flows.len());
        let mut agg = 0.0;
        for (rate, flow) in rates.iter().zip(flows.iter()) {
            prop_assert!(*rate > 0.0);
            prop_assert!(*rate <= flow.attrs.intrinsic_rate() * (1.0 + 1e-9));
            agg += rate;
        }
        // Aggregate cannot beat the local read peak (the fastest class).
        prop_assert!(agg <= 39.4e9 * 1.01, "aggregate {agg}");
    }

    /// Engine determinism for arbitrary populations: two identical runs
    /// give bit-identical end times.
    #[test]
    fn engine_is_deterministic(
        n_flows in 1usize..8,
        kb in 1u64..2048,
    ) {
        let build = || {
            let mut sim = Simulation::new();
            let r = sim.add_resource(Box::new(OptaneAllocator::new(DeviceProfile::optane_gen1())));
            for i in 0..n_flows {
                sim.spawn(Box::new(ScriptProcess::new(
                    format!("p{i}"),
                    vec![Action::Io {
                        resource: r,
                        bytes: (kb * 1024) as f64 * (i + 1) as f64,
                        attrs: attrs(Direction::Write, Locality::Local, 4096, 1e-10),
                    }],
                )));
            }
            sim.run().unwrap().end_time.seconds()
        };
        prop_assert_eq!(build().to_bits(), build().to_bits());
    }
}
