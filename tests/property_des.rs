//! Randomized-but-deterministic tests of the fluid engine and the Optane
//! allocator: conservation, monotonicity, and bounds that must hold for
//! every workload shape. Each test sweeps a seeded sample of the input
//! space (fixed seed, so failures are exactly reproducible).

use pmemflow::des::rng::SplitMix64;
use pmemflow::des::{
    Action, Direction, FairShareAllocator, FlowAttrs, Locality, RateAllocator, ScriptProcess,
    SimDuration, Simulation,
};
use pmemflow::pmem::{DeviceProfile, OptaneAllocator};

fn attrs(dir: Direction, loc: Locality, access: u64, sw_tpb: f64) -> FlowAttrs {
    let p = DeviceProfile::optane_gen1();
    FlowAttrs {
        direction: dir,
        locality: loc,
        access_bytes: access,
        sw_time_per_byte: sw_tpb,
        peak_device_rate: p.single_thread_rate(dir, loc, access),
    }
}

/// Bytes in == bytes out: the resource report accounts exactly the bytes
/// submitted, for arbitrary flow populations.
#[test]
fn engine_conserves_bytes() {
    let mut rng = SplitMix64::new(0xde5_0001);
    for _case in 0..64 {
        let n_flows = rng.range_usize(1, 12);
        let kb = rng.range_u64(1, 4096);
        let compute_ms = rng.range_u64(0, 50);
        let mut sim = Simulation::new();
        let r = sim.add_resource(Box::new(OptaneAllocator::new(DeviceProfile::optane_gen1())));
        let bytes = (kb * 1024) as f64;
        for i in 0..n_flows {
            let dir = if i % 2 == 0 {
                Direction::Write
            } else {
                Direction::Read
            };
            let loc = if i % 3 == 0 {
                Locality::Remote
            } else {
                Locality::Local
            };
            sim.spawn(Box::new(ScriptProcess::new(
                format!("p{i}"),
                vec![
                    Action::Compute(SimDuration::from_secs(compute_ms as f64 * 1e-3 * i as f64)),
                    Action::Io {
                        resource: r,
                        bytes,
                        attrs: attrs(dir, loc, 4096, 1e-10),
                    },
                ],
            )));
        }
        let rep = sim.run().unwrap();
        let total = rep.resources[0].total_bytes();
        let expect = bytes * n_flows as f64;
        assert!(
            (total - expect).abs() / expect < 1e-6,
            "accounted {total} vs submitted {expect}"
        );
        // Per-process accounting too.
        for p in &rep.processes {
            assert!((p.io_bytes - bytes).abs() / bytes < 1e-6);
        }
    }
}

/// More capacity never slows anything down (fair-share model).
#[test]
fn more_capacity_is_never_slower() {
    let mut rng = SplitMix64::new(0xde5_0002);
    for _case in 0..64 {
        let n_flows = rng.range_usize(1, 10);
        let mb = rng.range_u64(1, 64);
        let cap_gb = rng.range_u64(1, 10);
        let run = |capacity: f64| {
            let mut sim = Simulation::new();
            let r = sim.add_resource(Box::new(FairShareAllocator::new(capacity)));
            for i in 0..n_flows {
                sim.spawn(Box::new(ScriptProcess::new(
                    format!("p{i}"),
                    vec![Action::Io {
                        resource: r,
                        bytes: (mb * 1024 * 1024) as f64,
                        attrs: attrs(Direction::Write, Locality::Local, 1 << 20, 0.0),
                    }],
                )));
            }
            sim.run().unwrap().end_time.seconds()
        };
        let slow = run(cap_gb as f64 * 1e9);
        let fast = run(cap_gb as f64 * 2e9);
        assert!(fast <= slow * (1.0 + 1e-9), "fast {fast} > slow {slow}");
    }
}

/// The Optane allocator's rates are always positive, never exceed the
/// intrinsic rate, and the aggregate never exceeds the best class peak.
#[test]
fn allocator_rates_are_bounded() {
    let mut rng = SplitMix64::new(0xde5_0003);
    let mut cases = 0;
    while cases < 64 {
        let n_w = rng.range_usize(0, 24);
        let n_r = rng.range_usize(0, 24);
        if n_w + n_r == 0 {
            continue;
        }
        cases += 1;
        let small = rng.next_bool();
        let sw_ns_per_kb = rng.range_u64(0, 4000);
        let access = if small { 2048 } else { 64 << 20 };
        let sw_tpb = sw_ns_per_kb as f64 * 1e-9 / 1024.0;
        let mut flows = Vec::new();
        for _ in 0..n_w {
            flows.push(pmemflow::des::FlowView {
                attrs: attrs(Direction::Write, Locality::Remote, access, sw_tpb),
                remaining: 1e9,
            });
        }
        for _ in 0..n_r {
            flows.push(pmemflow::des::FlowView {
                attrs: attrs(Direction::Read, Locality::Local, access, sw_tpb),
                remaining: 1e9,
            });
        }
        let alloc = OptaneAllocator::new(DeviceProfile::optane_gen1());
        let rates = alloc.allocate(&flows);
        assert_eq!(rates.len(), flows.len());
        let mut agg = 0.0;
        for (rate, flow) in rates.iter().zip(flows.iter()) {
            assert!(*rate > 0.0);
            assert!(*rate <= flow.attrs.intrinsic_rate() * (1.0 + 1e-9));
            agg += rate;
        }
        // Aggregate cannot beat the local read peak (the fastest class).
        assert!(agg <= 39.4e9 * 1.01, "aggregate {agg}");
    }
}

/// Engine determinism for arbitrary populations: two identical runs give
/// bit-identical end times.
#[test]
fn engine_is_deterministic() {
    let mut rng = SplitMix64::new(0xde5_0004);
    for _case in 0..64 {
        let n_flows = rng.range_usize(1, 8);
        let kb = rng.range_u64(1, 2048);
        let build = || {
            let mut sim = Simulation::new();
            let r = sim.add_resource(Box::new(OptaneAllocator::new(DeviceProfile::optane_gen1())));
            for i in 0..n_flows {
                sim.spawn(Box::new(ScriptProcess::new(
                    format!("p{i}"),
                    vec![Action::Io {
                        resource: r,
                        bytes: (kb * 1024) as f64 * (i + 1) as f64,
                        attrs: attrs(Direction::Write, Locality::Local, 4096, 1e-10),
                    }],
                )));
            }
            sim.run().unwrap().end_time.seconds()
        };
        assert_eq!(build().to_bits(), build().to_bits());
    }
}
