//! End-to-end integration: the full pipeline from workflow specification
//! through characterization, scheduling, simulated execution, and native
//! execution with data verification.

use pmemflow::core::native::{run_native, NativeParams};
use pmemflow::iostack::StackKind;
use pmemflow::sched::{characterize, recommend, RuleThresholds};
use pmemflow::workloads::{ComponentSpec, IoPattern, WorkflowSpec};
use pmemflow::{decide, execute, explore_then_commit, sweep, ExecutionParams, SchedConfig};

fn custom_workflow(
    ranks: usize,
    object_bytes: u64,
    objects: u64,
    cw: f64,
    cr: f64,
) -> WorkflowSpec {
    let io = IoPattern {
        objects_per_snapshot: objects,
        object_bytes,
    };
    WorkflowSpec {
        name: format!("custom-{object_bytes}x{objects}"),
        writer: ComponentSpec {
            name: "sim".into(),
            compute_per_iteration: cw,
            io,
        },
        reader: ComponentSpec {
            name: "ana".into(),
            compute_per_iteration: cr,
            io,
        },
        ranks,
        iterations: 6,
    }
}

#[test]
fn full_pipeline_for_a_custom_workflow() {
    let params = ExecutionParams::default();
    let spec = custom_workflow(12, 8 << 20, 16, 0.5, 0.2);

    // 1. Characterize.
    let profile = characterize(&spec, &params).unwrap();
    assert!(profile.sim_io_index > 0.0 && profile.sim_io_index <= 1.0);

    // 2. Rule-based recommendation gives a valid configuration.
    let rule = recommend(&profile, &RuleThresholds::default());
    assert!(SchedConfig::ALL.contains(&rule.config));
    assert!(!rule.reasons.is_empty());

    // 3. Model-driven decision agrees with the sweep.
    let oracle = decide(&spec, &params).unwrap();
    let sw = sweep(&spec, &params).unwrap();
    assert_eq!(oracle.config, sw.best().config);

    // 4. Rule-based choice is never catastrophically wrong: within the
    //    misconfiguration loss of the model sweep.
    let rule_norm = sw.normalized(rule.config);
    assert!(
        rule_norm <= sw.normalized(sw.worst().config),
        "rule-based pick can't exceed the worst config"
    );

    // 5. Adaptive scheduling converges and its accounting closes.
    let adaptive = explore_then_commit(&spec, 1, &params).unwrap();
    assert!(adaptive.regret_ratio() >= 1.0);
    assert!(adaptive.regret_ratio() < 2.5);
}

#[test]
fn simulated_and_native_agree_on_config_ordering_direction() {
    // A bandwidth-heavy workflow at 16 ranks: in the write-contended
    // regime the remote-write penalty dominates the (mild) remote-read
    // penalty, so local-write placement must win in both the simulated
    // and the native run. (At 1-2 ranks remote writes ride UPI at
    // near-local speed — the calibrated model and the paper agree
    // placement barely matters there.)
    //
    // Sizing: the shaper measures concurrency from real thread overlap,
    // and the placement signal only emerges once many writers are
    // observed in flight (below that, both configurations sit on the
    // same single-thread cap). So the shaped sleeps must dwarf the
    // per-op CPU work (payload generation + verification, expensive in
    // debug builds) or an oversubscribed host starves the overlap and
    // the measurement turns into scheduling noise. 256 KiB objects keep
    // CPU work in the low-millisecond range while `time_scale` 400
    // stretches every sleep to tens-to-hundreds of milliseconds —
    // overlap, and hence the contention signal, survives even a
    // single-core runner.
    let spec = custom_workflow(16, 256 << 10, 1, 0.0, 0.0);
    let params = ExecutionParams::default();
    let sim_locw = execute(&spec, SchedConfig::S_LOC_W, &params).unwrap();
    let sim_locr = execute(&spec, SchedConfig::S_LOC_R, &params).unwrap();
    let (sim_w_local, _) = sim_locw.serial_split();
    let (sim_w_remote, _) = sim_locr.serial_split();
    assert!(sim_w_remote > sim_w_local);

    let nparams = NativeParams {
        time_scale: 400.0,
        region_bytes: 16 << 20,
        ..Default::default()
    };
    let nat_locw = run_native(&spec, SchedConfig::S_LOC_W, &nparams).unwrap();
    let nat_locr = run_native(&spec, SchedConfig::S_LOC_R, &nparams).unwrap();
    assert_eq!(nat_locw.verification_failures, 0);
    assert_eq!(nat_locr.verification_failures, 0);
    // Same direction in the device-model time (free of debug-build store
    // overheads and scheduler noise): remote writes are slower.
    assert!(
        nat_locr.shaped > nat_locw.shaped,
        "shaped: LocR {:?} !> LocW {:?}",
        nat_locr.shaped,
        nat_locw.shaped
    );
}

#[test]
fn both_stacks_run_the_same_workflow() {
    let spec = custom_workflow(8, 4096, 512, 0.05, 0.05);
    for stack in [StackKind::NvStream, StackKind::Nova] {
        let params = ExecutionParams::default().with_stack(stack);
        let sw = sweep(&spec, &params).unwrap();
        assert!(sw.best().total > 0.0);
        // NOVA's heavier software path must never be faster end-to-end for
        // identical small-object workloads.
        if stack == StackKind::Nova {
            let nvs = sweep(&spec, &ExecutionParams::default()).unwrap();
            assert!(sw.best().total >= nvs.best().total);
        }
    }
}

#[test]
fn facade_reexports_work_together() {
    // The doc-level promise: everything needed for the quickstart is
    // reachable from the facade crate root.
    let result = pmemflow::sweep(
        &pmemflow::workloads::micro_64mb(8),
        &pmemflow::ExecutionParams::default(),
    )
    .unwrap();
    assert_eq!(result.runs.len(), 4);
}
