//! Calibration lock-in: the model must reproduce the paper's per-workload
//! optimal configuration (Table II + §VI) for a large majority of the
//! 18-workload suite, and every miss must be a near-tie, not a blowout.
//!
//! EXPERIMENTS.md records the per-panel comparison in full.

use pmemflow::{paper_suite, sweep, ExecutionParams, SchedConfig};

/// Minimum number of suite workloads whose modeled winner must equal the
/// paper's. Raised as calibration improves; never lowered.
const MIN_AGREEMENT: usize = 15;

/// When the model disagrees, the paper's winner must still be within this
/// factor of the modeled best — i.e. misses are ties, not contradictions.
const MISS_TOLERANCE: f64 = 1.15;

#[test]
fn table2_winners_are_reproduced() {
    let params = ExecutionParams::default();
    let mut agree = 0;
    let mut misses = Vec::new();
    for entry in paper_suite() {
        let sw = sweep(&entry.spec, &params).unwrap();
        let paper = SchedConfig::parse(entry.paper_winner).unwrap();
        if sw.best().config == paper {
            agree += 1;
        } else {
            let norm = sw.normalized(paper);
            misses.push(format!(
                "{} {}@{}: model {} vs paper {} (paper winner at {:.2}x)",
                entry.panel,
                entry.family.name(),
                entry.ranks,
                sw.best().config,
                entry.paper_winner,
                norm
            ));
            assert!(
                norm <= MISS_TOLERANCE,
                "paper winner {paper} is {norm:.2}x off the model best for {} — \
                 a contradiction, not a near-tie",
                entry.panel
            );
        }
    }
    assert!(
        agree >= MIN_AGREEMENT,
        "only {agree}/18 winners agree with Table II; misses:\n{}",
        misses.join("\n")
    );
}

/// The per-row spot checks the paper quotes explicitly.
#[test]
fn quoted_margins_hold_in_direction() {
    let params = ExecutionParams::default();

    // §VI-A: micro-64MB @24: S-LocW beats S-LocR clearly.
    let sw = sweep(&pmemflow::workloads::micro_64mb(24), &params).unwrap();
    assert!(sw.run(SchedConfig::S_LOC_R).total > 1.2 * sw.run(SchedConfig::S_LOC_W).total);

    // §VI-D: 2KB @8: parallel local-read beats serial local-read
    // (paper: 10-14% faster).
    let sw = sweep(&pmemflow::workloads::micro_2kb(8), &params).unwrap();
    assert!(
        sw.run(SchedConfig::P_LOC_R).total < sw.run(SchedConfig::S_LOC_R).total,
        "P-LocR {} !< S-LocR {}",
        sw.run(SchedConfig::P_LOC_R).total,
        sw.run(SchedConfig::S_LOC_R).total
    );

    // §VI-A: miniAMR+ReadOnly @24: S-LocW beats S-LocR (paper: 25%).
    let sw = sweep(&pmemflow::workloads::miniamr_readonly(24), &params).unwrap();
    assert!(sw.run(SchedConfig::S_LOC_W).total < sw.run(SchedConfig::S_LOC_R).total);
}
