//! End-to-end tests of the `pmemflow cluster` subcommand: argument
//! hardening, trace streams, and campaign JSONL determinism.

use std::process::Command;

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_pmemflow"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// A small contended campaign spec used by several tests.
const STREAM: &str = "poisson:rate=1,n=10,mix=micro-64mb";

#[test]
fn rejects_zero_nodes() {
    // Errors out before any simulation starts, so this stays fast.
    let (ok, _, stderr) = run(&["cluster", "--nodes", "0"]);
    assert!(!ok);
    assert!(
        stderr.contains("--nodes") && stderr.contains("positive node count"),
        "{stderr}"
    );
}

#[test]
fn rejects_zero_jobs() {
    let (ok, _, stderr) = run(&["cluster", "--jobs", "0"]);
    assert!(!ok);
    assert!(
        stderr.contains("--jobs") && stderr.contains("positive"),
        "{stderr}"
    );
}

#[test]
fn rejects_unknown_policy() {
    let (ok, _, stderr) = run(&["cluster", "--policy", "sjf"]);
    assert!(!ok);
    assert!(
        stderr.contains("unknown policy") && stderr.contains("fcfs"),
        "{stderr}"
    );
}

#[test]
fn rejects_malformed_arrivals() {
    for bad in ["uniform:rate=1,n=5", "poisson:rate=0,n=5", "poisson:rate=1"] {
        let (ok, _, stderr) = run(&["cluster", "--arrivals", bad]);
        assert!(!ok, "{bad} accepted");
        assert!(stderr.contains("--arrivals"), "{stderr}");
    }
}

#[test]
fn duplicate_seed_flag_last_wins() {
    let dir = std::env::temp_dir().join(format!("pmemflow-seed-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let once = dir.join("once.jsonl");
    let twice = dir.join("twice.jsonl");
    let (ok, _, stderr) = run(&[
        "cluster",
        "--nodes",
        "2",
        "--arrivals",
        STREAM,
        "--seed",
        "3",
        "--out",
        once.to_str().unwrap(),
    ]);
    assert!(ok, "{stderr}");
    // Same command with a decoy --seed first: the later flag must win,
    // reproducing the campaign above byte for byte.
    let (ok, _, stderr) = run(&[
        "cluster",
        "--nodes",
        "2",
        "--arrivals",
        STREAM,
        "--seed",
        "9999",
        "--seed",
        "3",
        "--out",
        twice.to_str().unwrap(),
    ]);
    assert!(ok, "{stderr}");
    let a = std::fs::read_to_string(&once).unwrap();
    let b = std::fs::read_to_string(&twice).unwrap();
    assert!(a.contains("\"seed\":3") && !a.contains("\"seed\":9999"));
    assert_eq!(a, b);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn campaign_jsonl_is_identical_across_jobs_counts() {
    let dir = std::env::temp_dir().join(format!("pmemflow-det-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut outputs = Vec::new();
    for jobs in ["1", "4"] {
        let path = dir.join(format!("j{jobs}.jsonl"));
        let (ok, stdout, stderr) = run(&[
            "cluster",
            "--nodes",
            "2",
            "--policy",
            "all",
            "--arrivals",
            STREAM,
            "--seed",
            "42",
            "--jobs",
            jobs,
            "--out",
            path.to_str().unwrap(),
        ]);
        assert!(ok, "{stdout}{stderr}");
        assert!(stdout.contains("interference"), "{stdout}");
        outputs.push(std::fs::read_to_string(&path).unwrap());
    }
    assert_eq!(outputs[0], outputs[1], "JSONL depends on --jobs");
    // 4 policies x (10 jobs + 1 summary) lines.
    assert_eq!(outputs[0].lines().count(), 44);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fault_campaign_jsonl_is_identical_across_jobs_counts() {
    let dir = std::env::temp_dir().join(format!("pmemflow-fault-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let fault_flags = [
        "--fault-seed",
        "77",
        "--mtbf",
        "40",
        "--repair",
        "10",
        "--degrade-mtbf",
        "60",
        "--degrade-duration",
        "15",
        "--job-fail-prob",
        "0.1",
        "--checkpoint-interval",
        "3",
        "--retry-budget",
        "4",
    ];
    let mut outputs = Vec::new();
    for jobs in ["1", "4"] {
        let path = dir.join(format!("f{jobs}.jsonl"));
        let mut args = vec![
            "cluster",
            "--nodes",
            "2",
            "--policy",
            "all",
            "--arrivals",
            STREAM,
            "--seed",
            "42",
            "--jobs",
            jobs,
            "--out",
        ];
        args.push(path.to_str().unwrap());
        args.extend_from_slice(&fault_flags);
        let (ok, stdout, stderr) = run(&args);
        assert!(ok, "{stdout}{stderr}");
        // The console table reports fault accounting columns.
        assert!(
            stdout.contains("restarts") && stdout.contains("lost_s"),
            "{stdout}"
        );
        outputs.push(std::fs::read_to_string(&path).unwrap());
    }
    assert_eq!(
        outputs[0], outputs[1],
        "fault campaign JSONL depends on --jobs"
    );
    // Every job line carries the fault-accounting fields, and every
    // submission is accounted as completed or failed.
    let text = &outputs[0];
    assert!(text.contains("\"outcome\":"), "{text}");
    assert!(text.contains("\"restarts\":"), "{text}");
    assert!(text.contains("\"lost_work_s\":"), "{text}");
    assert!(text.contains("\"ckpt_overhead_s\":"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fault_seed_changes_the_campaign() {
    let dir = std::env::temp_dir().join(format!("pmemflow-fseed-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut outputs = Vec::new();
    for fault_seed in ["7", "8"] {
        let path = dir.join(format!("s{fault_seed}.jsonl"));
        let (ok, stdout, stderr) = run(&[
            "cluster",
            "--nodes",
            "2",
            "--arrivals",
            STREAM,
            "--seed",
            "42",
            "--fault-seed",
            fault_seed,
            "--mtbf",
            "30",
            "--repair",
            "10",
            "--out",
            path.to_str().unwrap(),
        ]);
        assert!(ok, "{stdout}{stderr}");
        outputs.push(std::fs::read_to_string(&path).unwrap());
    }
    assert_ne!(
        outputs[0], outputs[1],
        "different --fault-seed must change the failure trace"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_stream_runs_the_listed_jobs() {
    let dir = std::env::temp_dir().join(format!("pmemflow-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("arrivals.trace");
    std::fs::write(
        &trace,
        "# three bursts\n0 micro-64mb 8\n0 micro-64mb 8\n5 micro-64mb 16\n",
    )
    .unwrap();
    let out = dir.join("trace.jsonl");
    let (ok, stdout, stderr) = run(&[
        "cluster",
        "--nodes",
        "2",
        "--arrivals",
        &format!("trace:{}", trace.display()),
        "--out",
        out.to_str().unwrap(),
    ]);
    assert!(ok, "{stdout}{stderr}");
    let text = std::fs::read_to_string(&out).unwrap();
    assert_eq!(text.lines().count(), 4); // 3 jobs + summary
    assert!(text.contains("\"ranks\":16"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cluster_help_is_listed() {
    let (ok, stdout, _) = run(&["help"]);
    assert!(ok);
    assert!(stdout.contains("cluster"));
    assert!(stdout.contains("--policy"));
    assert!(stdout.contains("interference"));
}
