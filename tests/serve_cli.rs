//! End-to-end test of `pmemflow serve`: boot the real binary on an
//! ephemeral port, exercise each endpoint class, drain it, and check the
//! exit status. This is the same sequence the CI `serve-smoke` step runs
//! against the release binary.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn request(addr: &str, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("daemon reachable");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    stream
        .write_all(
            format!(
                "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let status: u16 = raw
        .split(' ')
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Spawn the daemon and scrape its address from the first banner line.
/// The returned reader holds the stdout pipe open — dropping it would
/// EPIPE the daemon's next `println!`.
fn spawn_daemon() -> (Child, String, BufReader<std::process::ChildStdout>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_pmemflow"))
        .args(["serve", "--port", "0", "--workers", "2"])
        .stdout(Stdio::piped())
        .spawn()
        .expect("daemon spawns");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let mut first_line = String::new();
    reader
        .read_line(&mut first_line)
        .expect("daemon announces its address");
    let addr = first_line
        .trim()
        .strip_prefix("listening on http://")
        .unwrap_or_else(|| panic!("unexpected banner: {first_line:?}"))
        .to_string();
    (child, addr, reader)
}

#[test]
fn serve_smoke_boot_query_drain() {
    let (mut child, addr, _stdout) = spawn_daemon();

    let (status, body) = request(&addr, "GET", "/healthz", "");
    assert_eq!((status, body.as_str()), (200, "ok\n"));

    let (status, body) = request(
        &addr,
        "POST",
        "/v1/predict",
        r#"{"workload":"micro-2kb","ranks":8}"#,
    );
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"predicted_runtime_s\":"));

    let (status, body) = request(&addr, "POST", "/v1/predict", "{broken");
    assert_eq!(status, 400);
    assert!(body.contains("malformed JSON"));

    let (status, body) = request(&addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(body.contains("pmemflow_serve_requests_total{endpoint=\"/v1/predict\"} 2"));
    assert!(body.contains("pmemflow_serve_cache_misses_total 1"));

    let (status, _) = request(&addr, "POST", "/admin/shutdown", "");
    assert_eq!(status, 200);
    let exit = child.wait().expect("daemon exits after drain");
    assert!(exit.success(), "daemon exited with {exit}");
}
