//! Property-based tests of the I/O stacks against a reference model.
//!
//! Both stores must behave like an in-memory map from (stream, version) to
//! payload, under arbitrary operation sequences, and must preserve every
//! committed version across crash/recover cycles regardless of where the
//! in-flight operation was cut.

use pmemflow::iostack::{CrashPoint, NovaFs, NvStore, ObjectStore, StoreError};
use pmemflow::pmem::{InterleaveGeometry, PmemRegion};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn region(len: usize) -> PmemRegion {
    PmemRegion::new(
        len,
        InterleaveGeometry {
            dimms: 6,
            chunk_bytes: 4096,
        },
    )
}

#[derive(Debug, Clone)]
enum Op {
    Put { stream: u8, data: Vec<u8> },
    Get { stream: u8, version: u64 },
    CrashRecover,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4, proptest::collection::vec(any::<u8>(), 1..600))
            .prop_map(|(stream, data)| Op::Put { stream, data }),
        (0u8..4, 0u64..8).prop_map(|(stream, version)| Op::Get { stream, version }),
        Just(Op::CrashRecover),
    ]
}

/// Drive a store and the reference model through the same ops; every
/// observable must match.
fn check_against_reference<S, R>(ops: Vec<Op>, mut store: S, recover: R)
where
    S: ObjectStore,
    R: Fn(S) -> S,
{
    let mut reference: BTreeMap<(String, u64), Vec<u8>> = BTreeMap::new();
    let mut next_version: BTreeMap<String, u64> = BTreeMap::new();
    let mut current = Some(store);
    for op in ops {
        let s = current.as_mut().unwrap();
        match op {
            Op::Put { stream, data } => {
                let name = format!("s{stream}");
                let v = next_version.entry(name.clone()).or_insert(1);
                match s.put(&name, *v, &data) {
                    Ok(()) => {
                        reference.insert((name, *v), data);
                        *v += 1;
                    }
                    Err(StoreError::OutOfSpace) => { /* acceptable, state unchanged */ }
                    Err(e) => panic!("unexpected put error: {e}"),
                }
            }
            Op::Get { stream, version } => {
                let name = format!("s{stream}");
                let got = s.get(&name, version);
                match reference.get(&(name.clone(), version)) {
                    Some(want) => assert_eq!(got.as_deref().ok(), Some(want.as_slice())),
                    None => assert!(got.is_err(), "phantom version {name}:{version}"),
                }
            }
            Op::CrashRecover => {
                store = current.take().unwrap();
                store = recover(store);
                current = Some(store);
            }
        }
    }
    // Final audit: every committed version is readable and correct.
    let s = current.as_mut().unwrap();
    for ((name, v), want) in &reference {
        assert_eq!(&s.get(name, *v).unwrap(), want);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn nvstream_matches_reference_model(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        let store = NvStore::format(region(1 << 20)).unwrap();
        check_against_reference(ops, store, |s: NvStore| {
            let mut r = s.into_region();
            r.crash();
            NvStore::recover(r).expect("recovery must succeed")
        });
    }

    #[test]
    fn nova_matches_reference_model(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        let store = NovaFs::format(region(1 << 20), 8, 64 * 1024).unwrap();
        check_against_reference(ops, store, |s: NovaFs| {
            let mut r = s.into_region();
            r.crash();
            NovaFs::recover(r).expect("recovery must succeed")
        });
    }

    /// Crashing at any protocol point never corrupts the committed prefix
    /// and never exposes the in-flight version.
    #[test]
    fn nvstream_crash_points_preserve_prefix(
        committed in 1u64..6,
        data in proptest::collection::vec(any::<u8>(), 1..2000),
        crash_idx in 0usize..3,
    ) {
        let crash = [CrashPoint::AfterDataWrite, CrashPoint::AfterDataPersist, CrashPoint::AfterLogRecord][crash_idx];
        let mut s = NvStore::format(region(1 << 20)).unwrap();
        for v in 1..=committed {
            s.put("s", v, &data).unwrap();
        }
        s.put_with_crash("s", committed + 1, &data, crash).unwrap();
        let mut r = s.into_region();
        r.crash();
        let mut s2 = NvStore::recover(r).expect("consistent after crash");
        prop_assert_eq!(s2.versions("s"), (1..=committed).collect::<Vec<_>>());
        for v in 1..=committed {
            prop_assert_eq!(s2.get("s", v).unwrap(), data.clone());
        }
    }

    #[test]
    fn nova_crash_points_preserve_prefix(
        committed in 1u64..6,
        data in proptest::collection::vec(any::<u8>(), 1..2000),
        crash_idx in 0usize..3,
    ) {
        let crash = [CrashPoint::AfterDataWrite, CrashPoint::AfterDataPersist, CrashPoint::AfterLogRecord][crash_idx];
        let mut s = NovaFs::format(region(1 << 20), 8, 64 * 1024).unwrap();
        for v in 1..=committed {
            s.put("s", v, &data).unwrap();
        }
        s.put_with_crash("s", committed + 1, &data, crash).unwrap();
        let mut r = s.into_region();
        r.crash();
        let mut s2 = NovaFs::recover(r).expect("consistent after crash");
        prop_assert_eq!(s2.versions("s"), (1..=committed).collect::<Vec<_>>());
        for v in 1..=committed {
            prop_assert_eq!(s2.get("s", v).unwrap(), data.clone());
        }
    }
}
