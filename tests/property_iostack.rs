//! Randomized-but-deterministic tests of the I/O stacks against a
//! reference model.
//!
//! Both stores must behave like an in-memory map from (stream, version) to
//! payload, under arbitrary operation sequences, and must preserve every
//! committed version across crash/recover cycles regardless of where the
//! in-flight operation was cut. Operation sequences come from a seeded
//! generator, so every failure is exactly reproducible.

use pmemflow::des::rng::SplitMix64;
use pmemflow::iostack::{CrashPoint, NovaFs, NvStore, ObjectStore, StoreError};
use pmemflow::pmem::{InterleaveGeometry, PmemRegion};
use std::collections::BTreeMap;

fn region(len: usize) -> PmemRegion {
    PmemRegion::new(
        len,
        InterleaveGeometry {
            dimms: 6,
            chunk_bytes: 4096,
        },
    )
}

#[derive(Debug, Clone)]
enum Op {
    Put { stream: u8, data: Vec<u8> },
    Get { stream: u8, version: u64 },
    CrashRecover,
}

fn random_ops(rng: &mut SplitMix64) -> Vec<Op> {
    let n = rng.range_usize(1, 40);
    (0..n)
        .map(|_| match rng.range_u64(0, 3) {
            0 => {
                let len = rng.range_usize(1, 600);
                Op::Put {
                    stream: rng.range_u64(0, 4) as u8,
                    data: rng.bytes(len),
                }
            }
            1 => Op::Get {
                stream: rng.range_u64(0, 4) as u8,
                version: rng.range_u64(0, 8),
            },
            _ => Op::CrashRecover,
        })
        .collect()
}

/// Drive a store and the reference model through the same ops; every
/// observable must match.
fn check_against_reference<S, R>(ops: Vec<Op>, mut store: S, recover: R)
where
    S: ObjectStore,
    R: Fn(S) -> S,
{
    let mut reference: BTreeMap<(String, u64), Vec<u8>> = BTreeMap::new();
    let mut next_version: BTreeMap<String, u64> = BTreeMap::new();
    let mut current = Some(store);
    for op in ops {
        let s = current.as_mut().unwrap();
        match op {
            Op::Put { stream, data } => {
                let name = format!("s{stream}");
                let v = next_version.entry(name.clone()).or_insert(1);
                match s.put(&name, *v, &data) {
                    Ok(()) => {
                        reference.insert((name, *v), data);
                        *v += 1;
                    }
                    Err(StoreError::OutOfSpace) => { /* acceptable, state unchanged */ }
                    Err(e) => panic!("unexpected put error: {e}"),
                }
            }
            Op::Get { stream, version } => {
                let name = format!("s{stream}");
                let got = s.get(&name, version);
                match reference.get(&(name.clone(), version)) {
                    Some(want) => assert_eq!(got.as_deref().ok(), Some(want.as_slice())),
                    None => assert!(got.is_err(), "phantom version {name}:{version}"),
                }
            }
            Op::CrashRecover => {
                store = current.take().unwrap();
                store = recover(store);
                current = Some(store);
            }
        }
    }
    // Final audit: every committed version is readable and correct.
    let s = current.as_mut().unwrap();
    for ((name, v), want) in &reference {
        assert_eq!(&s.get(name, *v).unwrap(), want);
    }
}

#[test]
fn nvstream_matches_reference_model() {
    let mut rng = SplitMix64::new(0x105_0001);
    for _case in 0..48 {
        let ops = random_ops(&mut rng);
        let store = NvStore::format(region(1 << 20)).unwrap();
        check_against_reference(ops, store, |s: NvStore| {
            let mut r = s.into_region();
            r.crash();
            NvStore::recover(r).expect("recovery must succeed")
        });
    }
}

#[test]
fn nova_matches_reference_model() {
    let mut rng = SplitMix64::new(0x105_0002);
    for _case in 0..48 {
        let ops = random_ops(&mut rng);
        let store = NovaFs::format(region(1 << 20), 8, 64 * 1024).unwrap();
        check_against_reference(ops, store, |s: NovaFs| {
            let mut r = s.into_region();
            r.crash();
            NovaFs::recover(r).expect("recovery must succeed")
        });
    }
}

/// Crashing at any protocol point never corrupts the committed prefix and
/// never exposes the in-flight version.
#[test]
fn nvstream_crash_points_preserve_prefix() {
    let mut rng = SplitMix64::new(0x105_0003);
    for _case in 0..48 {
        let committed = rng.range_u64(1, 6);
        let len = rng.range_usize(1, 2000);
        let data = rng.bytes(len);
        let crash = [
            CrashPoint::AfterDataWrite,
            CrashPoint::AfterDataPersist,
            CrashPoint::AfterLogRecord,
        ][rng.range_usize(0, 3)];
        let mut s = NvStore::format(region(1 << 20)).unwrap();
        for v in 1..=committed {
            s.put("s", v, &data).unwrap();
        }
        s.put_with_crash("s", committed + 1, &data, crash).unwrap();
        let mut r = s.into_region();
        r.crash();
        let mut s2 = NvStore::recover(r).expect("consistent after crash");
        assert_eq!(s2.versions("s"), (1..=committed).collect::<Vec<_>>());
        for v in 1..=committed {
            assert_eq!(s2.get("s", v).unwrap(), data.clone());
        }
    }
}

#[test]
fn nova_crash_points_preserve_prefix() {
    let mut rng = SplitMix64::new(0x105_0004);
    for _case in 0..48 {
        let committed = rng.range_u64(1, 6);
        let len = rng.range_usize(1, 2000);
        let data = rng.bytes(len);
        let crash = [
            CrashPoint::AfterDataWrite,
            CrashPoint::AfterDataPersist,
            CrashPoint::AfterLogRecord,
        ][rng.range_usize(0, 3)];
        let mut s = NovaFs::format(region(1 << 20), 8, 64 * 1024).unwrap();
        for v in 1..=committed {
            s.put("s", v, &data).unwrap();
        }
        s.put_with_crash("s", committed + 1, &data, crash).unwrap();
        let mut r = s.into_region();
        r.crash();
        let mut s2 = NovaFs::recover(r).expect("consistent after crash");
        assert_eq!(s2.versions("s"), (1..=committed).collect::<Vec<_>>());
        for v in 1..=committed {
            assert_eq!(s2.get("s", v).unwrap(), data.clone());
        }
    }
}
