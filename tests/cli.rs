//! End-to-end tests of the `pmemflow` command-line binary.

use std::process::Command;

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_pmemflow"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn help_lists_commands() {
    let (ok, stdout, _) = run(&["help"]);
    assert!(ok);
    for cmd in [
        "sweep",
        "characterize",
        "recommend",
        "plan",
        "suite",
        "devicebench",
    ] {
        assert!(stdout.contains(cmd), "help missing {cmd}");
    }
}

#[test]
fn sweep_prints_four_configs() {
    let (ok, stdout, _) = run(&["sweep", "--workload", "micro-64mb", "--ranks", "8"]);
    assert!(ok, "{stdout}");
    for c in ["S-LocW", "S-LocR", "P-LocW", "P-LocR"] {
        assert!(stdout.contains(c));
    }
    assert!(stdout.contains("best"));
}

#[test]
fn recommend_cites_rules_and_oracle() {
    let (ok, stdout, _) = run(&["recommend", "--workload", "gtc-readonly", "--ranks", "16"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("rule-based:"));
    assert!(stdout.contains("model-driven:"));
    assert!(stdout.contains("§VIII"));
}

#[test]
fn characterize_reports_profile() {
    let (ok, stdout, _) = run(&[
        "characterize",
        "--workload",
        "miniamr-readonly",
        "--ranks",
        "8",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("I/O index"));
    assert!(stdout.contains("write saturation"));
}

#[test]
fn plan_reports_frontier() {
    let (ok, stdout, _) = run(&[
        "plan",
        "--workload",
        "micro-2kb",
        "--deadline",
        "100",
        "--candidates",
        "8,16",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("core_seconds"));
    assert!(stdout.contains("chosen:"));
}

#[test]
fn devicebench_prints_headlines() {
    let (ok, stdout, _) = run(&["devicebench"]);
    assert!(ok);
    assert!(stdout.contains("90"));
    assert!(stdout.contains("169"));
}

#[test]
fn gantt_renders() {
    let (ok, stdout, _) = run(&[
        "gantt",
        "--workload",
        "micro-64mb",
        "--ranks",
        "4",
        "--config",
        "S-LocW",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("legend"));
}

#[test]
fn suite_rejects_zero_jobs() {
    // Errors out before any simulation starts, so this stays fast.
    let (ok, _, stderr) = run(&["suite", "--jobs", "0"]);
    assert!(!ok);
    assert!(
        stderr.contains("--jobs") && stderr.contains("positive"),
        "{stderr}"
    );
}

#[test]
fn errors_are_friendly() {
    let (ok, _, stderr) = run(&["sweep", "--workload", "hpl"]);
    assert!(!ok);
    assert!(stderr.contains("unknown workload"));
    let (ok, _, stderr) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
    let (ok, _, stderr) = run(&["sweep"]);
    assert!(!ok);
    assert!(stderr.contains("--workload is required"));
}
