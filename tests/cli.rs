//! End-to-end tests of the `pmemflow` command-line binary.

use std::process::Command;

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_pmemflow"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn help_lists_commands() {
    let (ok, stdout, _) = run(&["help"]);
    assert!(ok);
    for cmd in [
        "sweep",
        "characterize",
        "recommend",
        "plan",
        "suite",
        "serve",
        "devicebench",
    ] {
        assert!(stdout.contains(cmd), "help missing {cmd}");
    }
    assert!(stdout.contains("/v1/sweep"), "help missing serve endpoints");
}

#[test]
fn sweep_prints_four_configs() {
    let (ok, stdout, _) = run(&["sweep", "--workload", "micro-64mb", "--ranks", "8"]);
    assert!(ok, "{stdout}");
    for c in ["S-LocW", "S-LocR", "P-LocW", "P-LocR"] {
        assert!(stdout.contains(c));
    }
    assert!(stdout.contains("best"));
}

#[test]
fn recommend_cites_rules_and_oracle() {
    let (ok, stdout, _) = run(&["recommend", "--workload", "gtc-readonly", "--ranks", "16"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("rule-based:"));
    assert!(stdout.contains("model-driven:"));
    assert!(stdout.contains("§VIII"));
}

#[test]
fn characterize_reports_profile() {
    let (ok, stdout, _) = run(&[
        "characterize",
        "--workload",
        "miniamr-readonly",
        "--ranks",
        "8",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("I/O index"));
    assert!(stdout.contains("write saturation"));
}

#[test]
fn plan_reports_frontier() {
    let (ok, stdout, _) = run(&[
        "plan",
        "--workload",
        "micro-2kb",
        "--deadline",
        "100",
        "--candidates",
        "8,16",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("core_seconds"));
    assert!(stdout.contains("chosen:"));
}

#[test]
fn devicebench_prints_headlines() {
    let (ok, stdout, _) = run(&["devicebench"]);
    assert!(ok);
    assert!(stdout.contains("90"));
    assert!(stdout.contains("169"));
}

#[test]
fn gantt_renders() {
    let (ok, stdout, _) = run(&[
        "gantt",
        "--workload",
        "micro-64mb",
        "--ranks",
        "4",
        "--config",
        "S-LocW",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("legend"));
}

#[test]
fn suite_rejects_zero_jobs() {
    // Errors out before any simulation starts, so this stays fast.
    let (ok, _, stderr) = run(&["suite", "--jobs", "0"]);
    assert!(!ok);
    assert!(
        stderr.contains("--jobs") && stderr.contains("positive"),
        "{stderr}"
    );
}

#[test]
fn serve_rejects_bad_tuning() {
    // Every rejection happens before the daemon binds, so these stay fast.
    let (ok, _, stderr) = run(&["serve", "--workers", "0"]);
    assert!(!ok);
    assert!(
        stderr.contains("--workers") && stderr.contains("positive"),
        "{stderr}"
    );
    let (ok, _, stderr) = run(&["serve", "--cache-capacity", "0"]);
    assert!(!ok);
    assert!(
        stderr.contains("--cache-capacity") && stderr.contains("positive"),
        "{stderr}"
    );
    let (ok, _, stderr) = run(&["serve", "--queue-capacity", "0"]);
    assert!(!ok);
    assert!(stderr.contains("--queue-capacity"), "{stderr}");
    let (ok, _, stderr) = run(&["serve", "--deadline-ms", "0"]);
    assert!(!ok);
    assert!(stderr.contains("--deadline-ms"), "{stderr}");
    // Out-of-range and non-numeric ports fail u16 parsing -> BadValue.
    for bad_port in ["65536", "-1", "http"] {
        let (ok, _, stderr) = run(&["serve", "--port", bad_port]);
        assert!(!ok, "port {bad_port} accepted");
        assert!(
            stderr.contains("--port") && stderr.contains("expected a TCP port"),
            "{stderr}"
        );
    }
}

#[test]
fn serve_duplicate_flags_last_wins() {
    // The second --workers value (0) must win and be rejected; the CLI's
    // last-wins contract holds for serve exactly as for the other commands.
    let (ok, _, stderr) = run(&["serve", "--workers", "4", "--workers", "0"]);
    assert!(!ok);
    assert!(stderr.contains("--workers"), "{stderr}");
    // And the reverse order is accepted (rejection would happen before
    // binding; acceptance means it got past validation, so use a bad port
    // to stop startup immediately after).
    let (ok, _, stderr) = run(&[
        "serve",
        "--workers",
        "0",
        "--workers",
        "4",
        "--port",
        "http",
    ]);
    assert!(!ok);
    assert!(
        stderr.contains("--port") && !stderr.contains("--workers"),
        "{stderr}"
    );
}

#[test]
fn errors_are_friendly() {
    let (ok, _, stderr) = run(&["sweep", "--workload", "hpl"]);
    assert!(!ok);
    assert!(stderr.contains("unknown workload"));
    let (ok, _, stderr) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
    let (ok, _, stderr) = run(&["sweep"]);
    assert!(!ok);
    assert!(stderr.contains("--workload is required"));
}
