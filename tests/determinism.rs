//! Whole-system determinism: identical inputs yield bit-identical results
//! across the entire pipeline — the property that makes the model-driven
//! scheduler's predictions reproducible and the calibration meaningful.

use pmemflow::{paper_suite, sweep, ExecutionParams};

#[test]
fn suite_sweeps_are_bitwise_deterministic() {
    let params = ExecutionParams::default();
    for entry in paper_suite().into_iter().step_by(4) {
        let a = sweep(&entry.spec, &params).unwrap();
        let b = sweep(&entry.spec, &params).unwrap();
        for (ra, rb) in a.runs.iter().zip(b.runs.iter()) {
            assert_eq!(
                ra.total.to_bits(),
                rb.total.to_bits(),
                "nondeterministic total for {} under {}",
                entry.spec.name,
                ra.config
            );
            assert_eq!(ra.events, rb.events);
            assert_eq!(
                ra.writer.finish_time.to_bits(),
                rb.writer.finish_time.to_bits()
            );
        }
    }
}

#[test]
fn results_are_independent_of_run_order() {
    // Running config sweeps in different orders must not change any
    // result (no hidden global state).
    let params = ExecutionParams::default();
    let spec = paper_suite()[2].spec.clone();
    let forward: Vec<f64> = pmemflow::SchedConfig::ALL
        .iter()
        .map(|&c| pmemflow::execute(&spec, c, &params).unwrap().total)
        .collect();
    let backward: Vec<f64> = pmemflow::SchedConfig::ALL
        .iter()
        .rev()
        .map(|&c| pmemflow::execute(&spec, c, &params).unwrap().total)
        .collect();
    for (f, b) in forward.iter().zip(backward.iter().rev()) {
        assert_eq!(f.to_bits(), b.to_bits());
    }
}
