//! Integration tests locking in the paper's quantitative claims that the
//! model must reproduce (see EXPERIMENTS.md for the full index).

use pmemflow::pmem::{headline_ratios, DeviceProfile, GB};
use pmemflow::workloads::{micro_2kb, micro_64mb, miniamr_matmul, miniamr_readonly};
use pmemflow::{sweep, ExecutionParams, SchedConfig};

fn params() -> ExecutionParams {
    ExecutionParams::default()
}

/// §II-B: device-level headline numbers.
#[test]
fn device_headlines_match_section_2b() {
    let profile = DeviceProfile::optane_gen1();
    assert!((profile.local_read_bw.peak() - 39.4 * GB).abs() < 0.05 * GB);
    assert!((profile.local_write_bw.peak() - 13.9 * GB).abs() < 0.05 * GB);
    assert_eq!(
        profile.local_write_bw.peak_x(),
        4.0,
        "write saturates at 4 threads"
    );
    let h = headline_ratios(&profile);
    assert!(
        h.write_drop_at_24 > 12.0 && h.write_drop_at_24 < 18.0,
        "~15x"
    );
    assert!((h.read_drop_at_24 - 1.3).abs() < 0.05, "1.3x");
    assert_eq!(h.write_latency, 90e-9);
    assert_eq!(h.read_latency, 169e-9);
}

/// §I / Fig. 1: swapping the analytics kernel while keeping the
/// configuration tuned for the other kernel costs tens of percent.
#[test]
fn fig1_motivation_changing_analytics_kernel_costs_performance() {
    let p = params();
    let ro = sweep(&miniamr_readonly(16), &p).unwrap();
    let mm = sweep(&miniamr_matmul(16), &p).unwrap();
    // The two workflows share the same simulation component.
    let cross_cost = mm
        .normalized(ro.best().config)
        .max(ro.normalized(mm.best().config));
    assert!(
        cross_cost > 1.05,
        "using the other workflow's best config must cost >5%, got {cross_cost:.3}x"
    );
}

/// §VII / §X: misconfiguration costs tens of percent, up to ~70%.
#[test]
fn misconfiguration_cost_is_large() {
    let p = params();
    let mut worst: f64 = 0.0;
    for spec in [micro_64mb(24), micro_2kb(24), miniamr_readonly(24)] {
        worst = worst.max(sweep(&spec, &p).unwrap().worst_case_loss_percent());
    }
    assert!(
        worst >= 50.0,
        "worst-case misconfiguration should cost at least ~50-70%, got {worst:.0}%"
    );
}

/// §VI-A: the 64 MB microbenchmark at high concurrency prefers S-LocW by a
/// large margin (paper: up to 2.5× better than other scenarios).
#[test]
fn micro64_high_concurrency_prefers_serial_local_write_strongly() {
    let sw = sweep(&micro_64mb(24), &params()).unwrap();
    assert_eq!(sw.best().config, SchedConfig::S_LOC_W);
    let margin = sw.worst().total / sw.best().total;
    assert!(
        margin > 1.5 && margin < 5.0,
        "expected a strong (roughly 1.5-3x) margin, got {margin:.2}x"
    );
}

/// §VI-A: remote writes dominate the runtime of bandwidth-bound serial
/// runs — the writer phase under S-LocR must far exceed S-LocW's.
#[test]
fn remote_writes_dominate_bandwidth_bound_runs() {
    let p = params();
    let locw = pmemflow::execute(&micro_64mb(24), SchedConfig::S_LOC_W, &p).unwrap();
    let locr = pmemflow::execute(&micro_64mb(24), SchedConfig::S_LOC_R, &p).unwrap();
    let (w_local, _) = locw.serial_split();
    let (w_remote, _) = locr.serial_split();
    assert!(
        w_remote / w_local > 1.5,
        "remote write phase {w_remote:.1}s vs local {w_local:.1}s"
    );
}

/// §VIII: high software overhead (2 KB objects) lowers effective PMEM
/// contention — the device experiences far fewer effective concurrent
/// operations than there are ranks (flow counts are equal; the duty-cycle
/// weighted characterization shows the difference).
#[test]
fn software_overhead_lowers_effective_device_concurrency() {
    let p = params();
    let big = pmemflow::characterize(&micro_64mb(24), &p).unwrap();
    let small = pmemflow::characterize(&micro_2kb(24), &p).unwrap();
    assert!(
        small.sim_device_concurrency < 0.8 * big.sim_device_concurrency,
        "2KB effective concurrency {:.1} should be well below 64MB's {:.1}",
        small.sim_device_concurrency,
        big.sim_device_concurrency
    );
}

/// §VII: no single configuration is optimal across the suite.
#[test]
fn no_single_optimal_configuration() {
    let p = params();
    let mut winners = std::collections::BTreeSet::new();
    for entry in pmemflow::paper_suite() {
        let sw = sweep(&entry.spec, &p).unwrap();
        winners.insert(sw.best().config.label());
    }
    assert!(
        winners.len() >= 3,
        "at least three distinct winners expected across the suite, got {winners:?}"
    );
}
