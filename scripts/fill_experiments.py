#!/usr/bin/env python3
"""Refresh the per-panel Table II comparison inside EXPERIMENTS.md.

Runs the calibrate binary and rewrites the AUTOGEN block.
"""
import re
import subprocess

out = subprocess.run(
    ["cargo", "run", "--release", "-p", "pmemflow-bench", "--bin", "calibrate"],
    capture_output=True, text=True, check=True,
).stdout

lines = [l for l in out.splitlines() if l.startswith("Fig.")]
agree = re.search(r"agreement with Table II: (\d+)/18", out).group(1)

md = ["| panel | workload | ranks | S-LocW | S-LocR | P-LocW | P-LocR | model | paper | agree |",
      "|---|---|---|---|---|---|---|---|---|---|"]
for l in lines:
    parts = l.split()
    panel = parts[0] + " " + parts[1]
    workload, ranks = parts[2], parts[3]
    slocw, slocr, plocw, plocr, model, paper, ok = parts[4:11]
    md.append(f"| {panel} | {workload} | {ranks} | {slocw} | {slocr} | {plocw} | {plocr} | {model} | {paper} | {'yes' if ok=='yes' else 'near-tie'} |")
md.append("")
md.append(f"**Winner agreement: {agree}/18** (near-tie marks panels where the paper's")
md.append("winner is within the miss tolerance of the model's best; see")
md.append("`tests/table2_winners.rs`). Runtimes are virtual seconds; regenerate with")
md.append("`cargo run --release -p pmemflow-bench --bin calibrate`.")

text = open("EXPERIMENTS.md").read()
block = "<!-- AUTOGEN:panels -->\n" + "\n".join(md) + "\n<!-- /AUTOGEN:panels -->"
if "<!-- AUTOGEN:panels -->" in text:
    text = re.sub(r"<!-- AUTOGEN:panels -->.*?<!-- /AUTOGEN:panels -->", block, text, flags=re.S)
else:
    marker = "every disagreement is a near-tie (paper's winner within 1.35× of the\nmodel's best), not a contradiction.\n"
    text = text.replace(marker, marker + "\n" + block + "\n")
open("EXPERIMENTS.md", "w").write(text)
print(f"EXPERIMENTS.md updated; agreement {agree}/18")
