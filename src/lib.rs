//! # pmemflow — scheduling HPC workflows with (simulated) Intel Optane PMEM
//!
//! A full reproduction of *Scheduling HPC Workflows with Intel Optane
//! Persistent Memory* (Venkatesh, Mason, Fernando, Eisenhauer, Gavrilovska
//! — IPDPS 2021), built as a workspace of substrates:
//!
//! | crate | what it provides |
//! |-------|------------------|
//! | [`des`] | deterministic fluid discrete-event engine |
//! | [`pmem`] | Optane gen-1 device model + byte-accurate region with crash semantics |
//! | [`platform`] | dual-socket node topology and rank pinning |
//! | [`iostack`] | functional NOVA-like fs and NVStream-like object store |
//! | [`workloads`] | the paper's 18-workload suite + real proxy kernels |
//! | [`core`] | Table I configurations, workflow executor, metrics, native mode |
//! | [`sched`] | rule-based / model-driven / adaptive PMEM-aware schedulers |
//! | [`fault`] | deterministic seeded fault plans: crashes, degradation, job failures |
//! | [`cluster`] | online multi-node campaign scheduling over arrival streams |
//! | [`serve`] | concurrent model-serving HTTP daemon with result cache + backpressure |
//!
//! This facade re-exports each crate under a short name and the most
//! common types at the top level.
//!
//! ## Quickstart
//!
//! ```
//! use pmemflow::{sweep, ExecutionParams};
//! use pmemflow::workloads::micro_64mb;
//!
//! // Run the paper's 64 MB microbenchmark at 24 ranks under all four
//! // scheduler configurations (Table I) on the modeled testbed.
//! let result = sweep(&micro_64mb(24), &ExecutionParams::default()).unwrap();
//! println!("winner: {} in {:.1} virtual seconds", result.best().config, result.best().total);
//! // The paper's Fig. 4c finding: serial, local-write/remote-read wins.
//! assert_eq!(result.best().config.label(), "S-LocW");
//! ```

#![warn(missing_docs)]

pub mod cli;

pub use pmemflow_cluster as cluster;
pub use pmemflow_core as core;
pub use pmemflow_des as des;
pub use pmemflow_fault as fault;
pub use pmemflow_iostack as iostack;
pub use pmemflow_platform as platform;
pub use pmemflow_pmem as pmem;
pub use pmemflow_sched as sched;
pub use pmemflow_serve as serve;
pub use pmemflow_workloads as workloads;

pub use pmemflow_core::{
    execute, full_matrix, map_ordered, run_matrix, sweep, ConfigSweep, ExecMode, ExecutionParams,
    Placement, RunMetrics, RunOutcome, RunRequest, SchedConfig,
};
pub use pmemflow_pmem::DeviceProfile;
pub use pmemflow_sched::{characterize, decide, explore_then_commit, recommend, RuleThresholds};
pub use pmemflow_workloads::{paper_suite, WorkflowSpec};
