//! Command-line interface plumbing for the `pmemflow` binary.
//!
//! Deliberately dependency-free: a small typed argument parser plus the
//! workload/stack lookups shared by the subcommands. The binary itself
//! lives in `src/main.rs`.

use pmemflow_core::SchedConfig;
use pmemflow_iostack::StackKind;
use pmemflow_workloads::{Family, WorkflowSpec};
use std::collections::BTreeMap;

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    /// `--key value` pairs, in input order for duplicates last-wins.
    pub options: BTreeMap<String, String>,
}

/// Errors from parsing or resolving arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// No subcommand given.
    MissingCommand,
    /// A `--flag` without a value.
    MissingValue(String),
    /// A positional argument where an option was expected.
    UnexpectedPositional(String),
    /// An option value failed to parse.
    BadValue {
        /// The option name.
        option: String,
        /// The offending value.
        value: String,
        /// What was expected.
        expected: &'static str,
    },
    /// Unknown workload/stack/config name.
    UnknownName {
        /// What kind of name.
        kind: &'static str,
        /// The offending value.
        value: String,
        /// Valid choices.
        choices: &'static str,
    },
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::MissingCommand => write!(f, "no subcommand given; try `pmemflow help`"),
            CliError::MissingValue(k) => write!(f, "option --{k} needs a value"),
            CliError::UnexpectedPositional(p) => {
                write!(f, "unexpected positional argument {p:?}")
            }
            CliError::BadValue {
                option,
                value,
                expected,
            } => write!(f, "--{option} {value:?}: expected {expected}"),
            CliError::UnknownName {
                kind,
                value,
                choices,
            } => write!(f, "unknown {kind} {value:?}; choices: {choices}"),
        }
    }
}

impl std::error::Error for CliError {}

impl Args {
    /// Parse an iterator of arguments (excluding the program name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Args, CliError> {
        let mut it = args.into_iter();
        let command = it.next().ok_or(CliError::MissingCommand)?;
        if command.starts_with("--") {
            return Err(CliError::MissingCommand);
        }
        let mut options = BTreeMap::new();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                let value = it
                    .next()
                    .ok_or_else(|| CliError::MissingValue(key.into()))?;
                options.insert(key.to_string(), value);
            } else {
                return Err(CliError::UnexpectedPositional(a));
            }
        }
        Ok(Args { command, options })
    }

    /// A string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// A parsed option with a default.
    pub fn get_parse<T: std::str::FromStr>(
        &self,
        key: &str,
        default: T,
        expected: &'static str,
    ) -> Result<T, CliError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| CliError::BadValue {
                option: key.into(),
                value: v.clone(),
                expected,
            }),
        }
    }
}

/// Valid workload names for `--workload`.
pub use pmemflow_workloads::WORKLOAD_CHOICES;

/// Build a suite workload by name at the given rank count. Name resolution
/// lives in [`pmemflow_workloads::Family::parse`] so the CLI and the
/// serving daemon accept exactly the same spellings.
pub fn workload_by_name(name: &str, ranks: usize) -> Result<WorkflowSpec, CliError> {
    match Family::parse(name) {
        Some(family) => Ok(family.build(ranks)),
        None => Err(CliError::UnknownName {
            kind: "workload",
            value: name.into(),
            choices: WORKLOAD_CHOICES,
        }),
    }
}

/// Resolve `--stack` (default NVStream).
pub fn stack_by_name(name: Option<&str>) -> Result<StackKind, CliError> {
    match name {
        None => Ok(StackKind::NvStream),
        Some(v) => StackKind::parse(v).ok_or_else(|| CliError::UnknownName {
            kind: "stack",
            value: v.to_ascii_lowercase(),
            choices: "nvstream, nova",
        }),
    }
}

/// Resolve `--config` (no default: `None` means "all four").
pub fn config_by_name(name: Option<&str>) -> Result<Option<SchedConfig>, CliError> {
    match name {
        None => Ok(None),
        Some(v) => SchedConfig::parse(v)
            .map(Some)
            .ok_or_else(|| CliError::UnknownName {
                kind: "config",
                value: v.into(),
                choices: "S-LocW, S-LocR, P-LocW, P-LocR",
            }),
    }
}

/// Parse a comma-separated list of rank counts (for `--candidates`).
pub fn parse_rank_list(s: &str) -> Result<Vec<usize>, CliError> {
    s.split(',')
        .map(|p| {
            p.trim().parse().map_err(|_| CliError::BadValue {
                option: "candidates".into(),
                value: p.into(),
                expected: "comma-separated rank counts, e.g. 8,16,24",
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Result<Args, CliError> {
        Args::parse(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_command_and_options() {
        let a = args(&["sweep", "--workload", "gtc-readonly", "--ranks", "16"]).unwrap();
        assert_eq!(a.command, "sweep");
        assert_eq!(a.get("workload"), Some("gtc-readonly"));
        assert_eq!(a.get_parse("ranks", 8usize, "int").unwrap(), 16);
    }

    #[test]
    fn duplicate_flags_last_wins() {
        // The `Args` docs promise last-wins for repeated options; `BTreeMap::insert`
        // replaces the prior value, so the final occurrence is the one kept.
        let a = args(&["sweep", "--ranks", "8", "--ranks", "24"]).unwrap();
        assert_eq!(a.get("ranks"), Some("24"));
        assert_eq!(a.get_parse("ranks", 0usize, "int").unwrap(), 24);
        assert_eq!(a.options.len(), 1);
    }

    #[test]
    fn default_used_when_absent() {
        let a = args(&["sweep"]).unwrap();
        assert_eq!(a.get_parse("ranks", 8usize, "int").unwrap(), 8);
    }

    #[test]
    fn errors_are_reported() {
        assert_eq!(args(&[]).unwrap_err(), CliError::MissingCommand);
        assert_eq!(
            args(&["run", "--ranks"]).unwrap_err(),
            CliError::MissingValue("ranks".into())
        );
        assert!(matches!(
            args(&["run", "stray"]).unwrap_err(),
            CliError::UnexpectedPositional(_)
        ));
        let a = args(&["run", "--ranks", "many"]).unwrap();
        assert!(matches!(
            a.get_parse("ranks", 8usize, "an integer"),
            Err(CliError::BadValue { .. })
        ));
    }

    #[test]
    fn workload_lookup() {
        assert!(workload_by_name("micro-64mb", 8).is_ok());
        assert!(workload_by_name("GTC-MatMult", 8).is_ok());
        assert!(matches!(
            workload_by_name("hpl", 8),
            Err(CliError::UnknownName { .. })
        ));
    }

    #[test]
    fn stack_and_config_lookup() {
        assert_eq!(stack_by_name(None).unwrap(), StackKind::NvStream);
        assert_eq!(stack_by_name(Some("nova")).unwrap(), StackKind::Nova);
        assert!(stack_by_name(Some("ext4")).is_err());
        assert_eq!(config_by_name(None).unwrap(), None);
        assert_eq!(
            config_by_name(Some("p-locr")).unwrap(),
            Some(SchedConfig::P_LOC_R)
        );
        assert!(config_by_name(Some("X")).is_err());
    }

    #[test]
    fn rank_list() {
        assert_eq!(parse_rank_list("8,16, 24").unwrap(), vec![8, 16, 24]);
        assert!(parse_rank_list("8,x").is_err());
    }

    #[test]
    fn error_messages_are_informative() {
        let e = CliError::UnknownName {
            kind: "workload",
            value: "hpl".into(),
            choices: WORKLOAD_CHOICES,
        };
        let msg = e.to_string();
        assert!(msg.contains("hpl") && msg.contains("micro-64mb"));
    }
}
