//! `pmemflow` — command-line front end for the reproduction.
//!
//! ```text
//! pmemflow sweep        --workload gtc-readonly --ranks 16 [--stack nova]
//! pmemflow characterize --workload miniamr-matmult --ranks 8
//! pmemflow recommend    --workload micro-2kb --ranks 24
//! pmemflow plan         --workload gtc-matmult --deadline 30 --candidates 8,16,24
//! pmemflow gantt        --workload micro-64mb --ranks 8 --config P-LocW [--chrome out.json]
//! pmemflow suite        [--jobs N] [--out runs.jsonl] [--trace-dir DIR]
//! pmemflow cluster      --nodes 4 --policy interference --arrivals poisson:rate=0.01,n=200 \
//!                       --seed 42 [--jobs N] [--out campaign.jsonl]
//! pmemflow serve        --port 7777 --workers 4 --cache-capacity 256
//! pmemflow devicebench
//! pmemflow help
//! ```

use pmemflow::cli::{
    config_by_name, parse_rank_list, stack_by_name, workload_by_name, Args, CliError,
    WORKLOAD_CHOICES,
};
use pmemflow::cluster::{
    all_policies, policy_by_name, run_campaign_with_oracle, ArrivalSpec, CampaignConfig,
    CheckpointSpec, FaultSpec, Oracle, POLICY_CHOICES,
};
use pmemflow::core::report::panel_table;
use pmemflow::pmem::{bandwidth_table, headline_ratios, DeviceProfile, GB};
use pmemflow::sched::{characterize, classify, plan, recommend, RuleThresholds};
use pmemflow::serve::{Server, ServerConfig};
use pmemflow::{
    decide, execute, full_matrix, map_ordered, paper_suite, run_matrix, sweep, ExecutionParams,
    SchedConfig,
};
use std::process::ExitCode;

const HELP: &str = "\
pmemflow — PMEM-aware in situ workflow scheduling (IPDPS 2021 reproduction)

USAGE: pmemflow <command> [--option value]...

COMMANDS:
  sweep         run a workload under all four Table I configurations
                  --workload NAME   (required; see below)
                  --ranks N         (default 8)
                  --stack nvstream|nova
  characterize  measure a workload's scheduling profile (I/O indexes, ...)
                  --workload NAME --ranks N
  recommend     rule-based + model-driven + Table II recommendations
                  --workload NAME --ranks N
  plan          choose rank count + config for a deadline
                  --workload NAME --deadline SECONDS --candidates 8,16,24
  gantt         render rank timelines for one configuration
                  --workload NAME --ranks N --config S-LocW [--chrome FILE]
  suite         run the full 144-run matrix (18 workloads x 4 configs x
                2 I/O stacks) vs the paper's Table II
                  --jobs N          parallel simulations (default: cores)
                  --out FILE        one JSON record per run (JSON Lines)
                  --trace-dir DIR   Chrome trace-event JSON per run
  cluster       serve a workflow arrival stream over N modeled nodes
                  --nodes N         cluster size (default 4)
                  --policy P        fcfs | easy | table2 | interference | all
                                    (default fcfs; `all` compares every policy)
                  --arrivals SPEC   poisson:rate=R,n=N[,mix=...]
                                    closed:clients=C,think=T,n=N[,mix=...]
                                    trace:FILE  (default poisson:rate=0.01,n=24,mix=micro)
                  --seed S          arrival-stream seed (default 42)
                  --jobs N          parallel prediction sims (default: cores)
                  --out FILE        per-job + campaign records (JSON Lines)
                fault injection + checkpoint/restart (see EXPERIMENTS.md):
                  --mtbf S            mean time between node crashes (0 = off)
                  --repair S          mean crash repair time (default 30)
                  --degrade-mtbf S    mean time between PMEM slowdowns (0 = off)
                  --degrade-duration S  mean slowdown length (default 60)
                  --degrade-factor F  bandwidth-degradation slowdown (default 2)
                  --job-fail-prob P   per-attempt job failure probability
                  --fault-seed S      fault-plan seed (default: --seed)
                  --checkpoint-interval S  progress between PMEM checkpoints
                                           (0 = restart from scratch)
                  --retry-budget N    restarts before a job is failed (default 3)
                  --backoff-base S    requeue backoff, doubled per restart
  serve         run the model-serving HTTP daemon (see EXPERIMENTS.md)
                  --port P            TCP port on 127.0.0.1 (default 7777; 0 = ephemeral)
                  --workers N         worker threads (default: cores)
                  --cache-capacity C  result-cache entries (default 256)
                  --queue-capacity Q  admission queue depth (default 64)
                  --deadline-ms MS    per-request deadline (default 30000)
                  --read-deadline-ms MS  per-request read budget; slow clients
                                         get 408 (default 5000)
                  --fault-rate R      chaos hook: fraction of computations
                                      that panic, in [0,1) (default 0)
                  endpoints: POST /v1/sweep /v1/recommend /v1/predict
                  /v1/coschedule; GET /healthz /metrics; POST /admin/shutdown
  devicebench   print the modeled §II-B device characterization
  help          this text

WORKLOADS: micro-64mb, micro-2kb, gtc-readonly, gtc-matmult,
           miniamr-readonly, miniamr-matmult";

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let args = Args::parse(std::env::args().skip(1))?;
    let mut params = ExecutionParams::default();
    if let Some(stack) = args.get("stack") {
        params.stack = stack_by_name(Some(stack))?;
    }
    let ranks: usize = args.get_parse("ranks", 8, "a rank count")?;
    let need_workload = || -> Result<_, Box<dyn std::error::Error>> {
        let name = args
            .get("workload")
            .ok_or_else(|| format!("--workload is required; choices: {WORKLOAD_CHOICES}"))?;
        Ok(workload_by_name(name, ranks)?)
    };

    match args.command.as_str() {
        "sweep" => {
            let spec = need_workload()?;
            let result = sweep(&spec, &params)?;
            print!("{}", panel_table(&result));
            println!(
                "misconfiguration cost: up to {:.0}%",
                result.worst_case_loss_percent()
            );
        }
        "characterize" => {
            let spec = need_workload()?;
            let p = characterize(&spec, &params)?;
            println!("workflow: {}", p.name);
            println!(
                "  sim      compute={:<7} write={:<7} I/O index {:.2}",
                p.sim_compute.label(),
                p.sim_write.label(),
                p.sim_io_index
            );
            println!(
                "  analytics compute={:<7} read={:<8} I/O index {:.2}",
                p.analytics_compute.label(),
                p.analytics_read.label(),
                p.analytics_io_index
            );
            println!(
                "  effective device concurrency: sim {:.1} + analytics {:.1} = {:.1}",
                p.sim_device_concurrency,
                p.analytics_device_concurrency,
                p.combined_device_concurrency()
            );
            println!(
                "  write saturation: {:.2} ({}constrained)",
                p.write_saturation,
                if p.is_bandwidth_constrained() {
                    ""
                } else {
                    "not "
                }
            );
        }
        "recommend" => {
            let spec = need_workload()?;
            let profile = characterize(&spec, &params)?;
            let rule = recommend(&profile, &RuleThresholds::default());
            println!("rule-based: {}", rule.config);
            for r in &rule.reasons {
                println!("  - {r}");
            }
            if let Some(row) = classify(&profile) {
                println!(
                    "Table II row {}: {} ({})",
                    row.row, row.config, row.illustrated_by
                );
            } else {
                println!("Table II: no row covers this workload class");
            }
            let oracle = decide(&spec, &params)?;
            println!(
                "model-driven: {} ({:.1}s predicted; worst config costs +{:.0}%)",
                oracle.config, oracle.predicted_runtime, oracle.misconfiguration_loss_percent
            );
        }
        "plan" => {
            let spec = need_workload()?;
            let deadline: f64 = args.get_parse("deadline", f64::INFINITY, "seconds")?;
            let candidates = match args.get("candidates") {
                Some(c) => parse_rank_list(c)?,
                None => vec![8, 16, 24],
            };
            let p = plan(&spec, &candidates, deadline, &params)?;
            println!("ranks  config   runtime_s  core_seconds  efficiency");
            for pt in &p.frontier {
                println!(
                    "{:>5}  {:<7}  {:>9.1}  {:>12.0}  {:>9.2}",
                    pt.ranks,
                    pt.config.label(),
                    pt.runtime,
                    pt.core_seconds,
                    pt.efficiency
                );
            }
            match p.chosen {
                Some(pt) => println!(
                    "\nchosen: {} ranks under {} ({:.1}s ≤ deadline)",
                    pt.ranks, pt.config, pt.runtime
                ),
                None => println!("\nno candidate meets the deadline"),
            }
        }
        "gantt" => {
            let spec = need_workload()?;
            let config = config_by_name(args.get("config"))?.unwrap_or(SchedConfig::P_LOC_R);
            params.record_timeline = true;
            let m = execute(&spec, config, &params)?;
            let tl = m.timeline.as_ref().expect("timeline recorded");
            println!("{} under {} — {:.1}s total", spec.name, config, m.total);
            print!("{}", tl.ascii_gantt(100));
            println!(
                "device saw ≥2 concurrent I/O flows {:.0}% of the run",
                tl.io_overlap_fraction(2) * 100.0
            );
            if let Some(path) = args.get("chrome") {
                std::fs::write(path, tl.chrome_trace_json())?;
                println!("chrome trace written to {path}");
            }
        }
        "suite" => {
            let jobs: usize = args.get_parse(
                "jobs",
                std::thread::available_parallelism().map_or(1, |n| n.get()),
                "a positive worker count",
            )?;
            if jobs == 0 {
                return Err(CliError::BadValue {
                    option: "jobs".into(),
                    value: "0".into(),
                    expected: "a positive worker count",
                }
                .into());
            }
            if args.get("trace-dir").is_some() {
                params.record_timeline = true;
            }
            let outcomes = run_matrix(full_matrix(), &params, jobs);

            if let Some(path) = args.get("out") {
                let mut buf = String::with_capacity(outcomes.len() * 512);
                for o in &outcomes {
                    buf.push_str(&o.to_jsonl());
                    buf.push('\n');
                }
                std::fs::write(path, buf)?;
                println!("{} JSONL records written to {path}\n", outcomes.len());
            }
            if let Some(dir) = args.get("trace-dir") {
                std::fs::create_dir_all(dir)?;
                let mut written = 0;
                for o in &outcomes {
                    if let Some(tl) = o.result.as_ref().ok().and_then(|m| m.timeline.as_ref()) {
                        let file = format!(
                            "{dir}/{}-{}r-{}-{}.json",
                            trace_file_stem(&o.workflow),
                            o.ranks,
                            o.stack.name(),
                            o.config.label()
                        );
                        std::fs::write(&file, tl.chrome_trace_json())?;
                        written += 1;
                    }
                }
                println!("{written} Chrome traces written to {dir}\n");
            }

            // Table II covers the NVStream half of the matrix; full_matrix()
            // is stack-major with NVStream first, so the first 72 outcomes
            // line up with paper_suite() in chunks of four configurations.
            let entries = paper_suite();
            let mut agree = 0;
            println!("panel     workload                ranks  model    paper   ");
            for (entry, chunk) in entries.iter().zip(outcomes.chunks(SchedConfig::ALL.len())) {
                let model = chunk
                    .iter()
                    .filter_map(|o| o.result.as_ref().ok().map(|m| (o.config, m.total)))
                    .min_by(|a, b| a.1.partial_cmp(&b.1).expect("totals are finite"));
                let Some((model, _)) = model else {
                    println!(
                        "{:<9} {:<23} {:>5}  (all four runs failed)",
                        entry.panel,
                        entry.family.name(),
                        entry.ranks
                    );
                    continue;
                };
                let ok = model.label() == entry.paper_winner;
                if ok {
                    agree += 1;
                }
                println!(
                    "{:<9} {:<23} {:>5}  {:<7}  {:<7} {}",
                    entry.panel,
                    entry.family.name(),
                    entry.ranks,
                    model.label(),
                    entry.paper_winner,
                    if ok { "" } else { "<-- differs" }
                );
            }
            println!(
                "\nagreement with the paper's Table II: {agree}/{}",
                entries.len()
            );
            let failures = outcomes.iter().filter(|o| o.result.is_err()).count();
            let wall: f64 = outcomes.iter().map(|o| o.wall_secs).sum();
            println!(
                "{} runs ({failures} failed) over {jobs} worker(s); {wall:.2}s total simulation wall time",
                outcomes.len()
            );
        }
        "cluster" => {
            let nodes: usize = args.get_parse("nodes", 4, "a positive node count")?;
            if nodes == 0 {
                return Err(CliError::BadValue {
                    option: "nodes".into(),
                    value: "0".into(),
                    expected: "a positive node count",
                }
                .into());
            }
            let jobs: usize = args.get_parse(
                "jobs",
                std::thread::available_parallelism().map_or(1, |n| n.get()),
                "a positive worker count",
            )?;
            if jobs == 0 {
                return Err(CliError::BadValue {
                    option: "jobs".into(),
                    value: "0".into(),
                    expected: "a positive worker count",
                }
                .into());
            }
            let seed: u64 = args.get_parse("seed", 42, "an unsigned seed")?;
            let spec = args
                .get("arrivals")
                .unwrap_or("poisson:rate=0.01,n=24,mix=micro");
            let arrivals = ArrivalSpec::parse(spec).map_err(|e| CliError::BadValue {
                option: "arrivals".into(),
                value: format!("{spec}: {e}"),
                expected: "poisson:rate=R,n=N | closed:clients=C,think=T,n=N | trace:FILE",
            })?;
            let policy_name = args.get("policy").unwrap_or("fcfs");
            let policies = if policy_name.eq_ignore_ascii_case("all") {
                all_policies()
            } else {
                vec![policy_by_name(policy_name).ok_or(CliError::UnknownName {
                    kind: "policy",
                    value: policy_name.into(),
                    choices: POLICY_CHOICES,
                })?]
            };

            let fault_seed: u64 = args.get_parse("fault-seed", seed, "an unsigned seed")?;
            let config = CampaignConfig {
                nodes,
                arrivals,
                seed,
                exec: params.clone(),
                faults: FaultSpec {
                    seed: fault_seed,
                    mtbf: args.get_parse("mtbf", 0.0, "seconds (0 disables crashes)")?,
                    repair: args.get_parse("repair", 30.0, "seconds")?,
                    degrade_mtbf: args.get_parse(
                        "degrade-mtbf",
                        0.0,
                        "seconds (0 disables degradation)",
                    )?,
                    degrade_duration: args.get_parse("degrade-duration", 60.0, "seconds")?,
                    degrade_factor: args.get_parse(
                        "degrade-factor",
                        2.0,
                        "a slowdown factor >= 1",
                    )?,
                    job_fail_prob: args.get_parse(
                        "job-fail-prob",
                        0.0,
                        "a probability in [0,1)",
                    )?,
                },
                checkpoint: CheckpointSpec {
                    interval: args.get_parse(
                        "checkpoint-interval",
                        0.0,
                        "seconds of progress (0 disables checkpoints)",
                    )?,
                    retry_budget: args.get_parse("retry-budget", 3, "a restart count")?,
                    backoff_base: args.get_parse("backoff-base", 5.0, "seconds")?,
                    ..CheckpointSpec::default()
                },
            };
            let oracle = Oracle::build(&config.arrivals.alphabet(), &config.exec, jobs)?;
            // `map_ordered` fans the campaigns out but keeps results in
            // policy order, so output is identical for any --jobs.
            let outcomes = map_ordered(policies, jobs, |policy| {
                run_campaign_with_oracle(&config, policy.as_ref(), &oracle)
            });

            let mut jsonl = String::new();
            println!(
                "policy        jobs  failed  restarts  lost_s  makespan_s  mean_wait_s  \
                 p95_wait_s  mean_bsld  max_bsld  util"
            );
            for outcome in outcomes {
                let o = outcome.map_err(|panic| format!("campaign panicked: {panic}"))??;
                let util = o.utilization();
                let mean_util = util.iter().sum::<f64>() / util.len().max(1) as f64;
                println!(
                    "{:<12} {:>5}  {:>6}  {:>8}  {:>6.0}  {:>10.1}  {:>11.1}  {:>10.1}  \
                     {:>9.2}  {:>8.2}  {:>4.0}%",
                    o.policy,
                    o.jobs.len(),
                    o.failed(),
                    o.total_restarts(),
                    o.total_lost_work(),
                    o.makespan,
                    o.mean_wait(),
                    o.p95_wait(),
                    o.mean_bounded_slowdown(),
                    o.max_bounded_slowdown(),
                    mean_util * 100.0
                );
                jsonl.push_str(&o.to_jsonl());
            }
            if let Some(path) = args.get("out") {
                std::fs::write(path, &jsonl)?;
                println!("campaign records written to {path}");
            }
        }
        "serve" => {
            let port: u16 = args.get_parse("port", 7777, "a TCP port (0..=65535)")?;
            let workers: usize = args.get_parse(
                "workers",
                std::thread::available_parallelism().map_or(1, |n| n.get()),
                "a positive worker count",
            )?;
            let cache_capacity: usize =
                args.get_parse("cache-capacity", 256, "a positive entry count")?;
            let queue_capacity: usize =
                args.get_parse("queue-capacity", 64, "a positive queue depth")?;
            let deadline_ms: u64 =
                args.get_parse("deadline-ms", 30_000, "a positive millisecond count")?;
            let read_deadline_ms: u64 =
                args.get_parse("read-deadline-ms", 5_000, "a positive millisecond count")?;
            let fault_rate: f64 = args.get_parse("fault-rate", 0.0, "a fraction in [0,1)")?;
            if !fault_rate.is_finite() || !(0.0..1.0).contains(&fault_rate) {
                return Err(CliError::BadValue {
                    option: "fault-rate".into(),
                    value: fault_rate.to_string(),
                    expected: "a fraction in [0,1)",
                }
                .into());
            }
            for (option, value, expected) in [
                ("workers", workers, "a positive worker count"),
                ("cache-capacity", cache_capacity, "a positive entry count"),
                ("queue-capacity", queue_capacity, "a positive queue depth"),
                (
                    "deadline-ms",
                    deadline_ms as usize,
                    "a positive millisecond count",
                ),
                (
                    "read-deadline-ms",
                    read_deadline_ms as usize,
                    "a positive millisecond count",
                ),
            ] {
                if value == 0 {
                    return Err(CliError::BadValue {
                        option: option.into(),
                        value: "0".into(),
                        expected,
                    }
                    .into());
                }
            }
            let server = Server::start(ServerConfig {
                port,
                workers,
                cache_capacity,
                queue_capacity,
                deadline: std::time::Duration::from_millis(deadline_ms),
                read_deadline: std::time::Duration::from_millis(read_deadline_ms),
                fault_rate,
                ..ServerConfig::default()
            })?;
            println!("listening on http://{}", server.addr());
            if fault_rate > 0.0 {
                println!(
                    "CHAOS: injecting panics into ~{:.0}% of computations",
                    fault_rate * 100.0
                );
            }
            println!("{workers} worker(s), cache {cache_capacity}, queue {queue_capacity}; POST /admin/shutdown to drain");
            server.join();
        }
        "devicebench" => {
            let profile = DeviceProfile::optane_gen1();
            println!("threads  local-read  local-write  remote-read  remote-write (GB/s)");
            for row in bandwidth_table(&profile, &[1.0, 4.0, 8.0, 17.0, 24.0]) {
                println!(
                    "{:>7.0} {:>11.1} {:>12.1} {:>12.1} {:>13.1}",
                    row.threads,
                    row.local_read / GB,
                    row.local_write / GB,
                    row.remote_read / GB,
                    row.remote_write / GB
                );
            }
            let h = headline_ratios(&profile);
            println!(
                "latency write/read: {:.0}/{:.0} ns; remote drop @24: write {:.1}x read {:.2}x",
                h.write_latency * 1e9,
                h.read_latency * 1e9,
                h.write_drop_at_24,
                h.read_drop_at_24
            );
        }
        "help" | "--help" | "-h" => println!("{HELP}"),
        other => {
            return Err(format!("unknown command {other:?}; try `pmemflow help`").into());
        }
    }
    Ok(())
}

/// Make a workflow name safe as a file-name stem (suite names contain '+').
fn trace_file_stem(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '-'
            }
        })
        .collect()
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
