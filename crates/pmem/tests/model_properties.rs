//! Structural properties of the Optane allocator and profile that the
//! scheduling conclusions rely on, checked over a seeded random sample of
//! the flow space (fixed seed, reproducible failures).

use pmemflow_des::rng::SplitMix64;
use pmemflow_des::{Direction, FlowAttrs, FlowView, Locality, RateAllocator};
use pmemflow_pmem::{DeviceProfile, OptaneAllocator};

fn flow(dir: Direction, loc: Locality, access: u64, sw_tpb: f64) -> FlowView {
    let p = DeviceProfile::optane_gen1();
    FlowView {
        attrs: FlowAttrs {
            direction: dir,
            locality: loc,
            access_bytes: access,
            sw_time_per_byte: sw_tpb,
            peak_device_rate: p.single_thread_rate(dir, loc, access),
        },
        remaining: 1e9,
    }
}

fn random_flow(rng: &mut SplitMix64) -> FlowView {
    let access = [2048u64, 4608, 1 << 20, 64 << 20][rng.range_usize(0, 4)];
    let sw_ns_per_kb = rng.range_u64(0, 3000);
    flow(
        if rng.next_bool() {
            Direction::Read
        } else {
            Direction::Write
        },
        if rng.next_bool() {
            Locality::Remote
        } else {
            Locality::Local
        },
        access,
        sw_ns_per_kb as f64 * 1e-9 / 1024.0,
    )
}

fn random_flows(rng: &mut SplitMix64, lo: usize, hi: usize) -> Vec<FlowView> {
    let n = rng.range_usize(lo, hi);
    (0..n).map(|_| random_flow(rng)).collect()
}

/// Permutation invariance: reordering the flow set permutes the rates
/// identically (no positional bias in the allocator).
#[test]
fn allocation_is_permutation_invariant() {
    let mut rng = SplitMix64::new(0x0de1_0001);
    for _case in 0..40 {
        let flows = random_flows(&mut rng, 2, 12);
        let alloc = OptaneAllocator::new(DeviceProfile::optane_gen1());
        let rates = alloc.allocate(&flows);
        let i = rng.range_usize(0, flows.len());
        let j = rng.range_usize(0, flows.len());
        let mut permuted = flows.clone();
        permuted.swap(i, j);
        let rates_p = alloc.allocate(&permuted);
        // Water-filling breaks ties among equal caps by position, so the
        // guarantee is equality up to float noise, not bitwise.
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * a.max(b).max(1.0);
        assert!(
            close(rates[i], rates_p[j]),
            "{} vs {}",
            rates[i],
            rates_p[j]
        );
        assert!(
            close(rates[j], rates_p[i]),
            "{} vs {}",
            rates[j],
            rates_p[i]
        );
        for k in 0..flows.len() {
            if k != i && k != j {
                assert!(close(rates[k], rates_p[k]));
            }
        }
    }
}

/// Equal flows get equal rates (fairness within a class).
#[test]
fn identical_flows_get_identical_rates() {
    let mut rng = SplitMix64::new(0x0de1_0002);
    for _case in 0..40 {
        let n = rng.range_usize(2, 24);
        let alloc = OptaneAllocator::new(DeviceProfile::optane_gen1());
        let f = flow(
            if rng.next_bool() {
                Direction::Read
            } else {
                Direction::Write
            },
            if rng.next_bool() {
                Locality::Remote
            } else {
                Locality::Local
            },
            1 << 20,
            1e-10,
        );
        let flows: Vec<FlowView> = (0..n).map(|_| f.clone()).collect();
        let rates = alloc.allocate(&flows);
        for r in &rates {
            assert!((r - rates[0]).abs() < 1e-6 * rates[0]);
        }
    }
}

/// Adding a flow never increases anyone else's rate once the device is
/// saturated (contention is monotone past the read-scaling knee).
///
/// The blanket version of this property is false for Optane and would
/// contradict the paper: local read bandwidth *scales* with concurrency up
/// to ~17 threads (§II-B / FAST'20 Fig. 4), so below the knee a new flow
/// raises the read class capacity and can legitimately speed existing
/// readers up. Past the knee every class-capacity curve is non-increasing
/// in effective concurrency, so monotonicity must hold. Flows use zero
/// software cost so duty cycles pin effective concurrency to the flow
/// count, keeping the whole sample in the saturated regime.
#[test]
fn adding_a_flow_never_speeds_others_up_once_saturated() {
    let mut rng = SplitMix64::new(0x0de1_0003);
    let saturated_flow = |rng: &mut SplitMix64| {
        let access = [2048u64, 4608, 1 << 20, 64 << 20][rng.range_usize(0, 4)];
        flow(
            if rng.next_bool() {
                Direction::Read
            } else {
                Direction::Write
            },
            if rng.next_bool() {
                Locality::Remote
            } else {
                Locality::Local
            },
            access,
            0.0,
        )
    };
    for _case in 0..40 {
        let n = rng.range_usize(18, 25);
        let flows: Vec<FlowView> = (0..n).map(|_| saturated_flow(&mut rng)).collect();
        let extra = saturated_flow(&mut rng);
        let alloc = OptaneAllocator::new(DeviceProfile::optane_gen1());
        let before = alloc.allocate(&flows);
        let mut more = flows.clone();
        more.push(extra);
        let after = alloc.allocate(&more);
        for (b, a) in before.iter().zip(after.iter()) {
            assert!(*a <= b * (1.0 + 5e-2), "rate rose from {b} to {a}");
        }
    }
}

/// Below the knee the opposite holds for reads: aggregate read throughput
/// grows with reader count (the paper's read-scaling characterization,
/// §II-B), which is exactly why the monotone-contention property above is
/// restricted to the saturated regime.
#[test]
fn read_aggregate_scales_below_saturation() {
    let alloc = OptaneAllocator::new(DeviceProfile::optane_gen1());
    let agg = |n: usize| {
        let flows: Vec<FlowView> = (0..n)
            .map(|_| flow(Direction::Read, Locality::Local, 64 << 20, 0.0))
            .collect();
        alloc.allocate(&flows).iter().sum::<f64>()
    };
    let mut prev = 0.0;
    for n in [1usize, 2, 4, 8, 12, 16] {
        let a = agg(n);
        assert!(
            a > prev * 1.05,
            "aggregate read rate stalled at n={n}: {a} vs {prev}"
        );
        prev = a;
    }
}

/// Class capacities never go negative or NaN anywhere in the space.
#[test]
fn class_capacity_is_finite_positive() {
    let mut rng = SplitMix64::new(0x0de1_0004);
    for _case in 0..40 {
        let n_total = rng.range_f64(0.0, 64.0);
        let n_remote = n_total * rng.next_f64();
        let access_pow = rng.range_u64(6, 27) as u32;
        let p = DeviceProfile::optane_gen1();
        for dir in [Direction::Read, Direction::Write] {
            for loc in [Locality::Local, Locality::Remote] {
                let c = p.class_capacity(dir, loc, 1u64 << access_pow, n_total, n_remote);
                assert!(c.is_finite() && c > 0.0, "{dir:?} {loc:?}: {c}");
            }
        }
    }
}

#[test]
fn gen1_placement_asymmetries_hold_at_scale() {
    // The two asymmetries the paper's placement decision rests on, checked
    // end-to-end through the allocator at 24 ranks.
    let alloc = OptaneAllocator::new(DeviceProfile::optane_gen1());
    let agg = |dir, loc| {
        let flows: Vec<FlowView> = (0..24).map(|_| flow(dir, loc, 64 << 20, 0.0)).collect();
        alloc.allocate(&flows).iter().sum::<f64>()
    };
    let wl = agg(Direction::Write, Locality::Local);
    let wr = agg(Direction::Write, Locality::Remote);
    let rl = agg(Direction::Read, Locality::Local);
    let rr = agg(Direction::Read, Locality::Remote);
    // Remote writes lose far more than remote reads.
    assert!((wl / wr) > (rl / rr) * 1.3, "{wl}/{wr} vs {rl}/{rr}");
    // Reads outscale writes at high concurrency.
    assert!(rl > 2.0 * wl);
}
