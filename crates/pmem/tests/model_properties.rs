//! Structural properties of the Optane allocator and profile that the
//! scheduling conclusions rely on.

use pmemflow_des::{Direction, FlowAttrs, FlowView, Locality, RateAllocator};
use pmemflow_pmem::{DeviceProfile, OptaneAllocator};
use proptest::prelude::*;

fn flow(dir: Direction, loc: Locality, access: u64, sw_tpb: f64) -> FlowView {
    let p = DeviceProfile::optane_gen1();
    FlowView {
        attrs: FlowAttrs {
            direction: dir,
            locality: loc,
            access_bytes: access,
            sw_time_per_byte: sw_tpb,
            peak_device_rate: p.single_thread_rate(dir, loc, access),
        },
        remaining: 1e9,
    }
}

fn arb_flow() -> impl Strategy<Value = FlowView> {
    (
        proptest::bool::ANY,
        proptest::bool::ANY,
        prop_oneof![Just(2048u64), Just(4608), Just(1 << 20), Just(64 << 20)],
        0u64..3000,
    )
        .prop_map(|(read, remote, access, sw_ns_per_kb)| {
            flow(
                if read { Direction::Read } else { Direction::Write },
                if remote { Locality::Remote } else { Locality::Local },
                access,
                sw_ns_per_kb as f64 * 1e-9 / 1024.0,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Permutation invariance: reordering the flow set permutes the rates
    /// identically (no positional bias in the allocator).
    #[test]
    fn allocation_is_permutation_invariant(
        flows in proptest::collection::vec(arb_flow(), 2..12),
        swap in (0usize..12, 0usize..12),
    ) {
        let alloc = OptaneAllocator::new(DeviceProfile::optane_gen1());
        let rates = alloc.allocate(&flows);
        let (i, j) = (swap.0 % flows.len(), swap.1 % flows.len());
        let mut permuted = flows.clone();
        permuted.swap(i, j);
        let rates_p = alloc.allocate(&permuted);
        // Water-filling breaks ties among equal caps by position, so the
        // guarantee is equality up to float noise, not bitwise.
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * a.max(b).max(1.0);
        prop_assert!(close(rates[i], rates_p[j]), "{} vs {}", rates[i], rates_p[j]);
        prop_assert!(close(rates[j], rates_p[i]), "{} vs {}", rates[j], rates_p[i]);
        for k in 0..flows.len() {
            if k != i && k != j {
                prop_assert!(close(rates[k], rates_p[k]));
            }
        }
    }

    /// Equal flows get equal rates (fairness within a class).
    #[test]
    fn identical_flows_get_identical_rates(
        n in 2usize..24,
        read in proptest::bool::ANY,
        remote in proptest::bool::ANY,
    ) {
        let alloc = OptaneAllocator::new(DeviceProfile::optane_gen1());
        let f = flow(
            if read { Direction::Read } else { Direction::Write },
            if remote { Locality::Remote } else { Locality::Local },
            1 << 20,
            1e-10,
        );
        let flows: Vec<FlowView> = (0..n).map(|_| f.clone()).collect();
        let rates = alloc.allocate(&flows);
        for r in &rates {
            prop_assert!((r - rates[0]).abs() < 1e-6 * rates[0]);
        }
    }

    /// Adding a flow never increases anyone else's rate (contention is
    /// monotone).
    #[test]
    fn adding_a_flow_never_speeds_others_up(
        flows in proptest::collection::vec(arb_flow(), 1..10),
        extra in arb_flow(),
    ) {
        let alloc = OptaneAllocator::new(DeviceProfile::optane_gen1());
        let before = alloc.allocate(&flows);
        let mut more = flows.clone();
        more.push(extra);
        let after = alloc.allocate(&more);
        for (b, a) in before.iter().zip(after.iter()) {
            prop_assert!(*a <= b * (1.0 + 5e-2), "rate rose from {b} to {a}");
        }
    }

    /// Class capacities never go negative or NaN anywhere in the space.
    #[test]
    fn class_capacity_is_finite_positive(
        n_total in 0.0f64..64.0,
        n_remote_frac in 0.0f64..1.0,
        access_pow in 6u32..27,
    ) {
        let p = DeviceProfile::optane_gen1();
        let n_remote = n_total * n_remote_frac;
        for dir in [Direction::Read, Direction::Write] {
            for loc in [Locality::Local, Locality::Remote] {
                let c = p.class_capacity(dir, loc, 1u64 << access_pow, n_total, n_remote);
                prop_assert!(c.is_finite() && c > 0.0, "{dir:?} {loc:?}: {c}");
            }
        }
    }
}

#[test]
fn gen1_placement_asymmetries_hold_at_scale() {
    // The two asymmetries the paper's placement decision rests on, checked
    // end-to-end through the allocator at 24 ranks.
    let alloc = OptaneAllocator::new(DeviceProfile::optane_gen1());
    let agg = |dir, loc| {
        let flows: Vec<FlowView> = (0..24).map(|_| flow(dir, loc, 64 << 20, 0.0)).collect();
        alloc.allocate(&flows).iter().sum::<f64>()
    };
    let wl = agg(Direction::Write, Locality::Local);
    let wr = agg(Direction::Write, Locality::Remote);
    let rl = agg(Direction::Read, Locality::Local);
    let rr = agg(Direction::Read, Locality::Remote);
    // Remote writes lose far more than remote reads.
    assert!((wl / wr) > (rl / rr) * 1.3, "{wl}/{wr} vs {rl}/{rr}");
    // Reads outscale writes at high concurrency.
    assert!(rl > 2.0 * wl);
}
