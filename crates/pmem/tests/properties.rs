//! Property-based tests of the device-model primitives.

use pmemflow_pmem::{
    Curve, DeviceProfile, InterleaveGeometry, Interleaver, PmemRegion, StoreMode, XpBuffer,
    XPLINE_BYTES,
};
use proptest::prelude::*;

proptest! {
    /// Curve evaluation stays within the convex hull of the calibration
    /// points and clamps at the boundaries.
    #[test]
    fn curve_eval_is_bounded(
        points in proptest::collection::btree_map(0u32..1000, 0f64..100.0, 2..10),
        x in -10f64..2000.0,
    ) {
        let pts: Vec<(f64, f64)> = points.into_iter().map(|(x, y)| (x as f64, y)).collect();
        let lo = pts.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
        let hi = pts.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
        let c = Curve::new(pts);
        let y = c.eval(x);
        prop_assert!(y >= lo - 1e-9 && y <= hi + 1e-9);
    }

    /// Interleaver segments partition any range exactly, each within one
    /// chunk, with consistent DIMM assignment.
    #[test]
    fn interleaver_segments_partition(
        dimms in 1usize..8,
        chunk_pow in 8u32..14,
        offset in 0u64..1_000_000,
        len in 0u64..500_000,
    ) {
        let chunk = 1u64 << chunk_pow;
        let il = Interleaver::new(InterleaveGeometry { dimms, chunk_bytes: chunk });
        let segs = il.segments(offset, len);
        let total: u64 = segs.iter().map(|s| s.len).sum();
        prop_assert_eq!(total, len);
        let mut pos = offset;
        for seg in &segs {
            prop_assert_eq!(seg.offset, pos);
            prop_assert!(seg.len <= chunk);
            prop_assert_eq!(seg.dimm, il.dimm_of(seg.offset));
            // A segment never crosses a chunk boundary.
            prop_assert_eq!(seg.offset / chunk, (seg.offset + seg.len - 1).max(seg.offset) / chunk);
            pos += seg.len;
        }
    }

    /// Region: read-your-writes for arbitrary offsets/sizes/modes, and
    /// persisted data survives a crash.
    #[test]
    fn region_read_your_writes_and_durability(
        offset in 0u64..60_000,
        data in proptest::collection::vec(any::<u8>(), 1..2000),
        cached in proptest::bool::ANY,
    ) {
        let mut r = PmemRegion::new(1 << 16, InterleaveGeometry { dimms: 6, chunk_bytes: 4096 });
        prop_assume!(offset as usize + data.len() <= r.len());
        let mode = if cached { StoreMode::Cached } else { StoreMode::NonTemporal };
        r.write(offset, &data, mode);
        let mut out = vec![0u8; data.len()];
        r.read(offset, &mut out);
        prop_assert_eq!(&out, &data);
        // Persist and crash: still there.
        r.persist(offset, data.len() as u64);
        r.crash();
        let mut out2 = vec![0u8; data.len()];
        r.read(offset, &mut out2);
        prop_assert_eq!(&out2, &data);
    }

    /// Region: unpersisted data never survives a crash (reads return the
    /// pre-write contents).
    #[test]
    fn region_unpersisted_is_lost(
        offset in 0u64..60_000,
        data in proptest::collection::vec(1u8..=255, 1..2000),
        cached in proptest::bool::ANY,
    ) {
        let mut r = PmemRegion::new(1 << 16, InterleaveGeometry { dimms: 6, chunk_bytes: 4096 });
        prop_assume!(offset as usize + data.len() <= r.len());
        let mode = if cached { StoreMode::Cached } else { StoreMode::NonTemporal };
        r.write(offset, &data, mode);
        r.crash();
        let mut out = vec![0xEEu8; data.len()];
        r.read(offset, &mut out);
        prop_assert!(out.iter().all(|&b| b == 0), "unpersisted bytes visible after crash");
    }

    /// XPBuffer: write amplification is always within [1, 4] once drained,
    /// and media bytes are a multiple of the XPLine size.
    #[test]
    fn xpbuffer_amplification_bounds(
        writes in proptest::collection::vec((0u64..100_000, 1u64..2048), 1..200),
    ) {
        let mut buf = XpBuffer::new(16 * 1024);
        for (off, len) in &writes {
            buf.write(*off, *len);
        }
        buf.drain();
        let s = buf.stats();
        prop_assert_eq!(s.media_bytes % XPLINE_BYTES, 0);
        // Amplification can't exceed (XPLINE per touched line) / 1 byte,
        // but with ≥1-byte writes it is at most 256; with drained buffer
        // it is at least... media ≥ host only when writes don't coalesce;
        // the hard invariant is media ≥ lines touched × 256 ≥ host/256.
        prop_assert!(s.write_amplification() >= 1.0 / 256.0);
        prop_assert!(s.media_bytes >= s.host_bytes / 256);
    }

    /// single_thread_rate is monotone in access size for every class.
    #[test]
    fn single_thread_rate_monotone_in_size(sizes in proptest::collection::vec(6u32..26, 2..8)) {
        use pmemflow_des::{Direction, Locality};
        let p = DeviceProfile::optane_gen1();
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        for dir in [Direction::Read, Direction::Write] {
            for loc in [Locality::Local, Locality::Remote] {
                let mut prev = 0.0;
                for pow in &sorted {
                    let rate = p.single_thread_rate(dir, loc, 1u64 << pow);
                    prop_assert!(rate >= prev - 1e-6, "{dir:?} {loc:?} at 2^{pow}");
                    prev = rate;
                }
            }
        }
    }
}
