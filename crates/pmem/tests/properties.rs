//! Randomized-but-deterministic tests of the device-model primitives
//! (seeded generator, reproducible failures).

use pmemflow_des::rng::SplitMix64;
use pmemflow_pmem::{
    Curve, DeviceProfile, InterleaveGeometry, Interleaver, PmemRegion, StoreMode, XpBuffer,
    XPLINE_BYTES,
};
use std::collections::BTreeMap;

/// Curve evaluation stays within the convex hull of the calibration points
/// and clamps at the boundaries.
#[test]
fn curve_eval_is_bounded() {
    let mut rng = SplitMix64::new(0xc0_0001);
    for _case in 0..256 {
        let n = rng.range_usize(2, 10);
        let mut points: BTreeMap<u32, f64> = BTreeMap::new();
        while points.len() < n {
            points.insert(rng.range_u64(0, 1000) as u32, rng.range_f64(0.0, 100.0));
        }
        let x = rng.range_f64(-10.0, 2000.0);
        let pts: Vec<(f64, f64)> = points.into_iter().map(|(x, y)| (x as f64, y)).collect();
        let lo = pts.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
        let hi = pts.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
        let c = Curve::new(pts);
        let y = c.eval(x);
        assert!(y >= lo - 1e-9 && y <= hi + 1e-9);
    }
}

/// Interleaver segments partition any range exactly, each within one
/// chunk, with consistent DIMM assignment.
#[test]
fn interleaver_segments_partition() {
    let mut rng = SplitMix64::new(0xc0_0002);
    for _case in 0..256 {
        let dimms = rng.range_usize(1, 8);
        let chunk = 1u64 << rng.range_u64(8, 14);
        let offset = rng.range_u64(0, 1_000_000);
        let len = rng.range_u64(0, 500_000);
        let il = Interleaver::new(InterleaveGeometry {
            dimms,
            chunk_bytes: chunk,
        });
        let segs = il.segments(offset, len);
        let total: u64 = segs.iter().map(|s| s.len).sum();
        assert_eq!(total, len);
        let mut pos = offset;
        for seg in &segs {
            assert_eq!(seg.offset, pos);
            assert!(seg.len <= chunk);
            assert_eq!(seg.dimm, il.dimm_of(seg.offset));
            // A segment never crosses a chunk boundary.
            assert_eq!(
                seg.offset / chunk,
                (seg.offset + seg.len - 1).max(seg.offset) / chunk
            );
            pos += seg.len;
        }
    }
}

/// Region: read-your-writes for arbitrary offsets/sizes/modes, and
/// persisted data survives a crash.
#[test]
fn region_read_your_writes_and_durability() {
    let mut rng = SplitMix64::new(0xc0_0003);
    let mut cases = 0;
    while cases < 256 {
        let offset = rng.range_u64(0, 60_000);
        let len = rng.range_usize(1, 2000);
        let data = rng.bytes(len);
        let cached = rng.next_bool();
        let mut r = PmemRegion::new(
            1 << 16,
            InterleaveGeometry {
                dimms: 6,
                chunk_bytes: 4096,
            },
        );
        if offset as usize + data.len() > r.len() {
            continue;
        }
        cases += 1;
        let mode = if cached {
            StoreMode::Cached
        } else {
            StoreMode::NonTemporal
        };
        r.write(offset, &data, mode);
        let mut out = vec![0u8; data.len()];
        r.read(offset, &mut out);
        assert_eq!(&out, &data);
        // Persist and crash: still there.
        r.persist(offset, data.len() as u64);
        r.crash();
        let mut out2 = vec![0u8; data.len()];
        r.read(offset, &mut out2);
        assert_eq!(&out2, &data);
    }
}

/// Region: unpersisted data never survives a crash (reads return the
/// pre-write contents).
#[test]
fn region_unpersisted_is_lost() {
    let mut rng = SplitMix64::new(0xc0_0004);
    let mut cases = 0;
    while cases < 256 {
        let offset = rng.range_u64(0, 60_000);
        let len = rng.range_usize(1, 2000);
        let mut data = rng.bytes(len);
        for b in &mut data {
            *b = (*b % 255) + 1; // 1..=255, never 0
        }
        let cached = rng.next_bool();
        let mut r = PmemRegion::new(
            1 << 16,
            InterleaveGeometry {
                dimms: 6,
                chunk_bytes: 4096,
            },
        );
        if offset as usize + data.len() > r.len() {
            continue;
        }
        cases += 1;
        let mode = if cached {
            StoreMode::Cached
        } else {
            StoreMode::NonTemporal
        };
        r.write(offset, &data, mode);
        r.crash();
        let mut out = vec![0xEEu8; data.len()];
        r.read(offset, &mut out);
        assert!(
            out.iter().all(|&b| b == 0),
            "unpersisted bytes visible after crash"
        );
    }
}

/// XPBuffer: write amplification is always within bounds once drained,
/// and media bytes are a multiple of the XPLine size.
#[test]
fn xpbuffer_amplification_bounds() {
    let mut rng = SplitMix64::new(0xc0_0005);
    for _case in 0..256 {
        let n_writes = rng.range_usize(1, 200);
        let mut buf = XpBuffer::new(16 * 1024);
        for _ in 0..n_writes {
            buf.write(rng.range_u64(0, 100_000), rng.range_u64(1, 2048));
        }
        buf.drain();
        let s = buf.stats();
        assert_eq!(s.media_bytes % XPLINE_BYTES, 0);
        // Amplification can't exceed (XPLINE per touched line) / 1 byte,
        // but with ≥1-byte writes it is at most 256; with drained buffer
        // it is at least... media ≥ host only when writes don't coalesce;
        // the hard invariant is media ≥ lines touched × 256 ≥ host/256.
        assert!(s.write_amplification() >= 1.0 / 256.0);
        assert!(s.media_bytes >= s.host_bytes / 256);
    }
}

/// single_thread_rate is monotone in access size for every class.
#[test]
fn single_thread_rate_monotone_in_size() {
    use pmemflow_des::{Direction, Locality};
    let mut rng = SplitMix64::new(0xc0_0006);
    for _case in 0..256 {
        let n = rng.range_usize(2, 8);
        let mut sorted: Vec<u32> = (0..n).map(|_| rng.range_u64(6, 26) as u32).collect();
        sorted.sort_unstable();
        let p = DeviceProfile::optane_gen1();
        for dir in [Direction::Read, Direction::Write] {
            for loc in [Locality::Local, Locality::Remote] {
                let mut prev = 0.0;
                for pow in &sorted {
                    let rate = p.single_thread_rate(dir, loc, 1u64 << pow);
                    assert!(rate >= prev - 1e-6, "{dir:?} {loc:?} at 2^{pow}");
                    prev = rate;
                }
            }
        }
    }
}
