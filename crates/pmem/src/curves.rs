//! Piecewise-linear empirical curves.
//!
//! The Optane model is driven by bandwidth-versus-concurrency curves taken
//! from the paper (§II-B) and from the measurement studies it builds on
//! (Yang et al. FAST'20, Izraelevitz et al. arXiv:1903.05714, Peng et al.
//! MEMSYS'19). A [`Curve`] interpolates linearly between calibration points
//! and clamps outside the measured range — extrapolating device behaviour
//! beyond measurements would invent data.

/// A piecewise-linear curve defined by `(x, y)` points with strictly
/// increasing `x`. Evaluation clamps to the first/last point outside the
/// domain.
#[derive(Debug, Clone, PartialEq)]
pub struct Curve {
    points: Vec<(f64, f64)>,
}

impl Curve {
    /// Build from calibration points. Panics if fewer than one point is
    /// given or if `x` values are not strictly increasing.
    pub fn new(points: Vec<(f64, f64)>) -> Self {
        assert!(!points.is_empty(), "a curve needs at least one point");
        for w in points.windows(2) {
            assert!(
                w[1].0 > w[0].0,
                "curve x values must be strictly increasing ({} !< {})",
                w[0].0,
                w[1].0
            );
        }
        for &(x, y) in &points {
            assert!(
                x.is_finite() && y.is_finite(),
                "curve points must be finite"
            );
        }
        Self { points }
    }

    /// Convenience constructor from a slice.
    pub fn from_points(points: &[(f64, f64)]) -> Self {
        Self::new(points.to_vec())
    }

    /// Evaluate at `x` with linear interpolation and boundary clamping.
    pub fn eval(&self, x: f64) -> f64 {
        let pts = &self.points;
        if x <= pts[0].0 {
            return pts[0].1;
        }
        if x >= pts[pts.len() - 1].0 {
            return pts[pts.len() - 1].1;
        }
        // Binary search for the surrounding segment.
        let mut lo = 0;
        let mut hi = pts.len() - 1;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if pts[mid].0 <= x {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let (x0, y0) = pts[lo];
        let (x1, y1) = pts[hi];
        y0 + (y1 - y0) * (x - x0) / (x1 - x0)
    }

    /// The largest `y` over the calibration points (the curve's peak).
    pub fn peak(&self) -> f64 {
        self.points.iter().map(|p| p.1).fold(f64::MIN, f64::max)
    }

    /// The `x` of the peak `y` (first occurrence).
    pub fn peak_x(&self) -> f64 {
        let peak = self.peak();
        self.points
            .iter()
            .find(|p| p.1 == peak)
            .map(|p| p.0)
            .unwrap_or(0.0)
    }

    /// The calibration points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// A new curve with every `y` multiplied by `factor`.
    pub fn scaled(&self, factor: f64) -> Curve {
        Curve::new(self.points.iter().map(|&(x, y)| (x, y * factor)).collect())
    }
}

/// Interpolate a value on a log2(size) axis between a small-access plateau
/// and a large-access plateau. Used for single-thread bandwidth as a
/// function of access (object) granularity: tiny accesses waste stripe and
/// XPLine bandwidth, large streaming accesses reach the device peak.
pub fn log_size_interp(
    size_bytes: u64,
    small_size: u64,
    small_value: f64,
    large_size: u64,
    large_value: f64,
) -> f64 {
    assert!(small_size < large_size);
    if size_bytes <= small_size {
        return small_value;
    }
    if size_bytes >= large_size {
        return large_value;
    }
    let t = ((size_bytes as f64).ln() - (small_size as f64).ln())
        / ((large_size as f64).ln() - (small_size as f64).ln());
    small_value + (large_value - small_value) * t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_interpolates() {
        let c = Curve::from_points(&[(0.0, 0.0), (10.0, 100.0)]);
        assert_eq!(c.eval(5.0), 50.0);
        assert_eq!(c.eval(2.5), 25.0);
    }

    #[test]
    fn eval_clamps() {
        let c = Curve::from_points(&[(1.0, 10.0), (2.0, 20.0)]);
        assert_eq!(c.eval(0.0), 10.0);
        assert_eq!(c.eval(3.0), 20.0);
    }

    #[test]
    fn eval_multi_segment() {
        let c = Curve::from_points(&[(0.0, 0.0), (4.0, 13.9), (24.0, 10.4)]);
        assert!((c.eval(2.0) - 6.95).abs() < 1e-12);
        assert!((c.eval(14.0) - (13.9 + (10.4 - 13.9) * 0.5)).abs() < 1e-12);
    }

    #[test]
    fn peak_and_peak_x() {
        let c = Curve::from_points(&[(0.0, 0.0), (4.0, 13.9), (24.0, 10.4)]);
        assert_eq!(c.peak(), 13.9);
        assert_eq!(c.peak_x(), 4.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted() {
        Curve::from_points(&[(1.0, 0.0), (1.0, 5.0)]);
    }

    #[test]
    fn scaled_multiplies() {
        let c = Curve::from_points(&[(0.0, 2.0), (1.0, 4.0)]).scaled(0.5);
        assert_eq!(c.eval(0.0), 1.0);
        assert_eq!(c.eval(1.0), 2.0);
    }

    #[test]
    fn log_interp_plateaus_and_middle() {
        let v = log_size_interp(1024, 4096, 1.0, 1 << 20, 4.0);
        assert_eq!(v, 1.0);
        let v = log_size_interp(1 << 21, 4096, 1.0, 1 << 20, 4.0);
        assert_eq!(v, 4.0);
        let mid = log_size_interp(65536, 4096, 1.0, 1 << 20, 4.0);
        assert!(mid > 1.0 && mid < 4.0);
    }

    #[test]
    fn log_interp_is_monotone() {
        let mut prev = 0.0;
        for shift in 11..=21 {
            let v = log_size_interp(1u64 << shift, 4096, 1.0, 1 << 20, 4.0);
            assert!(v >= prev);
            prev = v;
        }
    }
}
