//! Mechanistic DIMM-queue simulation.
//!
//! The profile curves are *empirical*; this module derives the
//! granularity effect mechanistically, validating the
//! `small_access_efficiency` constant: threads issue accesses that the
//! interleaver maps to DIMMs, each DIMM serves its queue at a fixed
//! per-module bandwidth, and the aggregate throughput emerges. Sub-stripe
//! accesses land on a single module, so concurrent threads collide on
//! DIMMs (birthday-style) and lose throughput; stripe-multiple accesses
//! spread evenly and scale until the module bandwidth sums out.
//!
//! Deterministic: thread access offsets come from a fixed LCG stream.
//!
//! This is the paper's §II-B "Access granularity" mechanism: "With 4KB
//! accesses, multiple threads eventually end up contending for the same
//! Optane DIMM module."

use crate::interleave::Interleaver;
use crate::profile::InterleaveGeometry;

/// Result of a DIMM-level replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DimmSimResult {
    /// Aggregate throughput achieved, bytes/second.
    pub throughput: f64,
    /// Aggregate throughput a perfectly balanced load would achieve.
    pub ideal_throughput: f64,
    /// `throughput / ideal_throughput` ∈ (0, 1].
    pub efficiency: f64,
    /// Max over mean of per-DIMM service time (1.0 = perfectly balanced).
    pub imbalance: f64,
}

/// Deterministic 64-bit LCG (Knuth's MMIX constants).
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state
}

/// Replay `accesses_per_thread` accesses of `access_bytes` from each of
/// `threads` threads at uniformly random (deterministic) offsets of a
/// `region_bytes` region, through per-DIMM FIFO queues of
/// `dimm_bandwidth` bytes/s each. Threads are fully concurrent and the
/// run ends when the last DIMM drains, so the aggregate throughput is
/// `total_bytes / max_dimm_busy_time`.
pub fn simulate_random_access(
    geometry: &InterleaveGeometry,
    threads: usize,
    accesses_per_thread: usize,
    access_bytes: u64,
    dimm_bandwidth: f64,
    region_bytes: u64,
) -> DimmSimResult {
    assert!(threads > 0 && accesses_per_thread > 0 && access_bytes > 0);
    assert!(dimm_bandwidth > 0.0);
    let il = Interleaver::new(geometry.clone());
    let mut per_dimm_bytes = vec![0u64; geometry.dimms];
    let mut state = 0x9e37_79b9_7f4a_7c15u64 ^ (threads as u64) << 32 ^ access_bytes;
    let slots = (region_bytes / access_bytes).max(1);
    for _ in 0..threads {
        for _ in 0..accesses_per_thread {
            let slot = lcg(&mut state) % slots;
            let offset = slot * access_bytes;
            for seg in il.segments(offset, access_bytes) {
                per_dimm_bytes[seg.dimm] += seg.len;
            }
        }
    }
    let total_bytes: u64 = per_dimm_bytes.iter().sum();
    let max_bytes = *per_dimm_bytes.iter().max().unwrap();
    let mean_bytes = total_bytes as f64 / geometry.dimms as f64;
    // Every DIMM drains concurrently; the slowest one gates completion.
    let makespan = max_bytes as f64 / dimm_bandwidth;
    let throughput = total_bytes as f64 / makespan;
    let ideal = dimm_bandwidth * geometry.dimms as f64;
    DimmSimResult {
        throughput,
        ideal_throughput: ideal,
        efficiency: throughput / ideal,
        imbalance: max_bytes as f64 / mean_bytes.max(1.0),
    }
}

/// Sweep access sizes and report the efficiency for each — the
/// mechanistic counterpart of `DeviceProfile::small_access_efficiency`.
pub fn granularity_sweep(
    geometry: &InterleaveGeometry,
    threads: usize,
    sizes: &[u64],
    dimm_bandwidth: f64,
) -> Vec<(u64, f64)> {
    sizes
        .iter()
        .map(|&size| {
            let r = simulate_random_access(geometry, threads, 2048, size, dimm_bandwidth, 1 << 30);
            (size, r.efficiency)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_geometry() -> InterleaveGeometry {
        InterleaveGeometry {
            dimms: 6,
            chunk_bytes: 4096,
        }
    }

    #[test]
    fn stripe_multiple_accesses_are_near_ideal() {
        let g = paper_geometry();
        let r = simulate_random_access(&g, 8, 1000, g.stripe_bytes() * 4, 2.3e9, 1 << 30);
        assert!(r.efficiency > 0.95, "efficiency {}", r.efficiency);
        assert!(r.imbalance < 1.05);
    }

    #[test]
    fn sub_stripe_accesses_lose_throughput_under_concurrency() {
        let g = paper_geometry();
        // 4 KB random accesses from 8 threads: single-DIMM hits collide.
        let small = simulate_random_access(&g, 8, 2000, 4096, 2.3e9, 1 << 30);
        let large = simulate_random_access(&g, 8, 200, g.stripe_bytes() * 8, 2.3e9, 1 << 30);
        assert!(
            small.efficiency < large.efficiency - 0.02,
            "small {} vs large {}",
            small.efficiency,
            large.efficiency
        );
        // The mechanistic efficiency lands in the vicinity of the
        // profile's calibrated small-access factor (0.82 ± a wide margin).
        assert!(
            small.efficiency > 0.6 && small.efficiency < 0.99,
            "efficiency {}",
            small.efficiency
        );
    }

    #[test]
    fn granularity_sweep_is_increasing() {
        let g = paper_geometry();
        let sweep = granularity_sweep(&g, 12, &[2048, 4096, 24576, 98304], 2.3e9);
        assert_eq!(sweep.len(), 4);
        // Efficiency at stripe multiples beats sub-stripe sizes.
        assert!(sweep[3].1 > sweep[0].1);
    }

    #[test]
    fn deterministic() {
        let g = paper_geometry();
        let a = simulate_random_access(&g, 7, 500, 4096, 1e9, 1 << 28);
        let b = simulate_random_access(&g, 7, 500, 4096, 1e9, 1 << 28);
        assert_eq!(a, b);
    }

    #[test]
    fn single_thread_single_dimm_access() {
        let g = paper_geometry();
        // One thread, sub-stripe: all bytes land on some DIMMs but each
        // access on one; throughput can never exceed ideal.
        let r = simulate_random_access(&g, 1, 100, 2048, 1e9, 1 << 24);
        assert!(r.throughput <= r.ideal_throughput * (1.0 + 1e-9));
        assert!(r.efficiency > 0.0);
    }
}
