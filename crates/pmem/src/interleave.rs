//! DIMM interleaving (RAID-0-style striping).
//!
//! Optane sockets interleave physical addresses across the DIMM set in
//! fixed-size chunks: the paper's testbed stripes 4 KB chunks across 6
//! modules, giving a 24 KB stripe (§II-B "Access granularity"). The
//! interleaver maps region offsets to (DIMM, offset-within-DIMM) and
//! decomposes ranges into per-DIMM segments, which the region uses for
//! traffic accounting and which explains the small-access collision
//! penalty: a 4 KB access touches exactly one DIMM, so concurrent threads
//! randomly collide on modules with limited per-DIMM bandwidth.

use crate::profile::InterleaveGeometry;

/// Maps region offsets to DIMM modules under an interleave geometry.
#[derive(Debug, Clone)]
pub struct Interleaver {
    geometry: InterleaveGeometry,
}

/// A contiguous piece of an access that lands on a single DIMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DimmSegment {
    /// Which DIMM the bytes land on.
    pub dimm: usize,
    /// Offset within the region (not within the DIMM).
    pub offset: u64,
    /// Segment length in bytes.
    pub len: u64,
}

impl Interleaver {
    /// Build an interleaver for the given geometry.
    pub fn new(geometry: InterleaveGeometry) -> Self {
        assert!(geometry.dimms > 0, "need at least one DIMM");
        assert!(geometry.chunk_bytes > 0, "chunk must be non-empty");
        Self { geometry }
    }

    /// The geometry in use.
    pub fn geometry(&self) -> &InterleaveGeometry {
        &self.geometry
    }

    /// The DIMM holding the byte at `offset`.
    pub fn dimm_of(&self, offset: u64) -> usize {
        ((offset / self.geometry.chunk_bytes) % self.geometry.dimms as u64) as usize
    }

    /// Decompose `[offset, offset + len)` into per-DIMM segments, in
    /// address order.
    pub fn segments(&self, offset: u64, len: u64) -> Vec<DimmSegment> {
        let mut out = Vec::new();
        let chunk = self.geometry.chunk_bytes;
        let mut pos = offset;
        let end = offset + len;
        while pos < end {
            let chunk_end = (pos / chunk + 1) * chunk;
            let seg_end = chunk_end.min(end);
            out.push(DimmSegment {
                dimm: self.dimm_of(pos),
                offset: pos,
                len: seg_end - pos,
            });
            pos = seg_end;
        }
        out
    }

    /// Bytes per DIMM for `[offset, offset + len)`.
    pub fn bytes_per_dimm(&self, offset: u64, len: u64) -> Vec<u64> {
        let mut out = vec![0u64; self.geometry.dimms];
        for seg in self.segments(offset, len) {
            out[seg.dimm] += seg.len;
        }
        out
    }

    /// Imbalance of an access: max over mean of per-DIMM byte counts.
    /// 1.0 means a perfectly balanced (stripe-multiple) access; a 4 KB
    /// access on the 6-DIMM geometry returns 6.0 (all bytes on one module).
    pub fn imbalance(&self, offset: u64, len: u64) -> f64 {
        if len == 0 {
            return 1.0;
        }
        let per = self.bytes_per_dimm(offset, len);
        let max = *per.iter().max().unwrap() as f64;
        let mean = len as f64 / self.geometry.dimms as f64;
        max / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_geometry() -> InterleaveGeometry {
        InterleaveGeometry {
            dimms: 6,
            chunk_bytes: 4096,
        }
    }

    #[test]
    fn dimm_of_cycles_through_modules() {
        let il = Interleaver::new(paper_geometry());
        for d in 0..6 {
            assert_eq!(il.dimm_of(d as u64 * 4096), d);
            assert_eq!(il.dimm_of(d as u64 * 4096 + 4095), d);
        }
        // Wraps after a full stripe.
        assert_eq!(il.dimm_of(6 * 4096), 0);
    }

    #[test]
    fn segments_cover_range_exactly() {
        let il = Interleaver::new(paper_geometry());
        let segs = il.segments(1000, 10_000);
        let total: u64 = segs.iter().map(|s| s.len).sum();
        assert_eq!(total, 10_000);
        assert_eq!(segs[0].offset, 1000);
        // Contiguous.
        for w in segs.windows(2) {
            assert_eq!(w[0].offset + w[0].len, w[1].offset);
        }
    }

    #[test]
    fn full_stripe_is_balanced() {
        let il = Interleaver::new(paper_geometry());
        let per = il.bytes_per_dimm(0, 24 * 1024);
        assert!(per.iter().all(|&b| b == 4096));
        assert_eq!(il.imbalance(0, 24 * 1024), 1.0);
    }

    #[test]
    fn small_access_hits_one_dimm() {
        let il = Interleaver::new(paper_geometry());
        let per = il.bytes_per_dimm(0, 2048);
        assert_eq!(per[0], 2048);
        assert!(per[1..].iter().all(|&b| b == 0));
        assert_eq!(il.imbalance(0, 2048), 6.0);
    }

    #[test]
    fn large_access_imbalance_approaches_one() {
        let il = Interleaver::new(paper_geometry());
        // 64 MB is 2730 stripes plus change: nearly perfectly balanced.
        let imb = il.imbalance(0, 64 << 20);
        assert!(imb < 1.01, "imbalance {imb}");
    }

    #[test]
    fn unaligned_access_spanning_chunk_boundary() {
        let il = Interleaver::new(paper_geometry());
        let segs = il.segments(4000, 200);
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].dimm, 0);
        assert_eq!(segs[0].len, 96);
        assert_eq!(segs[1].dimm, 1);
        assert_eq!(segs[1].len, 104);
    }

    #[test]
    fn zero_length_range() {
        let il = Interleaver::new(paper_geometry());
        assert!(il.segments(123, 0).is_empty());
        assert_eq!(il.imbalance(123, 0), 1.0);
    }
}
