//! The Optane rate allocator — the heart of the performance model.
//!
//! Given the set of flows with in-flight I/O, the allocator decides how fast
//! each one progresses. The model:
//!
//! 1. **Effective concurrency.** A flow whose operations are dominated by
//!    software cost occupies the device only for its *duty cycle*. The
//!    device sees `n_eff = Σ duty_i`, not the rank count — reproducing the
//!    paper's observation that high software overheads (small objects,
//!    filesystem paths) lower PMEM contention (§VIII).
//! 2. **Class capacities.** Each (direction × locality) class has an
//!    aggregate capacity from the profile's empirical curves, evaluated at
//!    the effective concurrency, with the small-access DIMM-collision
//!    penalty applied per §II-B.
//! 3. **Normalized water-filling.** The device is one server: a flow
//!    progressing at end-to-end rate `r` against a class capacity `C`
//!    consumes `r / C` of the device's time on average. The budget is 1.0
//!    for a homogeneous flow set; when reads and writes overlap it follows
//!    the concurrency-dependent `mix_budget` curve (below 1 at scale —
//!    Optane mixes degrade worse than time-sharing), with an extra
//!    `small_mix_budget` factor when sub-stripe accesses are involved.
//!    Max-min fairness with per-flow intrinsic-rate caps.
//! 4. **Fixed point.** Duty cycles depend on allocated rates and vice
//!    versa; a few damped iterations converge (the mapping is monotone and
//!    bounded).
//!
//! The returned rates are *end-to-end* (software time included), which is
//! what the fluid engine integrates.

use crate::profile::DeviceProfile;
use pmemflow_des::{water_fill, Direction, FlowView, Locality, RateAllocator};

/// Rate allocator implementing the Optane contention model for one socket's
/// PMEM device.
#[derive(Debug, Clone)]
pub struct OptaneAllocator {
    profile: DeviceProfile,
}

impl OptaneAllocator {
    /// Build an allocator from a device profile.
    pub fn new(profile: DeviceProfile) -> Self {
        Self { profile }
    }

    /// The profile in use.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// One allocation round: returns (end-to-end rates, duty cycles).
    fn round(&self, flows: &[FlowView], duty: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let n_eff_total: f64 = duty.iter().sum();
        let n_eff_remote: f64 = flows
            .iter()
            .zip(duty.iter())
            .filter(|(f, _)| f.attrs.locality == Locality::Remote)
            .map(|(_, d)| *d)
            .sum();

        let caps_class: Vec<f64> = flows
            .iter()
            .map(|f| {
                self.profile.class_capacity(
                    f.attrs.direction,
                    f.attrs.locality,
                    f.attrs.access_bytes,
                    n_eff_total.max(1.0),
                    n_eff_remote,
                )
            })
            .collect();

        let (mixed, any_small) = {
            let mut has_r = false;
            let mut has_w = false;
            let mut small = false;
            let stripe = self.profile.geometry.stripe_bytes();
            for f in flows {
                match f.attrs.direction {
                    Direction::Read => has_r = true,
                    Direction::Write => has_w = true,
                }
                small |= f.attrs.access_bytes < stripe;
            }
            (has_r && has_w, small)
        };
        let budget = if mixed {
            let b = self.profile.mix_budget.eval(n_eff_total);
            if any_small {
                b * self.profile.small_mix_budget.eval(n_eff_total)
            } else {
                b
            }
        } else {
            1.0
        };

        // Normalized water-filling on *end-to-end* rates: a flow running at
        // end-to-end rate `r` against class capacity `C` consumes `r / C`
        // of the device on average (its software time is off-device), so
        // the budget constraint is Σ rᵢ/Cᵢ ≤ B with per-flow caps at the
        // intrinsic (uncontended) rate.
        let x_caps: Vec<f64> = flows
            .iter()
            .zip(caps_class.iter())
            .map(|(f, &c)| (f.attrs.intrinsic_rate() / c).min(1.0))
            .collect();
        let x = water_fill(&x_caps, budget);

        let mut rates = Vec::with_capacity(flows.len());
        let mut new_duty = Vec::with_capacity(flows.len());
        for ((f, &xi), &c) in flows.iter().zip(x.iter()).zip(caps_class.iter()) {
            let r = (xi * c).min(f.attrs.intrinsic_rate()).max(1.0);
            rates.push(r);
            new_duty.push(f.attrs.duty_cycle(r).clamp(0.02, 1.0));
        }
        (rates, new_duty)
    }
}

impl RateAllocator for OptaneAllocator {
    fn allocate(&self, flows: &[FlowView]) -> Vec<f64> {
        if flows.is_empty() {
            return Vec::new();
        }
        // Start from full duty (pessimistic: maximum contention) and relax.
        let mut duty = vec![1.0f64; flows.len()];
        let mut rates = Vec::new();
        for _ in 0..self.profile.duty_iterations {
            let (r, d) = self.round(flows, &duty);
            rates = r;
            // Damped update for stability.
            for (old, new) in duty.iter_mut().zip(d.iter()) {
                *old = 0.5 * *old + 0.5 * *new;
            }
        }
        rates
    }

    fn name(&self) -> &str {
        "optane"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::GB;
    use pmemflow_des::FlowAttrs;

    fn profile() -> DeviceProfile {
        DeviceProfile::optane_gen1()
    }

    fn flow(dir: Direction, loc: Locality, access: u64, sw_tpb: f64) -> FlowView {
        let p = profile();
        FlowView {
            attrs: FlowAttrs {
                direction: dir,
                locality: loc,
                access_bytes: access,
                sw_time_per_byte: sw_tpb,
                peak_device_rate: p.single_thread_rate(dir, loc, access),
            },
            remaining: 1e9,
        }
    }

    fn total(rates: &[f64]) -> f64 {
        rates.iter().sum()
    }

    #[test]
    fn single_writer_gets_single_thread_rate() {
        let a = OptaneAllocator::new(profile());
        let f = flow(Direction::Write, Locality::Local, 64 << 20, 0.0);
        let rates = a.allocate(std::slice::from_ref(&f));
        assert!((rates[0] - f.attrs.peak_device_rate).abs() / rates[0] < 0.01);
    }

    #[test]
    fn local_writes_saturate_near_curve() {
        let a = OptaneAllocator::new(profile());
        let flows: Vec<_> = (0..8)
            .map(|_| flow(Direction::Write, Locality::Local, 64 << 20, 0.0))
            .collect();
        let rates = a.allocate(&flows);
        let agg = total(&rates);
        let expect = profile().local_write_bw.eval(8.0);
        assert!(
            (agg - expect).abs() / expect < 0.05,
            "agg {agg} vs {expect}"
        );
    }

    #[test]
    fn local_reads_scale_higher_than_writes() {
        let a = OptaneAllocator::new(profile());
        let rf: Vec<_> = (0..17)
            .map(|_| flow(Direction::Read, Locality::Local, 64 << 20, 0.0))
            .collect();
        let wf: Vec<_> = (0..17)
            .map(|_| flow(Direction::Write, Locality::Local, 64 << 20, 0.0))
            .collect();
        let r = total(&a.allocate(&rf));
        let w = total(&a.allocate(&wf));
        assert!(r > 2.0 * w, "reads {r} writes {w}");
        assert!(r > 35.0 * GB);
    }

    #[test]
    fn remote_writes_collapse_vs_local() {
        let a = OptaneAllocator::new(profile());
        let loc: Vec<_> = (0..24)
            .map(|_| flow(Direction::Write, Locality::Local, 64 << 20, 0.0))
            .collect();
        let rem: Vec<_> = (0..24)
            .map(|_| flow(Direction::Write, Locality::Remote, 64 << 20, 0.0))
            .collect();
        let l = total(&a.allocate(&loc));
        let r = total(&a.allocate(&rem));
        assert!(l / r > 1.5, "local {l} remote {r}");
    }

    #[test]
    fn remote_reads_mildly_penalized() {
        let a = OptaneAllocator::new(profile());
        let loc: Vec<_> = (0..24)
            .map(|_| flow(Direction::Read, Locality::Local, 64 << 20, 0.0))
            .collect();
        let rem: Vec<_> = (0..24)
            .map(|_| flow(Direction::Read, Locality::Remote, 64 << 20, 0.0))
            .collect();
        let l = total(&a.allocate(&loc));
        let r = total(&a.allocate(&rem));
        let ratio = l / r;
        assert!(ratio > 1.15 && ratio < 1.5, "ratio {ratio}");
    }

    #[test]
    fn software_overhead_lowers_effective_contention() {
        // 24 writers of small objects with heavy software cost should see a
        // *better* aggregate device share than their duty-1 equivalent,
        // because the device never sees 24 concurrent operations.
        let a = OptaneAllocator::new(profile());
        let heavy_sw: Vec<_> = (0..24)
            .map(|_| flow(Direction::Write, Locality::Local, 2048, 1.5e-9))
            .collect();
        let rates = a.allocate(&heavy_sw);
        // Compare against a naive model that charges every rank as fully
        // concurrent (duty = 1): capacity evaluated at n = 24 and split 24
        // ways. The duty-cycle model must do better, because the device
        // never actually sees 24 concurrent operations.
        let p = profile();
        let naive_cap = p.class_capacity(Direction::Write, Locality::Local, 2048, 24.0, 0.0);
        let naive_dev = naive_cap / 24.0;
        let naive_rate = heavy_sw[0].attrs.end_to_end_rate(naive_dev);
        for (r, f) in rates.iter().zip(heavy_sw.iter()) {
            let intr = f.attrs.intrinsic_rate();
            assert!(*r > naive_rate, "rate {r} vs naive {naive_rate}");
            assert!(*r > 0.5 * intr, "rate {r} vs intrinsic {intr}");
        }
    }

    #[test]
    fn mixed_read_write_contends() {
        let a = OptaneAllocator::new(profile());
        let mut flows: Vec<_> = (0..12)
            .map(|_| flow(Direction::Write, Locality::Local, 64 << 20, 0.0))
            .collect();
        flows.extend((0..12).map(|_| flow(Direction::Read, Locality::Remote, 64 << 20, 0.0)));
        let rates = a.allocate(&flows);
        let w_mixed: f64 = rates[..12].iter().sum();
        // Pure-write baseline at the same writer count.
        let pure: Vec<_> = (0..12)
            .map(|_| flow(Direction::Write, Locality::Local, 64 << 20, 0.0))
            .collect();
        let w_pure = total(&a.allocate(&pure));
        assert!(
            w_mixed < w_pure,
            "mixed writes {w_mixed} should be slower than pure {w_pure}"
        );
    }

    #[test]
    fn rates_never_exceed_intrinsic() {
        let a = OptaneAllocator::new(profile());
        for n in [1usize, 4, 16, 48] {
            let flows: Vec<_> = (0..n)
                .map(|i| {
                    let dir = if i % 2 == 0 {
                        Direction::Read
                    } else {
                        Direction::Write
                    };
                    let loc = if i % 3 == 0 {
                        Locality::Remote
                    } else {
                        Locality::Local
                    };
                    flow(dir, loc, if i % 2 == 0 { 2048 } else { 64 << 20 }, 2e-10)
                })
                .collect();
            for (r, f) in a.allocate(&flows).iter().zip(flows.iter()) {
                assert!(*r <= f.attrs.intrinsic_rate() * (1.0 + 1e-9));
                assert!(*r > 0.0);
            }
        }
    }

    #[test]
    fn deterministic_allocation() {
        let a = OptaneAllocator::new(profile());
        let flows: Vec<_> = (0..9)
            .map(|i| {
                flow(
                    if i % 2 == 0 {
                        Direction::Read
                    } else {
                        Direction::Write
                    },
                    if i < 4 {
                        Locality::Local
                    } else {
                        Locality::Remote
                    },
                    4096 << i,
                    1e-10 * i as f64,
                )
            })
            .collect();
        let r1 = a.allocate(&flows);
        let r2 = a.allocate(&flows);
        for (a, b) in r1.iter().zip(r2.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
