//! A byte-addressable persistent-memory region with crash semantics.
//!
//! `PmemRegion` backs the functional I/O stacks (`pmemflow-iostack`) with
//! *real bytes* plus a faithful model of what is and is not durable at any
//! instant:
//!
//! * **Cached stores** (`StoreMode::Cached`) land in a volatile CPU-cache
//!   overlay; they reach persistence only when explicitly flushed
//!   (`clwb`-style [`PmemRegion::flush`]). This is NOVA's path for
//!   metadata.
//! * **Non-temporal stores** (`StoreMode::NonTemporal`) bypass the cache
//!   into a write-combining buffer and become durable at the next
//!   [`PmemRegion::fence`] (`sfence`). This is NVStream's data path — it
//!   also avoids polluting the CPU cache with snapshot data that the writer
//!   never reads back (paper §V).
//!
//! [`PmemRegion::crash`] discards everything volatile, exactly like a power
//! cut; recovery tests in the I/O stacks run against the surviving media
//! image. The region also accounts per-DIMM traffic via the interleaver and
//! media write amplification via the XPBuffer model.

use crate::interleave::Interleaver;
use crate::profile::InterleaveGeometry;
use crate::xpbuffer::XpBuffer;
use std::collections::BTreeMap;

/// CPU cache-line size used by the volatile overlay.
pub const CACHE_LINE: u64 = 64;

/// How a store travels to the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreMode {
    /// Through the CPU cache; durable only after `flush` + `fence`.
    Cached,
    /// Non-temporal (streaming); durable after the next `fence`.
    NonTemporal,
}

/// Traffic accounting for a region.
#[derive(Debug, Clone, Default)]
pub struct RegionStats {
    /// Bytes written by callers (either mode).
    pub bytes_written: u64,
    /// Bytes read by callers.
    pub bytes_read: u64,
    /// Bytes that reached the media (flushes + fences).
    pub bytes_persisted: u64,
    /// Per-DIMM byte totals (reads + persisted writes).
    pub per_dimm_bytes: Vec<u64>,
    /// Number of `flush` calls.
    pub flushes: u64,
    /// Number of `fence` calls.
    pub fences: u64,
}

/// A simulated PMEM device region storing real bytes.
#[derive(Debug)]
pub struct PmemRegion {
    media: Vec<u8>,
    /// Dirty cache lines not yet flushed: line index → contents.
    overlay: BTreeMap<u64, [u8; CACHE_LINE as usize]>,
    /// Non-temporal stores awaiting a fence, in program order.
    wc_pending: Vec<(u64, Vec<u8>)>,
    interleaver: Interleaver,
    xpbuffer: XpBuffer,
    stats: RegionStats,
}

impl PmemRegion {
    /// Allocate a zeroed region of `len` bytes with the given interleave
    /// geometry.
    pub fn new(len: usize, geometry: InterleaveGeometry) -> Self {
        let dimms = geometry.dimms;
        Self {
            media: vec![0u8; len],
            overlay: BTreeMap::new(),
            wc_pending: Vec::new(),
            interleaver: Interleaver::new(geometry),
            xpbuffer: XpBuffer::new(16 * 1024),
            stats: RegionStats {
                per_dimm_bytes: vec![0; dimms],
                ..Default::default()
            },
        }
    }

    /// Region length in bytes.
    pub fn len(&self) -> usize {
        self.media.len()
    }

    /// True if the region has zero length.
    pub fn is_empty(&self) -> bool {
        self.media.is_empty()
    }

    fn check_range(&self, offset: u64, len: usize) {
        assert!(
            (offset as usize)
                .checked_add(len)
                .is_some_and(|end| end <= self.media.len()),
            "access [{offset}, +{len}) out of region bounds ({})",
            self.media.len()
        );
    }

    /// Store `data` at `offset` with the given mode.
    pub fn write(&mut self, offset: u64, data: &[u8], mode: StoreMode) {
        self.check_range(offset, data.len());
        self.stats.bytes_written += data.len() as u64;
        match mode {
            StoreMode::Cached => {
                // Spread the bytes over cache lines in the overlay.
                let mut pos = 0usize;
                while pos < data.len() {
                    let abs = offset + pos as u64;
                    let line = abs / CACHE_LINE;
                    let line_start = line * CACHE_LINE;
                    let within = (abs - line_start) as usize;
                    let take = (CACHE_LINE as usize - within).min(data.len() - pos);
                    let entry = self.overlay.entry(line).or_insert_with(|| {
                        // Faulting a line in pulls current media contents.
                        let mut buf = [0u8; CACHE_LINE as usize];
                        let s = line_start as usize;
                        let e = (s + CACHE_LINE as usize).min(self.media.len());
                        buf[..e - s].copy_from_slice(&self.media[s..e]);
                        buf
                    });
                    entry[within..within + take].copy_from_slice(&data[pos..pos + take]);
                    pos += take;
                }
            }
            StoreMode::NonTemporal => {
                self.wc_pending.push((offset, data.to_vec()));
            }
        }
    }

    /// Load `out.len()` bytes from `offset`, observing volatile state
    /// (reads see the newest store, durable or not).
    pub fn read(&mut self, offset: u64, out: &mut [u8]) {
        self.check_range(offset, out.len());
        self.stats.bytes_read += out.len() as u64;
        for (d, b) in self
            .interleaver
            .bytes_per_dimm(offset, out.len() as u64)
            .into_iter()
            .enumerate()
        {
            self.stats.per_dimm_bytes[d] += b;
        }
        out.copy_from_slice(&self.media[offset as usize..offset as usize + out.len()]);
        // Newest-wins: cached overlay first, then pending NT stores in
        // program order (an NT store after a cached store to the same bytes
        // must win, and vice versa is not representable here because NT
        // stores to cached lines would be flushed by real CPUs; the stacks
        // never mix modes on the same bytes).
        let first_line = offset / CACHE_LINE;
        let last_line = (offset + out.len() as u64 - 1) / CACHE_LINE;
        for (&line, contents) in self.overlay.range(first_line..=last_line) {
            let line_start = line * CACHE_LINE;
            let from = line_start.max(offset);
            let to = (line_start + CACHE_LINE).min(offset + out.len() as u64);
            if from < to {
                let src = (from - line_start) as usize..(to - line_start) as usize;
                let dst = (from - offset) as usize..(to - offset) as usize;
                out[dst].copy_from_slice(&contents[src]);
            }
        }
        for (woff, data) in &self.wc_pending {
            let from = (*woff).max(offset);
            let to = (woff + data.len() as u64).min(offset + out.len() as u64);
            if from < to {
                let src = (from - woff) as usize..(to - woff) as usize;
                let dst = (from - offset) as usize..(to - offset) as usize;
                out[dst].copy_from_slice(&data[src]);
            }
        }
    }

    /// Flush (`clwb`) the cache lines overlapping `[offset, offset+len)` to
    /// media. Durable immediately (the ADR domain is persistent).
    pub fn flush(&mut self, offset: u64, len: u64) {
        if len == 0 {
            return;
        }
        self.check_range(offset, len as usize);
        self.stats.flushes += 1;
        let first_line = offset / CACHE_LINE;
        let last_line = (offset + len - 1) / CACHE_LINE;
        let lines: Vec<u64> = self
            .overlay
            .range(first_line..=last_line)
            .map(|(&l, _)| l)
            .collect();
        for line in lines {
            let contents = self.overlay.remove(&line).unwrap();
            let s = (line * CACHE_LINE) as usize;
            let e = (s + CACHE_LINE as usize).min(self.media.len());
            self.media[s..e].copy_from_slice(&contents[..e - s]);
            self.account_persist(line * CACHE_LINE, (e - s) as u64);
        }
    }

    /// Fence (`sfence`): commit all pending non-temporal stores to media.
    pub fn fence(&mut self) {
        self.stats.fences += 1;
        let pending = std::mem::take(&mut self.wc_pending);
        for (offset, data) in pending {
            let s = offset as usize;
            self.media[s..s + data.len()].copy_from_slice(&data);
            self.account_persist(offset, data.len() as u64);
        }
    }

    /// Convenience: flush the range, then fence.
    pub fn persist(&mut self, offset: u64, len: u64) {
        self.flush(offset, len);
        self.fence();
    }

    fn account_persist(&mut self, offset: u64, len: u64) {
        self.stats.bytes_persisted += len;
        for (d, b) in self
            .interleaver
            .bytes_per_dimm(offset, len)
            .into_iter()
            .enumerate()
        {
            self.stats.per_dimm_bytes[d] += b;
        }
        self.xpbuffer.write(offset, len);
    }

    /// Power cut: all volatile state (cache overlay, pending NT stores) is
    /// lost; only media survives. Returns the number of bytes discarded.
    pub fn crash(&mut self) -> u64 {
        let lost = self.overlay.len() as u64 * CACHE_LINE
            + self
                .wc_pending
                .iter()
                .map(|(_, d)| d.len() as u64)
                .sum::<u64>();
        self.overlay.clear();
        self.wc_pending.clear();
        lost
    }

    /// Bytes that would be lost if the machine crashed now.
    pub fn volatile_bytes(&self) -> u64 {
        self.overlay.len() as u64 * CACHE_LINE
            + self
                .wc_pending
                .iter()
                .map(|(_, d)| d.len() as u64)
                .sum::<u64>()
    }

    /// Traffic statistics.
    pub fn stats(&self) -> &RegionStats {
        &self.stats
    }

    /// Media write amplification observed by the XPBuffer model.
    pub fn write_amplification(&self) -> f64 {
        self.xpbuffer.stats().write_amplification()
    }

    /// The interleaver used for address mapping.
    pub fn interleaver(&self) -> &Interleaver {
        &self.interleaver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region() -> PmemRegion {
        PmemRegion::new(
            1 << 20,
            InterleaveGeometry {
                dimms: 6,
                chunk_bytes: 4096,
            },
        )
    }

    #[test]
    fn read_your_cached_write_before_flush() {
        let mut r = region();
        r.write(100, b"hello", StoreMode::Cached);
        let mut out = [0u8; 5];
        r.read(100, &mut out);
        assert_eq!(&out, b"hello");
    }

    #[test]
    fn cached_write_lost_on_crash_without_flush() {
        let mut r = region();
        r.write(100, b"hello", StoreMode::Cached);
        r.crash();
        let mut out = [0u8; 5];
        r.read(100, &mut out);
        assert_eq!(&out, b"\0\0\0\0\0");
    }

    #[test]
    fn cached_write_survives_crash_after_flush() {
        let mut r = region();
        r.write(100, b"hello", StoreMode::Cached);
        r.flush(100, 5);
        r.crash();
        let mut out = [0u8; 5];
        r.read(100, &mut out);
        assert_eq!(&out, b"hello");
    }

    #[test]
    fn nt_write_needs_fence() {
        let mut r = region();
        r.write(0, b"abcd", StoreMode::NonTemporal);
        // Visible to reads immediately...
        let mut out = [0u8; 4];
        r.read(0, &mut out);
        assert_eq!(&out, b"abcd");
        // ...but a crash before the fence loses it.
        r.crash();
        r.read(0, &mut out);
        assert_eq!(&out, b"\0\0\0\0");
        // With a fence it persists.
        r.write(0, b"abcd", StoreMode::NonTemporal);
        r.fence();
        r.crash();
        r.read(0, &mut out);
        assert_eq!(&out, b"abcd");
    }

    #[test]
    fn partial_fence_boundary() {
        let mut r = region();
        r.write(0, b"first", StoreMode::NonTemporal);
        r.fence();
        r.write(10, b"second", StoreMode::NonTemporal);
        r.crash(); // second was never fenced
        let mut a = [0u8; 5];
        r.read(0, &mut a);
        assert_eq!(&a, b"first");
        let mut b = [0u8; 6];
        r.read(10, &mut b);
        assert_eq!(&b, b"\0\0\0\0\0\0");
    }

    #[test]
    fn write_spanning_many_cache_lines() {
        let mut r = region();
        let data: Vec<u8> = (0..1000).map(|i| (i % 251) as u8).collect();
        r.write(37, &data, StoreMode::Cached);
        let mut out = vec![0u8; 1000];
        r.read(37, &mut out);
        assert_eq!(out, data);
        r.persist(37, 1000);
        r.crash();
        let mut out2 = vec![0u8; 1000];
        r.read(37, &mut out2);
        assert_eq!(out2, data);
    }

    #[test]
    fn flush_pulls_media_for_partial_lines() {
        let mut r = region();
        // Persist a baseline, then dirty part of the same line and flush:
        // untouched bytes of the line must not be clobbered.
        r.write(0, &[7u8; 64], StoreMode::Cached);
        r.persist(0, 64);
        r.write(10, b"xy", StoreMode::Cached);
        r.persist(10, 2);
        r.crash();
        let mut out = [0u8; 64];
        r.read(0, &mut out);
        assert_eq!(out[9], 7);
        assert_eq!(&out[10..12], b"xy");
        assert_eq!(out[12], 7);
    }

    #[test]
    fn volatile_bytes_accounting() {
        let mut r = region();
        assert_eq!(r.volatile_bytes(), 0);
        r.write(0, &[1u8; 64], StoreMode::Cached);
        assert_eq!(r.volatile_bytes(), 64);
        r.write(1000, &[2u8; 100], StoreMode::NonTemporal);
        assert_eq!(r.volatile_bytes(), 164);
        r.flush(0, 64);
        r.fence();
        assert_eq!(r.volatile_bytes(), 0);
    }

    #[test]
    fn stats_track_traffic() {
        let mut r = region();
        r.write(0, &[0u8; 4096], StoreMode::NonTemporal);
        r.fence();
        let mut buf = vec![0u8; 4096];
        r.read(0, &mut buf);
        let s = r.stats();
        assert_eq!(s.bytes_written, 4096);
        assert_eq!(s.bytes_read, 4096);
        assert_eq!(s.bytes_persisted, 4096);
        // 4 KB at offset 0 lands entirely on DIMM 0; the read adds 4 KB too.
        assert_eq!(s.per_dimm_bytes[0], 8192);
        assert_eq!(s.per_dimm_bytes[1], 0);
    }

    #[test]
    #[should_panic(expected = "out of region bounds")]
    fn out_of_bounds_write_panics() {
        let mut r = region();
        r.write((1 << 20) - 2, b"abc", StoreMode::Cached);
    }

    #[test]
    fn overlapping_nt_stores_newest_wins() {
        let mut r = region();
        r.write(0, b"aaaa", StoreMode::NonTemporal);
        r.write(2, b"bb", StoreMode::NonTemporal);
        let mut out = [0u8; 4];
        r.read(0, &mut out);
        assert_eq!(&out, b"aabb");
        r.fence();
        r.crash();
        r.read(0, &mut out);
        assert_eq!(&out, b"aabb");
    }
}
