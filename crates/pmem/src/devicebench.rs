//! Raw-device characterization tables (paper §II-B reproduction).
//!
//! The paper grounds its scheduling arguments in a handful of raw Optane
//! behaviours. This module evaluates the model at the same operating points
//! and produces the numbers a device microbenchmark would print, so the
//! claims can be checked against the encoded curves directly:
//!
//! * local read peak 39.4 GB/s (scales to ~17 threads),
//! * local write peak 13.9 GB/s (saturates at 4 threads),
//! * remote random writes under 1 GB/s beyond 3 concurrent ops,
//! * 15× remote write drop at 24 ops vs 1.3× for reads,
//! * idle latency: write 90 ns vs read 169 ns.

use crate::profile::DeviceProfile;
use pmemflow_des::{Direction, Locality};

/// One row of the characterization table.
#[derive(Debug, Clone, PartialEq)]
pub struct BandwidthRow {
    /// Concurrent operations.
    pub threads: f64,
    /// Aggregate local read bandwidth, bytes/s.
    pub local_read: f64,
    /// Aggregate local write bandwidth, bytes/s.
    pub local_write: f64,
    /// Aggregate remote read bandwidth, bytes/s.
    pub remote_read: f64,
    /// Aggregate remote streaming write bandwidth, bytes/s.
    pub remote_write: f64,
    /// Aggregate remote random-4K write bandwidth, bytes/s.
    pub remote_write_random: f64,
}

/// Evaluate the device model at the given concurrency levels.
pub fn bandwidth_table(profile: &DeviceProfile, thread_counts: &[f64]) -> Vec<BandwidthRow> {
    thread_counts
        .iter()
        .map(|&n| BandwidthRow {
            threads: n,
            local_read: profile.local_read_bw.eval(n),
            local_write: profile.local_write_bw.eval(n),
            remote_read: profile.local_read_bw.eval(n) / profile.remote_read_penalty.eval(n),
            remote_write: profile.remote_write_bw.eval(n),
            remote_write_random: profile.remote_write_bw_random.eval(n),
        })
        .collect()
}

/// The §II-B headline ratios computed from the model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeadlineRatios {
    /// Remote/local write slowdown at 24 concurrent random writes
    /// (paper: ~15×).
    pub write_drop_at_24: f64,
    /// Remote/local read slowdown at 24 concurrent reads (paper: ~1.3×).
    pub read_drop_at_24: f64,
    /// Idle write latency, seconds (paper: 90 ns).
    pub write_latency: f64,
    /// Idle read latency, seconds (paper: 169 ns).
    pub read_latency: f64,
}

/// Compute the headline §II-B ratios for a profile.
pub fn headline_ratios(profile: &DeviceProfile) -> HeadlineRatios {
    HeadlineRatios {
        write_drop_at_24: profile.local_write_bw.peak() / profile.remote_write_bw_random.eval(24.0),
        read_drop_at_24: profile.remote_read_penalty.eval(24.0),
        write_latency: profile.latency(Direction::Write, Locality::Local),
        read_latency: profile.latency(Direction::Read, Locality::Local),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::GB;

    #[test]
    fn table_is_monotone_in_sensible_ranges() {
        let p = DeviceProfile::optane_gen1();
        let rows = bandwidth_table(&p, &[1.0, 4.0, 8.0, 17.0]);
        for w in rows.windows(2) {
            assert!(w[1].local_read >= w[0].local_read);
        }
    }

    #[test]
    fn headline_ratios_match_paper() {
        let r = headline_ratios(&DeviceProfile::optane_gen1());
        assert!(r.write_drop_at_24 > 12.0 && r.write_drop_at_24 < 18.0);
        assert!((r.read_drop_at_24 - 1.3).abs() < 0.01);
        assert_eq!(r.write_latency, 90e-9);
        assert_eq!(r.read_latency, 169e-9);
    }

    #[test]
    fn remote_random_write_under_1gb_beyond_3() {
        let p = DeviceProfile::optane_gen1();
        for row in bandwidth_table(&p, &[4.0, 8.0, 16.0, 24.0]) {
            assert!(row.remote_write_random < 1.1 * GB, "at {}", row.threads);
        }
    }
}
