//! Device profiles: every empirical constant of the PMEM model in one place.
//!
//! The default profile, [`DeviceProfile::optane_gen1`], encodes the
//! first-generation Intel Optane DC PMEM testbed of the paper (§II-B, §V):
//! six interleaved 512 GB DIMMs per socket behind two iMCs, AppDirect mode.
//! Sources for each constant are cited inline. A profile is plain data, so
//! experiments can perturb any constant (the ablation benches do).

use crate::curves::{log_size_interp, Curve};
use pmemflow_des::{Direction, Locality};

/// Bytes per gigabyte (decimal, as used in device datasheets).
pub const GB: f64 = 1e9;

/// Interleaving geometry of an Optane socket (RAID-0-like striping).
#[derive(Debug, Clone, PartialEq)]
pub struct InterleaveGeometry {
    /// Number of DIMM modules in the interleave set (paper: 6 per socket).
    pub dimms: usize,
    /// Contiguous bytes mapped to one DIMM before moving to the next
    /// (paper: 4 KB chunks, forming a 24 KB stripe across 6 DIMMs).
    pub chunk_bytes: u64,
}

impl InterleaveGeometry {
    /// One full stripe: `dimms * chunk_bytes` (24 KB on the paper testbed).
    pub fn stripe_bytes(&self) -> u64 {
        self.dimms as u64 * self.chunk_bytes
    }
}

/// The complete Optane performance model.
///
/// Bandwidth curves map *effective concurrency* (duty-cycle-weighted number
/// of ranks with in-flight operations) to aggregate device bandwidth in
/// bytes/second. Latencies are per-operation device access costs added on
/// top of the I/O stack's software cost.
#[derive(Debug, Clone)]
pub struct DeviceProfile {
    /// Human-readable profile name.
    pub name: String,
    /// Interleave geometry.
    pub geometry: InterleaveGeometry,
    /// Capacity of one socket's PMEM in bytes (6 × 512 GB on the testbed).
    pub capacity_bytes: u64,

    /// Aggregate **local read** bandwidth vs concurrency. Peak 39.4 GB/s,
    /// scaling up to ~17 concurrent readers (paper §II-B; Izraelevitz et
    /// al. §4), with a mild decline beyond as the device-internal (XPBuffer)
    /// cache thrashes.
    pub local_read_bw: Curve,
    /// Aggregate **local write** bandwidth vs concurrency. Peak 13.9 GB/s
    /// at 4 concurrent writers (paper §II-B), declining with concurrency
    /// (XPBuffer contention; Yang et al. FAST'20 §3.2).
    pub local_write_bw: Curve,
    /// **Remote read penalty** vs concurrency: local read bandwidth is
    /// divided by this. The paper reports a 1.3× slowdown at 24 concurrent
    /// readers (§II-B).
    pub remote_read_penalty: Curve,
    /// Aggregate **remote write** bandwidth vs concurrency for *streaming*
    /// (non-temporal, well-formed) writes as produced by the I/O stacks.
    /// Remote writes collapse under concurrency due to UPI contention and
    /// remote iMC queue pressure; the workflow-visible effect in the paper
    /// is a ~2.5–4× write-phase slowdown at 16–24 ranks (Fig. 4).
    pub remote_write_bw: Curve,
    /// Aggregate remote write bandwidth for *random small* (≤ 4 KB)
    /// accesses — the raw-device behaviour behind the paper's "15× drop,
    /// under 1 GB/s beyond 3 concurrent remote ops" statement (§II-B,
    /// citing Peng et al.). Used by the device-bench reproduction, not by
    /// the streaming workflow model.
    pub remote_write_bw_random: Curve,

    /// Idle per-operation read latency, local (paper: 169 ns).
    pub read_latency_local: f64,
    /// Idle per-operation read latency, remote: a load must cross UPI and
    /// return data (paper §II-B discussion; +~140 ns).
    pub read_latency_remote: f64,
    /// Idle per-operation write latency, local (paper: 90 ns — the write
    /// completes once buffered in the iMC write-pending queue).
    pub write_latency_local: f64,
    /// Idle per-operation write latency, remote. Posted writes pipeline
    /// across UPI, so the penalty is far smaller than for reads; this
    /// asymmetry is why non-bandwidth-bound workflows prefer local *reads*
    /// (paper §VI-B).
    pub write_latency_remote: f64,

    /// Single-thread device bandwidth plateaus by access granularity.
    /// `(small_size, small_value, large_size, large_value)` per direction:
    /// log-interpolated in between.
    pub st_read_small: f64,
    /// Single-thread large-access read bandwidth (bytes/s).
    pub st_read_large: f64,
    /// Single-thread small-access write bandwidth (bytes/s).
    pub st_write_small: f64,
    /// Single-thread large-access write bandwidth (bytes/s).
    pub st_write_large: f64,
    /// Access size at/below which the "small" plateau applies.
    pub st_small_size: u64,
    /// Access size at/above which the "large" plateau applies.
    pub st_large_size: u64,

    /// Efficiency multiplier applied to class capacity when accesses are
    /// smaller than one interleave stripe and ≥ `small_access_threads`
    /// threads are active: non-uniform chunk distribution makes threads
    /// collide on individual DIMMs (paper §II-B "Access granularity").
    pub small_access_efficiency: f64,
    /// Concurrency at which the small-access DIMM-collision penalty starts.
    pub small_access_threads: f64,

    /// Budget for mixed read/write flow sets, as a function of total
    /// effective concurrency. 1.0 means reads and writes time-share the
    /// device exactly; Optane's measured mixed bandwidth degrades *below*
    /// proportional time-sharing as concurrency grows — reads stall behind
    /// XPBuffer evictions and write-pending-queue drains (Yang et al.
    /// FAST'20 §3.2; paper §VI-A: "remote reads hold resources that also
    /// slow writes"). At low concurrency the paths overlap almost freely
    /// (paper §VIII: "at low concurrency levels the slowdown caused due to
    /// contention is minimal").
    pub mix_budget: Curve,
    /// Additional multiplier on the mixed budget when the mix involves
    /// sub-stripe accesses: small reads interleaved with small writes force
    /// XPLine read-modify-writes and thrash the XPBuffer, degrading both
    /// directions far beyond large-access mixes (FAST'20 §3.2).
    pub small_mix_budget: Curve,

    /// Weight of local (non-remote) effective concurrency when evaluating
    /// the remote-write collapse curve: remote writes are hurt mostly by
    /// *other remote* traffic, but local activity adds iMC pressure.
    pub remote_write_local_weight: f64,
    /// Extra efficiency factor for **sub-stripe remote writes**: scattered
    /// small stores combine poorly across UPI, the regime behind the
    /// paper's "under 1 GB/s beyond 3 concurrent remote ops" (§II-B,
    /// citing Peng et al.); large streaming writes are unaffected.
    pub remote_write_small_efficiency: f64,

    /// Fixed-point iterations for the duty-cycle ↔ rate computation.
    pub duty_iterations: usize,
}

impl DeviceProfile {
    /// First-generation Optane DC PMEM, 6 × 512 GB interleaved per socket —
    /// the paper's testbed. All constants cited in field docs.
    pub fn optane_gen1() -> Self {
        DeviceProfile {
            name: "optane-gen1".to_string(),
            geometry: InterleaveGeometry {
                dimms: 6,
                chunk_bytes: 4096,
            },
            capacity_bytes: 6 * 512 * 1_000_000_000,
            // Aggregate local read: ~4.4 GB/s for one thread, near-linear
            // to the 39.4 GB/s peak at 17 threads, gentle XPBuffer-thrash
            // decline beyond (FAST'20 Fig. 4; paper §II-B).
            local_read_bw: Curve::from_points(&[
                (0.0, 0.0),
                (1.0, 4.4 * GB),
                (4.0, 15.5 * GB),
                (8.0, 26.0 * GB),
                (12.0, 33.5 * GB),
                (17.0, 39.4 * GB),
                (24.0, 37.6 * GB),
                (48.0, 33.0 * GB),
            ]),
            // Aggregate local write: peaks at 13.9 GB/s with 4 writers,
            // declines under concurrency (FAST'20 Fig. 4; paper §II-B).
            local_write_bw: Curve::from_points(&[
                (0.0, 0.0),
                (1.0, 5.6 * GB),
                (2.0, 9.6 * GB),
                (4.0, 13.9 * GB),
                (8.0, 13.1 * GB),
                (16.0, 11.9 * GB),
                (24.0, 10.5 * GB),
                (48.0, 8.6 * GB),
            ]),
            // Remote reads: 1.3× at 24 concurrent (paper §II-B); the
            // low-concurrency penalty is calibrated (bin/tune) — loads
            // crossing UPI pay it even without contention.
            remote_read_penalty: Curve::from_points(&[
                (0.0, 1.21),
                (16.0, 1.21),
                (24.0, 1.3),
                (48.0, 1.55),
            ]),
            // Remote streaming writes: peak ~5 GB/s at 3 writers, collapsing
            // with concurrency (UPI + remote iMC pressure).
            // Calibrated against the paper's Table II winners (bin/tune):
            // remote streaming writes ride UPI efficiently up to ~a dozen
            // effective writers, then collapse as iMC/UPI queues saturate.
            remote_write_bw: Curve::from_points(&[
                (0.0, 0.0),
                (1.0, 5.4 * GB),
                (3.0, 11.0 * GB),
                (8.0, 10.5 * GB),
                (12.0, 10.5 * GB),
                (16.0, 7.6 * GB),
                (24.0, 4.7 * GB),
                (48.0, 3.5 * GB),
            ]),
            // Raw random small remote writes: the 15×-drop regime —
            // under 1 GB/s beyond 3 concurrent ops (paper §II-B).
            remote_write_bw_random: Curve::from_points(&[
                (0.0, 0.0),
                (1.0, 2.8 * GB),
                (3.0, 3.0 * GB),
                (4.0, 1.05 * GB),
                (8.0, 0.99 * GB),
                (16.0, 0.95 * GB),
                (24.0, 0.93 * GB),
                (48.0, 0.90 * GB),
            ]),
            read_latency_local: 169e-9,
            read_latency_remote: 380e-9,
            write_latency_local: 90e-9,
            write_latency_remote: 115e-9,
            st_read_small: 1.4 * GB,
            st_read_large: 4.4 * GB,
            st_write_small: 1.6 * GB,
            st_write_large: 5.6 * GB,
            st_small_size: 4096,
            st_large_size: 4 << 20,
            small_access_efficiency: 0.82,
            small_access_threads: 6.0,
            mix_budget: Curve::from_points(&[(0.0, 1.0), (8.1, 1.0), (16.1, 0.43), (48.0, 0.43)]),
            small_mix_budget: Curve::from_points(&[
                (0.0, 1.0),
                (6.9, 1.0),
                (12.9, 0.85),
                (48.0, 0.55),
            ]),
            remote_write_local_weight: 0.5,
            remote_write_small_efficiency: 1.0,
            duty_iterations: 8,
        }
    }

    /// Second-generation Optane PMEM ("Barlow Pass", 200 series) as a
    /// published-spec extrapolation: Intel's product brief quotes ~32 %
    /// higher memory bandwidth at the same idle latencies. Modeled as the
    /// gen-1 curves scaled 1.32× on every bandwidth axis, identical
    /// latencies, geometry and interference structure. Lets experiments
    /// ask whether the paper's recommendations survive the generation the
    /// authors never got to test (they mostly do — the asymmetries scale
    /// together).
    pub fn optane_gen2() -> Self {
        let g1 = Self::optane_gen1();
        DeviceProfile {
            name: "optane-gen2".to_string(),
            local_read_bw: g1.local_read_bw.scaled(1.32),
            local_write_bw: g1.local_write_bw.scaled(1.32),
            remote_write_bw: g1.remote_write_bw.scaled(1.32),
            remote_write_bw_random: g1.remote_write_bw_random.scaled(1.32),
            st_read_small: g1.st_read_small * 1.32,
            st_read_large: g1.st_read_large * 1.32,
            st_write_small: g1.st_write_small * 1.32,
            st_write_large: g1.st_write_large * 1.32,
            ..g1
        }
    }

    /// A hypothetical uniform device with no locality or direction
    /// asymmetry; used as an ablation baseline to show that *all* of the
    /// paper's placement effects disappear without the Optane asymmetries.
    pub fn symmetric_ideal(bandwidth: f64) -> Self {
        let flat = Curve::from_points(&[(0.0, 0.0), (1.0, bandwidth), (48.0, bandwidth)]);
        DeviceProfile {
            name: "symmetric-ideal".to_string(),
            geometry: InterleaveGeometry {
                dimms: 6,
                chunk_bytes: 4096,
            },
            capacity_bytes: 6 * 512 * 1_000_000_000,
            local_read_bw: flat.clone(),
            local_write_bw: flat.clone(),
            remote_read_penalty: Curve::from_points(&[(0.0, 1.0)]),
            remote_write_bw: flat,
            remote_write_bw_random: Curve::from_points(&[(0.0, bandwidth)]),
            read_latency_local: 100e-9,
            read_latency_remote: 100e-9,
            write_latency_local: 100e-9,
            write_latency_remote: 100e-9,
            st_read_small: bandwidth,
            st_read_large: bandwidth,
            st_write_small: bandwidth,
            st_write_large: bandwidth,
            st_small_size: 4096,
            st_large_size: 4 << 20,
            small_access_efficiency: 1.0,
            small_access_threads: 1e9,
            mix_budget: Curve::from_points(&[(0.0, 1.0)]),
            small_mix_budget: Curve::from_points(&[(0.0, 1.0)]),
            remote_write_local_weight: 0.5,
            remote_write_small_efficiency: 1.0,
            duty_iterations: 8,
        }
    }

    /// Single-thread device bandwidth for an access of `bytes` bytes in the
    /// given direction/locality. This is the cap a lone rank can draw.
    pub fn single_thread_rate(&self, dir: Direction, loc: Locality, bytes: u64) -> f64 {
        let (small, large) = match dir {
            Direction::Read => (self.st_read_small, self.st_read_large),
            Direction::Write => (self.st_write_small, self.st_write_large),
        };
        let base = log_size_interp(bytes, self.st_small_size, small, self.st_large_size, large);
        match (dir, loc) {
            (_, Locality::Local) => base,
            (Direction::Read, Locality::Remote) => {
                // Large streaming reads pay the (mild) remote bandwidth
                // penalty; small reads are *latency-bound* — each object
                // is a dependent chain of cache-line loads, so the rate
                // scales with the inverse latency ratio (169 ns local vs
                // ~310 ns remote). Blend by size like the plateaus.
                let small_factor = self.read_latency_local / self.read_latency_remote;
                let large_factor = 1.0 / self.remote_read_penalty.eval(1.0);
                let factor = log_size_interp(
                    bytes,
                    self.st_small_size,
                    small_factor,
                    self.st_large_size,
                    large_factor,
                );
                base * factor
            }
            (Direction::Write, Locality::Remote) => {
                // A single remote writer is limited by the remote-write
                // curve's single-thread point if that is tighter. Posted
                // writes pipeline across UPI, so small writes see no
                // latency-bound collapse (paper §VI-B).
                base.min(self.remote_write_bw.eval(1.0))
            }
        }
    }

    /// Like [`DeviceProfile::single_thread_rate`], but for a reader whose
    /// kernel interleaves `hide_frac ∈ [0, 1]` of the access latency with
    /// compute (paper §VIII: "Interleaved compute hides effects of access
    /// contention and high remote latency"). With full hiding, small remote
    /// reads stop being latency-chain-bound and behave like bandwidth-
    /// penalized streaming reads.
    pub fn single_thread_rate_with_hiding(
        &self,
        dir: Direction,
        loc: Locality,
        bytes: u64,
        hide_frac: f64,
    ) -> f64 {
        let base = self.single_thread_rate(dir, loc, bytes);
        if dir != Direction::Read || loc != Locality::Remote {
            return base;
        }
        let hide = hide_frac.clamp(0.0, 1.0);
        // Fully hidden: only the streaming bandwidth penalty remains.
        let (small, large) = (self.st_read_small, self.st_read_large);
        let unchained =
            log_size_interp(bytes, self.st_small_size, small, self.st_large_size, large)
                / self.remote_read_penalty.eval(1.0);
        base + (unchained - base) * hide
    }

    /// Per-operation device access latency (seconds). Added to the I/O
    /// stack's software cost when building flow attributes.
    pub fn latency(&self, dir: Direction, loc: Locality) -> f64 {
        match (dir, loc) {
            (Direction::Read, Locality::Local) => self.read_latency_local,
            (Direction::Read, Locality::Remote) => self.read_latency_remote,
            (Direction::Write, Locality::Local) => self.write_latency_local,
            (Direction::Write, Locality::Remote) => self.write_latency_remote,
        }
    }

    /// Queue-loaded per-operation latency (seconds) at effective
    /// concurrency `n_eff`. Idle latencies (90 ns writes / 169 ns reads,
    /// §II-B) grow as load approaches each direction's saturation point —
    /// Yang et al. (FAST'20 §3.2) measure read latencies climbing past a
    /// microsecond near the bandwidth ceiling, and write latencies
    /// exploding once the write-pending queue backs up (saturation at 4
    /// writers). Modeled as idle × (1 + k·(n/n_sat)²), capped at 30× idle.
    pub fn loaded_latency(&self, dir: Direction, loc: Locality, n_eff: f64) -> f64 {
        let idle = self.latency(dir, loc);
        let (n_sat, k) = match dir {
            // Reads scale to ~17 threads; at 24 the loaded latency is
            // roughly 5-6x idle (~1 us).
            Direction::Read => (self.local_read_bw.peak_x().max(1.0), 2.4),
            // Writes saturate at 4; beyond that the WPQ queues hard.
            Direction::Write => (self.local_write_bw.peak_x().max(1.0), 1.6),
        };
        let x = (n_eff / n_sat).max(0.0);
        (idle * (1.0 + k * x * x)).min(idle * 30.0)
    }

    /// Aggregate class capacity (bytes/s) for a flow class under
    /// `n_eff_total` total effective concurrency, of which `n_eff_remote`
    /// is remote, for accesses of `access_bytes`.
    pub fn class_capacity(
        &self,
        dir: Direction,
        loc: Locality,
        access_bytes: u64,
        n_eff_total: f64,
        n_eff_remote: f64,
    ) -> f64 {
        let mut cap = match (dir, loc) {
            (Direction::Read, Locality::Local) => self.local_read_bw.eval(n_eff_total),
            (Direction::Write, Locality::Local) => self.local_write_bw.eval(n_eff_total),
            (Direction::Read, Locality::Remote) => {
                self.local_read_bw.eval(n_eff_total)
                    / self.remote_read_penalty.eval(n_eff_remote.max(1.0))
            }
            (Direction::Write, Locality::Remote) => {
                let n = n_eff_remote
                    + self.remote_write_local_weight * (n_eff_total - n_eff_remote).max(0.0);
                let mut cap = self.remote_write_bw.eval(n.max(1.0));
                if (access_bytes as f64) < self.geometry.stripe_bytes() as f64 {
                    cap *= self.remote_write_small_efficiency;
                }
                cap
            }
        };
        if (access_bytes as f64) < self.geometry.stripe_bytes() as f64
            && n_eff_total >= self.small_access_threads
        {
            cap *= self.small_access_efficiency;
        }
        cap.max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optane_peaks_match_paper() {
        let p = DeviceProfile::optane_gen1();
        assert!((p.local_read_bw.peak() - 39.4 * GB).abs() < 1e6);
        assert!((p.local_write_bw.peak() - 13.9 * GB).abs() < 1e6);
        assert_eq!(p.local_read_bw.peak_x(), 17.0);
        assert_eq!(p.local_write_bw.peak_x(), 4.0);
    }

    #[test]
    fn stripe_is_24kb() {
        let p = DeviceProfile::optane_gen1();
        assert_eq!(p.geometry.stripe_bytes(), 24 * 1024);
    }

    #[test]
    fn remote_read_penalty_at_24_is_1_3() {
        let p = DeviceProfile::optane_gen1();
        assert!((p.remote_read_penalty.eval(24.0) - 1.3).abs() < 1e-12);
    }

    #[test]
    fn random_remote_write_collapses_below_1gbs() {
        let p = DeviceProfile::optane_gen1();
        assert!(p.remote_write_bw_random.eval(3.0) > 1.0 * GB);
        for n in [4.0, 8.0, 16.0, 24.0] {
            assert!(p.remote_write_bw_random.eval(n) < 1.1 * GB);
        }
        // 15× drop relative to the local write peak at 24 ops.
        let ratio = p.local_write_bw.peak() / p.remote_write_bw_random.eval(24.0);
        assert!(ratio > 12.0 && ratio < 18.0, "ratio {ratio}");
    }

    #[test]
    fn latencies_match_paper() {
        let p = DeviceProfile::optane_gen1();
        assert_eq!(p.latency(Direction::Read, Locality::Local), 169e-9);
        assert_eq!(p.latency(Direction::Write, Locality::Local), 90e-9);
        // Remote reads pay far more extra latency than remote writes.
        let dr = p.latency(Direction::Read, Locality::Remote) - 169e-9;
        let dw = p.latency(Direction::Write, Locality::Remote) - 90e-9;
        assert!(dr > 3.0 * dw);
    }

    #[test]
    fn single_thread_rate_grows_with_size() {
        let p = DeviceProfile::optane_gen1();
        let small = p.single_thread_rate(Direction::Write, Locality::Local, 2048);
        let large = p.single_thread_rate(Direction::Write, Locality::Local, 64 << 20);
        assert!(large > 2.0 * small);
    }

    #[test]
    fn single_thread_remote_read_slower() {
        let p = DeviceProfile::optane_gen1();
        let l = p.single_thread_rate(Direction::Read, Locality::Local, 1 << 20);
        let r = p.single_thread_rate(Direction::Read, Locality::Remote, 1 << 20);
        assert!(r < l);
    }

    #[test]
    fn class_capacity_small_access_penalty() {
        let p = DeviceProfile::optane_gen1();
        let big = p.class_capacity(Direction::Read, Locality::Local, 64 << 20, 8.0, 0.0);
        let small = p.class_capacity(Direction::Read, Locality::Local, 2048, 8.0, 0.0);
        assert!((small / big - p.small_access_efficiency).abs() < 1e-9);
        // No penalty at low concurrency.
        let small_low = p.class_capacity(Direction::Read, Locality::Local, 2048, 2.0, 0.0);
        let big_low = p.class_capacity(Direction::Read, Locality::Local, 64 << 20, 2.0, 0.0);
        assert_eq!(small_low, big_low);
    }

    #[test]
    fn remote_write_capacity_collapses_with_concurrency() {
        let p = DeviceProfile::optane_gen1();
        let at3 = p.class_capacity(Direction::Write, Locality::Remote, 64 << 20, 3.0, 3.0);
        let at24 = p.class_capacity(Direction::Write, Locality::Remote, 64 << 20, 24.0, 24.0);
        assert!(at3 / at24 > 1.8, "{at3} vs {at24}");
    }

    #[test]
    fn loaded_latency_grows_with_concurrency_and_caps() {
        let p = DeviceProfile::optane_gen1();
        let idle = p.loaded_latency(Direction::Read, Locality::Local, 0.0);
        assert_eq!(idle, 169e-9);
        let mut prev = 0.0;
        for n in [1.0, 4.0, 8.0, 17.0, 24.0] {
            let l = p.loaded_latency(Direction::Read, Locality::Local, n);
            assert!(l >= prev);
            prev = l;
        }
        // ~1 us near 24 concurrent readers (FAST'20 magnitude).
        let at24 = p.loaded_latency(Direction::Read, Locality::Local, 24.0);
        assert!(at24 > 0.5e-6 && at24 < 2e-6, "{at24}");
        // Writes explode past their much earlier saturation point but are
        // capped at 30x idle.
        let w48 = p.loaded_latency(Direction::Write, Locality::Local, 48.0);
        assert_eq!(w48, 90e-9 * 30.0);
    }

    #[test]
    fn gen2_scales_bandwidth_keeps_latency() {
        let g1 = DeviceProfile::optane_gen1();
        let g2 = DeviceProfile::optane_gen2();
        assert!((g2.local_read_bw.peak() / g1.local_read_bw.peak() - 1.32).abs() < 1e-9);
        assert!((g2.local_write_bw.peak() / g1.local_write_bw.peak() - 1.32).abs() < 1e-9);
        assert_eq!(g2.read_latency_local, g1.read_latency_local);
        assert_eq!(g2.write_latency_local, g1.write_latency_local);
        assert_eq!(g2.geometry, g1.geometry);
        // The asymmetry ratios are preserved.
        let r1 = g1.local_write_bw.peak() / g1.remote_write_bw.eval(24.0);
        let r2 = g2.local_write_bw.peak() / g2.remote_write_bw.eval(24.0);
        assert!((r1 - r2).abs() < 1e-9);
    }

    #[test]
    fn symmetric_ideal_has_no_asymmetry() {
        let p = DeviceProfile::symmetric_ideal(10.0 * GB);
        let a = p.class_capacity(Direction::Write, Locality::Remote, 2048, 24.0, 24.0);
        let b = p.class_capacity(Direction::Read, Locality::Local, 64 << 20, 24.0, 0.0);
        assert_eq!(a, b);
        assert_eq!(
            p.latency(Direction::Read, Locality::Remote),
            p.latency(Direction::Write, Locality::Local)
        );
    }
}
