//! XPBuffer: the device-internal write-combining cache.
//!
//! Optane media is accessed in 256-byte *XPLines*, while the CPU issues
//! 64-byte cache lines. The controller coalesces incoming writes in a small
//! internal buffer (the XPBuffer, ~16 KB per module per Yang et al.
//! FAST'20 §3.1); writes smaller than an XPLine that miss the buffer force
//! a read-modify-write of the full line, so small scattered writes see up
//! to 4× *write amplification*, and a working set that thrashes the buffer
//! loses bandwidth — the mechanism behind both the small-access penalty and
//! the concurrency decline encoded in the profile curves.
//!
//! This module is the *mechanistic* model: it processes real write streams
//! and reports amplification and hit rates. The fluid allocator uses the
//! profile's aggregated curves; the ablation benches compare the two.

use std::collections::VecDeque;

/// Size of one XPLine (media access granule), bytes.
pub const XPLINE_BYTES: u64 = 256;

/// Statistics from a write stream processed by the buffer.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct XpBufferStats {
    /// Bytes the host asked to write.
    pub host_bytes: u64,
    /// Bytes actually written to media (evicted XPLines × 256).
    pub media_bytes: u64,
    /// Number of host writes that coalesced into a buffered line.
    pub hits: u64,
    /// Number of host writes that allocated a new line.
    pub misses: u64,
}

impl XpBufferStats {
    /// Media bytes over host bytes; 1.0 is perfect streaming behaviour,
    /// 4.0 is the worst case for 64 B random writes.
    pub fn write_amplification(&self) -> f64 {
        if self.host_bytes == 0 {
            1.0
        } else {
            self.media_bytes as f64 / self.host_bytes as f64
        }
    }

    /// Fraction of host writes that hit an already-buffered line.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// FIFO write-combining buffer of XPLines.
#[derive(Debug, Clone)]
pub struct XpBuffer {
    capacity_lines: usize,
    /// Resident line addresses in FIFO order (front = oldest) with the
    /// number of valid bytes accumulated for each.
    resident: VecDeque<(u64, u64)>,
    stats: XpBufferStats,
}

impl XpBuffer {
    /// A buffer holding `capacity_bytes` of XPLines (16 KB on gen-1
    /// modules).
    pub fn new(capacity_bytes: u64) -> Self {
        let capacity_lines = (capacity_bytes / XPLINE_BYTES).max(1) as usize;
        Self {
            capacity_lines,
            resident: VecDeque::with_capacity(capacity_lines),
            stats: XpBufferStats::default(),
        }
    }

    /// Process a host write of `len` bytes at `offset`. Returns the number
    /// of media bytes written by evictions triggered by this write.
    pub fn write(&mut self, offset: u64, len: u64) -> u64 {
        self.stats.host_bytes += len;
        let mut evicted = 0u64;
        let first_line = offset / XPLINE_BYTES;
        let last_line = if len == 0 {
            first_line
        } else {
            (offset + len - 1) / XPLINE_BYTES
        };
        for line in first_line..=last_line {
            let line_start = line * XPLINE_BYTES;
            let line_end = line_start + XPLINE_BYTES;
            let covered = (offset + len)
                .min(line_end)
                .saturating_sub(offset.max(line_start));
            if let Some(slot) = self.resident.iter_mut().find(|(l, _)| *l == line) {
                self.stats.hits += 1;
                slot.1 = (slot.1 + covered).min(XPLINE_BYTES);
            } else {
                self.stats.misses += 1;
                if self.resident.len() == self.capacity_lines {
                    // Evict the oldest line: a full XPLine goes to media.
                    self.resident.pop_front();
                    evicted += XPLINE_BYTES;
                }
                self.resident.push_back((line, covered.min(XPLINE_BYTES)));
            }
        }
        self.stats.media_bytes += evicted;
        evicted
    }

    /// Drain the buffer (a fence or idle flush): everything goes to media.
    pub fn drain(&mut self) -> u64 {
        let bytes = self.resident.len() as u64 * XPLINE_BYTES;
        self.resident.clear();
        self.stats.media_bytes += bytes;
        bytes
    }

    /// Lines currently buffered.
    pub fn occupancy(&self) -> usize {
        self.resident.len()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> XpBufferStats {
        self.stats
    }

    /// Reset statistics (buffer contents retained).
    pub fn reset_stats(&mut self) {
        self.stats = XpBufferStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_streaming_amplification_is_one() {
        let mut buf = XpBuffer::new(16 * 1024);
        // Write 1 MB sequentially in 256 B chunks.
        for i in 0..4096u64 {
            buf.write(i * XPLINE_BYTES, XPLINE_BYTES);
        }
        buf.drain();
        let amp = buf.stats().write_amplification();
        assert!((amp - 1.0).abs() < 0.05, "amplification {amp}");
    }

    #[test]
    fn small_random_writes_amplify() {
        let mut buf = XpBuffer::new(16 * 1024);
        // 64 B writes scattered one per XPLine over a large area: every
        // write eventually evicts a whole 256 B line -> ~4x.
        for i in 0..4096u64 {
            buf.write(i * XPLINE_BYTES, 64);
        }
        buf.drain();
        let amp = buf.stats().write_amplification();
        assert!(amp > 3.5, "amplification {amp}");
    }

    #[test]
    fn coalescing_within_line_hits() {
        let mut buf = XpBuffer::new(16 * 1024);
        buf.write(0, 64);
        buf.write(64, 64);
        buf.write(128, 64);
        buf.write(192, 64);
        let s = buf.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 3);
        assert_eq!(buf.occupancy(), 1);
    }

    #[test]
    fn working_set_within_capacity_never_evicts() {
        let mut buf = XpBuffer::new(16 * 1024); // 64 lines
        for round in 0..10 {
            for i in 0..64u64 {
                let e = buf.write(i * XPLINE_BYTES, 64);
                assert_eq!(e, 0, "round {round} line {i} evicted");
            }
        }
        assert_eq!(buf.occupancy(), 64);
        assert!(buf.stats().hit_rate() > 0.85);
    }

    #[test]
    fn thrashing_evicts_continuously() {
        let mut buf = XpBuffer::new(16 * 1024); // 64 lines
        let mut evicted = 0;
        for i in 0..1000u64 {
            evicted += buf.write((i % 128) * XPLINE_BYTES, 64);
        }
        assert!(evicted > 0);
        assert!(buf.stats().hit_rate() < 0.1);
    }

    #[test]
    fn write_spanning_lines_allocates_each() {
        let mut buf = XpBuffer::new(16 * 1024);
        buf.write(128, 256); // covers end of line 0 and start of line 1
        assert_eq!(buf.occupancy(), 2);
        assert_eq!(buf.stats().misses, 2);
    }

    #[test]
    fn drain_counts_media_bytes() {
        let mut buf = XpBuffer::new(16 * 1024);
        buf.write(0, 64);
        buf.write(1024, 64);
        let drained = buf.drain();
        assert_eq!(drained, 2 * XPLINE_BYTES);
        assert_eq!(buf.occupancy(), 0);
    }

    #[test]
    fn empty_stats_are_identity() {
        let s = XpBufferStats::default();
        assert_eq!(s.write_amplification(), 1.0);
        assert_eq!(s.hit_rate(), 0.0);
    }
}
