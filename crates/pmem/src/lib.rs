//! # pmemflow-pmem — the Intel Optane DC PMEM model
//!
//! This crate is the substitute for the hardware the paper ran on (see
//! `DESIGN.md` §2): a performance model of first-generation Optane DC
//! Persistent Memory in AppDirect interleaved mode, plus a byte-accurate
//! [`PmemRegion`] with flush/fence persistence semantics and crash
//! injection for the functional I/O stacks.
//!
//! Layers:
//!
//! * [`Curve`] / [`DeviceProfile`] — every empirical constant of the model,
//!   sourced from the paper (§II-B) and the measurement studies it cites.
//! * [`OptaneAllocator`] — the fluid rate allocator plugged into
//!   `pmemflow-des`, turning concurrent flow sets into per-flow bandwidth
//!   under contention, locality, granularity and mixing effects.
//! * [`Interleaver`] / [`XpBuffer`] — mechanistic models of striping and
//!   the device-internal write-combining cache.
//! * [`PmemRegion`] — real bytes with durability tracking.
//! * [`bandwidth_table`] / [`headline_ratios`] — §II-B characterization
//!   tables regenerated from the model.

#![warn(missing_docs)]

mod allocator;
mod curves;
mod devicebench;
mod dimmsim;
mod interleave;
mod profile;
mod region;
mod xpbuffer;

pub use allocator::OptaneAllocator;
pub use curves::{log_size_interp, Curve};
pub use devicebench::{bandwidth_table, headline_ratios, BandwidthRow, HeadlineRatios};
pub use dimmsim::{granularity_sweep, simulate_random_access, DimmSimResult};
pub use interleave::{DimmSegment, Interleaver};
pub use profile::{DeviceProfile, InterleaveGeometry, GB};
pub use region::{PmemRegion, RegionStats, StoreMode, CACHE_LINE};
pub use xpbuffer::{XpBuffer, XpBufferStats, XPLINE_BYTES};
