//! Deterministic workflow arrival streams.
//!
//! A campaign is driven by a stream of workflow submissions drawn from the
//! paper's 18-workload suite ([`pmemflow_workloads::paper_suite`]). Three
//! stream shapes are supported, all seeded and bit-reproducible:
//!
//! * **Poisson** (open loop) — exponential inter-arrival times at a fixed
//!   rate, workloads drawn uniformly from a family mix.
//! * **Closed loop** — a fixed population of clients; each client submits
//!   its next workflow a think time after its previous one *completes*
//!   (arrivals are generated inside the campaign loop, fed by completions).
//! * **Trace** — explicit `time workload ranks` rows from a file.
//!
//! ## Spec grammar (`--arrivals`)
//!
//! ```text
//! poisson:rate=0.02,n=200[,mix=gtc+miniamr]
//! closed:clients=8,think=30,n=200[,mix=micro]
//! trace:PATH
//! ```
//!
//! `mix` is a `+`-separated list of family keys (`micro-64mb`, `micro-2kb`,
//! `gtc-readonly`, `gtc-matmult`, `miniamr-readonly`, `miniamr-matmult`) or
//! group aliases (`micro`, `gtc`, `miniamr`, `all`; default `all`). Every
//! drawn workload is one of the suite's entries: a mix family at one of the
//! paper's three rank levels (8/16/24), chosen uniformly.

use pmemflow_des::rng::SplitMix64;
use pmemflow_workloads::{paper_suite, Family, WorkflowSpec};

/// One workflow submission.
#[derive(Debug, Clone)]
pub struct Arrival {
    /// Submission index (0-based, unique, in submission order).
    pub id: u64,
    /// Virtual submission time, seconds.
    pub time: f64,
    /// Workflow display name (suite family name).
    pub workflow: String,
    /// Ranks per component.
    pub ranks: usize,
    /// The workflow to run.
    pub spec: WorkflowSpec,
    /// Owning client for closed-loop streams (`None` for open streams).
    pub client: Option<usize>,
}

/// A parsed arrival stream specification.
#[derive(Debug, Clone)]
pub enum ArrivalSpec {
    /// Open-loop Poisson arrivals.
    Poisson {
        /// Mean arrivals per virtual second.
        rate: f64,
        /// Total submissions.
        count: u64,
        /// Families workloads are drawn from.
        mix: Vec<Family>,
    },
    /// Closed-loop arrivals: `clients` concurrent submitters, each
    /// re-submitting `think` seconds after its previous job completes.
    Closed {
        /// Client population.
        clients: usize,
        /// Think time between a completion and the next submission.
        think: f64,
        /// Total submissions across all clients.
        count: u64,
        /// Families workloads are drawn from.
        mix: Vec<Family>,
    },
    /// Pre-recorded arrivals (time, workload, ranks rows).
    Trace(Vec<TraceRow>),
}

/// One row of a trace file.
#[derive(Debug, Clone)]
pub struct TraceRow {
    /// Submission time, seconds.
    pub time: f64,
    /// Workload family.
    pub family: Family,
    /// Ranks per component.
    pub ranks: usize,
}

/// Resolve a family key (CLI workload names, case-insensitive).
pub fn family_by_key(key: &str) -> Option<Family> {
    match key.to_ascii_lowercase().as_str() {
        "micro-64mb" => Some(Family::Micro64MB),
        "micro-2kb" => Some(Family::Micro2KB),
        "gtc-readonly" => Some(Family::GtcReadOnly),
        "gtc-matmult" | "gtc-matmul" => Some(Family::GtcMatMul),
        "miniamr-readonly" => Some(Family::MiniAmrReadOnly),
        "miniamr-matmult" | "miniamr-matmul" => Some(Family::MiniAmrMatMul),
        _ => None,
    }
}

/// Expand one mix token (a family key or a group alias) into families.
fn mix_token(token: &str) -> Result<Vec<Family>, String> {
    if let Some(f) = family_by_key(token) {
        return Ok(vec![f]);
    }
    match token.to_ascii_lowercase().as_str() {
        "all" => Ok(Family::all().to_vec()),
        "micro" => Ok(vec![Family::Micro64MB, Family::Micro2KB]),
        "gtc" => Ok(vec![Family::GtcReadOnly, Family::GtcMatMul]),
        "miniamr" => Ok(vec![Family::MiniAmrReadOnly, Family::MiniAmrMatMul]),
        other => Err(format!(
            "unknown mix token {other:?}; families: micro-64mb, micro-2kb, gtc-readonly, \
             gtc-matmult, miniamr-readonly, miniamr-matmult; groups: micro, gtc, miniamr, all"
        )),
    }
}

/// Parse a `+`-separated mix list; deduplicates, keeps first-seen order.
fn parse_mix(s: &str) -> Result<Vec<Family>, String> {
    let mut mix = Vec::new();
    for token in s.split('+') {
        for f in mix_token(token.trim())? {
            if !mix.contains(&f) {
                mix.push(f);
            }
        }
    }
    if mix.is_empty() {
        return Err("empty mix".into());
    }
    Ok(mix)
}

fn parse_kv(pairs: &str) -> Result<Vec<(&str, &str)>, String> {
    pairs
        .split(',')
        .filter(|p| !p.trim().is_empty())
        .map(|p| {
            p.split_once('=')
                .map(|(k, v)| (k.trim(), v.trim()))
                .ok_or_else(|| format!("expected key=value, got {p:?}"))
        })
        .collect()
}

impl ArrivalSpec {
    /// Parse a spec string (see the module docs for the grammar). Trace
    /// specs read their file here, so parse errors surface at CLI time.
    pub fn parse(s: &str) -> Result<ArrivalSpec, String> {
        let (kind, rest) = s
            .split_once(':')
            .ok_or_else(|| format!("expected KIND:ARGS, got {s:?}"))?;
        match kind.trim().to_ascii_lowercase().as_str() {
            "poisson" => {
                let mut rate = None;
                let mut count = None;
                let mut mix = Family::all().to_vec();
                for (k, v) in parse_kv(rest)? {
                    match k {
                        "rate" => {
                            rate = Some(v.parse::<f64>().map_err(|_| format!("bad rate {v:?}"))?)
                        }
                        "n" => count = Some(v.parse::<u64>().map_err(|_| format!("bad n {v:?}"))?),
                        "mix" => mix = parse_mix(v)?,
                        other => return Err(format!("unknown poisson key {other:?}")),
                    }
                }
                let rate = rate.ok_or("poisson needs rate=...")?;
                let count = count.ok_or("poisson needs n=...")?;
                if rate <= 0.0 || rate.is_nan() || count == 0 {
                    return Err("poisson needs rate > 0 and n > 0".into());
                }
                Ok(ArrivalSpec::Poisson { rate, count, mix })
            }
            "closed" => {
                let mut clients = None;
                let mut think = None;
                let mut count = None;
                let mut mix = Family::all().to_vec();
                for (k, v) in parse_kv(rest)? {
                    match k {
                        "clients" => {
                            clients = Some(
                                v.parse::<usize>()
                                    .map_err(|_| format!("bad clients {v:?}"))?,
                            )
                        }
                        "think" => {
                            think = Some(v.parse::<f64>().map_err(|_| format!("bad think {v:?}"))?)
                        }
                        "n" => count = Some(v.parse::<u64>().map_err(|_| format!("bad n {v:?}"))?),
                        "mix" => mix = parse_mix(v)?,
                        other => return Err(format!("unknown closed key {other:?}")),
                    }
                }
                let clients = clients.ok_or("closed needs clients=...")?;
                let think = think.unwrap_or(0.0);
                let count = count.ok_or("closed needs n=...")?;
                if clients == 0 || count == 0 || think < 0.0 {
                    return Err("closed needs clients > 0, n > 0, think >= 0".into());
                }
                Ok(ArrivalSpec::Closed {
                    clients,
                    think,
                    count,
                    mix,
                })
            }
            "trace" => {
                let text = std::fs::read_to_string(rest.trim())
                    .map_err(|e| format!("cannot read trace {rest:?}: {e}"))?;
                let rows = parse_trace(&text)?;
                Ok(ArrivalSpec::Trace(rows))
            }
            other => Err(format!(
                "unknown arrival kind {other:?}; expected poisson, closed or trace"
            )),
        }
    }

    /// Total number of submissions the stream will make.
    pub fn count(&self) -> u64 {
        match self {
            ArrivalSpec::Poisson { count, .. } | ArrivalSpec::Closed { count, .. } => *count,
            ArrivalSpec::Trace(rows) => rows.len() as u64,
        }
    }

    /// Every distinct (workflow, ranks) the stream can draw — the
    /// alphabet a campaign pre-characterizes in parallel before serving
    /// arrivals. Suite order, deduplicated.
    pub fn alphabet(&self) -> Vec<(String, usize, WorkflowSpec)> {
        let suite = paper_suite();
        let mut out: Vec<(String, usize, WorkflowSpec)> = Vec::new();
        let mut push = |family: Family, ranks: usize| {
            let name = family.name().to_string();
            if !out.iter().any(|(n, r, _)| *n == name && *r == ranks) {
                out.push((name, ranks, family.build(ranks)));
            }
        };
        match self {
            ArrivalSpec::Poisson { mix, .. } | ArrivalSpec::Closed { mix, .. } => {
                for entry in &suite {
                    if mix.contains(&entry.family) {
                        push(entry.family, entry.ranks);
                    }
                }
            }
            ArrivalSpec::Trace(rows) => {
                for row in rows {
                    push(row.family, row.ranks);
                }
            }
        }
        out
    }
}

/// Parse trace text: whitespace-separated `time workload ranks` rows,
/// `#` comments and blank lines ignored.
pub fn parse_trace(text: &str) -> Result<Vec<TraceRow>, String> {
    let mut rows = Vec::new();
    let mut last_time = 0.0f64;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let err = |what: &str| format!("trace line {}: {what}: {line:?}", lineno + 1);
        let time: f64 = parts
            .next()
            .ok_or_else(|| err("missing time"))?
            .parse()
            .map_err(|_| err("bad time"))?;
        let family = parts
            .next()
            .and_then(family_by_key)
            .ok_or_else(|| err("bad workload"))?;
        let ranks: usize = parts
            .next()
            .ok_or_else(|| err("missing ranks"))?
            .parse()
            .map_err(|_| err("bad ranks"))?;
        if parts.next().is_some() {
            return Err(err("trailing fields"));
        }
        if time < last_time || time.is_nan() {
            return Err(err("times must be non-decreasing"));
        }
        last_time = time;
        rows.push(TraceRow {
            time,
            family,
            ranks,
        });
    }
    if rows.is_empty() {
        return Err("trace has no arrivals".into());
    }
    Ok(rows)
}

/// Draw one suite entry (family at a paper rank level) from `mix`.
pub(crate) fn draw_workload(mix: &[Family], rng: &mut SplitMix64) -> (Family, usize) {
    let levels = [8usize, 16, 24];
    let i = rng.range_usize(0, mix.len() * levels.len());
    (mix[i / levels.len()], levels[i % levels.len()])
}

/// Pre-generate the arrivals of an *open* stream (Poisson or trace).
/// Closed-loop arrivals depend on completions and are generated by the
/// campaign loop itself.
pub fn generate_open(spec: &ArrivalSpec, seed: u64) -> Option<Vec<Arrival>> {
    match spec {
        ArrivalSpec::Poisson { rate, count, mix } => {
            let mut rng = SplitMix64::new(seed);
            let mut time = 0.0f64;
            let mut out = Vec::with_capacity(*count as usize);
            for id in 0..*count {
                // Exponential inter-arrival: -ln(1-U)/rate, U in [0,1).
                time += -(1.0 - rng.next_f64()).ln() / rate;
                let (family, ranks) = draw_workload(mix, &mut rng);
                out.push(Arrival {
                    id,
                    time,
                    workflow: family.name().to_string(),
                    ranks,
                    spec: family.build(ranks),
                    client: None,
                });
            }
            Some(out)
        }
        ArrivalSpec::Trace(rows) => Some(
            rows.iter()
                .enumerate()
                .map(|(id, row)| Arrival {
                    id: id as u64,
                    time: row.time,
                    workflow: row.family.name().to_string(),
                    ranks: row.ranks,
                    spec: row.family.build(row.ranks),
                    client: None,
                })
                .collect(),
        ),
        ArrivalSpec::Closed { .. } => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_spec_parses_and_generates() {
        let spec = ArrivalSpec::parse("poisson:rate=0.5,n=20,mix=gtc+miniamr").unwrap();
        let arrivals = generate_open(&spec, 7).unwrap();
        assert_eq!(arrivals.len(), 20);
        let mut last = 0.0;
        for (i, a) in arrivals.iter().enumerate() {
            assert_eq!(a.id, i as u64);
            assert!(a.time > last);
            last = a.time;
            assert!(a.workflow.starts_with("GTC") || a.workflow.starts_with("miniAMR"));
            assert!([8, 16, 24].contains(&a.ranks));
        }
        // Deterministic per seed, different across seeds.
        let again = generate_open(&spec, 7).unwrap();
        assert_eq!(arrivals.len(), again.len());
        for (a, b) in arrivals.iter().zip(again.iter()) {
            assert_eq!(a.time.to_bits(), b.time.to_bits());
            assert_eq!(a.workflow, b.workflow);
        }
        let other = generate_open(&spec, 8).unwrap();
        assert!(arrivals
            .iter()
            .zip(other.iter())
            .any(|(a, b)| a.time != b.time || a.workflow != b.workflow));
    }

    #[test]
    fn poisson_rate_controls_density() {
        let fast = generate_open(&ArrivalSpec::parse("poisson:rate=1,n=100").unwrap(), 1).unwrap();
        let slow =
            generate_open(&ArrivalSpec::parse("poisson:rate=0.1,n=100").unwrap(), 1).unwrap();
        assert!(slow.last().unwrap().time > 5.0 * fast.last().unwrap().time);
    }

    #[test]
    fn closed_spec_parses() {
        match ArrivalSpec::parse("closed:clients=4,think=30,n=50,mix=micro").unwrap() {
            ArrivalSpec::Closed {
                clients,
                think,
                count,
                mix,
            } => {
                assert_eq!((clients, count), (4, 50));
                assert_eq!(think, 30.0);
                assert_eq!(mix, vec![Family::Micro64MB, Family::Micro2KB]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn trace_parses_with_comments() {
        let rows = parse_trace(
            "# warmup\n0 micro-64mb 8\n5.5 gtc-matmult 16 # spike\n\n9 miniamr-readonly 24\n",
        )
        .unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[1].family, Family::GtcMatMul);
        assert_eq!(rows[2].ranks, 24);
    }

    #[test]
    fn bad_specs_are_rejected() {
        for bad in [
            "poisson",
            "poisson:rate=0,n=10",
            "poisson:rate=1",
            "poisson:rate=1,n=10,mix=hpl",
            "poisson:rate=1,n=10,burst=2",
            "closed:clients=0,n=10",
            "uniform:rate=1,n=10",
            "trace:/nonexistent/file",
        ] {
            assert!(ArrivalSpec::parse(bad).is_err(), "{bad} accepted");
        }
        assert!(parse_trace("3 micro-64mb 8\n1 micro-64mb 8").is_err());
        assert!(parse_trace("0 hpl 8").is_err());
        assert!(parse_trace("").is_err());
    }

    #[test]
    fn alphabet_covers_mix_at_all_levels() {
        let spec = ArrivalSpec::parse("poisson:rate=1,n=5,mix=gtc").unwrap();
        let alpha = spec.alphabet();
        assert_eq!(alpha.len(), 6); // 2 GTC families x 3 rank levels
        for (name, ranks, wf) in &alpha {
            assert!(name.starts_with("GTC"));
            assert_eq!(wf.ranks, *ranks);
            wf.validate().unwrap();
        }
    }

    #[test]
    fn draws_cover_the_whole_alphabet() {
        let mix = vec![Family::GtcReadOnly, Family::MiniAmrMatMul];
        let mut rng = SplitMix64::new(3);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            let (f, r) = draw_workload(&mix, &mut rng);
            assert!(mix.contains(&f));
            seen.insert((f.name(), r));
        }
        assert_eq!(seen.len(), 6);
    }
}
