//! Prediction services the queue policies and the serving daemon share.
//!
//! Two caches, both deterministic:
//!
//! * **Solo sweeps** — for every workload the oracle knows, all four
//!   Table I configurations are simulated (in parallel over
//!   [`pmemflow_core::map_ordered`] when prebuilt with [`Oracle::build`],
//!   or on demand via [`Oracle::ensure`]) together with the Table II
//!   characterization. Callers read the model-driven best configuration,
//!   per-config runtime predictions (the EASY-backfill reservation
//!   estimate), and the [`WorkflowProfile`] the Table II policy
//!   classifies.
//! * **Co-run pricing** — the predicted per-tenant outcome of every
//!   candidate resident set, from
//!   [`execute_coscheduled_with_baselines`] over the real device model.
//!   Keyed by the multiset of `(workflow, ranks, config)`, so each
//!   distinct co-residency is simulated exactly once per oracle.
//!
//! The oracle is the **single prediction path** of the workspace: the
//! campaign event loop prebuilds it over the arrival stream's alphabet,
//! and `pmemflow_serve` populates it lazily as queries arrive. Both see
//! bit-identical predictions for the same inputs.

use pmemflow_core::{
    execute_coscheduled_with_baselines, map_ordered, sweep, ConfigSweep, ExecError,
    ExecutionParams, SchedConfig, Tenant, TenantBreakdown,
};
use pmemflow_sched::{characterize, classify, recommend, RuleThresholds, WorkflowProfile};
use pmemflow_workloads::WorkflowSpec;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Identity of a tenant for pricing purposes: everything that affects the
/// device model sees of it.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct TenantKey {
    /// Workflow display name.
    pub workflow: String,
    /// Ranks per component.
    pub ranks: usize,
    /// Configuration label (Table I).
    pub config: &'static str,
}

impl TenantKey {
    /// Build a key.
    pub fn new(workflow: &str, ranks: usize, config: SchedConfig) -> TenantKey {
        TenantKey {
            workflow: workflow.to_string(),
            ranks,
            config: config.label(),
        }
    }
}

struct AlphabetEntry {
    spec: WorkflowSpec,
    sweep: ConfigSweep,
    profile: WorkflowProfile,
}

/// The shared prediction oracle (see module docs).
pub struct Oracle {
    entries: Mutex<BTreeMap<(String, usize), Arc<AlphabetEntry>>>,
    corun: Mutex<BTreeMap<Vec<TenantKey>, Arc<Vec<TenantBreakdown>>>>,
    exec: ExecutionParams,
}

impl Oracle {
    /// An empty oracle that populates on demand through [`Oracle::ensure`].
    pub fn new(exec: &ExecutionParams) -> Oracle {
        Oracle {
            entries: Mutex::new(BTreeMap::new()),
            corun: Mutex::new(BTreeMap::new()),
            exec: exec.clone(),
        }
    }

    /// Characterize every workload of `alphabet` with up to `jobs`
    /// parallel simulations. Results are independent of `jobs`.
    pub fn build(
        alphabet: &[(String, usize, WorkflowSpec)],
        exec: &ExecutionParams,
        jobs: usize,
    ) -> Result<Oracle, ExecError> {
        let items: Vec<(String, usize, WorkflowSpec)> = alphabet.to_vec();
        let results = map_ordered(items, jobs, |(_, _, spec)| characterize_one(spec, exec));
        let oracle = Oracle::new(exec);
        {
            let mut entries = oracle.entries.lock().unwrap();
            for ((name, ranks, spec), result) in alphabet.iter().cloned().zip(results) {
                let (sweep, profile) = result
                    .map_err(|panic| {
                        ExecError::Spec(format!("characterization panicked: {panic}"))
                    })?
                    .map_err(|e| ExecError::Spec(format!("characterizing {name}@{ranks}: {e}")))?;
                entries.insert(
                    (name, ranks),
                    Arc::new(AlphabetEntry {
                        spec,
                        sweep,
                        profile,
                    }),
                );
            }
        }
        Ok(oracle)
    }

    /// Make sure `workflow@ranks` is characterized, simulating the four
    /// configurations and the Table II profile on first sight. Subsequent
    /// calls are O(lookup). Concurrent first sights may both simulate;
    /// results are deterministic so either insert wins harmlessly.
    pub fn ensure(
        &self,
        workflow: &str,
        ranks: usize,
        spec: &WorkflowSpec,
    ) -> Result<(), ExecError> {
        let key = (workflow.to_string(), ranks);
        if self.entries.lock().unwrap().contains_key(&key) {
            return Ok(());
        }
        let (sweep, profile) = characterize_one(spec, &self.exec)
            .map_err(|e| ExecError::Spec(format!("characterizing {workflow}@{ranks}: {e}")))?;
        self.entries.lock().unwrap().entry(key).or_insert_with(|| {
            Arc::new(AlphabetEntry {
                spec: spec.clone(),
                sweep,
                profile,
            })
        });
        Ok(())
    }

    /// Whether `workflow@ranks` has been characterized already.
    pub fn contains(&self, workflow: &str, ranks: usize) -> bool {
        self.entries
            .lock()
            .unwrap()
            .contains_key(&(workflow.to_string(), ranks))
    }

    fn entry(&self, workflow: &str, ranks: usize) -> Arc<AlphabetEntry> {
        self.entries
            .lock()
            .unwrap()
            .get(&(workflow.to_string(), ranks))
            .cloned()
            .unwrap_or_else(|| panic!("{workflow}@{ranks} not in the campaign alphabet"))
    }

    /// The model-driven best configuration for a workload (argmin over the
    /// four simulated configurations).
    pub fn best_config(&self, workflow: &str, ranks: usize) -> SchedConfig {
        self.entry(workflow, ranks).sweep.best().config
    }

    /// Predicted solo runtime under a specific configuration.
    pub fn solo_runtime(&self, workflow: &str, ranks: usize, config: SchedConfig) -> f64 {
        self.entry(workflow, ranks).sweep.run(config).total
    }

    /// The full four-configuration sweep of a workload.
    pub fn config_sweep(&self, workflow: &str, ranks: usize) -> ConfigSweep {
        self.entry(workflow, ranks).sweep.clone()
    }

    /// The Table II characterization of a workload.
    pub fn profile(&self, workflow: &str, ranks: usize) -> WorkflowProfile {
        self.entry(workflow, ranks).profile.clone()
    }

    /// The Table II recommendation: the matching table row's configuration
    /// when one exists, otherwise the rule engine's pick.
    pub fn table2_config(&self, workflow: &str, ranks: usize) -> SchedConfig {
        let profile = self.profile(workflow, ranks);
        match classify(&profile) {
            Some(row) => row.config,
            None => recommend(&profile, &RuleThresholds::default()).config,
        }
    }

    /// The built workflow for a stream entry.
    pub fn spec(&self, workflow: &str, ranks: usize) -> WorkflowSpec {
        self.entry(workflow, ranks).spec.clone()
    }

    /// Predicted per-tenant slowdowns of co-running `set` on one node, in
    /// input order. A singleton never interferes with itself (1.0, no
    /// simulation); larger sets are priced by co-simulating the full set
    /// against the shared device model, memoized on the multiset of keys.
    pub fn corun_slowdowns(&self, set: &[TenantKey]) -> Result<Vec<f64>, ExecError> {
        if set.len() <= 1 {
            return Ok(vec![1.0; set.len()]);
        }
        Ok(self
            .corun_breakdown(set)?
            .iter()
            .map(|b| b.slowdown)
            .collect())
    }

    /// Full per-tenant attribution of co-running `set` on one node, in
    /// input order (each breakdown's `index` is rewritten to the input
    /// position). Priced through the same memoized path as
    /// [`Oracle::corun_slowdowns`].
    pub fn corun_breakdown(&self, set: &[TenantKey]) -> Result<Vec<TenantBreakdown>, ExecError> {
        if set.is_empty() {
            return Ok(Vec::new());
        }
        // Canonical order: sort keys; remember where each input key went.
        let mut order: Vec<usize> = (0..set.len()).collect();
        order.sort_by(|&a, &b| set[a].cmp(&set[b]));
        let canonical: Vec<TenantKey> = order.iter().map(|&i| set[i].clone()).collect();

        let cached = self.corun.lock().unwrap().get(&canonical).cloned();
        let breakdowns = match cached {
            Some(b) => b,
            None => {
                let tenants: Vec<Tenant> = canonical
                    .iter()
                    .map(|k| Tenant {
                        spec: self.entry(&k.workflow, k.ranks).spec.clone(),
                        config: SchedConfig::parse(k.config).expect("key holds a valid label"),
                    })
                    .collect();
                let baselines: Vec<f64> = canonical
                    .iter()
                    .map(|k| {
                        self.solo_runtime(
                            &k.workflow,
                            k.ranks,
                            SchedConfig::parse(k.config).expect("key holds a valid label"),
                        )
                    })
                    .collect();
                let out =
                    execute_coscheduled_with_baselines(&tenants, &self.exec, Some(&baselines))?;
                let b = Arc::new(out.breakdown);
                self.corun
                    .lock()
                    .unwrap()
                    .insert(canonical.clone(), b.clone());
                b
            }
        };
        // Un-permute back to input order, restoring input indices.
        let mut result: Vec<TenantBreakdown> = vec![breakdowns[0].clone(); set.len()];
        for (canon_pos, &input_pos) in order.iter().enumerate() {
            let mut b = breakdowns[canon_pos].clone();
            b.index = input_pos;
            result[input_pos] = b;
        }
        Ok(result)
    }

    /// Number of distinct co-residency sets priced so far (diagnostics).
    pub fn corun_cache_len(&self) -> usize {
        self.corun.lock().unwrap().len()
    }

    /// Number of workloads characterized so far (diagnostics).
    pub fn alphabet_len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// The execution parameters every prediction runs under.
    pub fn exec(&self) -> &ExecutionParams {
        &self.exec
    }
}

/// One workload's full characterization: the four-configuration sweep plus
/// the Table II profile.
fn characterize_one(
    spec: &WorkflowSpec,
    exec: &ExecutionParams,
) -> Result<(ConfigSweep, WorkflowProfile), ExecError> {
    let sw = sweep(spec, exec)?;
    let profile = characterize(spec, exec)?;
    Ok((sw, profile))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmemflow_workloads::Family;

    fn tiny_alphabet() -> Vec<(String, usize, WorkflowSpec)> {
        [(Family::Micro64MB, 8usize), (Family::Micro2KB, 8usize)]
            .into_iter()
            .map(|(f, r)| (f.name().to_string(), r, f.build(r)))
            .collect()
    }

    #[test]
    fn oracle_predictions_are_job_count_invariant() {
        let exec = ExecutionParams::default();
        let a = Oracle::build(&tiny_alphabet(), &exec, 1).unwrap();
        let b = Oracle::build(&tiny_alphabet(), &exec, 4).unwrap();
        for (name, ranks, _) in tiny_alphabet() {
            assert_eq!(a.best_config(&name, ranks), b.best_config(&name, ranks));
            for c in SchedConfig::ALL {
                assert_eq!(
                    a.solo_runtime(&name, ranks, c).to_bits(),
                    b.solo_runtime(&name, ranks, c).to_bits()
                );
            }
        }
    }

    #[test]
    fn on_demand_oracle_matches_prebuilt() {
        // `serve` populates lazily; the campaign prebuilds. Same numbers.
        let exec = ExecutionParams::default();
        let prebuilt = Oracle::build(&tiny_alphabet(), &exec, 2).unwrap();
        let lazy = Oracle::new(&exec);
        assert_eq!(lazy.alphabet_len(), 0);
        for (name, ranks, spec) in tiny_alphabet() {
            assert!(!lazy.contains(&name, ranks));
            lazy.ensure(&name, ranks, &spec).unwrap();
            lazy.ensure(&name, ranks, &spec).unwrap(); // idempotent
            assert!(lazy.contains(&name, ranks));
            assert_eq!(
                lazy.best_config(&name, ranks),
                prebuilt.best_config(&name, ranks)
            );
            for c in SchedConfig::ALL {
                assert_eq!(
                    lazy.solo_runtime(&name, ranks, c).to_bits(),
                    prebuilt.solo_runtime(&name, ranks, c).to_bits()
                );
            }
            assert_eq!(
                lazy.table2_config(&name, ranks),
                prebuilt.table2_config(&name, ranks)
            );
        }
        assert_eq!(lazy.alphabet_len(), 2);
    }

    #[test]
    fn corun_pricing_is_order_insensitive_and_cached() {
        let exec = ExecutionParams::default();
        let oracle = Oracle::build(&tiny_alphabet(), &exec, 2).unwrap();
        let a = TenantKey::new("micro-64MB", 8, SchedConfig::S_LOC_W);
        let b = TenantKey::new("micro-2KB", 8, SchedConfig::P_LOC_R);
        let ab = oracle.corun_slowdowns(&[a.clone(), b.clone()]).unwrap();
        let ba = oracle.corun_slowdowns(&[b, a]).unwrap();
        assert_eq!(ab[0].to_bits(), ba[1].to_bits());
        assert_eq!(ab[1].to_bits(), ba[0].to_bits());
        assert_eq!(oracle.corun_cache_len(), 1, "one multiset, one sim");
        for s in ab {
            assert!(s >= 0.99, "slowdown {s}");
        }
    }

    #[test]
    fn corun_breakdown_reports_input_positions() {
        let exec = ExecutionParams::default();
        let oracle = Oracle::build(&tiny_alphabet(), &exec, 2).unwrap();
        let a = TenantKey::new("micro-64MB", 8, SchedConfig::S_LOC_W);
        let b = TenantKey::new("micro-2KB", 8, SchedConfig::P_LOC_R);
        let ab = oracle.corun_breakdown(&[a.clone(), b.clone()]).unwrap();
        let ba = oracle.corun_breakdown(&[b, a]).unwrap();
        assert_eq!(ab.len(), 2);
        for (i, bd) in ab.iter().enumerate() {
            assert_eq!(bd.index, i);
        }
        assert_eq!(ab[0].workflow, ba[1].workflow);
        assert_eq!(ab[0].end.to_bits(), ba[1].end.to_bits());
        assert_eq!(
            ab[0].slowdown.to_bits(),
            oracle
                .corun_slowdowns(&[
                    TenantKey::new("micro-64MB", 8, SchedConfig::S_LOC_W),
                    TenantKey::new("micro-2KB", 8, SchedConfig::P_LOC_R)
                ])
                .unwrap()[0]
                .to_bits()
        );
        assert_eq!(oracle.corun_cache_len(), 1, "breakdowns share the cache");
    }

    #[test]
    fn singletons_never_interfere() {
        let exec = ExecutionParams::default();
        let oracle = Oracle::build(&tiny_alphabet(), &exec, 2).unwrap();
        let k = TenantKey::new("micro-64MB", 8, SchedConfig::S_LOC_W);
        assert_eq!(oracle.corun_slowdowns(&[k]).unwrap(), vec![1.0]);
        assert_eq!(oracle.corun_cache_len(), 0);
    }
}
