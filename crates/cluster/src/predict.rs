//! Prediction services the queue policies share.
//!
//! Two caches, both deterministic:
//!
//! * **Solo sweeps** — for every workload in the stream's alphabet, all
//!   four Table I configurations are simulated up front (in parallel over
//!   [`pmemflow_core::map_ordered`], so `--jobs` changes wall time but
//!   never results) together with the Table II characterization. Policies
//!   read the model-driven best configuration, per-config runtime
//!   predictions (the EASY-backfill reservation estimate), and the
//!   [`WorkflowProfile`] the Table II policy classifies.
//! * **Co-run pricing** — the predicted slowdown of every tenant of a
//!   candidate resident set, from [`execute_coscheduled_with_baselines`]
//!   over the real device model. Keyed by the multiset of
//!   `(workflow, ranks, config)`, so a campaign only ever simulates each
//!   distinct co-residency once.

use pmemflow_core::{
    execute_coscheduled_with_baselines, map_ordered, sweep, ConfigSweep, ExecError,
    ExecutionParams, SchedConfig, Tenant,
};
use pmemflow_sched::{characterize, classify, recommend, RuleThresholds, WorkflowProfile};
use pmemflow_workloads::WorkflowSpec;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Identity of a tenant for pricing purposes: everything that affects the
/// device model sees of it.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct TenantKey {
    /// Workflow display name.
    pub workflow: String,
    /// Ranks per component.
    pub ranks: usize,
    /// Configuration label (Table I).
    pub config: &'static str,
}

impl TenantKey {
    /// Build a key.
    pub fn new(workflow: &str, ranks: usize, config: SchedConfig) -> TenantKey {
        TenantKey {
            workflow: workflow.to_string(),
            ranks,
            config: config.label(),
        }
    }
}

struct AlphabetEntry {
    spec: WorkflowSpec,
    sweep: ConfigSweep,
    profile: WorkflowProfile,
}

/// The shared prediction oracle (see module docs).
pub struct Oracle {
    entries: BTreeMap<(String, usize), AlphabetEntry>,
    corun: Mutex<BTreeMap<Vec<TenantKey>, Vec<f64>>>,
    exec: ExecutionParams,
}

impl Oracle {
    /// Characterize every workload of `alphabet` with up to `jobs`
    /// parallel simulations. Results are independent of `jobs`.
    pub fn build(
        alphabet: &[(String, usize, WorkflowSpec)],
        exec: &ExecutionParams,
        jobs: usize,
    ) -> Result<Oracle, ExecError> {
        let items: Vec<(String, usize, WorkflowSpec)> = alphabet.to_vec();
        let results = map_ordered(items, jobs, |(_, _, spec)| {
            let sw = sweep(spec, exec)?;
            let profile = characterize(spec, exec)?;
            Ok::<(ConfigSweep, WorkflowProfile), ExecError>((sw, profile))
        });
        let mut entries = BTreeMap::new();
        for ((name, ranks, spec), result) in alphabet.iter().cloned().zip(results) {
            let (sweep, profile) = result
                .map_err(|panic| ExecError::Spec(format!("characterization panicked: {panic}")))?
                .map_err(|e| ExecError::Spec(format!("characterizing {name}@{ranks}: {e}")))?;
            entries.insert(
                (name, ranks),
                AlphabetEntry {
                    spec,
                    sweep,
                    profile,
                },
            );
        }
        Ok(Oracle {
            entries,
            corun: Mutex::new(BTreeMap::new()),
            exec: exec.clone(),
        })
    }

    fn entry(&self, workflow: &str, ranks: usize) -> &AlphabetEntry {
        self.entries
            .get(&(workflow.to_string(), ranks))
            .unwrap_or_else(|| panic!("{workflow}@{ranks} not in the campaign alphabet"))
    }

    /// The model-driven best configuration for a workload (argmin over the
    /// four simulated configurations).
    pub fn best_config(&self, workflow: &str, ranks: usize) -> SchedConfig {
        self.entry(workflow, ranks).sweep.best().config
    }

    /// Predicted solo runtime under a specific configuration.
    pub fn solo_runtime(&self, workflow: &str, ranks: usize, config: SchedConfig) -> f64 {
        self.entry(workflow, ranks).sweep.run(config).total
    }

    /// The Table II recommendation: the matching table row's configuration
    /// when one exists, otherwise the rule engine's pick.
    pub fn table2_config(&self, workflow: &str, ranks: usize) -> SchedConfig {
        let profile = &self.entry(workflow, ranks).profile;
        match classify(profile) {
            Some(row) => row.config,
            None => recommend(profile, &RuleThresholds::default()).config,
        }
    }

    /// The built workflow for a stream entry.
    pub fn spec(&self, workflow: &str, ranks: usize) -> &WorkflowSpec {
        &self.entry(workflow, ranks).spec
    }

    /// Predicted per-tenant slowdowns of co-running `set` on one node, in
    /// input order. A singleton never interferes with itself (1.0, no
    /// simulation); larger sets are priced by co-simulating the full set
    /// against the shared device model, memoized on the multiset of keys.
    pub fn corun_slowdowns(&self, set: &[TenantKey]) -> Result<Vec<f64>, ExecError> {
        if set.len() <= 1 {
            return Ok(vec![1.0; set.len()]);
        }
        // Canonical order: sort keys; remember where each input key went.
        let mut order: Vec<usize> = (0..set.len()).collect();
        order.sort_by(|&a, &b| set[a].cmp(&set[b]));
        let canonical: Vec<TenantKey> = order.iter().map(|&i| set[i].clone()).collect();

        let cached = self.corun.lock().unwrap().get(&canonical).cloned();
        let slowdowns = match cached {
            Some(s) => s,
            None => {
                let tenants: Vec<Tenant> = canonical
                    .iter()
                    .map(|k| Tenant {
                        spec: self.entry(&k.workflow, k.ranks).spec.clone(),
                        config: SchedConfig::parse(k.config).expect("key holds a valid label"),
                    })
                    .collect();
                let baselines: Vec<f64> = canonical
                    .iter()
                    .map(|k| {
                        self.solo_runtime(
                            &k.workflow,
                            k.ranks,
                            SchedConfig::parse(k.config).expect("key holds a valid label"),
                        )
                    })
                    .collect();
                let out =
                    execute_coscheduled_with_baselines(&tenants, &self.exec, Some(&baselines))?;
                let s: Vec<f64> = out.breakdown.iter().map(|b| b.slowdown).collect();
                self.corun
                    .lock()
                    .unwrap()
                    .insert(canonical.clone(), s.clone());
                s
            }
        };
        // Un-permute back to input order.
        let mut result = vec![0.0; set.len()];
        for (canon_pos, &input_pos) in order.iter().enumerate() {
            result[input_pos] = slowdowns[canon_pos];
        }
        Ok(result)
    }

    /// Number of distinct co-residency sets priced so far (diagnostics).
    pub fn corun_cache_len(&self) -> usize {
        self.corun.lock().unwrap().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmemflow_workloads::Family;

    fn tiny_alphabet() -> Vec<(String, usize, WorkflowSpec)> {
        [(Family::Micro64MB, 8usize), (Family::Micro2KB, 8usize)]
            .into_iter()
            .map(|(f, r)| (f.name().to_string(), r, f.build(r)))
            .collect()
    }

    #[test]
    fn oracle_predictions_are_job_count_invariant() {
        let exec = ExecutionParams::default();
        let a = Oracle::build(&tiny_alphabet(), &exec, 1).unwrap();
        let b = Oracle::build(&tiny_alphabet(), &exec, 4).unwrap();
        for (name, ranks, _) in tiny_alphabet() {
            assert_eq!(a.best_config(&name, ranks), b.best_config(&name, ranks));
            for c in SchedConfig::ALL {
                assert_eq!(
                    a.solo_runtime(&name, ranks, c).to_bits(),
                    b.solo_runtime(&name, ranks, c).to_bits()
                );
            }
        }
    }

    #[test]
    fn corun_pricing_is_order_insensitive_and_cached() {
        let exec = ExecutionParams::default();
        let oracle = Oracle::build(&tiny_alphabet(), &exec, 2).unwrap();
        let a = TenantKey::new("micro-64MB", 8, SchedConfig::S_LOC_W);
        let b = TenantKey::new("micro-2KB", 8, SchedConfig::P_LOC_R);
        let ab = oracle.corun_slowdowns(&[a.clone(), b.clone()]).unwrap();
        let ba = oracle.corun_slowdowns(&[b, a]).unwrap();
        assert_eq!(ab[0].to_bits(), ba[1].to_bits());
        assert_eq!(ab[1].to_bits(), ba[0].to_bits());
        assert_eq!(oracle.corun_cache_len(), 1, "one multiset, one sim");
        for s in ab {
            assert!(s >= 0.99, "slowdown {s}");
        }
    }

    #[test]
    fn singletons_never_interfere() {
        let exec = ExecutionParams::default();
        let oracle = Oracle::build(&tiny_alphabet(), &exec, 2).unwrap();
        let k = TenantKey::new("micro-64MB", 8, SchedConfig::S_LOC_W);
        assert_eq!(oracle.corun_slowdowns(&[k]).unwrap(), vec![1.0]);
        assert_eq!(oracle.corun_cache_len(), 0);
    }
}
