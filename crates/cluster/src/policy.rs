//! Pluggable queue policies.
//!
//! A policy is consulted whenever the cluster state changes (an arrival or
//! a completion) and returns the batch of placements to make *now*. It
//! sees an immutable snapshot of the queue and node occupancy plus the
//! shared prediction [`Oracle`]; the campaign loop applies the batch and
//! re-prices affected nodes.
//!
//! Four policies ship:
//!
//! * [`Fcfs`] — strict first-come-first-served: the queue head is placed
//!   on the first node with capacity; a blocked head blocks everyone
//!   behind it. The baseline every HPC batch scheduler starts from.
//! * [`EasyBackfill`] — FCFS plus EASY backfilling: a blocked head gets a
//!   shadow reservation at the earliest predicted time capacity frees
//!   (model-driven runtime predictions), and later jobs may jump the
//!   queue when they cannot delay that reservation.
//! * [`Table2Rule`] — the paper's Table II as an online policy: each job
//!   runs under its classified row's configuration and is placed on the
//!   least-loaded node with capacity (blocked jobs are skipped, not
//!   barriers).
//! * [`InterferenceAware`] — best-fit by predicted co-run damage: every
//!   candidate node is scored by co-simulating the job against the node's
//!   residents on the shared device model, and the job joins the node
//!   where the *marginal aggregate slowdown* (its own plus what it
//!   inflicts) is smallest — and only if that cost clears an admission
//!   threshold, because under PMEM contention declining a legal placement
//!   often beats taking it.

use crate::predict::{Oracle, TenantKey};
use pmemflow_core::{ExecError, SchedConfig};

/// A job waiting in the queue, as policies see it.
#[derive(Debug, Clone)]
pub struct QueuedJob {
    /// Submission id (arrival order).
    pub id: u64,
    /// Workflow display name.
    pub workflow: String,
    /// Ranks per component (the per-socket core demand).
    pub ranks: usize,
    /// Submission time.
    pub arrival: f64,
}

/// A running job, as policies see it.
#[derive(Debug, Clone)]
pub struct ResidentView {
    /// Submission id.
    pub id: u64,
    /// Workflow display name.
    pub workflow: String,
    /// Ranks per component.
    pub ranks: usize,
    /// Configuration it runs under.
    pub config: SchedConfig,
    /// Projected completion time at the current interference rate.
    pub projected_finish: f64,
}

/// One node's occupancy, as policies see it.
#[derive(Debug, Clone)]
pub struct NodeView {
    /// Node id.
    pub id: usize,
    /// Core capacity per socket.
    pub cores_per_socket: usize,
    /// Whether the node is alive. Crashed nodes appear in the snapshot
    /// (so node ids stay stable) but hold no jobs and accept none.
    pub up: bool,
    /// Jobs currently running on the node.
    pub residents: Vec<ResidentView>,
}

impl NodeView {
    /// Cores used per socket (every job pins `ranks` writers on one socket
    /// and `ranks` readers on the other, so both sockets carry the sum).
    pub fn used_cores(&self) -> usize {
        self.residents.iter().map(|r| r.ranks).sum()
    }

    /// Whether a `ranks`-wide job fits right now (never on a down node).
    pub fn fits(&self, ranks: usize) -> bool {
        self.up && self.used_cores() + ranks <= self.cores_per_socket
    }

    /// The tenant keys of the residents (for co-run pricing).
    pub fn resident_keys(&self) -> Vec<TenantKey> {
        self.residents
            .iter()
            .map(|r| TenantKey::new(&r.workflow, r.ranks, r.config))
            .collect()
    }
}

/// A placement decision: start queue entry `job` on `node` under `config`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Submission id of the queued job.
    pub job: u64,
    /// Target node.
    pub node: usize,
    /// Configuration to run under.
    pub config: SchedConfig,
}

/// A queue policy. Implementations must be deterministic: the same
/// arguments must always produce the same batch.
pub trait Policy: Send + Sync {
    /// Short CLI name.
    fn name(&self) -> &'static str;

    /// Decide which queued jobs to start now. `queue` is in arrival
    /// order; `nodes` is in id order. The batch must be internally
    /// consistent (the campaign validates cumulative capacity).
    fn schedule(
        &self,
        now: f64,
        queue: &[QueuedJob],
        nodes: &[NodeView],
        oracle: &Oracle,
    ) -> Result<Vec<Placement>, ExecError>;
}

/// Resolve a policy by CLI name.
pub fn policy_by_name(name: &str) -> Option<Box<dyn Policy>> {
    match name.to_ascii_lowercase().as_str() {
        "fcfs" => Some(Box::new(Fcfs)),
        "easy" | "easy-backfill" | "backfill" => Some(Box::new(EasyBackfill)),
        "table2" => Some(Box::new(Table2Rule)),
        "interference" | "interference-aware" => Some(Box::new(InterferenceAware::default())),
        _ => None,
    }
}

/// Valid `--policy` names for error messages and help text.
pub const POLICY_CHOICES: &str = "fcfs, easy, table2, interference, all";

/// All four policies in comparison order.
pub fn all_policies() -> Vec<Box<dyn Policy>> {
    vec![
        Box::new(Fcfs),
        Box::new(EasyBackfill),
        Box::new(Table2Rule),
        Box::new(InterferenceAware::default()),
    ]
}

/// Mutable occupancy scratch the policies plan cumulative batches with.
struct PlanState {
    used: Vec<usize>,
    up: Vec<bool>,
    cap: usize,
}

impl PlanState {
    fn new(nodes: &[NodeView]) -> PlanState {
        PlanState {
            used: nodes.iter().map(NodeView::used_cores).collect(),
            up: nodes.iter().map(|n| n.up).collect(),
            cap: nodes.first().map_or(0, |n| n.cores_per_socket),
        }
    }

    fn fits(&self, node: usize, ranks: usize) -> bool {
        self.up[node] && self.used[node] + ranks <= self.cap
    }

    fn first_fit(&self, ranks: usize) -> Option<usize> {
        (0..self.used.len()).find(|&n| self.fits(n, ranks))
    }

    /// Least-loaded node with room; ties go to the lowest id.
    fn least_loaded_fit(&self, ranks: usize) -> Option<usize> {
        (0..self.used.len())
            .filter(|&n| self.fits(n, ranks))
            .min_by_key(|&n| self.used[n])
    }

    fn place(&mut self, node: usize, ranks: usize) {
        self.used[node] += ranks;
    }
}

/// Strict first-come-first-served (see module docs).
pub struct Fcfs;

impl Policy for Fcfs {
    fn name(&self) -> &'static str {
        "fcfs"
    }

    fn schedule(
        &self,
        _now: f64,
        queue: &[QueuedJob],
        nodes: &[NodeView],
        oracle: &Oracle,
    ) -> Result<Vec<Placement>, ExecError> {
        let mut plan = PlanState::new(nodes);
        let mut batch = Vec::new();
        for job in queue {
            let Some(node) = plan.first_fit(job.ranks) else {
                break; // head-of-line blocking: nobody may overtake
            };
            plan.place(node, job.ranks);
            batch.push(Placement {
                job: job.id,
                node,
                config: oracle.best_config(&job.workflow, job.ranks),
            });
        }
        Ok(batch)
    }
}

/// EASY backfilling over FCFS (see module docs).
pub struct EasyBackfill;

impl Policy for EasyBackfill {
    fn name(&self) -> &'static str {
        "easy"
    }

    fn schedule(
        &self,
        now: f64,
        queue: &[QueuedJob],
        nodes: &[NodeView],
        oracle: &Oracle,
    ) -> Result<Vec<Placement>, ExecError> {
        let mut plan = PlanState::new(nodes);
        let mut batch = Vec::new();
        let mut rest = queue;
        // FCFS prefix: place heads while they fit.
        while let Some(job) = rest.first() {
            let Some(node) = plan.first_fit(job.ranks) else {
                break;
            };
            plan.place(node, job.ranks);
            batch.push(Placement {
                job: job.id,
                node,
                config: oracle.best_config(&job.workflow, job.ranks),
            });
            rest = &rest[1..];
        }
        let Some(head) = rest.first() else {
            return Ok(batch);
        };
        // Shadow reservation for the blocked head: per node, the earliest
        // time enough residents are predicted to have finished. Jobs just
        // placed in the prefix are pessimistically assumed to run to the
        // end of the shadow horizon (they only just started).
        let mut shadow_node = 0usize;
        let mut shadow_time = f64::INFINITY;
        for node in nodes {
            // A down node cannot anchor the head's reservation: nothing
            // frees on it and nothing may start on it.
            if !node.up || plan.used[node.id] > node.cores_per_socket {
                continue;
            }
            let mut finishes: Vec<(f64, usize)> = node
                .residents
                .iter()
                .map(|r| (r.projected_finish, r.ranks))
                .collect();
            finishes.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            let mut t = now;
            let mut free = node.cores_per_socket - plan.used[node.id];
            let mut fits_at = None;
            if free >= head.ranks {
                fits_at = Some(t);
            }
            for (finish, ranks) in finishes {
                if fits_at.is_some() {
                    break;
                }
                free += ranks;
                t = finish.max(now);
                if free >= head.ranks {
                    fits_at = Some(t);
                }
            }
            if let Some(t) = fits_at {
                if t < shadow_time {
                    shadow_time = t;
                    shadow_node = node.id;
                }
            }
        }
        // Backfill pass: later jobs may start now when they fit and cannot
        // delay the reservation — on the shadow node only if predicted to
        // finish by the shadow time, elsewhere freely.
        for job in &rest[1..] {
            let config = oracle.best_config(&job.workflow, job.ranks);
            let predicted_end = now + oracle.solo_runtime(&job.workflow, job.ranks, config);
            let candidate = (0..nodes.len())
                .filter(|&n| plan.fits(n, job.ranks))
                .find(|&n| n != shadow_node || predicted_end <= shadow_time);
            if let Some(node) = candidate {
                plan.place(node, job.ranks);
                batch.push(Placement {
                    job: job.id,
                    node,
                    config,
                });
            }
        }
        Ok(batch)
    }
}

/// Table II rule-based placement (see module docs).
pub struct Table2Rule;

impl Policy for Table2Rule {
    fn name(&self) -> &'static str {
        "table2"
    }

    fn schedule(
        &self,
        _now: f64,
        queue: &[QueuedJob],
        nodes: &[NodeView],
        oracle: &Oracle,
    ) -> Result<Vec<Placement>, ExecError> {
        let mut plan = PlanState::new(nodes);
        let mut batch = Vec::new();
        for job in queue {
            let Some(node) = plan.least_loaded_fit(job.ranks) else {
                continue; // list scheduling: skip blocked jobs
            };
            plan.place(node, job.ranks);
            batch.push(Placement {
                job: job.id,
                node,
                config: oracle.table2_config(&job.workflow, job.ranks),
            });
        }
        Ok(batch)
    }
}

/// Interference-aware best fit (see module docs).
pub struct InterferenceAware {
    /// Largest acceptable marginal aggregate slowdown for a non-head job
    /// to join a node. A lone tenant costs exactly 1.0, so the default
    /// allows co-location only while the *total* added stretch (the job's
    /// own plus what it inflicts on residents) stays below one extra
    /// job-equivalent. The queue head is exempt — it always takes the
    /// cheapest node, so nothing starves.
    pub max_marginal: f64,
}

impl Default for InterferenceAware {
    fn default() -> InterferenceAware {
        InterferenceAware { max_marginal: 2.0 }
    }
}

impl Policy for InterferenceAware {
    fn name(&self) -> &'static str {
        "interference"
    }

    fn schedule(
        &self,
        _now: f64,
        queue: &[QueuedJob],
        nodes: &[NodeView],
        oracle: &Oracle,
    ) -> Result<Vec<Placement>, ExecError> {
        let mut plan = PlanState::new(nodes);
        // Track this batch's own placements so scoring sees them too.
        let mut planned: Vec<Vec<TenantKey>> = nodes.iter().map(NodeView::resident_keys).collect();
        let mut batch = Vec::new();
        for (qi, job) in queue.iter().enumerate() {
            let config = oracle.best_config(&job.workflow, job.ranks);
            let key = TenantKey::new(&job.workflow, job.ranks, config);
            let mut best: Option<(f64, usize, usize)> = None; // (cost, used, node)
            for (node, residents) in planned.iter().enumerate() {
                if !plan.fits(node, job.ranks) {
                    continue;
                }
                // Marginal aggregate cost of joining this node: the job's
                // own slowdown plus the extra slowdown it inflicts on the
                // planned residents. Scoring only the incoming job's side
                // over-packs — a newcomer can run nearly unharmed while
                // wrecking a bandwidth-bound resident.
                let before: f64 = oracle.corun_slowdowns(residents)?.iter().sum();
                let mut set = residents.clone();
                set.push(key.clone());
                let after: f64 = oracle.corun_slowdowns(&set)?.iter().sum();
                let score = (after - before, plan.used[node], node);
                if best.is_none_or(|b| score < b) {
                    best = Some(score);
                }
            }
            let Some((cost, _, node)) = best else {
                continue; // skip blocked jobs, like table2
            };
            // Non-head jobs may not join when the co-location damage
            // outweighs the service: waiting for a cheaper slot beats
            // inflating everyone's runtime.
            if qi > 0 && cost > self.max_marginal {
                continue;
            }
            plan.place(node, job.ranks);
            planned[node].push(key);
            batch.push(Placement {
                job: job.id,
                node,
                config,
            });
        }
        Ok(batch)
    }
}
