//! # pmemflow-cluster — online multi-node campaign scheduling
//!
//! The paper schedules one workflow onto one dual-socket PMEM node. This
//! crate asks the operational question a facility faces next: given a
//! *stream* of such workflows arriving at a *cluster* of those nodes,
//! which queue policy serves them best when co-located tenants contend
//! for the shared PMEM devices?
//!
//! Three layers:
//!
//! * [`arrivals`] — deterministic workflow arrival streams (Poisson,
//!   closed-loop, trace-file) over the paper's 18-workload suite.
//! * [`predict`] — the shared prediction oracle: per-workload
//!   configuration sweeps and memoized co-run pricing through the real
//!   device model.
//! * [`policy`] + [`campaign`] — four pluggable queue policies (FCFS,
//!   EASY backfill, Table II rules, interference-aware best fit) driven
//!   by an event loop that re-prices node interference on every
//!   resident-set change and emits per-job queueing metrics as
//!   deterministic JSONL.
//!
//! ```no_run
//! use pmemflow_cluster::{
//!     run_campaign, ArrivalSpec, CampaignConfig, Fcfs,
//! };
//! use pmemflow_core::ExecutionParams;
//!
//! let config = CampaignConfig {
//!     nodes: 4,
//!     arrivals: ArrivalSpec::parse("poisson:rate=0.01,n=200,mix=gtc+miniamr").unwrap(),
//!     seed: 42,
//!     exec: ExecutionParams::default(),
//! };
//! let outcome = run_campaign(&config, &Fcfs, 4).unwrap();
//! println!("{}", outcome.to_jsonl());
//! ```

#![warn(missing_docs)]

pub mod arrivals;
pub mod campaign;
pub mod policy;
pub mod predict;

pub use arrivals::{generate_open, parse_trace, Arrival, ArrivalSpec, TraceRow};
pub use campaign::{
    run_campaign, run_campaign_with_oracle, CampaignConfig, CampaignOutcome, ClusterError,
    JobRecord, BSLD_TAU,
};
pub use policy::{
    all_policies, policy_by_name, EasyBackfill, Fcfs, InterferenceAware, NodeView, Placement,
    Policy, QueuedJob, ResidentView, Table2Rule, POLICY_CHOICES,
};
pub use predict::{Oracle, TenantKey};
