//! # pmemflow-cluster — online multi-node campaign scheduling
//!
//! The paper schedules one workflow onto one dual-socket PMEM node. This
//! crate asks the operational question a facility faces next: given a
//! *stream* of such workflows arriving at a *cluster* of those nodes,
//! which queue policy serves them best when co-located tenants contend
//! for the shared PMEM devices?
//!
//! Three layers:
//!
//! * [`arrivals`] — deterministic workflow arrival streams (Poisson,
//!   closed-loop, trace-file) over the paper's 18-workload suite.
//! * [`predict`] — the shared prediction oracle: per-workload
//!   configuration sweeps and memoized co-run pricing through the real
//!   device model.
//! * [`policy`] + [`campaign`] — four pluggable queue policies (FCFS,
//!   EASY backfill, Table II rules, interference-aware best fit) driven
//!   by an event loop that re-prices node interference on every
//!   resident-set change and emits per-job queueing metrics as
//!   deterministic JSONL.
//!
//! Campaigns can also run under a seeded fault plan
//! ([`pmemflow_fault`]): node crashes and transient PMEM degradation
//! interrupt residents, jobs checkpoint into local PMEM (charged through
//! the I/O-stack cost model) and restart from their last image with
//! retry budgets and exponential backoff — all byte-reproducible.
//!
//! ```no_run
//! use pmemflow_cluster::{
//!     run_campaign, ArrivalSpec, CampaignConfig, CheckpointSpec, FaultSpec, Fcfs,
//! };
//!
//! let config = CampaignConfig {
//!     nodes: 4,
//!     arrivals: ArrivalSpec::parse("poisson:rate=0.01,n=200,mix=gtc+miniamr").unwrap(),
//!     seed: 42,
//!     faults: FaultSpec { seed: 7, mtbf: 5000.0, repair: 120.0, ..FaultSpec::default() },
//!     checkpoint: CheckpointSpec { interval: 60.0, ..CheckpointSpec::default() },
//!     ..CampaignConfig::default()
//! };
//! let outcome = run_campaign(&config, &Fcfs, 4).unwrap();
//! println!("{}", outcome.to_jsonl());
//! ```

#![warn(missing_docs)]

pub mod arrivals;
pub mod campaign;
pub mod policy;
pub mod predict;

pub use arrivals::{generate_open, parse_trace, Arrival, ArrivalSpec, TraceRow};
pub use campaign::{
    run_campaign, run_campaign_with_oracle, CampaignConfig, CampaignOutcome, ClusterError,
    JobRecord, BSLD_TAU,
};
pub use policy::{
    all_policies, policy_by_name, EasyBackfill, Fcfs, InterferenceAware, NodeView, Placement,
    Policy, QueuedJob, ResidentView, Table2Rule, POLICY_CHOICES,
};
pub use predict::{Oracle, TenantKey};

pub use pmemflow_fault::{CheckpointSpec, FaultEvent, FaultEventKind, FaultPlan, FaultSpec};
