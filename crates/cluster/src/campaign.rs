//! The online cluster campaign: admit, queue, place, drain.
//!
//! A campaign serves a stream of workflow arrivals over `N` modeled nodes.
//! The loop is an event-driven simulation one level above the per-workflow
//! DES: its events are arrivals and job completions, and the service-time
//! model for each running job comes from the device model below it.
//!
//! ## Service model
//!
//! Each job carries `work` — its predicted solo runtime (from the oracle's
//! per-configuration sweep) in *solo-seconds*. While a set `S` of jobs is
//! resident on a node, every job `j ∈ S` progresses at rate
//! `1 / slowdown_j(S)`, where the slowdowns come from co-simulating `S`
//! against the shared PMEM device ([`Oracle::corun_slowdowns`], memoized
//! per multiset). Whenever `S` changes — an admission or a completion —
//! the node is re-priced and remaining work carries over. This is a
//! quantized mean-field approximation: interference is exact for each
//! resident set, held piecewise-constant between membership changes.
//!
//! ## Determinism
//!
//! Everything is ordered by `(time, id)` with total f64 comparisons, the
//! arrival stream is seeded, and all parallelism (`jobs`) lives in caches
//! whose values are bit-identical however they are computed — so a
//! campaign's JSONL is byte-identical for any `--jobs` and across runs.

use crate::arrivals::{draw_workload, generate_open, Arrival, ArrivalSpec};
use crate::policy::{NodeView, Policy, QueuedJob, ResidentView};
use crate::predict::{Oracle, TenantKey};
use pmemflow_core::{json_escape, json_f64, ExecError, ExecutionParams, SchedConfig};
use pmemflow_des::rng::SplitMix64;
use std::collections::VecDeque;

/// Runtime threshold for bounded slowdown (seconds): jobs shorter than
/// this are not allowed to dominate the metric (Feitelson's BSLD).
pub const BSLD_TAU: f64 = 10.0;

/// Everything a campaign needs besides the policy.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Number of identical nodes (each the paper's dual-socket testbed
    /// unless `exec.node` says otherwise).
    pub nodes: usize,
    /// The arrival stream.
    pub arrivals: ArrivalSpec,
    /// Stream seed.
    pub seed: u64,
    /// Per-node execution parameters (device profile, I/O stack, ...).
    pub exec: ExecutionParams,
}

/// Errors from running a campaign.
#[derive(Debug)]
pub enum ClusterError {
    /// Bad campaign configuration.
    Config(String),
    /// A simulation below the campaign failed.
    Exec(ExecError),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Config(s) => write!(f, "invalid campaign: {s}"),
            ClusterError::Exec(e) => write!(f, "campaign simulation failed: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<ExecError> for ClusterError {
    fn from(e: ExecError) -> Self {
        ClusterError::Exec(e)
    }
}

/// The fate of one served job.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Submission id (arrival order).
    pub id: u64,
    /// Workflow display name.
    pub workflow: String,
    /// Ranks per component.
    pub ranks: usize,
    /// Configuration it ran under.
    pub config: SchedConfig,
    /// Node it ran on.
    pub node: usize,
    /// Submission time.
    pub arrival: f64,
    /// Admission time.
    pub start: f64,
    /// Completion time.
    pub finish: f64,
    /// Predicted solo runtime under `config` (the job's work).
    pub solo: f64,
}

impl JobRecord {
    /// Queue wait: admission − submission.
    pub fn wait(&self) -> f64 {
        self.start - self.arrival
    }

    /// Response time: completion − submission.
    pub fn response(&self) -> f64 {
        self.finish - self.arrival
    }

    /// Interference stretch while running: service time over solo time.
    pub fn stretch(&self) -> f64 {
        (self.finish - self.start) / self.solo
    }

    /// Bounded slowdown: `max(response / max(solo, tau), 1)`.
    pub fn bounded_slowdown(&self, tau: f64) -> f64 {
        (self.response() / self.solo.max(tau)).max(1.0)
    }
}

/// The result of one campaign.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// Policy that served the campaign.
    pub policy: String,
    /// Stream seed.
    pub seed: u64,
    /// Node count.
    pub nodes: usize,
    /// Every served job, in submission order.
    pub jobs: Vec<JobRecord>,
    /// Time the last job finished.
    pub makespan: f64,
    /// Per-node busy core-seconds (both sockets).
    pub busy_core_secs: Vec<f64>,
    /// Total cores per node (both sockets).
    pub cores_per_node: usize,
    /// Distinct co-residency sets priced against the device model so far.
    /// Diagnostics only: with a shared oracle this counts other concurrent
    /// campaigns' pricing too, so it is NOT deterministic and is excluded
    /// from the JSONL.
    pub corun_sets_priced: usize,
}

impl CampaignOutcome {
    /// Mean queue wait, seconds.
    pub fn mean_wait(&self) -> f64 {
        mean(self.jobs.iter().map(JobRecord::wait))
    }

    /// 95th-percentile queue wait, seconds (nearest-rank).
    pub fn p95_wait(&self) -> f64 {
        let mut waits: Vec<f64> = self.jobs.iter().map(JobRecord::wait).collect();
        if waits.is_empty() {
            return 0.0;
        }
        waits.sort_by(f64::total_cmp);
        waits[((waits.len() as f64 * 0.95).ceil() as usize).clamp(1, waits.len()) - 1]
    }

    /// Mean response time, seconds.
    pub fn mean_response(&self) -> f64 {
        mean(self.jobs.iter().map(JobRecord::response))
    }

    /// Mean bounded slowdown (tau = [`BSLD_TAU`]).
    pub fn mean_bounded_slowdown(&self) -> f64 {
        mean(self.jobs.iter().map(|j| j.bounded_slowdown(BSLD_TAU)))
    }

    /// Maximum bounded slowdown.
    pub fn max_bounded_slowdown(&self) -> f64 {
        self.jobs
            .iter()
            .map(|j| j.bounded_slowdown(BSLD_TAU))
            .fold(1.0, f64::max)
    }

    /// Per-node utilization: busy core-seconds over `cores × makespan`.
    pub fn utilization(&self) -> Vec<f64> {
        let denom = self.cores_per_node as f64 * self.makespan;
        self.busy_core_secs
            .iter()
            .map(|&b| if denom > 0.0 { b / denom } else { 0.0 })
            .collect()
    }

    /// Serialize the campaign as JSON Lines: one `"kind":"job"` record per
    /// job (submission order) and one closing `"kind":"campaign"` summary.
    /// Every field is deterministic.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity((self.jobs.len() + 1) * 256);
        for j in &self.jobs {
            out.push_str(&format!(
                "{{\"kind\":\"job\",\"policy\":\"{}\",\"seed\":{},\"id\":{},\"workflow\":\"{}\",\
                 \"ranks\":{},\"config\":\"{}\",\"node\":{},\"arrival_s\":{},\"start_s\":{},\
                 \"finish_s\":{},\"wait_s\":{},\"response_s\":{},\"solo_s\":{},\"stretch\":{},\
                 \"bounded_slowdown\":{}}}\n",
                json_escape(&self.policy),
                self.seed,
                j.id,
                json_escape(&j.workflow),
                j.ranks,
                j.config.label(),
                j.node,
                json_f64(j.arrival),
                json_f64(j.start),
                json_f64(j.finish),
                json_f64(j.wait()),
                json_f64(j.response()),
                json_f64(j.solo),
                json_f64(j.stretch()),
                json_f64(j.bounded_slowdown(BSLD_TAU)),
            ));
        }
        let util = self
            .utilization()
            .iter()
            .map(|u| json_f64(*u))
            .collect::<Vec<_>>()
            .join(",");
        out.push_str(&format!(
            "{{\"kind\":\"campaign\",\"policy\":\"{}\",\"seed\":{},\"nodes\":{},\"jobs\":{},\
             \"makespan_s\":{},\"mean_wait_s\":{},\"p95_wait_s\":{},\"mean_response_s\":{},\
             \"mean_bounded_slowdown\":{},\"max_bounded_slowdown\":{},\"utilization\":[{}]}}\n",
            json_escape(&self.policy),
            self.seed,
            self.nodes,
            self.jobs.len(),
            json_f64(self.makespan),
            json_f64(self.mean_wait()),
            json_f64(self.p95_wait()),
            json_f64(self.mean_response()),
            json_f64(self.mean_bounded_slowdown()),
            json_f64(self.max_bounded_slowdown()),
            util,
        ));
        out
    }
}

fn mean(it: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0u64);
    for v in it {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

struct Running {
    id: u64,
    workflow: String,
    ranks: usize,
    config: SchedConfig,
    arrival: f64,
    start: f64,
    client: Option<usize>,
    /// Solo-seconds of work left.
    remaining: f64,
    /// Predicted solo runtime under `config`.
    solo: f64,
    /// Current rate divisor from the node's resident set.
    slowdown: f64,
}

impl Running {
    fn projected_finish(&self, now: f64) -> f64 {
        now + self.remaining * self.slowdown
    }
}

struct NodeState {
    running: Vec<Running>,
    busy_core_secs: f64,
}

struct Queued {
    id: u64,
    workflow: String,
    ranks: usize,
    arrival: f64,
    client: Option<usize>,
}

/// Closed-loop stream state inside the loop.
struct ClosedLoop {
    think: f64,
    mix: Vec<pmemflow_workloads::Family>,
    rng: SplitMix64,
    /// Submissions not yet made.
    budget: u64,
    next_id: u64,
}

impl ClosedLoop {
    fn submit(&mut self, time: f64, client: usize) -> Option<Arrival> {
        if self.budget == 0 {
            return None;
        }
        self.budget -= 1;
        let (family, ranks) = draw_workload(&self.mix, &mut self.rng);
        let id = self.next_id;
        self.next_id += 1;
        Some(Arrival {
            id,
            time,
            workflow: family.name().to_string(),
            ranks,
            spec: family.build(ranks),
            client: Some(client),
        })
    }
}

/// Serve `config.arrivals` with `policy`, using up to `jobs` parallel
/// simulations for the oracle warm-up (never affecting results). Returns
/// the per-job records and campaign aggregates.
pub fn run_campaign(
    config: &CampaignConfig,
    policy: &dyn Policy,
    jobs: usize,
) -> Result<CampaignOutcome, ClusterError> {
    validate(config)?;
    let oracle = Oracle::build(&config.arrivals.alphabet(), &config.exec, jobs)?;
    run_campaign_with_oracle(config, policy, &oracle)
}

fn validate(config: &CampaignConfig) -> Result<(), ClusterError> {
    if config.nodes == 0 {
        return Err(ClusterError::Config("at least one node required".into()));
    }
    let cores_per_socket = config.exec.node.cores_per_socket();
    // Reject alphabet entries that cannot run even on an empty node —
    // better a config error up front than a stuck queue later.
    for (name, ranks, _) in config.arrivals.alphabet() {
        if ranks > cores_per_socket {
            return Err(ClusterError::Config(format!(
                "{name}@{ranks} can never fit a {cores_per_socket}-core socket"
            )));
        }
    }
    Ok(())
}

/// [`run_campaign`] against a pre-built (shareable) oracle.
pub fn run_campaign_with_oracle(
    config: &CampaignConfig,
    policy: &dyn Policy,
    oracle: &Oracle,
) -> Result<CampaignOutcome, ClusterError> {
    validate(config)?;
    let cores_per_socket = config.exec.node.cores_per_socket();

    let mut pending: VecDeque<Arrival> = VecDeque::new();
    let mut closed: Option<ClosedLoop> = None;
    match &config.arrivals {
        ArrivalSpec::Closed {
            clients,
            think,
            count,
            mix,
        } => {
            let mut state = ClosedLoop {
                think: *think,
                mix: mix.clone(),
                rng: SplitMix64::new(config.seed),
                budget: *count,
                next_id: 0,
            };
            // Every client submits its first job at t = 0.
            for c in 0..*clients {
                if let Some(a) = state.submit(0.0, c) {
                    pending.push_back(a);
                }
            }
            closed = Some(state);
        }
        open => {
            pending.extend(generate_open(open, config.seed).expect("open stream"));
        }
    }

    let mut nodes: Vec<NodeState> = (0..config.nodes)
        .map(|_| NodeState {
            running: Vec::new(),
            busy_core_secs: 0.0,
        })
        .collect();
    let mut queue: Vec<Queued> = Vec::new();
    let mut records: Vec<JobRecord> = Vec::new();
    let mut now = 0.0f64;
    let mut makespan = 0.0f64;

    // Re-price a node after a membership change: one co-simulation of the
    // resident multiset (memoized), remaining work carries over.
    let reprice = |node: &mut NodeState| -> Result<(), ClusterError> {
        let keys: Vec<TenantKey> = node
            .running
            .iter()
            .map(|r| TenantKey::new(&r.workflow, r.ranks, r.config))
            .collect();
        let slowdowns = oracle.corun_slowdowns(&keys)?;
        for (r, s) in node.running.iter_mut().zip(slowdowns) {
            r.slowdown = s.max(1.0);
        }
        Ok(())
    };

    loop {
        // Next event: the earliest arrival or projected completion.
        let next_arrival = pending.front().map(|a| a.time);
        let next_completion = nodes
            .iter()
            .flat_map(|n| n.running.iter().map(|r| r.projected_finish(now)))
            .min_by(f64::total_cmp);
        let t = match (next_arrival, next_completion) {
            (Some(a), Some(c)) => a.min(c),
            (Some(a), None) => a,
            (None, Some(c)) => c,
            (None, None) => break,
        };
        debug_assert!(t >= now - 1e-9, "time went backwards: {t} < {now}");
        let dt = (t - now).max(0.0);

        // Advance running work and busy time to t.
        for node in &mut nodes {
            for r in &mut node.running {
                r.remaining = (r.remaining - dt / r.slowdown).max(0.0);
                node.busy_core_secs += 2.0 * r.ranks as f64 * dt;
            }
        }
        now = t;

        // Completions at t (tolerance for float drift), deterministic order
        // by (node, id).
        let mut changed: Vec<usize> = Vec::new();
        let mut finished_clients: Vec<usize> = Vec::new();
        for (ni, node) in nodes.iter_mut().enumerate() {
            let mut i = 0;
            while i < node.running.len() {
                if node.running[i].projected_finish(now) <= now + 1e-9 {
                    let r = node.running.remove(i);
                    makespan = makespan.max(now);
                    if let Some(c) = r.client {
                        finished_clients.push(c);
                    }
                    records.push(JobRecord {
                        id: r.id,
                        workflow: r.workflow,
                        ranks: r.ranks,
                        config: r.config,
                        node: ni,
                        arrival: r.arrival,
                        start: r.start,
                        finish: now,
                        solo: r.solo,
                    });
                    if !changed.contains(&ni) {
                        changed.push(ni);
                    }
                } else {
                    i += 1;
                }
            }
        }
        // Closed loop: each completion triggers its client's next think.
        if let Some(state) = closed.as_mut() {
            finished_clients.sort_unstable();
            for c in finished_clients {
                if let Some(a) = state.submit(now + state.think, c) {
                    // Insert keeping pending sorted by (time, id).
                    let at = pending
                        .iter()
                        .position(|p| (p.time, p.id) > (a.time, a.id))
                        .unwrap_or(pending.len());
                    pending.insert(at, a);
                }
            }
        }

        // Arrivals at t.
        while pending.front().is_some_and(|a| a.time <= now + 1e-9) {
            let a = pending.pop_front().expect("front exists");
            queue.push(Queued {
                id: a.id,
                workflow: a.workflow,
                ranks: a.ranks,
                arrival: a.time,
                client: a.client,
            });
        }

        for &ni in &changed {
            reprice(&mut nodes[ni])?;
        }

        // Policy rounds: consult, apply what fits, re-price, repeat until
        // the policy places nothing more (each round shrinks the queue, so
        // this terminates).
        loop {
            let queue_view: Vec<QueuedJob> = queue
                .iter()
                .map(|q| QueuedJob {
                    id: q.id,
                    workflow: q.workflow.clone(),
                    ranks: q.ranks,
                    arrival: q.arrival,
                })
                .collect();
            let node_views: Vec<NodeView> = nodes
                .iter()
                .enumerate()
                .map(|(id, n)| NodeView {
                    id,
                    cores_per_socket,
                    residents: n
                        .running
                        .iter()
                        .map(|r| ResidentView {
                            id: r.id,
                            workflow: r.workflow.clone(),
                            ranks: r.ranks,
                            config: r.config,
                            projected_finish: r.projected_finish(now),
                        })
                        .collect(),
                })
                .collect();
            let batch = policy.schedule(now, &queue_view, &node_views, oracle)?;
            if batch.is_empty() {
                break;
            }
            let mut placed_any = false;
            let mut touched: Vec<usize> = Vec::new();
            for p in batch {
                let Some(qi) = queue.iter().position(|q| q.id == p.job) else {
                    return Err(ClusterError::Config(format!(
                        "policy {} placed unknown job {}",
                        policy.name(),
                        p.job
                    )));
                };
                let used: usize = nodes[p.node].running.iter().map(|r| r.ranks).sum();
                if used + queue[qi].ranks > cores_per_socket {
                    // Batch raced its own earlier placements; re-consult.
                    continue;
                }
                let q = queue.remove(qi);
                let solo = oracle.solo_runtime(&q.workflow, q.ranks, p.config);
                nodes[p.node].running.push(Running {
                    id: q.id,
                    workflow: q.workflow,
                    ranks: q.ranks,
                    config: p.config,
                    arrival: q.arrival,
                    start: now,
                    client: q.client,
                    remaining: solo,
                    solo,
                    slowdown: 1.0,
                });
                if !touched.contains(&p.node) {
                    touched.push(p.node);
                }
                placed_any = true;
            }
            for &ni in &touched {
                reprice(&mut nodes[ni])?;
            }
            if !placed_any {
                break;
            }
        }
    }

    if !queue.is_empty() {
        return Err(ClusterError::Config(format!(
            "campaign drained with {} jobs still queued (policy {})",
            queue.len(),
            policy.name()
        )));
    }
    records.sort_by_key(|r| r.id);
    Ok(CampaignOutcome {
        policy: policy.name().to_string(),
        seed: config.seed,
        nodes: config.nodes,
        jobs: records,
        makespan,
        busy_core_secs: nodes.iter().map(|n| n.busy_core_secs).collect(),
        cores_per_node: 2 * cores_per_socket,
        corun_sets_priced: oracle.corun_cache_len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{all_policies, Fcfs};

    fn micro_config(n_arrivals: u64, nodes: usize) -> CampaignConfig {
        CampaignConfig {
            nodes,
            arrivals: ArrivalSpec::parse(&format!(
                "poisson:rate=0.005,n={n_arrivals},mix=micro-64mb"
            ))
            .unwrap(),
            seed: 42,
            exec: ExecutionParams::default(),
        }
    }

    #[test]
    fn fcfs_campaign_serves_every_arrival() {
        let cfg = micro_config(6, 2);
        let out = run_campaign(&cfg, &Fcfs, 2).unwrap();
        assert_eq!(out.jobs.len(), 6);
        for (i, j) in out.jobs.iter().enumerate() {
            assert_eq!(j.id, i as u64);
            assert!(j.start >= j.arrival - 1e-9, "job {i} started early");
            assert!(j.finish > j.start, "job {i} has no service time");
            assert!(j.node < 2);
            assert!(j.stretch() >= 0.999, "job {i} ran faster than solo");
        }
        assert!(out.makespan >= out.jobs.iter().map(|j| j.finish).fold(0.0, f64::max) - 1e-9);
        let util = out.utilization();
        assert_eq!(util.len(), 2);
        assert!(util.iter().all(|&u| (0.0..=1.0 + 1e-9).contains(&u)));
    }

    #[test]
    fn zero_nodes_is_a_config_error() {
        let cfg = micro_config(3, 0);
        assert!(matches!(
            run_campaign(&cfg, &Fcfs, 1),
            Err(ClusterError::Config(_))
        ));
    }

    #[test]
    fn oversized_workload_is_rejected_up_front() {
        let mut cfg = micro_config(3, 2);
        cfg.exec.node = pmemflow_platform::Node::dual_socket(4, 1 << 30, 1 << 30);
        assert!(matches!(
            run_campaign(&cfg, &Fcfs, 1),
            Err(ClusterError::Config(_))
        ));
    }

    #[test]
    fn closed_loop_respects_population_and_budget() {
        let cfg = CampaignConfig {
            nodes: 2,
            arrivals: ArrivalSpec::parse("closed:clients=2,think=5,n=8,mix=micro-64mb").unwrap(),
            seed: 1,
            exec: ExecutionParams::default(),
        };
        let out = run_campaign(&cfg, &Fcfs, 2).unwrap();
        assert_eq!(out.jobs.len(), 8);
        // At most `clients` jobs are ever in flight: sort by start, check
        // every start has fewer than 2 unfinished predecessors.
        for j in &out.jobs {
            let in_flight = out
                .jobs
                .iter()
                .filter(|o| o.id != j.id && o.start <= j.start && o.finish > j.start)
                .count();
            assert!(
                in_flight < 2,
                "job {} overlapped {} others",
                j.id,
                in_flight
            );
        }
    }

    #[test]
    fn jsonl_is_parseable_shape() {
        let out = run_campaign(&micro_config(4, 2), &Fcfs, 2).unwrap();
        let text = out.to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5); // 4 jobs + summary
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
            assert_eq!(l.matches('{').count(), l.matches('}').count());
        }
        assert!(lines[..4].iter().all(|l| l.contains("\"kind\":\"job\"")));
        assert!(lines[4].contains("\"kind\":\"campaign\""));
        assert!(lines[4].contains("\"mean_bounded_slowdown\":"));
    }

    #[test]
    fn all_policies_serve_the_same_stream() {
        let cfg = micro_config(5, 2);
        let oracle = Oracle::build(&cfg.arrivals.alphabet(), &cfg.exec, 2).unwrap();
        for policy in all_policies() {
            let out = run_campaign_with_oracle(&cfg, policy.as_ref(), &oracle).unwrap();
            assert_eq!(out.jobs.len(), 5, "{}", policy.name());
            assert_eq!(out.policy, policy.name());
        }
    }
}
