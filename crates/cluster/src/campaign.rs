//! The online cluster campaign: admit, queue, place, drain — and recover.
//!
//! A campaign serves a stream of workflow arrivals over `N` modeled nodes.
//! The loop is an event-driven simulation one level above the per-workflow
//! DES: its events are arrivals, job completions, scheduled faults, and
//! backoff expiries, and the service-time model for each running job comes
//! from the device model below it.
//!
//! ## Service model
//!
//! Each job carries `solo` — its predicted solo runtime (from the oracle's
//! per-configuration sweep) in *solo-seconds* — and `progress`, how many of
//! those it has banked. While a set `S` of jobs is resident on a node,
//! every job `j ∈ S` progresses at rate
//! `1 / (slowdown_j(S) · degrade · (1 + f))`, where the slowdowns come
//! from co-simulating `S` against the shared PMEM device
//! ([`Oracle::corun_slowdowns`], memoized per multiset), `degrade` is the
//! node's transient bandwidth-class penalty from the fault plan, and `f`
//! is the checkpoint tax (below). Whenever `S` changes — an admission, a
//! completion, or an interruption — the node is re-priced and progress
//! carries over. This is a quantized mean-field approximation:
//! interference is exact for each resident set, held piecewise-constant
//! between membership changes.
//!
//! ## Faults and checkpoint/restart
//!
//! A [`FaultSpec`] expands into a deterministic [`FaultPlan`]: per-node
//! crash/repair and degradation windows plus per-attempt job failures.
//! When checkpointing is on ([`CheckpointSpec::interval`] > 0), every job
//! writes a checkpoint image into node-local PMEM each `interval`
//! solo-seconds; the write is charged through the I/O-stack cost model
//! ([`snapshot_sw_time`](../../pmemflow_iostack/struct.StackCostModel.html)),
//! so heavier stacks pay a bigger tax `f = image_cost / interval` exactly
//! as the paper couples software cost to device latency. On a crash (or a
//! job-level failure) every resident is interrupted: its progress rolls
//! back to the last checkpoint boundary (to zero without checkpointing),
//! the difference is booked as *lost work*, and the job is re-queued with
//! exponential backoff — keeping its original arrival priority and its
//! original configuration (a checkpoint image is only valid under the
//! configuration that wrote it). A job interrupted more times than its
//! retry budget is reported as `failed` instead of silently vanishing:
//! every submission ends in exactly one job record.
//!
//! ## Determinism
//!
//! Everything is ordered by `(time, id)` with total f64 comparisons, the
//! arrival stream and the fault plan are seeded independently, and all
//! parallelism (`jobs`) lives in caches whose values are bit-identical
//! however they are computed — so a campaign's JSONL is byte-identical
//! for any `--jobs` and across runs.

use crate::arrivals::{draw_workload, generate_open, Arrival, ArrivalSpec};
use crate::policy::{NodeView, Policy, QueuedJob, ResidentView};
use crate::predict::{Oracle, TenantKey};
use pmemflow_core::{json_escape, json_f64, ExecError, ExecutionParams, SchedConfig};
use pmemflow_des::rng::SplitMix64;
use pmemflow_des::{Direction, Locality};
use pmemflow_fault::{CheckpointSpec, FaultEventKind, FaultPlan, FaultSpec};
use std::collections::VecDeque;

/// Runtime threshold for bounded slowdown (seconds): jobs shorter than
/// this are not allowed to dominate the metric (Feitelson's BSLD).
pub const BSLD_TAU: f64 = 10.0;

/// Everything a campaign needs besides the policy.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Number of identical nodes (each the paper's dual-socket testbed
    /// unless `exec.node` says otherwise).
    pub nodes: usize,
    /// The arrival stream.
    pub arrivals: ArrivalSpec,
    /// Stream seed.
    pub seed: u64,
    /// Per-node execution parameters (device profile, I/O stack, ...).
    pub exec: ExecutionParams,
    /// Fault-injection schedule (default: nothing ever breaks).
    pub faults: FaultSpec,
    /// Checkpoint/restart parameters (default: checkpointing off — an
    /// interrupted job restarts from scratch).
    pub checkpoint: CheckpointSpec,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            nodes: 1,
            arrivals: ArrivalSpec::Poisson {
                rate: 0.01,
                count: 0,
                mix: pmemflow_workloads::Family::all().to_vec(),
            },
            seed: 0,
            exec: ExecutionParams::default(),
            faults: FaultSpec::default(),
            checkpoint: CheckpointSpec::default(),
        }
    }
}

/// Errors from running a campaign.
#[derive(Debug)]
pub enum ClusterError {
    /// Bad campaign configuration.
    Config(String),
    /// A simulation below the campaign failed.
    Exec(ExecError),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Config(s) => write!(f, "invalid campaign: {s}"),
            ClusterError::Exec(e) => write!(f, "campaign simulation failed: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<ExecError> for ClusterError {
    fn from(e: ExecError) -> Self {
        ClusterError::Exec(e)
    }
}

/// The fate of one served job.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Submission id (arrival order).
    pub id: u64,
    /// Workflow display name.
    pub workflow: String,
    /// Ranks per component.
    pub ranks: usize,
    /// Configuration it ran under (pinned across restarts).
    pub config: SchedConfig,
    /// Node it ran on last.
    pub node: usize,
    /// Submission time.
    pub arrival: f64,
    /// First admission time (restarts do not reset it).
    pub start: f64,
    /// Completion time — or, for a failed job, the time of the final
    /// interruption that exhausted its retry budget.
    pub finish: f64,
    /// Predicted solo runtime under `config` (the job's work).
    pub solo: f64,
    /// How many times the job was interrupted and re-queued.
    pub restarts: u32,
    /// Solo-seconds of progress rolled back across all interruptions.
    pub lost_work: f64,
    /// Wall-seconds spent writing checkpoint images into local PMEM.
    pub ckpt_overhead: f64,
    /// Whether the job ran to completion (`false`: retry budget exhausted).
    pub completed: bool,
}

impl JobRecord {
    /// Queue wait: first admission − submission.
    pub fn wait(&self) -> f64 {
        self.start - self.arrival
    }

    /// Response time: completion − submission.
    pub fn response(&self) -> f64 {
        self.finish - self.arrival
    }

    /// Stretch since first admission (interference, faults, requeue delays
    /// and checkpoint tax included): time in service over solo time.
    pub fn stretch(&self) -> f64 {
        (self.finish - self.start) / self.solo
    }

    /// Bounded slowdown: `max(response / max(solo, tau), 1)`.
    pub fn bounded_slowdown(&self, tau: f64) -> f64 {
        (self.response() / self.solo.max(tau)).max(1.0)
    }

    /// JSONL `outcome` field value.
    pub fn outcome(&self) -> &'static str {
        if self.completed {
            "completed"
        } else {
            "failed"
        }
    }
}

/// The result of one campaign.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// Policy that served the campaign.
    pub policy: String,
    /// Stream seed.
    pub seed: u64,
    /// Node count.
    pub nodes: usize,
    /// Every served job, in submission order — completed *and* failed:
    /// each submission produces exactly one record.
    pub jobs: Vec<JobRecord>,
    /// Time the last job finished (or failed).
    pub makespan: f64,
    /// Per-node busy core-seconds (both sockets).
    pub busy_core_secs: Vec<f64>,
    /// Total cores per node (both sockets).
    pub cores_per_node: usize,
    /// Distinct co-residency sets priced against the device model so far.
    /// Diagnostics only: with a shared oracle this counts other concurrent
    /// campaigns' pricing too, so it is NOT deterministic and is excluded
    /// from the JSONL.
    pub corun_sets_priced: usize,
}

impl CampaignOutcome {
    /// The jobs that ran to completion (queueing aggregates cover these;
    /// failed jobs are counted separately, not averaged in).
    pub fn completed_jobs(&self) -> impl Iterator<Item = &JobRecord> {
        self.jobs.iter().filter(|j| j.completed)
    }

    /// How many jobs completed.
    pub fn completed(&self) -> usize {
        self.completed_jobs().count()
    }

    /// How many jobs exhausted their retry budget.
    pub fn failed(&self) -> usize {
        self.jobs.len() - self.completed()
    }

    /// Total interruptions across all jobs.
    pub fn total_restarts(&self) -> u64 {
        self.jobs.iter().map(|j| j.restarts as u64).sum()
    }

    /// Total solo-seconds rolled back across all jobs.
    pub fn total_lost_work(&self) -> f64 {
        self.jobs.iter().map(|j| j.lost_work).sum()
    }

    /// Total wall-seconds spent writing checkpoints across all jobs.
    pub fn total_ckpt_overhead(&self) -> f64 {
        self.jobs.iter().map(|j| j.ckpt_overhead).sum()
    }

    /// Mean queue wait over completed jobs, seconds.
    pub fn mean_wait(&self) -> f64 {
        mean(self.completed_jobs().map(JobRecord::wait))
    }

    /// 95th-percentile queue wait over completed jobs (nearest-rank).
    pub fn p95_wait(&self) -> f64 {
        let mut waits: Vec<f64> = self.completed_jobs().map(JobRecord::wait).collect();
        if waits.is_empty() {
            return 0.0;
        }
        waits.sort_by(f64::total_cmp);
        waits[((waits.len() as f64 * 0.95).ceil() as usize).clamp(1, waits.len()) - 1]
    }

    /// Mean response time over completed jobs, seconds.
    pub fn mean_response(&self) -> f64 {
        mean(self.completed_jobs().map(JobRecord::response))
    }

    /// Mean bounded slowdown over completed jobs (tau = [`BSLD_TAU`]).
    pub fn mean_bounded_slowdown(&self) -> f64 {
        mean(self.completed_jobs().map(|j| j.bounded_slowdown(BSLD_TAU)))
    }

    /// Maximum bounded slowdown over completed jobs.
    pub fn max_bounded_slowdown(&self) -> f64 {
        self.completed_jobs()
            .map(|j| j.bounded_slowdown(BSLD_TAU))
            .fold(1.0, f64::max)
    }

    /// Per-node utilization: busy core-seconds over `cores × makespan`.
    pub fn utilization(&self) -> Vec<f64> {
        let denom = self.cores_per_node as f64 * self.makespan;
        self.busy_core_secs
            .iter()
            .map(|&b| if denom > 0.0 { b / denom } else { 0.0 })
            .collect()
    }

    /// Serialize the campaign as JSON Lines: one `"kind":"job"` record per
    /// job (submission order) and one closing `"kind":"campaign"` summary.
    /// Every field is deterministic.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity((self.jobs.len() + 1) * 256);
        for j in &self.jobs {
            out.push_str(&format!(
                "{{\"kind\":\"job\",\"policy\":\"{}\",\"seed\":{},\"id\":{},\"workflow\":\"{}\",\
                 \"ranks\":{},\"config\":\"{}\",\"node\":{},\"arrival_s\":{},\"start_s\":{},\
                 \"finish_s\":{},\"wait_s\":{},\"response_s\":{},\"solo_s\":{},\"stretch\":{},\
                 \"bounded_slowdown\":{},\"restarts\":{},\"lost_work_s\":{},\
                 \"ckpt_overhead_s\":{},\"outcome\":\"{}\"}}\n",
                json_escape(&self.policy),
                self.seed,
                j.id,
                json_escape(&j.workflow),
                j.ranks,
                j.config.label(),
                j.node,
                json_f64(j.arrival),
                json_f64(j.start),
                json_f64(j.finish),
                json_f64(j.wait()),
                json_f64(j.response()),
                json_f64(j.solo),
                json_f64(j.stretch()),
                json_f64(j.bounded_slowdown(BSLD_TAU)),
                j.restarts,
                json_f64(j.lost_work),
                json_f64(j.ckpt_overhead),
                j.outcome(),
            ));
        }
        let util = self
            .utilization()
            .iter()
            .map(|u| json_f64(*u))
            .collect::<Vec<_>>()
            .join(",");
        out.push_str(&format!(
            "{{\"kind\":\"campaign\",\"policy\":\"{}\",\"seed\":{},\"nodes\":{},\"jobs\":{},\
             \"completed\":{},\"failed\":{},\"makespan_s\":{},\"mean_wait_s\":{},\
             \"p95_wait_s\":{},\"mean_response_s\":{},\"mean_bounded_slowdown\":{},\
             \"max_bounded_slowdown\":{},\"total_restarts\":{},\"total_lost_work_s\":{},\
             \"total_ckpt_overhead_s\":{},\"utilization\":[{}]}}\n",
            json_escape(&self.policy),
            self.seed,
            self.nodes,
            self.jobs.len(),
            self.completed(),
            self.failed(),
            json_f64(self.makespan),
            json_f64(self.mean_wait()),
            json_f64(self.p95_wait()),
            json_f64(self.mean_response()),
            json_f64(self.mean_bounded_slowdown()),
            json_f64(self.max_bounded_slowdown()),
            self.total_restarts(),
            json_f64(self.total_lost_work()),
            json_f64(self.total_ckpt_overhead()),
            util,
        ));
        out
    }
}

fn mean(it: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0u64);
    for v in it {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

struct Running {
    id: u64,
    workflow: String,
    ranks: usize,
    config: SchedConfig,
    arrival: f64,
    /// First admission time, preserved across restarts.
    first_start: f64,
    client: Option<usize>,
    /// Predicted solo runtime under `config`.
    solo: f64,
    /// Solo-seconds of work banked so far (monotone within an attempt).
    progress: f64,
    restarts: u32,
    lost_work: f64,
    ckpt_overhead: f64,
    /// Current rate divisor from the node's resident set.
    slowdown: f64,
    /// Solo-progress at which this attempt dies of its own cause (drawn
    /// from the fault plan at placement; always < `solo` when present).
    fail_at: Option<f64>,
}

impl Running {
    /// The progress at which the next per-job event fires: the attempt's
    /// own failure point if one is scheduled, completion otherwise.
    fn target(&self) -> f64 {
        self.fail_at.unwrap_or(self.solo)
    }

    /// Wall-seconds per solo-second on a node with penalty `degrade` and
    /// checkpoint multiplier `ckpt_mult`.
    fn wall_mult(&self, degrade: f64, ckpt_mult: f64) -> f64 {
        self.slowdown * degrade * ckpt_mult
    }

    fn projected_event(&self, now: f64, degrade: f64, ckpt_mult: f64) -> f64 {
        now + (self.target() - self.progress).max(0.0) * self.wall_mult(degrade, ckpt_mult)
    }
}

struct NodeState {
    running: Vec<Running>,
    busy_core_secs: f64,
    /// Whether the node is alive (crashed nodes hold no jobs).
    up: bool,
    /// Transient bandwidth-class penalty (1.0 = healthy).
    degrade: f64,
}

struct Queued {
    id: u64,
    workflow: String,
    ranks: usize,
    arrival: f64,
    client: Option<usize>,
    restarts: u32,
    /// Solo-seconds of checkpointed progress the next attempt resumes from.
    resume: f64,
    /// Earliest time the job may be placed again (backoff after restarts).
    eligible: f64,
    lost_work: f64,
    ckpt_overhead: f64,
    /// First admission time, once the job has started at least once.
    first_start: Option<f64>,
    /// Configuration pinned by the first attempt: a checkpoint image is
    /// only valid under the configuration that wrote it.
    config: Option<SchedConfig>,
}

/// Keep the queue sorted by (arrival, id): a restarted job re-enters at
/// its original priority, not at the back.
fn enqueue(queue: &mut Vec<Queued>, q: Queued) {
    let at = queue
        .iter()
        .position(|o| (o.arrival, o.id) > (q.arrival, q.id))
        .unwrap_or(queue.len());
    queue.insert(at, q);
}

/// What became of an interrupted attempt.
enum Interrupted {
    /// Back to the queue, to resume from `resume` after the backoff.
    Requeue(Queued),
    /// Retry budget exhausted: the submission ends here.
    Failed(JobRecord),
}

/// Roll an interrupted attempt back to its last checkpoint and decide its
/// fate under the retry budget.
fn interrupt(r: Running, node: usize, now: f64, ckpt: &CheckpointSpec) -> Interrupted {
    let resume = if ckpt.interval > 0.0 {
        ((r.progress / ckpt.interval).floor() * ckpt.interval).min(r.progress)
    } else {
        0.0
    };
    let lost_work = r.lost_work + (r.progress - resume).max(0.0);
    let restarts = r.restarts + 1;
    if restarts > ckpt.retry_budget {
        return Interrupted::Failed(JobRecord {
            id: r.id,
            workflow: r.workflow,
            ranks: r.ranks,
            config: r.config,
            node,
            arrival: r.arrival,
            start: r.first_start,
            finish: now,
            solo: r.solo,
            restarts,
            lost_work,
            ckpt_overhead: r.ckpt_overhead,
            completed: false,
        });
    }
    let backoff = ckpt.backoff_base * 2f64.powi(restarts.saturating_sub(1) as i32);
    Interrupted::Requeue(Queued {
        id: r.id,
        workflow: r.workflow,
        ranks: r.ranks,
        arrival: r.arrival,
        client: r.client,
        restarts,
        resume,
        eligible: now + backoff,
        lost_work,
        ckpt_overhead: r.ckpt_overhead,
        first_start: Some(r.first_start),
        config: Some(r.config),
    })
}

/// Closed-loop stream state inside the loop.
struct ClosedLoop {
    think: f64,
    mix: Vec<pmemflow_workloads::Family>,
    rng: SplitMix64,
    /// Submissions not yet made.
    budget: u64,
    next_id: u64,
}

impl ClosedLoop {
    fn submit(&mut self, time: f64, client: usize) -> Option<Arrival> {
        if self.budget == 0 {
            return None;
        }
        self.budget -= 1;
        let (family, ranks) = draw_workload(&self.mix, &mut self.rng);
        let id = self.next_id;
        self.next_id += 1;
        Some(Arrival {
            id,
            time,
            workflow: family.name().to_string(),
            ranks,
            spec: family.build(ranks),
            client: Some(client),
        })
    }
}

/// Serve `config.arrivals` with `policy`, using up to `jobs` parallel
/// simulations for the oracle warm-up (never affecting results). Returns
/// the per-job records and campaign aggregates.
pub fn run_campaign(
    config: &CampaignConfig,
    policy: &dyn Policy,
    jobs: usize,
) -> Result<CampaignOutcome, ClusterError> {
    validate(config)?;
    let oracle = Oracle::build(&config.arrivals.alphabet(), &config.exec, jobs)?;
    run_campaign_with_oracle(config, policy, &oracle)
}

fn validate(config: &CampaignConfig) -> Result<(), ClusterError> {
    if config.nodes == 0 {
        return Err(ClusterError::Config("at least one node required".into()));
    }
    config.faults.validate().map_err(ClusterError::Config)?;
    config.checkpoint.validate().map_err(ClusterError::Config)?;
    let cores_per_socket = config.exec.node.cores_per_socket();
    // Reject alphabet entries that cannot run even on an empty node —
    // better a config error up front than a stuck queue later.
    for (name, ranks, _) in config.arrivals.alphabet() {
        if ranks > cores_per_socket {
            return Err(ClusterError::Config(format!(
                "{name}@{ranks} can never fit a {cores_per_socket}-core socket"
            )));
        }
    }
    Ok(())
}

/// [`run_campaign`] against a pre-built (shareable) oracle.
pub fn run_campaign_with_oracle(
    config: &CampaignConfig,
    policy: &dyn Policy,
    oracle: &Oracle,
) -> Result<CampaignOutcome, ClusterError> {
    validate(config)?;
    let cores_per_socket = config.exec.node.cores_per_socket();
    let ckpt = &config.checkpoint;

    // Checkpoint tax: one image of `state_bytes` (written as
    // `object_bytes` objects) into local PMEM every `interval`
    // solo-seconds, charged through the same stack cost model the
    // in-situ I/O pays — heavier software stacks tax checkpoints harder.
    let ckpt_frac = if ckpt.interval > 0.0 {
        let cost = config
            .exec
            .cost_override
            .unwrap_or_else(|| config.exec.stack.cost_model());
        let objects = ckpt.state_bytes.div_ceil(ckpt.object_bytes);
        let latency = config
            .exec
            .profile
            .latency(Direction::Write, Locality::Local);
        cost.snapshot_sw_time(Direction::Write, objects, ckpt.object_bytes, latency) / ckpt.interval
    } else {
        0.0
    };
    let ckpt_mult = 1.0 + ckpt_frac;
    let mut plan = FaultPlan::new(&config.faults, config.nodes);

    let mut pending: VecDeque<Arrival> = VecDeque::new();
    let mut closed: Option<ClosedLoop> = None;
    match &config.arrivals {
        ArrivalSpec::Closed {
            clients,
            think,
            count,
            mix,
        } => {
            let mut state = ClosedLoop {
                think: *think,
                mix: mix.clone(),
                rng: SplitMix64::new(config.seed),
                budget: *count,
                next_id: 0,
            };
            // Every client submits its first job at t = 0.
            for c in 0..*clients {
                if let Some(a) = state.submit(0.0, c) {
                    pending.push_back(a);
                }
            }
            closed = Some(state);
        }
        open => {
            pending.extend(generate_open(open, config.seed).expect("open stream"));
        }
    }

    let mut nodes: Vec<NodeState> = (0..config.nodes)
        .map(|_| NodeState {
            running: Vec::new(),
            busy_core_secs: 0.0,
            up: true,
            degrade: 1.0,
        })
        .collect();
    let mut queue: Vec<Queued> = Vec::new();
    let mut records: Vec<JobRecord> = Vec::new();
    let mut now = 0.0f64;
    let mut makespan = 0.0f64;

    // Re-price a node after a membership change: one co-simulation of the
    // resident multiset (memoized), progress carries over.
    let reprice = |node: &mut NodeState| -> Result<(), ClusterError> {
        let keys: Vec<TenantKey> = node
            .running
            .iter()
            .map(|r| TenantKey::new(&r.workflow, r.ranks, r.config))
            .collect();
        let slowdowns = oracle.corun_slowdowns(&keys)?;
        for (r, s) in node.running.iter_mut().zip(slowdowns) {
            r.slowdown = s.max(1.0);
        }
        Ok(())
    };

    loop {
        // Stop once nothing is in flight anywhere; the fault plan is an
        // infinite stream, so it only counts as an event source while
        // there is work it could affect.
        let work_remains =
            !pending.is_empty() || !queue.is_empty() || nodes.iter().any(|n| !n.running.is_empty());
        if !work_remains {
            break;
        }

        // Next event: the earliest of (arrival, per-job completion or
        // self-failure on an up node, backoff expiry, scheduled fault).
        let next_arrival = pending.front().map(|a| a.time);
        let next_job_event = nodes
            .iter()
            .filter(|n| n.up)
            .flat_map(|n| {
                n.running
                    .iter()
                    .map(move |r| r.projected_event(now, n.degrade, ckpt_mult))
            })
            .min_by(f64::total_cmp);
        let next_eligible = queue
            .iter()
            .map(|q| q.eligible)
            .filter(|&e| e > now + 1e-9)
            .min_by(f64::total_cmp);
        let next_fault = plan.peek_time();
        let Some(t) = [next_arrival, next_job_event, next_eligible, next_fault]
            .into_iter()
            .flatten()
            .min_by(f64::total_cmp)
        else {
            // Work remains but no event can release it: the post-loop
            // queue check reports the stuck jobs.
            break;
        };
        debug_assert!(t >= now - 1e-9, "time went backwards: {t} < {now}");
        let t = t.max(now);
        let dt = (t - now).max(0.0);

        // Advance running work and busy time to t. Rates are piecewise
        // constant on [now, t] because every rate change (membership,
        // degrade window, crash) is itself an event candidate above.
        for node in &mut nodes {
            if !node.up {
                continue;
            }
            let env_mult = node.degrade * ckpt_mult;
            for r in &mut node.running {
                r.progress += dt / (r.slowdown * env_mult);
                // Of the dt wall-seconds, the checkpoint writes claim the
                // f/(1+f) share (both numerator and denominator stretch
                // with slowdown and degrade alike).
                r.ckpt_overhead += dt * ckpt_frac / ckpt_mult;
                node.busy_core_secs += 2.0 * r.ranks as f64 * dt;
            }
        }
        now = t;

        let mut changed: Vec<usize> = Vec::new();
        let mut finished_clients: Vec<usize> = Vec::new();

        // Scheduled faults due at t, in the plan's deterministic order.
        while plan.peek_time().is_some_and(|ft| ft <= now + 1e-9) {
            let e = plan.pop().expect("peeked event exists");
            match e.kind {
                FaultEventKind::Crash => {
                    let node = &mut nodes[e.node];
                    node.up = false;
                    // Evacuate every resident back to its last checkpoint.
                    let evacuated: Vec<Running> = node.running.drain(..).collect();
                    for r in evacuated {
                        let client = r.client;
                        match interrupt(r, e.node, now, ckpt) {
                            Interrupted::Requeue(q) => enqueue(&mut queue, q),
                            Interrupted::Failed(rec) => {
                                makespan = makespan.max(now);
                                records.push(rec);
                                if let Some(c) = client {
                                    finished_clients.push(c);
                                }
                            }
                        }
                    }
                }
                FaultEventKind::Repair => nodes[e.node].up = true,
                FaultEventKind::DegradeStart => {
                    nodes[e.node].degrade = config.faults.degrade_factor
                }
                FaultEventKind::DegradeEnd => nodes[e.node].degrade = 1.0,
            }
        }

        // Per-job events at t (tolerance for float drift), deterministic
        // order by (node, id): completions, or the attempt's own failure.
        for (ni, node) in nodes.iter_mut().enumerate() {
            if !node.up {
                continue;
            }
            let mut i = 0;
            while i < node.running.len() {
                let due =
                    node.running[i].projected_event(now, node.degrade, ckpt_mult) <= now + 1e-9;
                if !due {
                    i += 1;
                    continue;
                }
                let r = node.running.remove(i);
                if !changed.contains(&ni) {
                    changed.push(ni);
                }
                if r.fail_at.is_some() {
                    // The attempt dies of its own cause (fail_at < solo).
                    let client = r.client;
                    match interrupt(r, ni, now, ckpt) {
                        Interrupted::Requeue(q) => enqueue(&mut queue, q),
                        Interrupted::Failed(rec) => {
                            makespan = makespan.max(now);
                            records.push(rec);
                            if let Some(c) = client {
                                finished_clients.push(c);
                            }
                        }
                    }
                } else {
                    makespan = makespan.max(now);
                    if let Some(c) = r.client {
                        finished_clients.push(c);
                    }
                    records.push(JobRecord {
                        id: r.id,
                        workflow: r.workflow,
                        ranks: r.ranks,
                        config: r.config,
                        node: ni,
                        arrival: r.arrival,
                        start: r.first_start,
                        finish: now,
                        solo: r.solo,
                        restarts: r.restarts,
                        lost_work: r.lost_work,
                        ckpt_overhead: r.ckpt_overhead,
                        completed: true,
                    });
                }
            }
        }
        // Closed loop: each finished submission (completed or failed)
        // triggers its client's next think.
        if let Some(state) = closed.as_mut() {
            finished_clients.sort_unstable();
            for c in finished_clients {
                if let Some(a) = state.submit(now + state.think, c) {
                    // Insert keeping pending sorted by (time, id).
                    let at = pending
                        .iter()
                        .position(|p| (p.time, p.id) > (a.time, a.id))
                        .unwrap_or(pending.len());
                    pending.insert(at, a);
                }
            }
        }

        // Arrivals at t.
        while pending.front().is_some_and(|a| a.time <= now + 1e-9) {
            let a = pending.pop_front().expect("front exists");
            enqueue(
                &mut queue,
                Queued {
                    id: a.id,
                    workflow: a.workflow,
                    ranks: a.ranks,
                    arrival: a.time,
                    client: a.client,
                    restarts: 0,
                    resume: 0.0,
                    eligible: a.time,
                    lost_work: 0.0,
                    ckpt_overhead: 0.0,
                    first_start: None,
                    config: None,
                },
            );
        }

        for &ni in &changed {
            reprice(&mut nodes[ni])?;
        }

        // Policy rounds: consult, apply what fits, re-price, repeat until
        // the policy places nothing more (each round shrinks the queue, so
        // this terminates). Policies only see jobs past their backoff and
        // the up/down state of every node.
        loop {
            let queue_view: Vec<QueuedJob> = queue
                .iter()
                .filter(|q| q.eligible <= now + 1e-9)
                .map(|q| QueuedJob {
                    id: q.id,
                    workflow: q.workflow.clone(),
                    ranks: q.ranks,
                    arrival: q.arrival,
                })
                .collect();
            if queue_view.is_empty() {
                break;
            }
            let node_views: Vec<NodeView> = nodes
                .iter()
                .enumerate()
                .map(|(id, n)| NodeView {
                    id,
                    cores_per_socket,
                    up: n.up,
                    residents: n
                        .running
                        .iter()
                        .map(|r| ResidentView {
                            id: r.id,
                            workflow: r.workflow.clone(),
                            ranks: r.ranks,
                            config: r.config,
                            projected_finish: r.projected_event(now, n.degrade, ckpt_mult),
                        })
                        .collect(),
                })
                .collect();
            let batch = policy.schedule(now, &queue_view, &node_views, oracle)?;
            if batch.is_empty() {
                break;
            }
            let mut placed_any = false;
            let mut touched: Vec<usize> = Vec::new();
            for p in batch {
                let Some(qi) = queue.iter().position(|q| q.id == p.job) else {
                    return Err(ClusterError::Config(format!(
                        "policy {} placed unknown job {}",
                        policy.name(),
                        p.job
                    )));
                };
                let used: usize = nodes[p.node].running.iter().map(|r| r.ranks).sum();
                if !nodes[p.node].up || used + queue[qi].ranks > cores_per_socket {
                    // Batch raced its own earlier placements; re-consult.
                    continue;
                }
                let q = queue.remove(qi);
                // A restarted job keeps the configuration its checkpoint
                // was written under, whatever the policy prefers now.
                let cfg = q.config.unwrap_or(p.config);
                let solo = oracle.solo_runtime(&q.workflow, q.ranks, cfg);
                let fail_at = plan
                    .job_failure(q.id, q.restarts as u64)
                    .map(|frac| q.resume + frac * (solo - q.resume))
                    .filter(|&fa| fa > q.resume && fa < solo - 1e-9);
                nodes[p.node].running.push(Running {
                    id: q.id,
                    workflow: q.workflow,
                    ranks: q.ranks,
                    config: cfg,
                    arrival: q.arrival,
                    first_start: q.first_start.unwrap_or(now),
                    client: q.client,
                    solo,
                    progress: q.resume,
                    restarts: q.restarts,
                    lost_work: q.lost_work,
                    ckpt_overhead: q.ckpt_overhead,
                    slowdown: 1.0,
                    fail_at,
                });
                if !touched.contains(&p.node) {
                    touched.push(p.node);
                }
                placed_any = true;
            }
            for &ni in &touched {
                reprice(&mut nodes[ni])?;
            }
            if !placed_any {
                break;
            }
        }
    }

    if !queue.is_empty() {
        return Err(ClusterError::Config(format!(
            "campaign drained with {} jobs still queued (policy {})",
            queue.len(),
            policy.name()
        )));
    }
    records.sort_by_key(|r| r.id);
    Ok(CampaignOutcome {
        policy: policy.name().to_string(),
        seed: config.seed,
        nodes: config.nodes,
        jobs: records,
        makespan,
        busy_core_secs: nodes.iter().map(|n| n.busy_core_secs).collect(),
        cores_per_node: 2 * cores_per_socket,
        corun_sets_priced: oracle.corun_cache_len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{all_policies, Fcfs};

    fn micro_config(n_arrivals: u64, nodes: usize) -> CampaignConfig {
        CampaignConfig {
            nodes,
            arrivals: ArrivalSpec::parse(&format!(
                "poisson:rate=0.005,n={n_arrivals},mix=micro-64mb"
            ))
            .unwrap(),
            seed: 42,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn fcfs_campaign_serves_every_arrival() {
        let cfg = micro_config(6, 2);
        let out = run_campaign(&cfg, &Fcfs, 2).unwrap();
        assert_eq!(out.jobs.len(), 6);
        assert_eq!(out.completed(), 6);
        assert_eq!(out.failed(), 0);
        for (i, j) in out.jobs.iter().enumerate() {
            assert_eq!(j.id, i as u64);
            assert!(j.start >= j.arrival - 1e-9, "job {i} started early");
            assert!(j.finish > j.start, "job {i} has no service time");
            assert!(j.node < 2);
            assert!(j.stretch() >= 0.999, "job {i} ran faster than solo");
            assert_eq!(j.restarts, 0);
            assert_eq!(j.lost_work, 0.0);
            assert_eq!(j.ckpt_overhead, 0.0, "no checkpointing configured");
        }
        assert!(out.makespan >= out.jobs.iter().map(|j| j.finish).fold(0.0, f64::max) - 1e-9);
        let util = out.utilization();
        assert_eq!(util.len(), 2);
        assert!(util.iter().all(|&u| (0.0..=1.0 + 1e-9).contains(&u)));
    }

    #[test]
    fn zero_nodes_is_a_config_error() {
        let cfg = micro_config(3, 0);
        assert!(matches!(
            run_campaign(&cfg, &Fcfs, 1),
            Err(ClusterError::Config(_))
        ));
    }

    #[test]
    fn oversized_workload_is_rejected_up_front() {
        let mut cfg = micro_config(3, 2);
        cfg.exec.node = pmemflow_platform::Node::dual_socket(4, 1 << 30, 1 << 30);
        assert!(matches!(
            run_campaign(&cfg, &Fcfs, 1),
            Err(ClusterError::Config(_))
        ));
    }

    #[test]
    fn bad_fault_spec_is_a_config_error() {
        let mut cfg = micro_config(3, 2);
        cfg.faults.job_fail_prob = 2.0;
        assert!(matches!(
            run_campaign(&cfg, &Fcfs, 1),
            Err(ClusterError::Config(_))
        ));
        let mut cfg = micro_config(3, 2);
        cfg.checkpoint.interval = -5.0;
        assert!(matches!(
            run_campaign(&cfg, &Fcfs, 1),
            Err(ClusterError::Config(_))
        ));
    }

    #[test]
    fn closed_loop_respects_population_and_budget() {
        let cfg = CampaignConfig {
            nodes: 2,
            arrivals: ArrivalSpec::parse("closed:clients=2,think=5,n=8,mix=micro-64mb").unwrap(),
            seed: 1,
            ..CampaignConfig::default()
        };
        let out = run_campaign(&cfg, &Fcfs, 2).unwrap();
        assert_eq!(out.jobs.len(), 8);
        // At most `clients` jobs are ever in flight: sort by start, check
        // every start has fewer than 2 unfinished predecessors.
        for j in &out.jobs {
            let in_flight = out
                .jobs
                .iter()
                .filter(|o| o.id != j.id && o.start <= j.start && o.finish > j.start)
                .count();
            assert!(
                in_flight < 2,
                "job {} overlapped {} others",
                j.id,
                in_flight
            );
        }
    }

    #[test]
    fn jsonl_is_parseable_shape() {
        let out = run_campaign(&micro_config(4, 2), &Fcfs, 2).unwrap();
        let text = out.to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5); // 4 jobs + summary
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
            assert_eq!(l.matches('{').count(), l.matches('}').count());
        }
        assert!(lines[..4].iter().all(|l| l.contains("\"kind\":\"job\"")));
        assert!(lines[..4]
            .iter()
            .all(|l| l.contains("\"outcome\":\"completed\"")));
        assert!(lines[4].contains("\"kind\":\"campaign\""));
        assert!(lines[4].contains("\"mean_bounded_slowdown\":"));
        assert!(lines[4].contains("\"total_lost_work_s\":"));
    }

    #[test]
    fn all_policies_serve_the_same_stream() {
        let cfg = micro_config(5, 2);
        let oracle = Oracle::build(&cfg.arrivals.alphabet(), &cfg.exec, 2).unwrap();
        for policy in all_policies() {
            let out = run_campaign_with_oracle(&cfg, policy.as_ref(), &oracle).unwrap();
            assert_eq!(out.jobs.len(), 5, "{}", policy.name());
            assert_eq!(out.policy, policy.name());
        }
    }

    /// A fault campaign sized against the workload's own solo runtime so
    /// crashes reliably hit running jobs.
    fn faulty_config(solo: f64, nodes: usize) -> CampaignConfig {
        let mut cfg = micro_config(6, nodes);
        cfg.faults = FaultSpec {
            seed: 11,
            mtbf: solo,
            repair: solo / 10.0,
            ..FaultSpec::default()
        };
        cfg.checkpoint = CheckpointSpec {
            interval: solo / 5.0,
            retry_budget: 8,
            backoff_base: 1.0,
            ..CheckpointSpec::default()
        };
        cfg
    }

    /// Solo runtime of the test workload, from a fault-free run.
    fn micro_solo() -> f64 {
        let out = run_campaign(&micro_config(1, 1), &Fcfs, 1).unwrap();
        out.jobs[0].solo
    }

    #[test]
    fn crashes_requeue_and_resume_from_checkpoints() {
        let solo = micro_solo();
        let cfg = faulty_config(solo, 2);
        let out = run_campaign(&cfg, &Fcfs, 2).unwrap();
        // Conservation: every submission ends in exactly one record.
        assert_eq!(out.jobs.len(), 6, "lost or duplicated jobs");
        assert_eq!(out.completed() + out.failed(), 6);
        assert!(
            out.total_restarts() > 0,
            "an MTBF equal to the solo runtime must interrupt someone"
        );
        for j in &out.jobs {
            assert!(j.lost_work >= -1e-9);
            assert!(
                j.lost_work <= cfg.checkpoint.interval * (j.restarts as f64 + 1.0) + 1e-6,
                "job {} lost {} solo-seconds with {} restarts — checkpoints not honored",
                j.id,
                j.lost_work,
                j.restarts
            );
            if j.completed {
                assert!(j.finish > j.start - 1e-9);
            } else {
                assert!(j.restarts > cfg.checkpoint.retry_budget);
            }
        }
        // Checkpoint writes cost wall time for everyone who ran.
        assert!(out.total_ckpt_overhead() > 0.0);
    }

    #[test]
    fn fault_campaigns_are_deterministic_and_seed_sensitive() {
        let solo = micro_solo();
        let cfg = faulty_config(solo, 2);
        let a = run_campaign(&cfg, &Fcfs, 1).unwrap().to_jsonl();
        let b = run_campaign(&cfg, &Fcfs, 2).unwrap().to_jsonl();
        assert_eq!(a, b, "fault campaign differs across --jobs");
        let mut other = cfg.clone();
        other.faults.seed = 12;
        let c = run_campaign(&other, &Fcfs, 1).unwrap().to_jsonl();
        assert_ne!(a, c, "fault seed has no effect");
    }

    #[test]
    fn checkpoint_tax_slows_completion_down() {
        let base = micro_config(2, 1);
        let fast = run_campaign(&base, &Fcfs, 1).unwrap();
        let mut taxed_cfg = base.clone();
        taxed_cfg.checkpoint.interval = fast.jobs[0].solo / 10.0;
        let taxed = run_campaign(&taxed_cfg, &Fcfs, 1).unwrap();
        assert!(
            taxed.mean_response() > fast.mean_response(),
            "checkpoint writes must cost wall time: {} vs {}",
            taxed.mean_response(),
            fast.mean_response()
        );
        assert!(taxed.jobs.iter().all(|j| j.ckpt_overhead > 0.0));
        assert!(fast.jobs.iter().all(|j| j.ckpt_overhead == 0.0));
    }

    #[test]
    fn exhausted_retry_budget_reports_failed_not_hung() {
        let solo = micro_solo();
        let mut cfg = faulty_config(solo, 1);
        // Crash far faster than any checkpoint accumulates and allow a
        // single retry: most submissions must die, none may hang.
        cfg.faults.mtbf = solo / 5.0;
        cfg.faults.repair = solo / 50.0;
        cfg.checkpoint.interval = 0.0; // restarts from scratch
        cfg.checkpoint.retry_budget = 1;
        let out = run_campaign(&cfg, &Fcfs, 1).unwrap();
        assert_eq!(out.jobs.len(), 6, "every submission must be accounted");
        assert!(
            out.failed() > 0,
            "mtbf at a fifth of the solo time with one retry must kill someone"
        );
        for j in out.jobs.iter().filter(|j| !j.completed) {
            assert_eq!(j.restarts, 2, "budget 1 means the 2nd interrupt is fatal");
            assert!(j.lost_work > 0.0, "a scratch restart loses all progress");
        }
    }

    #[test]
    fn job_level_failures_alone_trigger_restarts() {
        let mut cfg = micro_config(4, 2);
        cfg.faults = FaultSpec {
            seed: 3,
            job_fail_prob: 0.5,
            ..FaultSpec::default()
        };
        cfg.checkpoint.interval = micro_solo() / 4.0;
        let out = run_campaign(&cfg, &Fcfs, 1).unwrap();
        assert_eq!(out.jobs.len(), 4);
        assert!(
            out.total_restarts() > 0,
            "a 50% per-attempt failure rate over 4 jobs should restart someone"
        );
        assert_eq!(out.completed() + out.failed(), 4);
    }
}
