//! Campaign-level invariants, checked by reconstruction from job records:
//! capacity safety at every event time, FCFS ordering, and bit-identical
//! output across worker counts.

use pmemflow_cluster::{
    all_policies, run_campaign, run_campaign_with_oracle, ArrivalSpec, CampaignConfig,
    CheckpointSpec, FaultSpec, Fcfs, Oracle,
};

/// A bursty stream over one micro family (3 rank levels): high rate so the
/// queue actually builds and placements contend for capacity.
fn contended_config(n: u64, nodes: usize, seed: u64) -> CampaignConfig {
    CampaignConfig {
        nodes,
        arrivals: ArrivalSpec::parse(&format!("poisson:rate=2,n={n},mix=micro-64mb")).unwrap(),
        seed,
        ..CampaignConfig::default()
    }
}

#[test]
fn no_node_ever_exceeds_per_socket_capacity() {
    let cfg = contended_config(14, 2, 11);
    let cap = cfg.exec.node.cores_per_socket();
    let oracle = Oracle::build(&cfg.arrivals.alphabet(), &cfg.exec, 2).unwrap();
    for policy in all_policies() {
        let out = run_campaign_with_oracle(&cfg, policy.as_ref(), &oracle).unwrap();
        // The resident set only changes at job starts, so checking every
        // start instant covers every distinct occupancy interval.
        for probe in &out.jobs {
            for node in 0..cfg.nodes {
                let used: usize = out
                    .jobs
                    .iter()
                    .filter(|j| {
                        j.node == node && j.start <= probe.start + 1e-9 && j.finish > probe.start
                    })
                    .map(|j| j.ranks)
                    .sum();
                assert!(
                    used <= cap,
                    "{}: node {node} holds {used} > {cap} cores at t={}",
                    policy.name(),
                    probe.start
                );
            }
        }
    }
}

#[test]
fn fcfs_never_reorders_equal_priority_arrivals() {
    let out = run_campaign(&contended_config(14, 2, 5), &Fcfs, 2).unwrap();
    // Records are in submission id order == arrival order for an open
    // stream; under FCFS nobody may start before an earlier arrival.
    for pair in out.jobs.windows(2) {
        assert!(
            pair[1].start >= pair[0].start - 1e-9,
            "job {} (start {}) overtook job {} (start {})",
            pair[1].id,
            pair[1].start,
            pair[0].id,
            pair[0].start
        );
    }
}

#[test]
fn identical_seed_means_byte_identical_jsonl_across_jobs() {
    let cfg = contended_config(10, 2, 9);
    for policy in all_policies() {
        let serial = run_campaign(&cfg, policy.as_ref(), 1).unwrap();
        let parallel = run_campaign(&cfg, policy.as_ref(), 4).unwrap();
        assert_eq!(
            serial.to_jsonl(),
            parallel.to_jsonl(),
            "{} output depends on worker count",
            policy.name()
        );
    }
    // And a different seed really is a different campaign.
    let mut other = contended_config(10, 2, 9);
    other.seed = 10;
    let a = run_campaign(&cfg, &Fcfs, 2).unwrap();
    let b = run_campaign(&other, &Fcfs, 2).unwrap();
    assert_ne!(a.to_jsonl(), b.to_jsonl());
}

/// A dense failure trace over the contended stream: crashes and transient
/// degradation both well inside the campaign's lifetime, with
/// checkpointing on so restarts resume mid-flight.
fn faulty_config(n: u64, nodes: usize, seed: u64) -> CampaignConfig {
    let mut cfg = contended_config(n, nodes, seed);
    cfg.faults = FaultSpec {
        seed: 1234,
        mtbf: 400.0,
        repair: 40.0,
        degrade_mtbf: 300.0,
        degrade_duration: 60.0,
        degrade_factor: 2.0,
        job_fail_prob: 0.1,
    };
    cfg.checkpoint = CheckpointSpec {
        interval: 30.0,
        retry_budget: 5,
        backoff_base: 2.0,
        ..CheckpointSpec::default()
    };
    cfg
}

#[test]
fn same_fault_seed_is_byte_identical_jsonl_across_jobs_counts() {
    let cfg = faulty_config(10, 2, 9);
    for policy in all_policies() {
        let reference = run_campaign(&cfg, policy.as_ref(), 1).unwrap().to_jsonl();
        for jobs in [4, 8] {
            let other = run_campaign(&cfg, policy.as_ref(), jobs)
                .unwrap()
                .to_jsonl();
            assert_eq!(
                reference,
                other,
                "{} fault campaign differs between --jobs 1 and --jobs {jobs}",
                policy.name()
            );
        }
    }
    // A different fault seed against the same arrivals is a different
    // campaign — the trace is live, not ignored.
    let mut other = faulty_config(10, 2, 9);
    other.faults.seed = 4321;
    assert_ne!(
        run_campaign(&cfg, &Fcfs, 2).unwrap().to_jsonl(),
        run_campaign(&other, &Fcfs, 2).unwrap().to_jsonl(),
    );
}

#[test]
fn every_submission_is_accounted_under_faults() {
    let cfg = faulty_config(12, 2, 7);
    for policy in all_policies() {
        let out = run_campaign(&cfg, policy.as_ref(), 2).unwrap();
        assert_eq!(
            out.jobs.len(),
            12,
            "{}: submissions lost or duplicated under faults",
            policy.name()
        );
        assert_eq!(out.completed() + out.failed(), 12, "{}", policy.name());
        for j in &out.jobs {
            if !j.completed {
                assert!(
                    j.restarts > cfg.checkpoint.retry_budget,
                    "{}: job {} reported failed inside its retry budget",
                    policy.name(),
                    j.id
                );
            }
        }
    }
}
