//! Crossover analysis: where does the optimal configuration flip?
//!
//! The paper's evaluation is a story of crossovers — GTC+ReadOnly flips
//! from parallel to serial between 8 and 16 ranks and to local-write
//! placement by 24 (Fig. 6); the 2 KB microbenchmark flips from parallel
//! to serial between 16 and 24 (Fig. 5). A scheduler that knows *where*
//! the flip sits for a workload family can pick configurations for rank
//! counts it has never measured. This module sweeps a parameter axis and
//! reports every flip point with the margins on both sides.

use crate::model_driven::decide;
use pmemflow_core::{ExecError, ExecutionParams, SchedConfig};
use pmemflow_workloads::WorkflowSpec;

/// The axis a sweep varies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// Ranks per component (the paper's concurrency axis).
    Ranks,
    /// Object size in bytes, holding snapshot volume constant (the paper's
    /// granularity axis: fewer, larger objects vs many small ones).
    ObjectBytes,
}

/// One evaluated point of a sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The axis value.
    pub value: u64,
    /// The winning configuration at this point.
    pub winner: SchedConfig,
    /// Predicted runtime of the winner, seconds.
    pub runtime: f64,
    /// Margin of the winner over the runner-up (≥ 1.0).
    pub margin: f64,
}

/// A detected flip between two adjacent sweep points.
#[derive(Debug, Clone)]
pub struct Crossover {
    /// Axis value before the flip.
    pub from_value: u64,
    /// Axis value after the flip.
    pub to_value: u64,
    /// Winner before.
    pub from: SchedConfig,
    /// Winner after.
    pub to: SchedConfig,
}

/// Result of a crossover sweep.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Every evaluated point, in axis order.
    pub points: Vec<SweepPoint>,
    /// Every flip between adjacent points.
    pub crossovers: Vec<Crossover>,
}

fn apply(spec: &WorkflowSpec, axis: Axis, value: u64) -> WorkflowSpec {
    let mut s = spec.clone();
    match axis {
        Axis::Ranks => s.ranks = value as usize,
        Axis::ObjectBytes => {
            let snapshot = s.writer.io.snapshot_bytes();
            let objects = (snapshot / value).max(1);
            for io in [&mut s.writer.io, &mut s.reader.io] {
                io.object_bytes = value;
                io.objects_per_snapshot = objects;
            }
        }
    }
    s
}

/// Sweep `axis` over `values` for `spec`, deciding the best configuration
/// at each point with the model, and report all flips.
pub fn sweep_axis(
    spec: &WorkflowSpec,
    axis: Axis,
    values: &[u64],
    params: &ExecutionParams,
) -> Result<SweepResult, ExecError> {
    if values.is_empty() {
        return Err(ExecError::Spec("empty sweep".into()));
    }
    let mut points = Vec::with_capacity(values.len());
    for &v in values {
        let candidate = apply(spec, axis, v);
        candidate.validate().map_err(ExecError::Spec)?;
        let d = decide(&candidate, params)?;
        let runner_up = d
            .sweep
            .runs
            .iter()
            .filter(|r| r.config != d.config)
            .map(|r| r.total)
            .fold(f64::INFINITY, f64::min);
        points.push(SweepPoint {
            value: v,
            winner: d.config,
            runtime: d.predicted_runtime,
            margin: runner_up / d.predicted_runtime,
        });
    }
    let crossovers = points
        .windows(2)
        .filter(|w| w[0].winner != w[1].winner)
        .map(|w| Crossover {
            from_value: w[0].value,
            to_value: w[1].value,
            from: w[0].winner,
            to: w[1].winner,
        })
        .collect();
    Ok(SweepResult { points, crossovers })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmemflow_workloads::{gtc_readonly, micro_2kb};

    fn params() -> ExecutionParams {
        ExecutionParams::default()
    }

    #[test]
    fn gtc_readonly_flips_to_serial_with_ranks() {
        // The paper's Fig. 6 arc: parallel at 8, serial by 16/24.
        let r = sweep_axis(&gtc_readonly(8), Axis::Ranks, &[8, 16, 24], &params()).unwrap();
        assert_eq!(r.points.len(), 3);
        assert!(
            !r.crossovers.is_empty(),
            "expected at least one flip across 8..24 ranks"
        );
        use pmemflow_core::ExecMode;
        assert_eq!(r.points[0].winner.mode, ExecMode::Parallel);
        assert_eq!(r.points[2].winner.mode, ExecMode::Serial);
    }

    #[test]
    fn micro_2kb_flips_between_16_and_24() {
        // Fig. 5: P-LocR at 8, serial by 24.
        let r = sweep_axis(&micro_2kb(8), Axis::Ranks, &[8, 24], &params()).unwrap();
        assert_eq!(r.crossovers.len(), 1);
        let x = &r.crossovers[0];
        assert_eq!((x.from_value, x.to_value), (8, 24));
        use pmemflow_core::ExecMode;
        assert_eq!(x.from.mode, ExecMode::Parallel);
        assert_eq!(x.to.mode, ExecMode::Serial);
    }

    #[test]
    fn object_size_axis_preserves_snapshot_volume() {
        let base = micro_2kb(8);
        let snapshot = base.writer.io.snapshot_bytes();
        let s = apply(&base, Axis::ObjectBytes, 64 << 20);
        assert_eq!(s.writer.io.object_bytes, 64 << 20);
        assert_eq!(s.writer.io.snapshot_bytes(), snapshot);
    }

    #[test]
    fn object_size_sweep_flips_placement() {
        // Growing objects from 2 KB to 64 MB at high concurrency turns the
        // latency-bound small-object workload (LocR) into the
        // bandwidth-bound large-object one (LocW) — Fig. 4 vs Fig. 5.
        let r = sweep_axis(
            &micro_2kb(24),
            Axis::ObjectBytes,
            &[2048, 64 << 20],
            &params(),
        )
        .unwrap();
        use pmemflow_core::Placement;
        assert_eq!(r.points[0].winner.placement, Placement::LocR);
        assert_eq!(r.points[1].winner.placement, Placement::LocW);
    }

    #[test]
    fn margins_are_sane() {
        let r = sweep_axis(&micro_2kb(8), Axis::Ranks, &[8], &params()).unwrap();
        assert!(r.points[0].margin >= 1.0);
        assert!(r.crossovers.is_empty());
    }

    #[test]
    fn empty_sweep_rejected() {
        assert!(sweep_axis(&micro_2kb(8), Axis::Ranks, &[], &params()).is_err());
    }
}
