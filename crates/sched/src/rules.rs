//! The rule-based scheduler: §VIII's recommendations as a decision
//! procedure.
//!
//! The paper distills its observations into three rules (§VIII):
//!
//! 1. **Maximize effective bandwidth by limiting concurrent device
//!    accesses** — workflows whose components drive high *effective*
//!    concurrency at the device should run serially; low-concurrency
//!    workflows benefit from parallel execution.
//! 2. **Placement follows the bottleneck** — bandwidth-constrained
//!    workflows prioritize writes (local-write/remote-read) because remote
//!    writes degrade far more than remote reads; unconstrained workflows
//!    prioritize reads (remote-write/local-read) because reads wait for
//!    the media while writes complete at the controller.
//! 3. **Interleaved compute hides contention and remote latency** — a
//!    compute-heavy analytics kernel tolerates remote reads, letting the
//!    placement favor an I/O-heavy simulation even when bandwidth is not
//!    saturated (Table II row 8).
//!
//! The decision keys on *measured* quantities from
//! [`crate::characterize`], not rank counts: the paper is explicit that
//! "the actual level of concurrency experienced by PMEM is a complex
//! function of the number of MPI ranks, software overhead … and
//! interleaving compute" (§VIII).

use crate::profile::{Level, WorkflowProfile};
use pmemflow_core::{ExecMode, Placement, SchedConfig};

/// Tunable thresholds of the rule engine. Defaults follow §VIII: "low
/// concurrency" ≈ 8 cores per component, serial above that; bandwidth
/// constraint at ~70% of device write capacity.
#[derive(Debug, Clone, Copy)]
pub struct RuleThresholds {
    /// Combined effective device concurrency above which components must
    /// not overlap (serial execution).
    pub serial_concurrency: f64,
    /// Write saturation above which placement prioritizes writes.
    pub saturation_for_locw: f64,
}

impl Default for RuleThresholds {
    fn default() -> Self {
        Self {
            serial_concurrency: 11.0,
            saturation_for_locw: 0.72,
        }
    }
}

/// Why the rule engine chose what it chose (for reports and debugging).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decision {
    /// The chosen configuration.
    pub config: SchedConfig,
    /// Which §VIII rules fired, in order.
    pub reasons: Vec<&'static str>,
}

/// Apply the §VIII rules to a characterized workflow.
pub fn recommend(profile: &WorkflowProfile, th: &RuleThresholds) -> Decision {
    let mut reasons = Vec::new();

    // Rule 1: serial vs parallel by combined effective device concurrency,
    // with §VIII's carve-out: a pure-I/O, bandwidth-constrained workflow
    // gains nothing from overlap ("the 64MB workflow at 8 MPI ranks …
    // there are no compute phases. Hence it is executed in S-LocW").
    let combined = profile.combined_device_concurrency();
    let pure_io = profile.sim_compute == Level::Nil && profile.analytics_compute == Level::Nil;
    // §VIII rule 3: interleaved compute on the analytics side reduces the
    // effective contention of overlapping I/O, keeping parallel execution
    // viable at moderate concurrency where a read-only kernel would chase
    // the writer's I/O windows.
    let hiding = profile.analytics_compute >= Level::Low;
    let mode = if combined > th.serial_concurrency
        && !(hiding && combined <= th.serial_concurrency * 1.5)
    {
        reasons.push(
            "high effective device concurrency: serialize components to limit \
             contention (§VIII rule 1)",
        );
        ExecMode::Serial
    } else if pure_io && profile.is_bandwidth_constrained() {
        reasons.push(
            "pure-I/O bandwidth-constrained workflow: overlap has nothing to \
             hide, serialize to keep full bandwidth per phase (§VIII rule 1 \
             carve-out)",
        );
        ExecMode::Serial
    } else {
        reasons.push(
            "low effective device concurrency: overlap components in parallel \
             (§VIII rule 1)",
        );
        ExecMode::Parallel
    };

    // Rules 2 & 3: placement.
    let placement = if profile.is_bandwidth_constrained() {
        reasons.push(
            "write bandwidth constrained: prioritize writes with local-write/\
             remote-read placement (§VIII rule 2)",
        );
        Placement::LocW
    } else if profile.analytics_compute >= Level::Medium
        && profile.sim_write >= Level::High
        && profile.analytics_read <= Level::Low
    {
        reasons.push(
            "compute-heavy analytics hides remote read latency while the \
             I/O-heavy simulation benefits from local writes (§VIII rule 3, \
             Table II row 8)",
        );
        Placement::LocW
    } else {
        reasons.push(
            "bandwidth not constrained: prioritize read latency with \
             remote-write/local-read placement (§VIII rule 2)",
        );
        Placement::LocR
    };

    Decision {
        config: SchedConfig { mode, placement },
        reasons,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Level;
    use pmemflow_workloads::{ConcurrencyClass, SizeClass};

    fn base_profile() -> WorkflowProfile {
        WorkflowProfile {
            name: "t".into(),
            sim_compute: Level::Nil,
            sim_write: Level::High,
            analytics_compute: Level::Nil,
            analytics_read: Level::High,
            object_size: SizeClass::Large,
            concurrency: ConcurrencyClass::High,
            sim_io_index: 1.0,
            analytics_io_index: 1.0,
            sim_device_concurrency: 20.0,
            analytics_device_concurrency: 20.0,
            sim_throughput: 10e9,
            write_saturation: 0.95,
        }
    }

    #[test]
    fn saturated_high_concurrency_gets_s_locw() {
        let d = recommend(&base_profile(), &RuleThresholds::default());
        assert_eq!(d.config, SchedConfig::S_LOC_W);
        assert_eq!(d.reasons.len(), 2);
    }

    #[test]
    fn unsaturated_high_concurrency_gets_s_locr() {
        let mut p = base_profile();
        p.write_saturation = 0.3;
        p.sim_device_concurrency = 10.0;
        p.analytics_device_concurrency = 8.0;
        let d = recommend(&p, &RuleThresholds::default());
        assert_eq!(d.config, SchedConfig::S_LOC_R);
    }

    #[test]
    fn unsaturated_low_concurrency_gets_p_locr() {
        let mut p = base_profile();
        p.write_saturation = 0.3;
        p.sim_device_concurrency = 4.0;
        p.analytics_device_concurrency = 3.0;
        let d = recommend(&p, &RuleThresholds::default());
        assert_eq!(d.config, SchedConfig::P_LOC_R);
    }

    #[test]
    fn compute_heavy_analytics_flips_to_locw() {
        // Table II row 8: miniAMR+MatrixMult at low concurrency.
        let mut p = base_profile();
        p.write_saturation = 0.5;
        p.sim_device_concurrency = 5.0;
        p.analytics_device_concurrency = 2.0;
        p.analytics_compute = Level::High;
        p.analytics_read = Level::Low;
        p.sim_write = Level::High;
        let d = recommend(&p, &RuleThresholds::default());
        assert_eq!(d.config, SchedConfig::P_LOC_W);
        assert!(d.reasons.iter().any(|r| r.contains("rule 3")));
    }

    #[test]
    fn reasons_cite_rules() {
        let d = recommend(&base_profile(), &RuleThresholds::default());
        for r in &d.reasons {
            assert!(r.contains("§VIII"));
        }
    }
}
