//! # pmemflow-sched — PMEM-aware workflow scheduling
//!
//! The paper ends with recommendations "that have to be considered by
//! future workflow schedulers" (§X); this crate *is* that scheduler, three
//! ways:
//!
//! * [`recommend`] — the rule-based engine: §VIII's three rules as a
//!   decision procedure over a measured [`WorkflowProfile`]
//!   (from [`characterize`]), with [`table2`]/[`classify`] providing the
//!   paper's Table II verbatim as a lookup alternative.
//! * [`decide`] — the model-driven scheduler: simulate all four Table I
//!   configurations with the calibrated device model and take the argmin.
//! * [`explore_then_commit`] — the adaptive scheduler: probe each
//!   configuration online for a few iterations, then commit; needs no
//!   model at all and has bounded regret on the paper's iterative
//!   workflows.

#![warn(missing_docs)]

mod adaptive;
mod characterize;
mod crossover;
mod model_driven;
mod planner;
mod profile;
mod rules;
mod table2;

pub use adaptive::{explore_then_commit, AdaptiveOutcome};
pub use characterize::characterize;
pub use crossover::{sweep_axis, Axis, Crossover, SweepPoint, SweepResult};
pub use model_driven::{decide, ModelDecision};
pub use planner::{plan, Plan, PlanPoint};
pub use profile::{Level, WorkflowProfile};
pub use rules::{recommend, Decision, RuleThresholds};
pub use table2::{classify, table2, Table2Row};
