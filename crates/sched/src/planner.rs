//! Capacity planning: choose concurrency *and* configuration together.
//!
//! The paper treats the rank count as given and picks the configuration;
//! a production scheduler usually gets the inverse problem — "this
//! campaign must finish N iterations by a deadline; how many cores do I
//! burn, and in which configuration?" Because the model is cheap, the
//! planner simply evaluates candidate rank counts under their best
//! configurations and reports the efficiency frontier.
//!
//! This also surfaces a paper finding quantitatively: beyond the device
//! saturation point, extra ranks buy little runtime for a lot of cores —
//! the marginal speedup of concurrency collapses exactly where Table II
//! flips to serial execution.

use crate::model_driven::decide;
use pmemflow_core::{ExecError, ExecutionParams, SchedConfig};
use pmemflow_workloads::WorkflowSpec;

/// One point on the concurrency/performance frontier.
#[derive(Debug, Clone)]
pub struct PlanPoint {
    /// Ranks per component.
    pub ranks: usize,
    /// Best configuration at this concurrency.
    pub config: SchedConfig,
    /// Predicted end-to-end runtime, seconds.
    pub runtime: f64,
    /// Core-seconds consumed (2 × ranks × runtime: writer + reader
    /// sockets).
    pub core_seconds: f64,
    /// Parallel efficiency vs the smallest candidate
    /// (`t_min_ranks × min_ranks / (t × ranks)`, 1.0 = perfect scaling).
    pub efficiency: f64,
}

/// The planner's answer.
#[derive(Debug, Clone)]
pub struct Plan {
    /// All evaluated points, ascending rank count.
    pub frontier: Vec<PlanPoint>,
    /// The cheapest point meeting the deadline, if any.
    pub chosen: Option<PlanPoint>,
}

/// Evaluate `candidates` rank counts for `spec` and pick the
/// fewest-core-seconds point whose runtime is within `deadline_seconds`.
pub fn plan(
    spec: &WorkflowSpec,
    candidates: &[usize],
    deadline_seconds: f64,
    params: &ExecutionParams,
) -> Result<Plan, ExecError> {
    if candidates.is_empty() {
        return Err(ExecError::Spec("no candidate rank counts".into()));
    }
    let mut frontier = Vec::with_capacity(candidates.len());
    let mut sorted = candidates.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let mut base: Option<(usize, f64)> = None;
    for &ranks in &sorted {
        let candidate = spec.with_ranks(ranks);
        let decision = decide(&candidate, params)?;
        let runtime = decision.predicted_runtime;
        if base.is_none() {
            base = Some((ranks, runtime));
        }
        let (r0, t0) = base.unwrap();
        frontier.push(PlanPoint {
            ranks,
            config: decision.config,
            runtime,
            core_seconds: 2.0 * ranks as f64 * runtime,
            efficiency: (t0 * r0 as f64) / (runtime * ranks as f64),
        });
    }
    let chosen = frontier
        .iter()
        .filter(|p| p.runtime <= deadline_seconds)
        .min_by(|a, b| a.core_seconds.total_cmp(&b.core_seconds))
        .cloned();
    Ok(Plan { frontier, chosen })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmemflow_workloads::micro_64mb;

    fn params() -> ExecutionParams {
        ExecutionParams::default()
    }

    #[test]
    fn frontier_is_sorted_and_runtime_decreases_with_ranks() {
        // Fixed per-rank work (the suite weak-scales), so runtime per rank
        // stays flat-ish; here we check the planner machinery itself.
        let p = plan(&micro_64mb(8), &[8, 16, 24], f64::INFINITY, &params()).unwrap();
        assert_eq!(p.frontier.len(), 3);
        assert!(p.frontier.windows(2).all(|w| w[0].ranks < w[1].ranks));
        assert!(p.chosen.is_some());
        // Unlimited deadline: the cheapest core-seconds point is chosen.
        let min_cs = p
            .frontier
            .iter()
            .map(|q| q.core_seconds)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(p.chosen.unwrap().core_seconds, min_cs);
    }

    #[test]
    fn efficiency_collapses_past_saturation() {
        // The 64 MB workload saturates the write path: weak-scaled ranks
        // add bytes 1:1 but bandwidth stops scaling, so efficiency at 24
        // ranks is visibly below 8 ranks.
        let p = plan(&micro_64mb(8), &[8, 24], f64::INFINITY, &params()).unwrap();
        let e8 = p.frontier[0].efficiency;
        let e24 = p.frontier[1].efficiency;
        assert!((e8 - 1.0).abs() < 1e-9);
        assert!(e24 < 0.9, "efficiency at 24 ranks {e24}");
    }

    #[test]
    fn impossible_deadline_chooses_nothing() {
        let p = plan(&micro_64mb(8), &[8, 16], 1e-3, &params()).unwrap();
        assert!(p.chosen.is_none());
        assert_eq!(p.frontier.len(), 2);
    }

    #[test]
    fn duplicate_and_unsorted_candidates_handled() {
        let p = plan(&micro_64mb(8), &[16, 8, 16], f64::INFINITY, &params()).unwrap();
        assert_eq!(p.frontier.len(), 2);
        assert_eq!(p.frontier[0].ranks, 8);
    }

    #[test]
    fn empty_candidates_rejected() {
        assert!(plan(&micro_64mb(8), &[], 1.0, &params()).is_err());
    }
}
