//! Adaptive online scheduling: explore-then-commit.
//!
//! When no trustworthy model exists — new hardware, unknown kernels — a
//! scheduler can still converge on the right configuration online: run the
//! first iterations of the (long-running, iterative) workflow once under
//! each candidate configuration, measure the per-iteration cost, and
//! commit to the cheapest for the remainder. The paper's workflows run
//! many identical iterations, so a few probe iterations amortize to
//! nothing. This realizes the paper's closing question ("how these
//! recommendations can be practically incorporated in scheduling
//! systems", §X) with zero prior knowledge.

use pmemflow_core::{execute, ExecError, ExecutionParams, SchedConfig};
use pmemflow_workloads::WorkflowSpec;

/// Outcome of the explore-then-commit run.
#[derive(Debug, Clone)]
pub struct AdaptiveOutcome {
    /// Configuration committed to after exploration.
    pub committed: SchedConfig,
    /// Virtual seconds spent exploring (all four probes).
    pub exploration_cost: f64,
    /// Virtual seconds of the committed remainder.
    pub remainder_runtime: f64,
    /// Total = exploration + remainder.
    pub total_runtime: f64,
    /// What an oracle that knew the best configuration upfront would have
    /// spent. `total_runtime / oracle_runtime` is the regret ratio.
    pub oracle_runtime: f64,
    /// Per-config probe measurements (config label, probe seconds).
    pub probes: Vec<(SchedConfig, f64)>,
}

impl AdaptiveOutcome {
    /// Total over oracle: 1.0 is perfect, the excess is the price of
    /// learning online.
    pub fn regret_ratio(&self) -> f64 {
        self.total_runtime / self.oracle_runtime
    }
}

/// Run `spec` with explore-then-commit: `probe_iterations` under each
/// configuration, then the remaining iterations under the measured best.
///
/// Probing is simulated by executing a truncated copy of the workflow —
/// exactly what a real scheduler would do by reconfiguring the job between
/// probe windows.
pub fn explore_then_commit(
    spec: &WorkflowSpec,
    probe_iterations: u64,
    params: &ExecutionParams,
) -> Result<AdaptiveOutcome, ExecError> {
    if probe_iterations == 0 || probe_iterations * 4 >= spec.iterations {
        return Err(ExecError::Spec(format!(
            "need 0 < 4×probe ({probe_iterations}) < iterations ({})",
            spec.iterations
        )));
    }
    let mut probe_spec = spec.clone();
    probe_spec.iterations = probe_iterations;
    let mut probes = Vec::with_capacity(4);
    let mut exploration_cost = 0.0;
    for config in SchedConfig::ALL {
        let m = execute(&probe_spec, config, params)?;
        exploration_cost += m.total;
        probes.push((config, m.total));
    }
    let committed = probes
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("four probes")
        .0;

    let mut rest = spec.clone();
    rest.iterations = spec.iterations - 4 * probe_iterations;
    let remainder_runtime = execute(&rest, committed, params)?.total;
    let total_runtime = exploration_cost + remainder_runtime;

    // Oracle: the full workflow under its true best configuration.
    let oracle_runtime = SchedConfig::ALL
        .iter()
        .map(|&c| execute(spec, c, params).map(|m| m.total))
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .fold(f64::INFINITY, f64::min);

    Ok(AdaptiveOutcome {
        committed,
        exploration_cost,
        remainder_runtime,
        total_runtime,
        oracle_runtime,
        probes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmemflow_workloads::{micro_2kb, micro_64mb};

    fn params() -> ExecutionParams {
        ExecutionParams::default()
    }

    #[test]
    fn commits_to_a_good_config_for_bandwidth_bound() {
        let spec = micro_64mb(24);
        let out = explore_then_commit(&spec, 1, &params()).unwrap();
        // The probe (single iteration per config) must find the same
        // winner the full sweep finds for this strongly separated case.
        assert_eq!(out.committed, SchedConfig::S_LOC_W);
        assert!(out.regret_ratio() < 1.6, "regret {}", out.regret_ratio());
    }

    #[test]
    fn regret_is_bounded_for_small_object_workload() {
        let out = explore_then_commit(&micro_2kb(8), 1, &params()).unwrap();
        assert!(
            out.regret_ratio() < 1.8,
            "regret ratio {}",
            out.regret_ratio()
        );
        assert_eq!(out.probes.len(), 4);
    }

    #[test]
    fn rejects_probe_budget_exceeding_workflow() {
        let spec = micro_64mb(8); // 10 iterations
        assert!(explore_then_commit(&spec, 3, &params()).is_err());
        assert!(explore_then_commit(&spec, 0, &params()).is_err());
    }

    #[test]
    fn accounting_adds_up() {
        let out = explore_then_commit(&micro_64mb(8), 1, &params()).unwrap();
        assert!((out.total_runtime - (out.exploration_cost + out.remainder_runtime)).abs() < 1e-9);
        assert!(out.oracle_runtime <= out.total_runtime);
    }
}
