//! Table II as data: the paper's ten recommendation rows.
//!
//! Each row maps a qualitative workload class to the configuration the
//! paper recommends. [`classify`] finds the row matching a characterized
//! workflow, providing a second, lookup-style recommender that is exactly
//! the paper's table (the rule engine in [`crate::recommend`] is the
//! distilled decision procedure).

use crate::profile::{Level, WorkflowProfile};
use pmemflow_core::SchedConfig;
use pmemflow_workloads::{ConcurrencyClass, SizeClass};

/// One row of Table II.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Row number (1-based, as printed in the paper).
    pub row: u8,
    /// Simulation compute levels matched by this row.
    pub sim_compute: &'static [Level],
    /// Simulation write levels matched.
    pub sim_write: &'static [Level],
    /// Analytics compute levels matched.
    pub analytics_compute: &'static [Level],
    /// Analytics read levels matched.
    pub analytics_read: &'static [Level],
    /// Object size matched.
    pub object_size: SizeClass,
    /// Concurrency classes matched.
    pub concurrency: &'static [ConcurrencyClass],
    /// The recommended configuration.
    pub config: SchedConfig,
    /// The paper's illustrative workloads.
    pub illustrated_by: &'static str,
}

use ConcurrencyClass::{High, Low, Medium};
use Level as L;

/// The ten rows of Table II, verbatim.
pub fn table2() -> Vec<Table2Row> {
    vec![
        Table2Row {
            row: 1,
            sim_compute: &[L::Nil],
            sim_write: &[L::High],
            analytics_compute: &[L::Nil],
            analytics_read: &[L::High],
            object_size: SizeClass::Large,
            concurrency: &[Low, Medium, High],
            config: SchedConfig::S_LOC_W,
            illustrated_by: "64MB workflows: Fig 4a,4b,4c",
        },
        Table2Row {
            row: 2,
            sim_compute: &[L::High],
            sim_write: &[L::Low],
            analytics_compute: &[L::Low, L::Medium, L::High],
            analytics_read: &[L::Medium, L::High],
            object_size: SizeClass::Large,
            concurrency: &[High],
            config: SchedConfig::S_LOC_W,
            illustrated_by: "GTC+Read-Only Fig 6c; GTC+MatrixMult Fig 7c",
        },
        Table2Row {
            row: 3,
            sim_compute: &[L::Low],
            sim_write: &[L::High],
            analytics_compute: &[L::Low, L::Nil],
            analytics_read: &[L::High],
            object_size: SizeClass::Small,
            concurrency: &[High],
            config: SchedConfig::S_LOC_W,
            illustrated_by: "miniAMR+Read-Only Fig 8c",
        },
        Table2Row {
            row: 4,
            sim_compute: &[L::Low],
            sim_write: &[L::High],
            analytics_compute: &[L::High],
            analytics_read: &[L::Low],
            object_size: SizeClass::Small,
            concurrency: &[Medium, High],
            config: SchedConfig::S_LOC_W,
            illustrated_by: "miniAMR+MatrixMult Fig 9b,9c",
        },
        Table2Row {
            row: 5,
            sim_compute: &[L::Low, L::Nil],
            sim_write: &[L::High],
            analytics_compute: &[L::Nil],
            analytics_read: &[L::High],
            object_size: SizeClass::Small,
            concurrency: &[High],
            config: SchedConfig::S_LOC_R,
            illustrated_by: "2K workflows: Fig 5c",
        },
        Table2Row {
            row: 6,
            sim_compute: &[L::High],
            sim_write: &[L::Low],
            analytics_compute: &[L::Low, L::Nil],
            analytics_read: &[L::High],
            object_size: SizeClass::Large,
            concurrency: &[Medium],
            config: SchedConfig::S_LOC_R,
            illustrated_by: "GTC+Read-Only Fig 6b",
        },
        Table2Row {
            row: 7,
            sim_compute: &[L::Low],
            sim_write: &[L::High],
            analytics_compute: &[L::Low, L::Nil],
            analytics_read: &[L::High],
            object_size: SizeClass::Small,
            concurrency: &[Medium],
            config: SchedConfig::S_LOC_R,
            illustrated_by: "miniAMR+Read-Only Fig 8b",
        },
        Table2Row {
            row: 8,
            sim_compute: &[L::Low],
            sim_write: &[L::High],
            analytics_compute: &[L::High],
            analytics_read: &[L::Low],
            object_size: SizeClass::Small,
            concurrency: &[Low],
            config: SchedConfig::P_LOC_W,
            illustrated_by: "miniAMR+MatrixMult Fig 9a",
        },
        Table2Row {
            row: 9,
            sim_compute: &[L::Nil, L::Low],
            sim_write: &[L::High],
            analytics_compute: &[L::Nil],
            analytics_read: &[L::Medium, L::High],
            object_size: SizeClass::Small,
            concurrency: &[Low, Medium],
            config: SchedConfig::P_LOC_R,
            illustrated_by: "2K workflows Fig 5a,5b; miniAMR+Read-Only Fig 8a",
        },
        Table2Row {
            row: 10,
            sim_compute: &[L::High],
            sim_write: &[L::Low],
            analytics_compute: &[L::Low, L::Medium, L::High],
            analytics_read: &[L::High],
            object_size: SizeClass::Large,
            concurrency: &[Low, Medium],
            config: SchedConfig::P_LOC_R,
            illustrated_by: "GTC+Read-Only Fig 6a; GTC+MatrixMult Fig 7a,7b",
        },
    ]
}

/// Find the first Table II row matching a characterized workflow, if any.
/// Returns `None` for workload classes outside the table — the reason the
/// paper's own rules (and our [`crate::recommend`]) generalize beyond it.
pub fn classify(profile: &WorkflowProfile) -> Option<Table2Row> {
    table2().into_iter().find(|row| {
        row.sim_compute.contains(&profile.sim_compute)
            && row.sim_write.contains(&profile.sim_write)
            && row.analytics_compute.contains(&profile.analytics_compute)
            && row.analytics_read.contains(&profile.analytics_read)
            && row.object_size == profile.object_size
            && row.concurrency.contains(&profile.concurrency)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_ten_rows_in_order() {
        let t = table2();
        assert_eq!(t.len(), 10);
        for (i, row) in t.iter().enumerate() {
            assert_eq!(row.row as usize, i + 1);
        }
    }

    #[test]
    fn recommendations_cover_all_four_configs() {
        let t = table2();
        for config in SchedConfig::ALL {
            assert!(t.iter().any(|r| r.config == config), "{config} missing");
        }
    }

    #[test]
    fn classify_picks_row_1_for_pure_io_large() {
        let p = WorkflowProfile {
            name: "micro".into(),
            sim_compute: L::Nil,
            sim_write: L::High,
            analytics_compute: L::Nil,
            analytics_read: L::High,
            object_size: SizeClass::Large,
            concurrency: High,
            sim_io_index: 1.0,
            analytics_io_index: 1.0,
            sim_device_concurrency: 24.0,
            analytics_device_concurrency: 24.0,
            sim_throughput: 10e9,
            write_saturation: 1.0,
        };
        let row = classify(&p).expect("row 1 matches");
        assert_eq!(row.row, 1);
        assert_eq!(row.config, SchedConfig::S_LOC_W);
    }

    #[test]
    fn classify_returns_none_outside_table() {
        // Large objects with nil-compute sim at *low* concurrency and
        // medium reads: not in the table.
        let p = WorkflowProfile {
            name: "odd".into(),
            sim_compute: L::Medium,
            sim_write: L::Medium,
            analytics_compute: L::Medium,
            analytics_read: L::Medium,
            object_size: SizeClass::Large,
            concurrency: Low,
            sim_io_index: 0.5,
            analytics_io_index: 0.5,
            sim_device_concurrency: 4.0,
            analytics_device_concurrency: 4.0,
            sim_throughput: 1e9,
            write_saturation: 0.2,
        };
        assert!(classify(&p).is_none());
    }
}
