//! Model-driven scheduling: simulate all four configurations, pick the
//! argmin.
//!
//! This is the "oracle within the model" — the paper's future-work
//! scheduler made concrete: because the device model is cheap and
//! deterministic, a scheduler can evaluate every Table I configuration
//! before launching the real job and pick the predicted winner, instead of
//! pattern-matching workload classes. The rule-based scheduler
//! ([`crate::recommend`]) is validated against this oracle.

use pmemflow_core::{sweep, ConfigSweep, ExecError, ExecutionParams, SchedConfig};
use pmemflow_workloads::WorkflowSpec;

/// The oracle's choice plus the full evidence.
#[derive(Debug, Clone)]
pub struct ModelDecision {
    /// Predicted-fastest configuration.
    pub config: SchedConfig,
    /// Predicted runtime of that configuration, seconds.
    pub predicted_runtime: f64,
    /// Predicted worst-case loss (%) of picking the *worst* configuration
    /// instead — the price of scheduling blindly.
    pub misconfiguration_loss_percent: f64,
    /// The full sweep the decision is based on.
    pub sweep: ConfigSweep,
}

/// Simulate all four configurations of `spec` and choose the fastest.
pub fn decide(spec: &WorkflowSpec, params: &ExecutionParams) -> Result<ModelDecision, ExecError> {
    let sweep = sweep(spec, params)?;
    let best = sweep.best();
    Ok(ModelDecision {
        config: best.config,
        predicted_runtime: best.total,
        misconfiguration_loss_percent: sweep.worst_case_loss_percent(),
        sweep,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmemflow_workloads::micro_64mb;

    #[test]
    fn oracle_picks_the_sweep_minimum() {
        let d = decide(&micro_64mb(24), &ExecutionParams::default()).unwrap();
        for run in &d.sweep.runs {
            assert!(run.total >= d.predicted_runtime);
        }
        assert!(d.misconfiguration_loss_percent > 0.0);
    }

    #[test]
    fn bandwidth_bound_micro_prefers_serial_local_write() {
        let d = decide(&micro_64mb(24), &ExecutionParams::default()).unwrap();
        assert_eq!(d.config, SchedConfig::S_LOC_W);
    }
}
