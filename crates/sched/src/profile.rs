//! Workflow characterization: the feature vector scheduling decides on.
//!
//! Table II describes workloads by qualitative levels of simulation
//! compute/write intensity, analytics compute/read intensity, object size
//! and concurrency. [`WorkflowProfile`] is that row, plus the quantitative
//! measurements it was derived from (I/O indexes as defined in §IV-C, and
//! the *effective device concurrency* §VIII identifies as the real control
//! variable).

use pmemflow_workloads::{ConcurrencyClass, SizeClass};

/// Qualitative intensity level, as used by Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Absent (e.g. a read-only kernel's compute phase).
    Nil,
    /// Low.
    Low,
    /// Medium.
    Medium,
    /// High.
    High,
}

impl Level {
    /// Classify an I/O index (0..1): the fraction of a component's
    /// iteration spent in I/O when run standalone with local PMEM.
    pub fn from_io_index(idx: f64) -> Level {
        if idx >= 0.6 {
            Level::High
        } else if idx >= 0.3 {
            Level::Medium
        } else if idx > 0.02 {
            Level::Low
        } else {
            Level::Nil
        }
    }

    /// Classify a compute share (1 − I/O index).
    pub fn from_compute_share(share: f64) -> Level {
        if share >= 0.6 {
            Level::High
        } else if share >= 0.3 {
            Level::Medium
        } else if share > 0.02 {
            Level::Low
        } else {
            Level::Nil
        }
    }

    /// Display label matching the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            Level::Nil => "nil",
            Level::Low => "low",
            Level::Medium => "medium",
            Level::High => "high",
        }
    }
}

/// The characterization of one workflow, in Table II terms plus the
/// measurements behind them.
#[derive(Debug, Clone)]
pub struct WorkflowProfile {
    /// Workflow name.
    pub name: String,
    /// Simulation compute intensity.
    pub sim_compute: Level,
    /// Simulation write intensity (its I/O index).
    pub sim_write: Level,
    /// Analytics compute intensity.
    pub analytics_compute: Level,
    /// Analytics read intensity (its I/O index).
    pub analytics_read: Level,
    /// Object granularity class.
    pub object_size: SizeClass,
    /// Rank-count class.
    pub concurrency: ConcurrencyClass,

    /// Measured writer I/O index (standalone, serial, local PMEM; §IV-C).
    pub sim_io_index: f64,
    /// Measured reader I/O index.
    pub analytics_io_index: f64,
    /// Mean effective device concurrency of the writer's I/O phases.
    pub sim_device_concurrency: f64,
    /// Mean effective device concurrency of the reader's I/O phases.
    pub analytics_device_concurrency: f64,
    /// Writer standalone aggregate device throughput (bytes/s while busy).
    pub sim_throughput: f64,
    /// Fraction of the local write capacity the writer saturates
    /// standalone (≥ ~0.7 means the workflow is bandwidth-constrained).
    pub write_saturation: f64,
}

impl WorkflowProfile {
    /// Whether the workflow constrains PMEM write bandwidth — the paper's
    /// placement criterion (§VIII: "Workflows which constrain the
    /// bandwidth should prioritize writes over reads").
    pub fn is_bandwidth_constrained(&self) -> bool {
        self.write_saturation >= 0.72
    }

    /// Combined effective device concurrency if both components ran their
    /// I/O at once — the §VIII control variable for serial vs parallel.
    pub fn combined_device_concurrency(&self) -> f64 {
        self.sim_device_concurrency + self.analytics_device_concurrency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_from_io_index() {
        assert_eq!(Level::from_io_index(0.95), Level::High);
        assert_eq!(Level::from_io_index(0.45), Level::Medium);
        assert_eq!(Level::from_io_index(0.1), Level::Low);
        assert_eq!(Level::from_io_index(0.0), Level::Nil);
    }

    #[test]
    fn levels_are_ordered() {
        assert!(Level::Nil < Level::Low);
        assert!(Level::Low < Level::Medium);
        assert!(Level::Medium < Level::High);
    }

    #[test]
    fn compute_share_is_complement() {
        assert_eq!(Level::from_compute_share(0.9), Level::High);
        assert_eq!(Level::from_compute_share(0.01), Level::Nil);
    }
}
