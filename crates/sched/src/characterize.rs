//! Measure a workflow's scheduling-relevant characteristics.
//!
//! The paper determines I/O indexes by running each component standalone —
//! serially, with node-local PMEM (§IV-C) — and notes that concurrency
//! parameters "are statically determined via parameters in workflow launch
//! scripts without actually requiring a run" (§IV-A). This module does the
//! same: two cheap standalone simulations produce the full
//! [`WorkflowProfile`].

use crate::profile::{Level, WorkflowProfile};
use pmemflow_core::{execute_component_standalone, ExecError, ExecutionParams, StandaloneReport};
use pmemflow_des::Direction;
use pmemflow_workloads::{ComponentSpec, WorkflowSpec};

/// Iterations used for characterization runs (a prefix of the workflow is
/// enough; the per-iteration structure repeats).
const PROBE_ITERATIONS: u64 = 3;

/// Duty- and busy-fraction-weighted device concurrency of a component's
/// standalone run.
fn effective_concurrency(
    report: &StandaloneReport,
    component: &ComponentSpec,
    dir: Direction,
    params: &ExecutionParams,
) -> f64 {
    let n_flows = report.device.mean_busy_concurrency();
    if n_flows <= 0.0 {
        return 0.0;
    }
    let cost = params
        .cost_override
        .unwrap_or_else(|| params.stack.cost_model());
    let sw_tpb = cost.sw_time_per_byte(
        dir,
        component.io.object_bytes,
        params.profile.latency(dir, pmemflow_des::Locality::Local),
    );
    let per_flow_rate = report.device.busy_throughput() / n_flows;
    let duty = (1.0 - per_flow_rate * sw_tpb).clamp(0.05, 1.0);
    let busy_fraction = if report.component.finish_time > 0.0 {
        (report.device.busy_time.seconds() / report.component.finish_time).clamp(0.0, 1.0)
    } else {
        0.0
    };
    n_flows * duty * busy_fraction
}

/// Characterize `spec` under `params` by standalone component runs.
pub fn characterize(
    spec: &WorkflowSpec,
    params: &ExecutionParams,
) -> Result<WorkflowProfile, ExecError> {
    spec.validate().map_err(ExecError::Spec)?;
    let writer = execute_component_standalone(
        &spec.writer,
        spec.ranks,
        PROBE_ITERATIONS,
        Direction::Write,
        params,
    )?;
    let reader = execute_component_standalone(
        &spec.reader,
        spec.ranks,
        PROBE_ITERATIONS,
        Direction::Read,
        params,
    )?;

    let sim_io_index = writer.component.io_index();
    let analytics_io_index = reader.component.io_index();
    let sim_throughput = writer.device.busy_throughput();
    // Effective device concurrency: flow concurrency weighted by duty
    // cycle (software time is off-device) and by the fraction of the run
    // the component's I/O is active — §VIII's "the actual level of
    // concurrency experienced by PMEM is a complex function of MPI ranks,
    // software overhead … and interleaving compute" made measurable.
    let n_w = effective_concurrency(&writer, &spec.writer, Direction::Write, params);
    let n_r = effective_concurrency(&reader, &spec.reader, Direction::Read, params);
    // Saturation: *period-averaged* write throughput (bytes over the whole
    // run, compute phases included) relative to the device's capacity at
    // the duty-weighted effective concurrency. Burst throughput always
    // touches the curve; what distinguishes "bandwidth constrained" in the
    // paper's sense (§VI-A vs §VI-B) is whether the average demand does.
    let avg_throughput = if writer.component.finish_time > 0.0 {
        writer.device.total_bytes() / writer.component.finish_time
    } else {
        0.0
    };
    let capacity = params.profile.local_write_bw.eval(n_w.max(1.0)).max(1.0);
    let write_saturation = (avg_throughput / capacity).min(2.0);

    Ok(WorkflowProfile {
        name: spec.name.clone(),
        sim_compute: Level::from_compute_share(1.0 - sim_io_index),
        sim_write: Level::from_io_index(sim_io_index),
        analytics_compute: Level::from_compute_share(1.0 - analytics_io_index),
        analytics_read: Level::from_io_index(analytics_io_index),
        object_size: spec.writer.io.size_class(),
        concurrency: spec.concurrency_class(),
        sim_io_index,
        analytics_io_index,
        sim_device_concurrency: n_w,
        analytics_device_concurrency: n_r,
        sim_throughput,
        write_saturation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmemflow_workloads::{gtc_readonly, micro_64mb, miniamr_readonly};

    fn params() -> ExecutionParams {
        ExecutionParams::default()
    }

    #[test]
    fn micro_is_pure_io_and_saturating() {
        let p = characterize(&micro_64mb(24), &params()).unwrap();
        assert_eq!(p.sim_compute, Level::Nil);
        assert_eq!(p.sim_write, Level::High);
        assert_eq!(p.analytics_read, Level::High);
        assert!(
            p.is_bandwidth_constrained(),
            "saturation {}",
            p.write_saturation
        );
        assert!(
            p.sim_device_concurrency > 10.0,
            "n_eff {}",
            p.sim_device_concurrency
        );
    }

    #[test]
    fn gtc_sim_is_compute_heavy() {
        let p = characterize(&gtc_readonly(8), &params()).unwrap();
        assert!(p.sim_io_index < 0.5, "index {}", p.sim_io_index);
        assert!(p.sim_compute >= Level::Medium);
        // Low effective device concurrency: writes are brief bursts in a
        // long compute period.
        assert!(
            p.sim_device_concurrency < 4.0,
            "n_eff {}",
            p.sim_device_concurrency
        );
    }

    #[test]
    fn miniamr_sim_is_io_heavy() {
        let p = characterize(&miniamr_readonly(16), &params()).unwrap();
        assert!(p.sim_io_index > 0.5, "index {}", p.sim_io_index);
        assert_eq!(p.sim_write, Level::High);
    }

    #[test]
    fn profile_carries_workflow_identity() {
        let p = characterize(&micro_64mb(8), &params()).unwrap();
        assert!(p.name.contains("64MB"));
        assert_eq!(p.concurrency, pmemflow_workloads::ConcurrencyClass::Low);
    }
}
