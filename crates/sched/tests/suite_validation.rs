//! Validation of the schedulers against the full 18-workload suite.

use pmemflow_core::{sweep, ExecutionParams, SchedConfig};
use pmemflow_sched::{characterize, classify, decide, recommend, RuleThresholds};
use pmemflow_workloads::paper_suite;

/// The rule-based engine must agree with the model-driven oracle on a
/// solid majority of the suite, and must never pick the worst
/// configuration.
#[test]
fn rules_track_the_oracle() {
    let params = ExecutionParams::default();
    let thresholds = RuleThresholds::default();
    let mut agree = 0;
    let mut total = 0;
    for entry in paper_suite() {
        let profile = characterize(&entry.spec, &params).unwrap();
        let rule = recommend(&profile, &thresholds).config;
        let sw = sweep(&entry.spec, &params).unwrap();
        total += 1;
        if rule == sw.best().config {
            agree += 1;
        }
        // The rule engine may land on any near-tie, but must never pick a
        // configuration that costs real performance.
        let norm = sw.normalized(rule);
        assert!(
            norm <= 1.25,
            "rule-based engine picked a {norm:.2}x config for {}",
            entry.spec.name
        );
    }
    assert!(
        agree * 2 >= total,
        "rules agree with the oracle on only {agree}/{total} workloads"
    );
}

/// The model-driven decision is exactly the sweep argmin, and its reported
/// misconfiguration loss matches the sweep.
#[test]
fn oracle_is_consistent_with_sweeps() {
    let params = ExecutionParams::default();
    for entry in paper_suite().into_iter().take(6) {
        let d = decide(&entry.spec, &params).unwrap();
        let sw = sweep(&entry.spec, &params).unwrap();
        assert_eq!(d.config, sw.best().config);
        assert!((d.misconfiguration_loss_percent - sw.worst_case_loss_percent()).abs() < 1e-9);
    }
}

/// Table II's row classifier covers the paper's own workloads: every suite
/// entry whose measured profile matches a row must be assigned the row of
/// its family/concurrency (spot-checked through the recommended config).
#[test]
fn table2_lookup_covers_most_of_the_suite() {
    let params = ExecutionParams::default();
    let mut covered = 0;
    for entry in paper_suite() {
        let profile = characterize(&entry.spec, &params).unwrap();
        if classify(&profile).is_some() {
            covered += 1;
        }
    }
    // The table describes the paper's own workloads; the measured profiles
    // should land in it for a majority of the suite (qualitative level
    // boundaries make a perfect score unrealistic).
    assert!(
        covered >= 9,
        "Table II lookup covered only {covered}/18 suite workloads"
    );
}

/// The characterization is stable: characterizing twice gives identical
/// profiles (determinism end to end).
#[test]
fn characterization_is_deterministic() {
    let params = ExecutionParams::default();
    let spec = paper_suite()[7].spec.clone();
    let a = characterize(&spec, &params).unwrap();
    let b = characterize(&spec, &params).unwrap();
    assert_eq!(a.sim_io_index.to_bits(), b.sim_io_index.to_bits());
    assert_eq!(
        a.sim_device_concurrency.to_bits(),
        b.sim_device_concurrency.to_bits()
    );
}

/// Rule decisions depend only on the profile, so equal profiles give equal
/// decisions with identical reasons.
#[test]
fn rule_decisions_are_pure() {
    let params = ExecutionParams::default();
    let spec = paper_suite()[0].spec.clone();
    let profile = characterize(&spec, &params).unwrap();
    let t = RuleThresholds::default();
    let a = recommend(&profile, &t);
    let b = recommend(&profile, &t);
    assert_eq!(a, b);
}

/// Every configuration the recommenders can emit is a valid Table I
/// configuration.
#[test]
fn recommenders_emit_valid_configs() {
    let params = ExecutionParams::default();
    for entry in paper_suite() {
        let profile = characterize(&entry.spec, &params).unwrap();
        let rule = recommend(&profile, &RuleThresholds::default());
        assert!(SchedConfig::ALL.contains(&rule.config));
    }
}
