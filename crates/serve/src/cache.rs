//! Sharded LRU result cache.
//!
//! Keys are canonical query strings ([`crate::query::Query::canonical_key`]);
//! values are shared, immutable rendered responses. The key is hashed
//! with FNV-1a — a fixed, seed-free hash, so the key→shard assignment is
//! identical across processes and runs — and each shard is an
//! independently locked LRU with **deterministic eviction order**: a
//! shard at capacity evicts exactly its least-recently-*used* entry,
//! where both inserts and hits count as uses.
//!
//! The LRU itself is an intrusive doubly-linked list threaded through a
//! slab, so hit, insert and evict are all O(1) plus the `HashMap` lookup.

use crate::sync::lock_recover;
use std::collections::HashMap;
use std::sync::Mutex;

/// 64-bit FNV-1a: stable across runs (unlike `DefaultHasher`, whose
/// `RandomState` is per-process) and good enough for shard spreading.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

const NIL: usize = usize::MAX;

struct Entry<V> {
    key: String,
    value: V,
    prev: usize,
    next: usize,
}

/// One LRU shard: slab + index + recency list (head = most recent).
struct Shard<V> {
    map: HashMap<String, usize>,
    slab: Vec<Entry<V>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
}

impl<V: Clone> Shard<V> {
    fn new() -> Self {
        Shard {
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slab[i].prev, self.slab[i].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slab[i].prev = NIL;
        self.slab[i].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn get(&mut self, key: &str) -> Option<V> {
        let &i = self.map.get(key)?;
        self.unlink(i);
        self.push_front(i);
        Some(self.slab[i].value.clone())
    }

    /// Insert (or refresh) `key`; evict the LRU entry if over `capacity`.
    /// Returns the evicted key, if any.
    fn insert(&mut self, key: &str, value: V, capacity: usize) -> Option<String> {
        if let Some(&i) = self.map.get(key) {
            self.slab[i].value = value;
            self.unlink(i);
            self.push_front(i);
            return None;
        }
        let entry = Entry {
            key: key.to_string(),
            value,
            prev: NIL,
            next: NIL,
        };
        let i = match self.free.pop() {
            Some(i) => {
                self.slab[i] = entry;
                i
            }
            None => {
                self.slab.push(entry);
                self.slab.len() - 1
            }
        };
        self.map.insert(key.to_string(), i);
        self.push_front(i);
        if self.map.len() > capacity {
            let victim = self.tail;
            debug_assert!(victim != NIL && victim != i);
            self.unlink(victim);
            let evicted = std::mem::take(&mut self.slab[victim].key);
            self.map.remove(&evicted);
            self.free.push(victim);
            return Some(evicted);
        }
        None
    }

    /// Keys from most- to least-recently used (test view).
    #[cfg(test)]
    fn recency_order(&self) -> Vec<String> {
        let mut keys = Vec::with_capacity(self.map.len());
        let mut i = self.head;
        while i != NIL {
            keys.push(self.slab[i].key.clone());
            i = self.slab[i].next;
        }
        keys
    }
}

/// A sharded LRU with a global capacity split evenly across shards.
pub struct ShardedLru<V> {
    shards: Vec<Mutex<Shard<V>>>,
    per_shard_capacity: usize,
}

impl<V: Clone> ShardedLru<V> {
    /// `capacity` total entries (≥ 1 enforced per shard) spread over
    /// `shards` independently locked shards (clamped to ≥ 1).
    pub fn new(capacity: usize, shards: usize) -> ShardedLru<V> {
        let shards = shards.max(1).min(capacity.max(1));
        ShardedLru {
            shards: (0..shards).map(|_| Mutex::new(Shard::new())).collect(),
            per_shard_capacity: capacity.div_ceil(shards).max(1),
        }
    }

    fn shard(&self, key: &str) -> &Mutex<Shard<V>> {
        &self.shards[(fnv1a(key.as_bytes()) % self.shards.len() as u64) as usize]
    }

    /// Look `key` up, refreshing its recency on hit.
    pub fn get(&self, key: &str) -> Option<V> {
        lock_recover(self.shard(key)).get(key)
    }

    /// Insert `key`, possibly evicting its shard's LRU entry (returned).
    pub fn insert(&self, key: &str, value: V) -> Option<String> {
        lock_recover(self.shard(key)).insert(key, value, self.per_shard_capacity)
    }

    /// Entries currently cached, across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock_recover(s).map.len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of shards (diagnostics).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_refresh() {
        let c: ShardedLru<u32> = ShardedLru::new(8, 1);
        assert_eq!(c.get("a"), None);
        assert_eq!(c.insert("a", 1), None);
        assert_eq!(c.get("a"), Some(1));
        assert_eq!(c.insert("a", 2), None); // refresh, not duplicate
        assert_eq!(c.get("a"), Some(2));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn eviction_order_is_deterministic_lru() {
        // Single shard, capacity 3: use-order fully determines eviction.
        let c: ShardedLru<u32> = ShardedLru::new(3, 1);
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("c", 3);
        assert_eq!(c.get("a"), Some(1)); // a is now most recent; b is LRU
        assert_eq!(c.insert("d", 4), Some("b".to_string()));
        assert_eq!(c.get("b"), None);
        assert_eq!(c.get("a"), Some(1));
        // Recency now (front to back): a, d, c -> inserting e evicts c.
        assert_eq!(c.insert("e", 5), Some("c".to_string()));
        assert_eq!(
            c.shards[0].lock().unwrap().recency_order(),
            vec!["e", "a", "d"]
        );
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn eviction_sequence_replays_identically() {
        // The same operation sequence must produce the same eviction
        // sequence on every run (no randomized hashing anywhere).
        let run = || {
            let c: ShardedLru<usize> = ShardedLru::new(16, 4);
            let mut evictions = Vec::new();
            for i in 0..200 {
                let key = format!("key-{}", i % 37);
                if i % 3 == 0 {
                    c.get(&key);
                }
                if let Some(victim) = c.insert(&key, i) {
                    evictions.push(victim);
                }
            }
            evictions
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(!a.is_empty(), "sequence should overflow the cache");
    }

    #[test]
    fn sharding_is_stable_and_clamped() {
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c); // published FNV-1a vector
        let c: ShardedLru<u8> = ShardedLru::new(2, 64);
        assert!(c.shard_count() <= 2, "more shards than capacity");
        let c: ShardedLru<u8> = ShardedLru::new(0, 0);
        assert_eq!(c.shard_count(), 1);
        c.insert("x", 1);
        assert_eq!(c.get("x"), Some(1)); // capacity clamped to 1
        assert!(!c.is_empty());
    }

    #[test]
    fn capacity_splits_across_shards() {
        let c: ShardedLru<usize> = ShardedLru::new(64, 8);
        for i in 0..64 {
            c.insert(&format!("k{i}"), i);
        }
        // Uneven hashing may evict in hot shards, but the cache can never
        // exceed its global capacity.
        assert!(c.len() <= 64);
        assert!(c.len() >= 32, "suspiciously many evictions: {}", c.len());
    }
}
