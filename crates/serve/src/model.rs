//! The model backend: queries → simulations → rendered JSON answers.
//!
//! One [`pmemflow_cluster::predict::Oracle`] per I/O stack, populated
//! lazily as queries arrive — the same prediction path the campaign
//! scheduler prebuilds, so `serve` and `cluster` answer with bit-identical
//! numbers. Responses are rendered with the workspace's canonical JSON
//! helpers ([`pmemflow_des::json`]): shortest-round-trip floats, no
//! locale, no timestamps — the same query always renders the same bytes,
//! which is what makes the result cache and the replayed-loadgen
//! byte-identity checks sound.

use crate::query::{Query, QueryTenant};
use pmemflow_cluster::predict::{Oracle, TenantKey};
use pmemflow_core::{ExecutionParams, SchedConfig};
use pmemflow_des::json::{json_escape, json_f64};
use pmemflow_iostack::StackKind;
use pmemflow_sched::{classify, recommend, RuleThresholds};
use pmemflow_workloads::Family;

/// A rendered answer: an HTTP status plus a JSON body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Answer {
    /// HTTP status code (200, or 422 when the model rejects the query).
    pub status: u16,
    /// JSON body, no trailing newline.
    pub body: String,
}

impl Answer {
    fn ok(body: String) -> Answer {
        Answer { status: 200, body }
    }

    fn unprocessable(msg: &str) -> Answer {
        Answer {
            status: 422,
            body: format!("{{\"error\":\"{}\"}}", json_escape(msg)),
        }
    }
}

/// Anything that can answer a [`Query`]. The daemon runs a
/// [`ModelBackend`]; tests substitute stubs to probe queueing, shedding
/// and coalescing without paying for simulations.
pub trait Backend: Send + Sync + 'static {
    /// Answer one decoded query. Must be deterministic in the query's
    /// canonical key.
    fn answer(&self, query: &Query) -> Answer;
}

/// The real backend: two lazily populated oracles, one per stack.
pub struct ModelBackend {
    nvstream: Oracle,
    nova: Oracle,
}

impl Default for ModelBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl ModelBackend {
    /// A backend with empty oracles for both stacks under the default
    /// node parameters.
    pub fn new() -> ModelBackend {
        ModelBackend {
            nvstream: Oracle::new(&ExecutionParams::default().with_stack(StackKind::NvStream)),
            nova: Oracle::new(&ExecutionParams::default().with_stack(StackKind::Nova)),
        }
    }

    /// The oracle answering for `stack`.
    pub fn oracle(&self, stack: StackKind) -> &Oracle {
        match stack {
            StackKind::NvStream => &self.nvstream,
            StackKind::Nova => &self.nova,
        }
    }

    fn ensure(&self, stack: StackKind, family: Family, ranks: usize) -> Result<(), String> {
        self.oracle(stack)
            .ensure(family.name(), ranks, &family.build(ranks))
            .map_err(|e| e.to_string())
    }

    fn sweep_json(&self, family: Family, ranks: usize, stack: StackKind) -> Result<String, String> {
        self.ensure(stack, family, ranks)?;
        let oracle = self.oracle(stack);
        let sweep = oracle.config_sweep(family.name(), ranks);
        let runs: Vec<String> = sweep
            .runs
            .iter()
            .map(|r| {
                format!(
                    "{{\"config\":\"{}\",\"total_s\":{},\"writer_finish_s\":{},\"throughput_Bps\":{}}}",
                    r.config.label(),
                    json_f64(r.total),
                    json_f64(r.writer.finish_time),
                    json_f64(r.throughput()),
                )
            })
            .collect();
        Ok(format!(
            "{{\"workflow\":\"{}\",\"ranks\":{ranks},\"stack\":\"{}\",\"runs\":[{}],\
             \"best\":\"{}\",\"worst\":\"{}\",\"worst_case_loss_percent\":{}}}",
            json_escape(family.name()),
            stack.name(),
            runs.join(","),
            sweep.best().config.label(),
            sweep.worst().config.label(),
            json_f64(sweep.worst_case_loss_percent()),
        ))
    }

    fn recommend_json(
        &self,
        family: Family,
        ranks: usize,
        stack: StackKind,
    ) -> Result<String, String> {
        self.ensure(stack, family, ranks)?;
        let oracle = self.oracle(stack);
        let profile = oracle.profile(family.name(), ranks);
        let rule = recommend(&profile, &RuleThresholds::default());
        let reasons: Vec<String> = rule
            .reasons
            .iter()
            .map(|r| format!("\"{}\"", json_escape(r)))
            .collect();
        let table2 = match classify(&profile) {
            Some(row) => format!(
                "{{\"row\":{},\"config\":\"{}\",\"illustrated_by\":\"{}\"}}",
                row.row,
                row.config.label(),
                json_escape(row.illustrated_by),
            ),
            None => "null".to_string(),
        };
        let sweep = oracle.config_sweep(family.name(), ranks);
        Ok(format!(
            "{{\"workflow\":\"{}\",\"ranks\":{ranks},\"stack\":\"{}\",\
             \"rule_based\":{{\"config\":\"{}\",\"reasons\":[{}]}},\
             \"table2\":{table2},\
             \"model_driven\":{{\"config\":\"{}\",\"predicted_runtime_s\":{},\
             \"misconfiguration_loss_percent\":{}}}}}",
            json_escape(family.name()),
            stack.name(),
            rule.config.label(),
            reasons.join(","),
            sweep.best().config.label(),
            json_f64(sweep.best().total),
            json_f64(sweep.worst_case_loss_percent()),
        ))
    }

    fn predict_json(
        &self,
        family: Family,
        ranks: usize,
        stack: StackKind,
        config: Option<SchedConfig>,
    ) -> Result<String, String> {
        self.ensure(stack, family, ranks)?;
        let oracle = self.oracle(stack);
        let config = config.unwrap_or_else(|| oracle.best_config(family.name(), ranks));
        let runtime = oracle.solo_runtime(family.name(), ranks, config);
        Ok(format!(
            "{{\"workflow\":\"{}\",\"ranks\":{ranks},\"stack\":\"{}\",\"config\":\"{}\",\
             \"predicted_runtime_s\":{}}}",
            json_escape(family.name()),
            stack.name(),
            config.label(),
            json_f64(runtime),
        ))
    }

    fn coschedule_json(&self, tenants: &[QueryTenant], stack: StackKind) -> Result<String, String> {
        // Tenants are priced and rendered in canonical (sorted) order so
        // the body matches the canonical cache key regardless of the
        // order the request listed them in.
        let mut sorted = tenants.to_vec();
        sorted.sort();
        for t in &sorted {
            self.ensure(stack, t.family, t.ranks)?;
        }
        let keys: Vec<TenantKey> = sorted
            .iter()
            .map(|t| TenantKey::new(t.family.name(), t.ranks, t.config))
            .collect();
        let breakdown = self
            .oracle(stack)
            .corun_breakdown(&keys)
            .map_err(|e| e.to_string())?;
        let makespan = breakdown.iter().map(|b| b.end).fold(0.0f64, f64::max);
        let rows: Vec<String> = sorted
            .iter()
            .zip(&breakdown)
            .map(|(t, b)| {
                format!(
                    "{{\"workflow\":\"{}\",\"ranks\":{},\"config\":\"{}\",\"start_s\":{},\
                     \"end_s\":{},\"solo_s\":{},\"slowdown\":{}}}",
                    json_escape(&b.workflow),
                    t.ranks,
                    b.config.label(),
                    json_f64(b.start),
                    json_f64(b.end),
                    json_f64(b.solo_total),
                    json_f64(b.slowdown),
                )
            })
            .collect();
        Ok(format!(
            "{{\"stack\":\"{}\",\"makespan_s\":{},\"tenants\":[{}]}}",
            stack.name(),
            json_f64(makespan),
            rows.join(","),
        ))
    }
}

/// A chaos-testing decorator: panics deterministically on every
/// `period`-th answered call, where `period = round(1 / rate)`. This is
/// the daemon's `--fault-rate` test hook — it exercises the whole panic
/// path (engine failure delivery to leader and coalesced followers,
/// worker respawn, `panics_total` / `worker_restarts_total` metrics)
/// without a special build or an unreliable timing-based injection.
pub struct FaultInjectingBackend {
    inner: std::sync::Arc<dyn Backend>,
    period: u64,
    calls: std::sync::atomic::AtomicU64,
}

impl FaultInjectingBackend {
    /// Wrap `inner` so that roughly `rate` of calls panic (rate is
    /// clamped into `[0, 1]`; 0 disables injection entirely).
    pub fn new(inner: std::sync::Arc<dyn Backend>, rate: f64) -> FaultInjectingBackend {
        let period = if rate > 0.0 {
            (1.0 / rate.min(1.0)).round().max(1.0) as u64
        } else {
            u64::MAX
        };
        FaultInjectingBackend {
            inner,
            period,
            calls: std::sync::atomic::AtomicU64::new(0),
        }
    }
}

impl Backend for FaultInjectingBackend {
    fn answer(&self, query: &Query) -> Answer {
        let n = self
            .calls
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
            + 1;
        if n.is_multiple_of(self.period) {
            panic!("injected backend fault (call {n})");
        }
        self.inner.answer(query)
    }
}

impl Backend for ModelBackend {
    fn answer(&self, query: &Query) -> Answer {
        let rendered = match query {
            Query::Sweep {
                family,
                ranks,
                stack,
            } => self.sweep_json(*family, *ranks, *stack),
            Query::Recommend {
                family,
                ranks,
                stack,
            } => self.recommend_json(*family, *ranks, *stack),
            Query::Predict {
                family,
                ranks,
                stack,
                config,
            } => self.predict_json(*family, *ranks, *stack, *config),
            Query::Coschedule { tenants, stack } => self.coschedule_json(tenants, *stack),
        };
        match rendered {
            Ok(body) => Answer::ok(body),
            Err(msg) => Answer::unprocessable(&msg),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    fn q(endpoint: &str, body: &str) -> Query {
        Query::from_json(endpoint, &Json::parse(body).unwrap()).unwrap()
    }

    #[test]
    fn fault_injection_panics_on_a_fixed_cadence() {
        struct Ok200;
        impl Backend for Ok200 {
            fn answer(&self, _q: &Query) -> Answer {
                Answer {
                    status: 200,
                    body: "{}".to_string(),
                }
            }
        }
        // rate 0.25 → every 4th call panics: calls 4 and 8 out of 8.
        let b = FaultInjectingBackend::new(std::sync::Arc::new(Ok200), 0.25);
        let query = q("/v1/predict", r#"{"workload":"micro-64mb","ranks":8}"#);
        let panics = (1..=8)
            .filter(|_| {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| b.answer(&query))).is_err()
            })
            .count();
        assert_eq!(panics, 2);
        // rate 0 never injects.
        let b = FaultInjectingBackend::new(std::sync::Arc::new(Ok200), 0.0);
        for _ in 0..64 {
            assert_eq!(b.answer(&query).status, 200);
        }
    }

    #[test]
    fn sweep_answer_is_valid_json_with_four_runs() {
        let backend = ModelBackend::new();
        let a = backend.answer(&q("/v1/sweep", r#"{"workload":"micro-64mb","ranks":8}"#));
        assert_eq!(a.status, 200);
        let parsed = Json::parse(&a.body).unwrap();
        assert_eq!(
            parsed.get("workflow").and_then(Json::as_str),
            Some("micro-64MB")
        );
        assert_eq!(parsed.get("runs").and_then(Json::as_arr).unwrap().len(), 4);
        let best = parsed.get("best").and_then(Json::as_str).unwrap();
        assert!(["S-LocW", "S-LocR", "P-LocW", "P-LocR"].contains(&best));
    }

    #[test]
    fn predict_defaults_to_best_config() {
        let backend = ModelBackend::new();
        let open = backend.answer(&q("/v1/predict", r#"{"workload":"micro-64mb","ranks":8}"#));
        assert_eq!(open.status, 200);
        let parsed = Json::parse(&open.body).unwrap();
        let best = parsed
            .get("config")
            .and_then(Json::as_str)
            .unwrap()
            .to_string();
        let pinned = backend.answer(&q(
            "/v1/predict",
            &format!(r#"{{"workload":"micro-64mb","ranks":8,"config":"{best}"}}"#),
        ));
        assert_eq!(open.body, pinned.body, "explicit best == implicit best");
    }

    #[test]
    fn answers_are_deterministic_and_stack_sensitive() {
        let backend = ModelBackend::new();
        let query = q("/v1/recommend", r#"{"workload":"micro-2kb","ranks":8}"#);
        assert_eq!(backend.answer(&query), backend.answer(&query));
        let nova = backend.answer(&q(
            "/v1/recommend",
            r#"{"workload":"micro-2kb","ranks":8,"stack":"nova"}"#,
        ));
        assert_ne!(backend.answer(&query).body, nova.body);
        assert!(Json::parse(&nova.body).is_ok());
    }

    #[test]
    fn coschedule_renders_canonical_order() {
        let backend = ModelBackend::new();
        let ab = backend.answer(&q(
            "/v1/coschedule",
            r#"{"tenants":[{"workload":"micro-64mb","ranks":8,"config":"S-LocW"},
                          {"workload":"micro-2kb","ranks":8,"config":"P-LocR"}]}"#,
        ));
        let ba = backend.answer(&q(
            "/v1/coschedule",
            r#"{"tenants":[{"workload":"micro-2kb","ranks":8,"config":"P-LocR"},
                          {"workload":"micro-64mb","ranks":8,"config":"S-LocW"}]}"#,
        ));
        assert_eq!(ab.status, 200);
        assert_eq!(ab.body, ba.body, "tenant order must not change the bytes");
        let parsed = Json::parse(&ab.body).unwrap();
        let tenants = parsed.get("tenants").and_then(Json::as_arr).unwrap();
        assert_eq!(tenants.len(), 2);
        assert!(parsed.get("makespan_s").and_then(Json::as_f64).unwrap() > 0.0);
        for t in tenants {
            assert!(t.get("slowdown").and_then(Json::as_f64).unwrap() >= 0.99);
        }
    }
}
