//! The serving daemon: accept loop, bounded admission queue, worker pool.
//!
//! ```text
//!  client ──> connection thread ──try_send──> bounded queue ──> worker pool
//!                │   (parse HTTP + JSON,          │ full?          │
//!                │    canonical key)              └── 429 +        ├─ cache hit → reply
//!                │                                    Retry-After  ├─ in-flight → park waiter
//!                └────────── recv_timeout <──────────────────────  └─ leader    → simulate
//!                              │ deadline exceeded → 504
//! ```
//!
//! Connection threads never simulate and workers never block on another
//! worker: a connection parses, enqueues a job carrying its reply
//! channel, and waits with a deadline; a worker resolves the job through
//! the [`Engine`] (cache → coalesce → compute). Overload is shed at the
//! queue with `429` and a `Retry-After`, so the daemon degrades by
//! refusing work it could not finish in time rather than by collapsing.
//!
//! Shutdown (`POST /admin/shutdown`, [`Server::shutdown`], or dropping
//! the handle) is graceful: the acceptor stops, in-flight requests
//! finish, idle keep-alive connections are released by their read
//! timeout, and [`Server::join`] returns once the workers have drained.

use crate::engine::{ComputeFailed, Engine, Source};
use crate::http::{read_request, write_response, HttpError, Request};
use crate::json::Json;
use crate::metrics::Metrics;
use crate::model::{Answer, Backend, FaultInjectingBackend, ModelBackend};
use crate::query::Query;
use crate::sync::lock_recover;
use pmemflow_des::json::json_escape;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering::Relaxed};
use std::sync::mpsc::{channel, sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables of one daemon instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// TCP port on 127.0.0.1 (0 = ephemeral, see [`Server::addr`]).
    pub port: u16,
    /// Worker threads resolving queries (≥ 1).
    pub workers: usize,
    /// Result-cache capacity, entries (≥ 1).
    pub cache_capacity: usize,
    /// Cache shards.
    pub shards: usize,
    /// Admission-queue depth; a full queue sheds with 429.
    pub queue_capacity: usize,
    /// Per-request deadline; exceeding it answers 504.
    pub deadline: Duration,
    /// Wall-clock budget for *reading* one request, armed at its first
    /// byte: a client that starts a request but trickles it (slowloris)
    /// is cut off with 408 once this elapses. Idle keep-alive
    /// connections are not charged.
    pub read_deadline: Duration,
    /// Chaos hook: fraction of backend calls that panic (0 disables).
    /// See [`FaultInjectingBackend`].
    pub fault_rate: f64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            port: 0,
            workers: 2,
            cache_capacity: 256,
            shards: 8,
            queue_capacity: 64,
            deadline: Duration::from_secs(30),
            read_deadline: Duration::from_secs(5),
            fault_rate: 0.0,
        }
    }
}

/// One unit of queued work: a decoded query plus the reply channel of the
/// connection that is waiting for it.
struct Job {
    key: String,
    query: Query,
    reply: std::sync::mpsc::Sender<(Result<Arc<Answer>, ComputeFailed>, Source)>,
    expires: Instant,
}

struct Shared {
    addr: SocketAddr,
    queue: SyncSender<Job>,
    metrics: Arc<Metrics>,
    shutdown: Arc<AtomicBool>,
    deadline: Duration,
    read_deadline: Duration,
    active: Arc<AtomicUsize>,
}

/// A running daemon. Dropping the handle initiates shutdown; call
/// [`Server::join`] to drain first.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    metrics: Arc<Metrics>,
    engine: Arc<Engine<Arc<Answer>>>,
    active: Arc<AtomicUsize>,
}

impl Server {
    /// Boot with the real model backend.
    pub fn start(config: ServerConfig) -> std::io::Result<Server> {
        Server::start_with_backend(config, Arc::new(ModelBackend::new()))
    }

    /// Boot with an arbitrary backend (tests inject stubs here).
    pub fn start_with_backend(
        config: ServerConfig,
        backend: Arc<dyn Backend>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", config.port))?;
        let addr = listener.local_addr()?;
        let backend: Arc<dyn Backend> = if config.fault_rate > 0.0 {
            Arc::new(FaultInjectingBackend::new(backend, config.fault_rate))
        } else {
            backend
        };
        let metrics = Arc::new(Metrics::default());
        let engine: Arc<Engine<Arc<Answer>>> = Arc::new(Engine::new(
            config.cache_capacity.max(1),
            config.shards.max(1),
            metrics.clone(),
        ));
        let shutdown = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicUsize::new(0));
        let (queue, jobs) = sync_channel::<Job>(config.queue_capacity.max(1));
        let jobs = Arc::new(Mutex::new(jobs));

        let workers = (0..config.workers.max(1))
            .map(|i| {
                let (jobs, engine, backend, metrics) = (
                    jobs.clone(),
                    engine.clone(),
                    backend.clone(),
                    metrics.clone(),
                );
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    // Supervisor: a panicking computation unwinds out of
                    // worker_loop (the engine has already delivered
                    // ComputeFailed to every waiter); catch it, count the
                    // restart, and re-enter the loop so the pool
                    // self-heals at full strength.
                    .spawn(move || loop {
                        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            worker_loop(&jobs, &engine, &*backend, &metrics)
                        })) {
                            Ok(()) => return, // queue drained: clean shutdown
                            Err(_) => {
                                metrics.worker_restarts.fetch_add(1, Relaxed);
                            }
                        }
                    })
                    .expect("spawn worker")
            })
            .collect();

        let shared = Arc::new(Shared {
            addr,
            queue,
            metrics: metrics.clone(),
            shutdown: shutdown.clone(),
            deadline: config.deadline,
            read_deadline: config.read_deadline,
            active: active.clone(),
        });
        let acceptor = {
            let shutdown = shutdown.clone();
            std::thread::Builder::new()
                .name("serve-acceptor".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if shutdown.load(Relaxed) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        let shared = shared.clone();
                        shared.active.fetch_add(1, Relaxed);
                        let _ = std::thread::Builder::new().name("serve-conn".into()).spawn(
                            move || {
                                handle_connection(stream, &shared);
                                shared.active.fetch_sub(1, Relaxed);
                            },
                        );
                    }
                    // `shared` (and with it the queue sender) drops here;
                    // workers drain the queue and exit.
                })
                .expect("spawn acceptor")
        };

        Ok(Server {
            addr,
            shutdown,
            acceptor: Some(acceptor),
            workers,
            metrics,
            engine,
            active,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serving metrics (shared with the daemon threads).
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// Entries currently in the result cache.
    pub fn cache_len(&self) -> usize {
        self.engine.cache_len()
    }

    /// Initiate shutdown: stop accepting, let in-flight requests finish.
    pub fn shutdown(&self) {
        if !self.shutdown.swap(true, Relaxed) {
            // Unblock the acceptor's blocking accept().
            let _ = TcpStream::connect(self.addr);
        }
    }

    /// Block until the daemon has shut down and drained. Returns the
    /// number of connections abandoned by the drain timeout (0 on a
    /// clean drain).
    pub fn join(mut self) -> usize {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Connection threads park at most one read-timeout interval; give
        // them a little longer than that to notice the flag.
        let drain_deadline = Instant::now() + 2 * CONN_READ_TIMEOUT;
        while self.active.load(Relaxed) > 0 && Instant::now() < drain_deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let abandoned = self.active.load(Relaxed);
        if abandoned == 0 {
            for w in self.workers.drain(..) {
                let _ = w.join();
            }
        }
        abandoned
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(
    jobs: &Mutex<Receiver<Job>>,
    engine: &Engine<Arc<Answer>>,
    backend: &dyn Backend,
    metrics: &Metrics,
) {
    loop {
        // Standard Mutex<Receiver> pool: the lock holder blocks in recv,
        // the rest block on the lock; each job wakes exactly one worker.
        // lock_recover: a worker that panicked while holding this lock
        // must not take the whole pool down with it.
        let job = match lock_recover(jobs).recv() {
            Ok(job) => job,
            Err(_) => return, // every sender gone: drained, shut down
        };
        metrics.queue_depth.fetch_sub(1, Relaxed);
        if Instant::now() > job.expires {
            // The connection has already answered 504; don't burn a
            // simulation on a reply nobody is waiting for.
            continue;
        }
        engine.execute(&job.key, job.reply, || Arc::new(backend.answer(&job.query)));
    }
}

/// How long a connection thread blocks waiting for the next keep-alive
/// request before re-checking the shutdown flag.
const CONN_READ_TIMEOUT: Duration = Duration::from_millis(500);

fn error_body(msg: &str) -> Vec<u8> {
    format!("{{\"error\":\"{}\"}}", json_escape(msg)).into_bytes()
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(CONN_READ_TIMEOUT));
    // A client that stops *reading* must not wedge this thread forever
    // on write either; a stalled write surfaces as an error and the
    // connection is dropped.
    let _ = stream.set_write_timeout(Some(shared.read_deadline.max(Duration::from_secs(1))));
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut stream = stream;
    loop {
        let request = match read_request(&mut reader, shared.read_deadline) {
            Ok(request) => request,
            Err(HttpError::Eof) => return,
            Err(HttpError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Idle keep-alive connection: linger unless draining.
                if shared.shutdown.load(Relaxed) {
                    return;
                }
                continue;
            }
            Err(HttpError::Io(_)) => return,
            Err(HttpError::Bad { status, reason }) => {
                shared.metrics.on_response(status);
                let _ = write_response(
                    &mut stream,
                    status,
                    "application/json",
                    &[],
                    &error_body(reason),
                    true,
                );
                return;
            }
        };
        let started = Instant::now();
        shared.metrics.on_request(&request.path);
        let close = request.wants_close() || shared.shutdown.load(Relaxed);
        let flow = respond(&mut stream, &request, shared, close);
        shared
            .metrics
            .latency
            .observe_us(started.elapsed().as_micros() as u64);
        match flow {
            Flow::Continue if !close => {}
            _ => return,
        }
    }
}

enum Flow {
    Continue,
    Close,
}

fn respond(stream: &mut TcpStream, request: &Request, shared: &Shared, close: bool) -> Flow {
    let mut send = |status: u16, content_type: &str, extra: &[(&str, String)], body: &[u8]| {
        shared.metrics.on_response(status);
        match write_response(stream, status, content_type, extra, body, close) {
            Ok(()) => {
                if close {
                    Flow::Close
                } else {
                    Flow::Continue
                }
            }
            Err(_) => Flow::Close,
        }
    };
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => send(200, "text/plain", &[], b"ok\n"),
        ("GET", "/metrics") => {
            let text = shared.metrics.exposition();
            send(200, "text/plain; version=0.0.4", &[], text.as_bytes())
        }
        ("POST", "/admin/shutdown") => {
            let _ = send(200, "application/json", &[], b"{\"draining\":true}");
            shared.shutdown.store(true, Relaxed);
            let _ = TcpStream::connect(shared.addr); // unblock the acceptor
                                                     // Whatever `close` promised, this thread is done after a
                                                     // drain request.
            Flow::Close
        }
        ("POST", endpoint @ ("/v1/sweep" | "/v1/recommend" | "/v1/predict" | "/v1/coschedule")) => {
            let body = match std::str::from_utf8(&request.body) {
                Ok(s) => s,
                Err(_) => {
                    return send(
                        400,
                        "application/json",
                        &[],
                        &error_body("body is not UTF-8"),
                    )
                }
            };
            let parsed = match Json::parse(body) {
                Ok(v) => v,
                Err(e) => {
                    return send(
                        400,
                        "application/json",
                        &[],
                        &error_body(&format!("malformed JSON: {e}")),
                    )
                }
            };
            let query = match Query::from_json(endpoint, &parsed) {
                Ok(q) => q,
                Err(e) => return send(400, "application/json", &[], &error_body(&e.0)),
            };
            let (reply_tx, reply_rx) = channel();
            let job = Job {
                key: query.canonical_key(),
                query,
                reply: reply_tx,
                expires: Instant::now() + shared.deadline,
            };
            match shared.queue.try_send(job) {
                Ok(()) => {
                    shared.metrics.queue_depth.fetch_add(1, Relaxed);
                }
                Err(TrySendError::Full(_)) => {
                    shared.metrics.shed.fetch_add(1, Relaxed);
                    return send(
                        429,
                        "application/json",
                        &[("Retry-After", "1".to_string())],
                        &error_body("admission queue full; retry"),
                    );
                }
                Err(TrySendError::Disconnected(_)) => {
                    return send(
                        503,
                        "application/json",
                        &[],
                        &error_body("server is draining"),
                    );
                }
            }
            match reply_rx.recv_timeout(shared.deadline) {
                Ok((Ok(answer), source)) => send(
                    answer.status,
                    "application/json",
                    &[("x-pmemflow-cache", source.label().to_string())],
                    answer.body.as_bytes(),
                ),
                // The computation this request was riding on panicked
                // (as leader or coalesced follower): a definite 500, not
                // a hang until the 504 deadline.
                Ok((Err(ComputeFailed), _)) => send(
                    500,
                    "application/json",
                    &[],
                    &error_body("model computation failed; retry may succeed"),
                ),
                Err(_) => {
                    shared.metrics.deadline_missed.fetch_add(1, Relaxed);
                    send(
                        504,
                        "application/json",
                        &[],
                        &error_body("deadline exceeded"),
                    )
                }
            }
        }
        (_, "/healthz" | "/metrics") => send(
            405,
            "application/json",
            &[("Allow", "GET".to_string())],
            &error_body("method not allowed"),
        ),
        (
            _,
            "/v1/sweep" | "/v1/recommend" | "/v1/predict" | "/v1/coschedule" | "/admin/shutdown",
        ) => send(
            405,
            "application/json",
            &[("Allow", "POST".to_string())],
            &error_body("method not allowed"),
        ),
        _ => send(
            404,
            "application/json",
            &[],
            &error_body("no such endpoint"),
        ),
    }
}
