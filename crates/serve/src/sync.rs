//! Poison-tolerant locking.
//!
//! The daemon isolates worker panics with `catch_unwind`, which means a
//! `Mutex` can be poisoned while the process keeps serving. All of the
//! state those mutexes guard (cache shards, the in-flight map, the job
//! receiver) is valid at every instruction boundary — each critical
//! section either fully applies or was a read — so the right response to
//! poison is to keep going, not to cascade the panic into every
//! subsequent request. This helper is the single place that policy lives.

use std::sync::{Mutex, MutexGuard};

/// Lock `m`, recovering the guard if a previous holder panicked.
pub fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn recovers_a_poisoned_mutex() {
        let m = Arc::new(Mutex::new(41));
        let poisoner = {
            let m = m.clone();
            std::thread::spawn(move || {
                let _guard = m.lock().unwrap();
                panic!("poison it");
            })
        };
        assert!(poisoner.join().is_err());
        assert!(m.lock().is_err(), "mutex should be poisoned");
        let mut guard = lock_recover(&m);
        *guard += 1;
        assert_eq!(*guard, 42, "state survives the recovery");
    }
}
