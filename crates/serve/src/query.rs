//! Typed queries, request-body decoding, and canonical cache keys.
//!
//! Every serving endpoint decodes its JSON body into a [`Query`], and
//! every query renders a **canonical key**: the workload name is folded
//! to its display spelling (so `gtc-matmul` and `GTC+MatrixMult` share a
//! cache line), the stack to its display name, and a co-schedule's
//! tenant multiset is sorted — the same canonicalization the cluster
//! oracle applies to co-residency pricing. Identical questions therefore
//! hit identical cache entries and coalesce onto one simulation no
//! matter how they were spelled or ordered.

use crate::json::Json;
use pmemflow_core::SchedConfig;
use pmemflow_iostack::StackKind;
use pmemflow_workloads::{Family, WORKLOAD_CHOICES};

/// Upper bound on `ranks` accepted at the API boundary (the model itself
/// rejects anything the node cannot pin, with a 422).
const MAX_RANKS: usize = 1024;
/// Upper bound on tenants in one co-schedule query.
const MAX_TENANTS: usize = 16;

/// One tenant of a co-schedule query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTenant {
    /// Workload family.
    pub family: Family,
    /// Ranks per component.
    pub ranks: usize,
    /// Table I configuration.
    pub config: SchedConfig,
}

impl Eq for QueryTenant {}

impl Ord for QueryTenant {
    /// Orders by `(workflow name, ranks, config label)` — the exact order
    /// [`pmemflow_cluster::predict::TenantKey`] sorts in, so the serve
    /// canonical key and the oracle's co-run memo key agree on what the
    /// canonical tenant order is.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.family.name(), self.ranks, self.config.label()).cmp(&(
            other.family.name(),
            other.ranks,
            other.config.label(),
        ))
    }
}

impl PartialOrd for QueryTenant {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A decoded, validated query.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// `POST /v1/sweep` — all four Table I configurations.
    Sweep {
        /// Workload family.
        family: Family,
        /// Ranks per component.
        ranks: usize,
        /// I/O stack.
        stack: StackKind,
    },
    /// `POST /v1/recommend` — rule-based + Table II + model-driven.
    Recommend {
        /// Workload family.
        family: Family,
        /// Ranks per component.
        ranks: usize,
        /// I/O stack.
        stack: StackKind,
    },
    /// `POST /v1/predict` — predicted runtime under one configuration
    /// (or the model-driven best when `config` is omitted).
    Predict {
        /// Workload family.
        family: Family,
        /// Ranks per component.
        ranks: usize,
        /// I/O stack.
        stack: StackKind,
        /// Specific configuration; `None` = the model-driven best.
        config: Option<SchedConfig>,
    },
    /// `POST /v1/coschedule` — co-run pricing of a tenant multiset.
    Coschedule {
        /// The tenants sharing one node.
        tenants: Vec<QueryTenant>,
        /// I/O stack.
        stack: StackKind,
    },
}

/// A request-body decoding failure → HTTP 400 with this message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadRequest(pub String);

impl std::fmt::Display for BadRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for BadRequest {}

fn bad(msg: impl Into<String>) -> BadRequest {
    BadRequest(msg.into())
}

fn field_family(body: &Json) -> Result<Family, BadRequest> {
    let name = body
        .get("workload")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("field \"workload\" (string) is required"))?;
    Family::parse(name).ok_or_else(|| {
        bad(format!(
            "unknown workload {name:?}; choices: {WORKLOAD_CHOICES}"
        ))
    })
}

fn field_ranks(body: &Json) -> Result<usize, BadRequest> {
    let ranks = match body.get("ranks") {
        None => return Err(bad("field \"ranks\" (integer) is required")),
        Some(v) => v
            .as_usize()
            .ok_or_else(|| bad("field \"ranks\" must be a non-negative integer"))?,
    };
    if ranks == 0 || ranks > MAX_RANKS {
        return Err(bad(format!("\"ranks\" must be in 1..={MAX_RANKS}")));
    }
    Ok(ranks)
}

fn field_stack(body: &Json) -> Result<StackKind, BadRequest> {
    match body.get("stack") {
        None => Ok(StackKind::NvStream),
        Some(v) => {
            let name = v
                .as_str()
                .ok_or_else(|| bad("field \"stack\" must be a string"))?;
            StackKind::parse(name)
                .ok_or_else(|| bad(format!("unknown stack {name:?}; choices: nvstream, nova")))
        }
    }
}

fn field_config(body: &Json, key: &str) -> Result<Option<SchedConfig>, BadRequest> {
    match body.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => {
            let name = v
                .as_str()
                .ok_or_else(|| bad(format!("field {key:?} must be a string")))?;
            if name.eq_ignore_ascii_case("best") {
                return Ok(None);
            }
            SchedConfig::parse(name).map(Some).ok_or_else(|| {
                bad(format!(
                    "unknown config {name:?}; choices: S-LocW, S-LocR, P-LocW, P-LocR, best"
                ))
            })
        }
    }
}

impl Query {
    /// Decode the body of `POST <endpoint>` into a query.
    pub fn from_json(endpoint: &str, body: &Json) -> Result<Query, BadRequest> {
        if !matches!(body, Json::Obj(_)) {
            return Err(bad("request body must be a JSON object"));
        }
        match endpoint {
            "/v1/sweep" => Ok(Query::Sweep {
                family: field_family(body)?,
                ranks: field_ranks(body)?,
                stack: field_stack(body)?,
            }),
            "/v1/recommend" => Ok(Query::Recommend {
                family: field_family(body)?,
                ranks: field_ranks(body)?,
                stack: field_stack(body)?,
            }),
            "/v1/predict" => Ok(Query::Predict {
                family: field_family(body)?,
                ranks: field_ranks(body)?,
                stack: field_stack(body)?,
                config: field_config(body, "config")?,
            }),
            "/v1/coschedule" => {
                let stack = field_stack(body)?;
                let items = body
                    .get("tenants")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| bad("field \"tenants\" (array) is required"))?;
                if items.is_empty() || items.len() > MAX_TENANTS {
                    return Err(bad(format!(
                        "\"tenants\" must hold 1..={MAX_TENANTS} entries"
                    )));
                }
                let mut tenants = Vec::with_capacity(items.len());
                for t in items {
                    let config = field_config(t, "config")?.ok_or_else(|| {
                        bad("each tenant needs an explicit \"config\" (Table I label)")
                    })?;
                    tenants.push(QueryTenant {
                        family: field_family(t)?,
                        ranks: field_ranks(t)?,
                        config,
                    });
                }
                Ok(Query::Coschedule { tenants, stack })
            }
            other => Err(bad(format!("no such endpoint {other:?}"))),
        }
    }

    /// The canonical cache/single-flight key (see module docs). Two
    /// queries have equal keys iff the model would answer them with the
    /// same bytes.
    pub fn canonical_key(&self) -> String {
        match self {
            Query::Sweep {
                family,
                ranks,
                stack,
            } => format!("sweep|{}|{}@{ranks}", stack.name(), family.name()),
            Query::Recommend {
                family,
                ranks,
                stack,
            } => format!("recommend|{}|{}@{ranks}", stack.name(), family.name()),
            Query::Predict {
                family,
                ranks,
                stack,
                config,
            } => format!(
                "predict|{}|{}@{ranks}|{}",
                stack.name(),
                family.name(),
                config.map_or("best", |c| c.label())
            ),
            Query::Coschedule { tenants, stack } => {
                let mut sorted = tenants.clone();
                sorted.sort();
                let parts: Vec<String> = sorted
                    .iter()
                    .map(|t| format!("{}@{}/{}", t.family.name(), t.ranks, t.config.label()))
                    .collect();
                format!("cosched|{}|{}", stack.name(), parts.join(","))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(s: &str) -> Json {
        Json::parse(s).unwrap()
    }

    #[test]
    fn decodes_each_endpoint() {
        let q =
            Query::from_json("/v1/sweep", &obj(r#"{"workload":"micro-64mb","ranks":8}"#)).unwrap();
        assert_eq!(
            q,
            Query::Sweep {
                family: Family::Micro64MB,
                ranks: 8,
                stack: StackKind::NvStream
            }
        );
        let q = Query::from_json(
            "/v1/predict",
            &obj(r#"{"workload":"gtc-readonly","ranks":16,"stack":"nova","config":"S-LocW"}"#),
        )
        .unwrap();
        assert!(matches!(
            q,
            Query::Predict {
                stack: StackKind::Nova,
                config: Some(SchedConfig::S_LOC_W),
                ..
            }
        ));
        let q = Query::from_json(
            "/v1/coschedule",
            &obj(
                r#"{"tenants":[{"workload":"micro-64mb","ranks":8,"config":"S-LocW"},
                              {"workload":"micro-2kb","ranks":8,"config":"P-LocR"}]}"#,
            ),
        )
        .unwrap();
        assert!(matches!(&q, Query::Coschedule { tenants, .. } if tenants.len() == 2));
    }

    #[test]
    fn rejects_bad_fields_with_messages() {
        for (endpoint, body, needle) in [
            ("/v1/sweep", "{}", "\"workload\""),
            (
                "/v1/sweep",
                r#"{"workload":"hpl","ranks":8}"#,
                "unknown workload",
            ),
            ("/v1/sweep", r#"{"workload":"micro-2kb"}"#, "\"ranks\""),
            ("/v1/sweep", r#"{"workload":"micro-2kb","ranks":0}"#, "1..="),
            (
                "/v1/sweep",
                r#"{"workload":"micro-2kb","ranks":8.5}"#,
                "integer",
            ),
            (
                "/v1/sweep",
                r#"{"workload":"micro-2kb","ranks":8,"stack":"ext4"}"#,
                "unknown stack",
            ),
            (
                "/v1/predict",
                r#"{"workload":"micro-2kb","ranks":8,"config":"X-LocW"}"#,
                "unknown config",
            ),
            ("/v1/coschedule", r#"{"tenants":[]}"#, "1..="),
            (
                "/v1/coschedule",
                r#"{"tenants":[{"workload":"micro-2kb","ranks":8}]}"#,
                "explicit \"config\"",
            ),
            ("/v1/sweep", "[]", "JSON object"),
            ("/v2/nope", "{}", "no such endpoint"),
        ] {
            let e = Query::from_json(endpoint, &obj(body)).unwrap_err();
            assert!(
                e.0.contains(needle),
                "{endpoint} {body}: {:?} missing {needle:?}",
                e.0
            );
        }
    }

    #[test]
    fn canonical_keys_fold_spellings() {
        let a = Query::from_json(
            "/v1/sweep",
            &obj(r#"{"workload":"gtc-matmul","ranks":8,"stack":"NVSTREAM"}"#),
        )
        .unwrap();
        let b = Query::from_json(
            "/v1/sweep",
            &obj(r#"{"workload":"GTC+MatrixMult","ranks":8}"#),
        )
        .unwrap();
        assert_eq!(a.canonical_key(), b.canonical_key());
        assert_eq!(a.canonical_key(), "sweep|NVStream|GTC+MatrixMult@8");
    }

    #[test]
    fn canonical_keys_sort_coschedule_tenants() {
        let ab = Query::from_json(
            "/v1/coschedule",
            &obj(
                r#"{"tenants":[{"workload":"micro-64mb","ranks":8,"config":"S-LocW"},
                              {"workload":"micro-2kb","ranks":8,"config":"P-LocR"}]}"#,
            ),
        )
        .unwrap();
        let ba = Query::from_json(
            "/v1/coschedule",
            &obj(
                r#"{"tenants":[{"workload":"micro-2kb","ranks":8,"config":"P-LocR"},
                              {"workload":"micro-64mb","ranks":8,"config":"S-LocW"}]}"#,
            ),
        )
        .unwrap();
        assert_eq!(ab.canonical_key(), ba.canonical_key());
    }

    #[test]
    fn canonical_keys_distinguish_what_matters() {
        let mk = |body: &str| {
            Query::from_json("/v1/predict", &obj(body))
                .unwrap()
                .canonical_key()
        };
        let base = mk(r#"{"workload":"micro-2kb","ranks":8}"#);
        assert_ne!(base, mk(r#"{"workload":"micro-2kb","ranks":16}"#));
        assert_ne!(
            base,
            mk(r#"{"workload":"micro-2kb","ranks":8,"stack":"nova"}"#)
        );
        assert_ne!(
            base,
            mk(r#"{"workload":"micro-2kb","ranks":8,"config":"S-LocW"}"#)
        );
        assert_eq!(
            base,
            mk(r#"{"workload":"micro-2kb","ranks":8,"config":"best"}"#)
        );
    }
}
