//! `pmemflow_serve` — a model-serving daemon for the PMEM workflow model.
//!
//! The workspace's simulations answer scheduling questions (which Table I
//! configuration, what runtime, what co-residency price) in milliseconds;
//! this crate turns that into a long-running service a cluster scheduler
//! can query over HTTP. Everything is hand-rolled on `std` — no external
//! dependencies anywhere in the workspace.
//!
//! # Endpoints
//!
//! | Endpoint             | Body                                             | Answer |
//! |----------------------|--------------------------------------------------|--------|
//! | `POST /v1/sweep`     | `{workload, ranks, stack?}`                      | all four Table I runs + best/worst |
//! | `POST /v1/recommend` | `{workload, ranks, stack?}`                      | rule-based + Table II + model-driven picks |
//! | `POST /v1/predict`   | `{workload, ranks, stack?, config?}`             | predicted solo runtime |
//! | `POST /v1/coschedule`| `{tenants: [{workload, ranks, config}], stack?}` | per-tenant co-run pricing |
//! | `GET /healthz`       | —                                                | liveness |
//! | `GET /metrics`       | —                                                | Prometheus-style text exposition |
//! | `POST /admin/shutdown` | —                                              | graceful drain |
//!
//! # Architecture
//!
//! Requests flow through a bounded admission queue into a fixed worker
//! pool ([`server`]); identical questions (by canonical key, [`query`])
//! coalesce onto one simulation ([`engine`]) and land in a sharded,
//! deterministically-evicting LRU ([`cache`]). Overload is shed at the
//! queue with `429 + Retry-After`; per-request deadlines answer `504`;
//! shutdown drains gracefully. The answers themselves come from the same
//! [`pmemflow_cluster::predict::Oracle`] the campaign scheduler uses
//! ([`model`]), so the daemon and the batch path predict bit-identical
//! numbers.
//!
//! # Fault tolerance
//!
//! A panicking computation is isolated, not fatal: the engine delivers
//! [`engine::ComputeFailed`] to the leader *and* every coalesced
//! follower (each answers `500`), nothing is cached, and the worker
//! supervisor respawns the worker — all of it visible as
//! `panics_total` / `worker_restarts_total` in `/metrics`. Mutexes that
//! a panic may have poisoned recover through [`sync::lock_recover`]. On
//! the transport side, a per-request read deadline (armed at the first
//! byte, so idle keep-alive costs nothing) reaps slowloris clients with
//! `408`, and [`FaultInjectingBackend`] gives tests and CI a
//! deterministic panic-injection hook (`--fault-rate`).

pub mod cache;
pub mod engine;
pub mod http;
pub mod json;
pub mod metrics;
pub mod model;
pub mod query;
pub mod server;
pub mod sync;

pub use engine::{ComputeFailed, Engine, Source};
pub use metrics::Metrics;
pub use model::{Answer, Backend, FaultInjectingBackend, ModelBackend};
/// The shared prediction path (re-exported so serve API users need not
/// depend on `pmemflow_cluster` directly).
pub use pmemflow_cluster::predict::{Oracle, TenantKey};
pub use query::Query;
pub use server::{Server, ServerConfig};
pub use sync::lock_recover;
