//! A deliberately small HTTP/1.1 message layer over blocking streams.
//!
//! Enough of RFC 9112 for a loopback model-serving daemon: request-line +
//! headers + `Content-Length` bodies, keep-alive by default, hard limits
//! on every dimension an adversarial client could inflate. No TLS, no
//! chunked transfer encoding (rejected with `411`/`501`), no pipelining
//! guarantees beyond strict request/response alternation.

use std::io::{BufRead, Write};

/// Parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET`, `POST`, ... (uppercased by the client per spec; not folded).
    pub method: String,
    /// Request target, e.g. `/v1/sweep` (query strings are kept verbatim).
    pub path: String,
    /// Header name/value pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup (names are stored lowercased).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// exchange.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Clean end of stream before any request byte: the peer hung up.
    Eof,
    /// Malformed or over-limit request — respond with the carried status
    /// and close.
    Bad {
        /// Status code to answer with (400, 413, 501, ...).
        status: u16,
        /// Human-readable reason for the error body.
        reason: &'static str,
    },
    /// Transport error (reset, read timeout, ...).
    Io(std::io::Error),
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Hard limits an untrusted client is held to.
const MAX_LINE: usize = 8 * 1024;
const MAX_HEADERS: usize = 100;
const MAX_BODY: usize = 1024 * 1024;

fn bad(status: u16, reason: &'static str) -> HttpError {
    HttpError::Bad { status, reason }
}

/// Read one line terminated by `\r\n` (or bare `\n`), without the
/// terminator, enforcing [`MAX_LINE`].
fn read_line(stream: &mut impl BufRead) -> Result<Option<String>, HttpError> {
    let mut line = Vec::with_capacity(64);
    loop {
        let mut byte = [0u8; 1];
        match std::io::Read::read(stream, &mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(bad(400, "truncated request line"));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return String::from_utf8(line)
                        .map(Some)
                        .map_err(|_| bad(400, "request is not valid UTF-8"));
                }
                line.push(byte[0]);
                if line.len() > MAX_LINE {
                    return Err(bad(431, "header line too long"));
                }
            }
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
}

/// Read one complete request from `stream`. [`HttpError::Eof`] signals a
/// clean keep-alive hangup before the next request.
pub fn read_request(stream: &mut impl BufRead) -> Result<Request, HttpError> {
    let request_line = read_line(stream)?.ok_or(HttpError::Eof)?;
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => return Err(bad(400, "malformed request line")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(bad(505, "only HTTP/1.x is supported"));
    }

    let mut headers = Vec::new();
    loop {
        let line = read_line(stream)?.ok_or(bad(400, "truncated headers"))?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(bad(400, "malformed header line"))?;
        if name.is_empty() || name.contains(' ') {
            return Err(bad(400, "malformed header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        if headers.len() > MAX_HEADERS {
            return Err(bad(431, "too many headers"));
        }
    }

    let req = Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body: Vec::new(),
    };
    if req.header("transfer-encoding").is_some() {
        return Err(bad(501, "chunked transfer encoding is not supported"));
    }
    let len = match req.header("content-length") {
        None => 0,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| bad(400, "malformed Content-Length"))?,
    };
    if len > MAX_BODY {
        return Err(bad(413, "body too large"));
    }
    let mut body = vec![0u8; len];
    std::io::Read::read_exact(stream, &mut body).map_err(|_| bad(400, "truncated body"))?;
    Ok(Request { body, ..req })
}

/// Canonical reason phrase for the status codes the daemon uses.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Write a complete response. `extra_headers` are emitted verbatim after
/// the standard set; `close` adds `Connection: close`.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
    close: bool,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
        status,
        reason_phrase(status),
        content_type,
        body.len()
    );
    for (k, v) in extra_headers {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    head.push_str(if close {
        "Connection: close\r\n\r\n"
    } else {
        "Connection: keep-alive\r\n\r\n"
    });
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(raw))
    }

    #[test]
    fn parses_a_post_with_body() {
        let r = parse(
            b"POST /v1/sweep HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\nContent-Type: application/json\r\n\r\n{\"a\":1}",
        )
        .unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/v1/sweep");
        assert_eq!(r.header("HOST"), Some("x"));
        assert_eq!(r.body, b"{\"a\""); // exactly Content-Length bytes
        assert!(!r.wants_close());
    }

    #[test]
    fn parses_a_get_and_bare_lf() {
        let r = parse(b"GET /healthz HTTP/1.1\nConnection: close\n\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/healthz");
        assert!(r.wants_close());
        assert!(r.body.is_empty());
    }

    #[test]
    fn clean_eof_is_distinguished_from_garbage() {
        assert!(matches!(parse(b""), Err(HttpError::Eof)));
        assert!(matches!(
            parse(b"GET /x"),
            Err(HttpError::Bad { status: 400, .. })
        ));
    }

    #[test]
    fn rejects_malformed_requests() {
        for (raw, want) in [
            (&b"FROB\r\n\r\n"[..], 400u16),
            (b"GET noslash HTTP/1.1\r\n\r\n", 400),
            (b"GET /x SPDY/3\r\n\r\n", 505),
            (b"GET /x HTTP/1.1\r\nBad Header Name: v\r\n\r\n", 400),
            (b"GET /x HTTP/1.1\r\nnocolon\r\n\r\n", 400),
            (b"POST /x HTTP/1.1\r\nContent-Length: nine\r\n\r\n", 400),
            (b"POST /x HTTP/1.1\r\nContent-Length: 99\r\n\r\nshort", 400),
            (
                b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                501,
            ),
        ] {
            match parse(raw) {
                Err(HttpError::Bad { status, .. }) => {
                    assert_eq!(status, want, "{:?}", String::from_utf8_lossy(raw))
                }
                other => panic!(
                    "{:?}: expected Bad({want}), got {other:?}",
                    String::from_utf8_lossy(raw)
                ),
            }
        }
    }

    #[test]
    fn enforces_limits() {
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_LINE + 10));
        assert!(matches!(
            parse(long.as_bytes()),
            Err(HttpError::Bad { status: 431, .. })
        ));
        let huge = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(matches!(
            parse(huge.as_bytes()),
            Err(HttpError::Bad { status: 413, .. })
        ));
        let mut many = String::from("GET /x HTTP/1.1\r\n");
        for i in 0..(MAX_HEADERS + 1) {
            many.push_str(&format!("h{i}: v\r\n"));
        }
        many.push_str("\r\n");
        assert!(matches!(
            parse(many.as_bytes()),
            Err(HttpError::Bad { status: 431, .. })
        ));
    }

    #[test]
    fn writes_a_response_with_headers() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            429,
            "application/json",
            &[("Retry-After", "1".to_string())],
            b"{\"error\":\"shed\"}",
            false,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Content-Length: 16\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n\r\n{\"error\":\"shed\"}"));
    }
}
