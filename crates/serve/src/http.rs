//! A deliberately small HTTP/1.1 message layer over blocking streams.
//!
//! Enough of RFC 9112 for a loopback model-serving daemon: request-line +
//! headers + `Content-Length` bodies, keep-alive by default, hard limits
//! on every dimension an adversarial client could inflate. No TLS, no
//! chunked transfer encoding (rejected with `411`/`501`), no pipelining
//! guarantees beyond strict request/response alternation.
//!
//! ## Read deadline
//!
//! [`read_request`] enforces an absolute wall-clock budget on each
//! request, armed at its **first byte** — an idle keep-alive connection
//! is never charged, but a slowloris client that trickles header bytes
//! forever is cut off with `408` once the budget elapses, even if the
//! bytes keep arriving fast enough to dodge the socket's read timeout.

use std::io::{BufRead, Write};
use std::time::{Duration, Instant};

/// Parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET`, `POST`, ... (uppercased by the client per spec; not folded).
    pub method: String,
    /// Request target, e.g. `/v1/sweep` (query strings are kept verbatim).
    pub path: String,
    /// Header name/value pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup (names are stored lowercased).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// exchange.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Clean end of stream before any request byte: the peer hung up.
    Eof,
    /// Malformed or over-limit request — respond with the carried status
    /// and close.
    Bad {
        /// Status code to answer with (400, 408, 413, 501, ...).
        status: u16,
        /// Human-readable reason for the error body.
        reason: &'static str,
    },
    /// Transport error (reset, read timeout, ...).
    Io(std::io::Error),
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Hard limits an untrusted client is held to.
const MAX_LINE: usize = 8 * 1024;
const MAX_HEADERS: usize = 100;
const MAX_BODY: usize = 1024 * 1024;

fn bad(status: u16, reason: &'static str) -> HttpError {
    HttpError::Bad { status, reason }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// The per-request read deadline, armed lazily at the first byte so an
/// idle keep-alive connection can wait indefinitely between requests.
struct ReadBudget {
    budget: Duration,
    deadline: Option<Instant>,
}

impl ReadBudget {
    fn new(budget: Duration) -> ReadBudget {
        ReadBudget {
            budget,
            deadline: None,
        }
    }

    fn arm(&mut self) {
        if self.deadline.is_none() {
            self.deadline = Some(Instant::now() + self.budget);
        }
    }

    fn armed(&self) -> bool {
        self.deadline.is_some()
    }

    fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

const DEADLINE_EXCEEDED: &str = "request read deadline exceeded";

/// Read one line terminated by `\r\n` (or bare `\n`), without the
/// terminator, enforcing [`MAX_LINE`] and the request's read budget.
fn read_line(
    stream: &mut impl BufRead,
    clock: &mut ReadBudget,
) -> Result<Option<String>, HttpError> {
    let mut line = Vec::with_capacity(64);
    loop {
        if clock.expired() {
            return Err(bad(408, DEADLINE_EXCEEDED));
        }
        let mut byte = [0u8; 1];
        match std::io::Read::read(stream, &mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(bad(400, "truncated request line"));
            }
            Ok(_) => {
                clock.arm();
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return String::from_utf8(line)
                        .map(Some)
                        .map_err(|_| bad(400, "request is not valid UTF-8"));
                }
                line.push(byte[0]);
                if line.len() > MAX_LINE {
                    return Err(bad(431, "header line too long"));
                }
            }
            Err(e) if is_timeout(&e) => {
                if !clock.armed() {
                    // No request byte yet: this is an idle keep-alive
                    // connection, and the caller decides how long it may
                    // linger. Mid-request stalls retry until the deadline.
                    return Err(HttpError::Io(e));
                }
            }
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
}

/// Read one complete request from `stream`, holding the client to
/// `read_deadline` from its first byte. [`HttpError::Eof`] signals a
/// clean keep-alive hangup before the next request; a timeout *before*
/// the first byte surfaces as [`HttpError::Io`] (idle connection), while
/// a request that starts but does not finish inside the budget is
/// rejected with `408`.
pub fn read_request(
    stream: &mut impl BufRead,
    read_deadline: Duration,
) -> Result<Request, HttpError> {
    let mut clock = ReadBudget::new(read_deadline);
    let request_line = read_line(stream, &mut clock)?.ok_or(HttpError::Eof)?;
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => return Err(bad(400, "malformed request line")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(bad(505, "only HTTP/1.x is supported"));
    }

    let mut headers = Vec::new();
    loop {
        let line = read_line(stream, &mut clock)?.ok_or(bad(400, "truncated headers"))?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(bad(400, "malformed header line"))?;
        if name.is_empty() || name.contains(' ') {
            return Err(bad(400, "malformed header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        if headers.len() > MAX_HEADERS {
            return Err(bad(431, "too many headers"));
        }
    }

    let req = Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body: Vec::new(),
    };
    if req.header("transfer-encoding").is_some() {
        return Err(bad(501, "chunked transfer encoding is not supported"));
    }
    // Framing is security-sensitive: accept exactly one Content-Length,
    // and only the strict digits-only grammar of RFC 9110 §8.6 — no
    // signs, whitespace, or repeats (even agreeing repeats), since any
    // leniency here is what request-smuggling attacks are built from.
    let mut lengths = req.headers.iter().filter(|(k, _)| k == "content-length");
    let len = match (lengths.next(), lengths.next()) {
        (None, _) => 0,
        (Some(_), Some(_)) => return Err(bad(400, "repeated Content-Length")),
        (Some((_, v)), None) => {
            if v.is_empty() || !v.bytes().all(|b| b.is_ascii_digit()) {
                return Err(bad(400, "malformed Content-Length"));
            }
            v.parse::<usize>()
                .map_err(|_| bad(400, "malformed Content-Length"))?
        }
    };
    if len > MAX_BODY {
        return Err(bad(413, "body too large"));
    }
    let mut body = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        if clock.expired() {
            return Err(bad(408, DEADLINE_EXCEEDED));
        }
        match std::io::Read::read(stream, &mut body[filled..]) {
            Ok(0) => return Err(bad(400, "truncated body")),
            Ok(n) => filled += n,
            // The clock armed on the request line; wait out the deadline.
            Err(e) if is_timeout(&e) => {}
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
    Ok(Request { body, ..req })
}

/// Canonical reason phrase for the status codes the daemon uses.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Write a complete response. `extra_headers` are emitted verbatim after
/// the standard set; `close` adds `Connection: close`.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
    close: bool,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
        status,
        reason_phrase(status),
        content_type,
        body.len()
    );
    for (k, v) in extra_headers {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    head.push_str(if close {
        "Connection: close\r\n\r\n"
    } else {
        "Connection: keep-alive\r\n\r\n"
    });
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    /// In-memory parses complete instantly; any generous budget works.
    const TEST_BUDGET: Duration = Duration::from_secs(5);

    fn parse(raw: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(raw), TEST_BUDGET)
    }

    #[test]
    fn parses_a_post_with_body() {
        let r = parse(
            b"POST /v1/sweep HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\nContent-Type: application/json\r\n\r\n{\"a\":1}",
        )
        .unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/v1/sweep");
        assert_eq!(r.header("HOST"), Some("x"));
        assert_eq!(r.body, b"{\"a\""); // exactly Content-Length bytes
        assert!(!r.wants_close());
    }

    #[test]
    fn parses_a_get_and_bare_lf() {
        let r = parse(b"GET /healthz HTTP/1.1\nConnection: close\n\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/healthz");
        assert!(r.wants_close());
        assert!(r.body.is_empty());
    }

    #[test]
    fn clean_eof_is_distinguished_from_garbage() {
        assert!(matches!(parse(b""), Err(HttpError::Eof)));
        assert!(matches!(
            parse(b"GET /x"),
            Err(HttpError::Bad { status: 400, .. })
        ));
    }

    #[test]
    fn rejects_malformed_requests() {
        for (raw, want) in [
            (&b"FROB\r\n\r\n"[..], 400u16),
            (b"GET noslash HTTP/1.1\r\n\r\n", 400),
            (b"GET /x SPDY/3\r\n\r\n", 505),
            (b"GET /x HTTP/1.1\r\nBad Header Name: v\r\n\r\n", 400),
            (b"GET /x HTTP/1.1\r\nnocolon\r\n\r\n", 400),
            (b"POST /x HTTP/1.1\r\nContent-Length: nine\r\n\r\n", 400),
            (b"POST /x HTTP/1.1\r\nContent-Length: 99\r\n\r\nshort", 400),
            (
                b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                501,
            ),
        ] {
            match parse(raw) {
                Err(HttpError::Bad { status, .. }) => {
                    assert_eq!(status, want, "{:?}", String::from_utf8_lossy(raw))
                }
                other => panic!(
                    "{:?}: expected Bad({want}), got {other:?}",
                    String::from_utf8_lossy(raw)
                ),
            }
        }
    }

    #[test]
    fn content_length_grammar_is_digits_only() {
        // `usize::parse` alone would accept "+4"; the framing layer must
        // not. Every non-canonical spelling is a hard 400. (Whitespace
        // around the value is OWS, trimmed by the header parser before
        // this grammar applies — interior whitespace is not.)
        for cl in ["+4", "-4", "4 4", "0x4", "4.0", ""] {
            let raw = format!("POST /x HTTP/1.1\r\nContent-Length:{cl}\r\n\r\nbody");
            match parse(raw.as_bytes()) {
                Err(HttpError::Bad { status: 400, .. }) => {}
                other => panic!("Content-Length {cl:?}: expected 400, got {other:?}"),
            }
        }
        // Overflowing lengths are malformed, not huge.
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 99999999999999999999999999\r\n\r\n";
        assert!(matches!(
            parse(raw),
            Err(HttpError::Bad { status: 400, .. })
        ));
    }

    #[test]
    fn repeated_content_length_is_rejected() {
        // Smuggling guard: two frame lengths — even agreeing ones — mean
        // the client and any intermediary may disagree on the boundary.
        for (a, b) in [("4", "8"), ("4", "4")] {
            let raw = format!(
                "POST /x HTTP/1.1\r\nContent-Length: {a}\r\nContent-Length: {b}\r\n\r\nbodybody"
            );
            match parse(raw.as_bytes()) {
                Err(HttpError::Bad { status: 400, .. }) => {}
                other => panic!("CL {a}/{b}: expected 400, got {other:?}"),
            }
        }
    }

    /// Serves `data` one byte per read with a small delay, then reports
    /// `WouldBlock` forever — a slowloris client in miniature.
    struct Trickle {
        data: Vec<u8>,
        pos: usize,
    }

    impl std::io::Read for Trickle {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            std::thread::sleep(Duration::from_millis(1));
            if self.pos < self.data.len() && !buf.is_empty() {
                buf[0] = self.data[self.pos];
                self.pos += 1;
                Ok(1)
            } else {
                Err(std::io::ErrorKind::WouldBlock.into())
            }
        }
    }

    #[test]
    fn stalled_request_is_cut_off_with_408() {
        // The header starts arriving, then the client goes silent: the
        // armed deadline converts the stall into a 408, not a hang.
        let t = Trickle {
            data: b"POST /v1/predict HTTP/1.1\r\nHost:".to_vec(),
            pos: 0,
        };
        match read_request(&mut BufReader::new(t), Duration::from_millis(80)) {
            Err(HttpError::Bad { status: 408, .. }) => {}
            other => panic!("expected 408, got {other:?}"),
        }
    }

    #[test]
    fn drip_feeding_cannot_dodge_the_deadline() {
        // Bytes keep arriving (so no single read ever times out), but the
        // absolute budget still expires: the check is per byte, not per
        // stall.
        let t = Trickle {
            data:
                b"GET /healthz HTTP/1.1\r\nx-slow: 0123456789012345678901234567890123456789\r\n\r\n"
                    .to_vec(),
            pos: 0,
        };
        match read_request(&mut BufReader::new(t), Duration::from_millis(20)) {
            Err(HttpError::Bad { status: 408, .. }) => {}
            other => panic!("expected 408, got {other:?}"),
        }
    }

    #[test]
    fn idle_timeout_before_first_byte_stays_an_io_error() {
        // No byte has arrived, so the budget is unarmed: the socket-level
        // timeout must pass through untouched for keep-alive idling.
        let t = Trickle {
            data: Vec::new(),
            pos: 0,
        };
        match read_request(&mut BufReader::new(t), Duration::from_millis(20)) {
            Err(HttpError::Io(e)) => assert!(is_timeout(&e)),
            other => panic!("expected Io(WouldBlock), got {other:?}"),
        }
    }

    #[test]
    fn writes_a_response_with_headers() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            429,
            "application/json",
            &[("Retry-After", "1".to_string())],
            b"{\"error\":\"shed\"}",
            false,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Content-Length: 16\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n\r\n{\"error\":\"shed\"}"));
    }
}
