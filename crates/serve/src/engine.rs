//! The caching / single-flight execution engine.
//!
//! Every request resolves through [`Engine::execute`], which consults the
//! sharded LRU first and otherwise elects exactly one **leader** per
//! canonical key to run the computation. Requests that arrive for a key
//! while its leader is still simulating are **coalesced**: their reply
//! channel is parked on the in-flight entry and the worker thread moves
//! on to the next job — no worker ever blocks waiting for another
//! worker's simulation. When the leader finishes it inserts the result
//! into the cache and fulfills every parked waiter.
//!
//! The classic single-flight race (a follower misses the cache, then
//! finds no in-flight entry because the leader just finished) is closed
//! by ordering: the leader inserts into the **cache before** removing the
//! in-flight entry, so a follower that misses the in-flight map re-checks
//! the cache and is guaranteed to find the value there.

use crate::cache::ShardedLru;
use crate::metrics::Metrics;
use std::collections::HashMap;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex};

/// Where a reply came from (reported via the `x-pmemflow-cache` header;
/// response *bodies* are source-independent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// Cache miss: this request's leader ran the computation.
    Computed,
    /// Served from the result cache.
    CacheHit,
    /// Coalesced onto another request's in-flight computation.
    Coalesced,
}

impl Source {
    /// Header value.
    pub fn label(self) -> &'static str {
        match self {
            Source::Computed => "miss",
            Source::CacheHit => "hit",
            Source::Coalesced => "coalesced",
        }
    }
}

/// A parked reply channel: the value and its source are delivered when
/// the leader finishes. Sends to abandoned receivers (deadline expired,
/// client gone) are silently dropped.
pub type Waiter<V> = Sender<(V, Source)>;

/// Cache + single-flight front over an arbitrary computation.
pub struct Engine<V> {
    cache: ShardedLru<V>,
    inflight: Mutex<HashMap<String, Vec<Waiter<V>>>>,
    metrics: Arc<Metrics>,
}

impl<V: Clone> Engine<V> {
    /// An engine with a result cache of `capacity` entries over `shards`
    /// shards, reporting into `metrics`.
    pub fn new(capacity: usize, shards: usize, metrics: Arc<Metrics>) -> Engine<V> {
        Engine {
            cache: ShardedLru::new(capacity, shards),
            inflight: Mutex::new(HashMap::new()),
            metrics,
        }
    }

    /// Resolve `key`, replying through `waiter` exactly once — either
    /// inline (cache hit, or this call computed as leader) or later, when
    /// the in-flight leader this call coalesced onto completes. The
    /// caller's receive side decides how long it is willing to wait.
    ///
    /// `compute` runs at most once per key across all concurrent callers;
    /// it must be deterministic in `key` for the cache to be sound.
    pub fn execute<F: FnOnce() -> V>(&self, key: &str, waiter: Waiter<V>, compute: F) {
        if let Some(v) = self.cache.get(key) {
            self.metrics.cache_hits.fetch_add(1, Relaxed);
            let _ = waiter.send((v, Source::CacheHit));
            return;
        }
        {
            let mut inflight = self.inflight.lock().unwrap();
            if let Some(waiters) = inflight.get_mut(key) {
                self.metrics.coalesced.fetch_add(1, Relaxed);
                waiters.push(waiter);
                return;
            }
            // The leader may have finished between our cache probe and
            // this lock: cache-insert happens-before entry removal, so a
            // second probe is conclusive.
            if let Some(v) = self.cache.get(key) {
                self.metrics.cache_hits.fetch_add(1, Relaxed);
                let _ = waiter.send((v, Source::CacheHit));
                return;
            }
            inflight.insert(key.to_string(), Vec::new());
        }
        // This call is the leader. Compute without holding any lock.
        self.metrics.cache_misses.fetch_add(1, Relaxed);
        let value = compute();
        if self.cache.insert(key, value.clone()).is_some() {
            self.metrics.evictions.fetch_add(1, Relaxed);
        }
        let waiters = self
            .inflight
            .lock()
            .unwrap()
            .remove(key)
            .expect("leader's in-flight entry vanished");
        let _ = waiter.send((value.clone(), Source::Computed));
        for w in waiters {
            let _ = w.send((value.clone(), Source::Coalesced));
        }
    }

    /// Entries currently cached.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc::channel;
    use std::time::Duration;

    fn metrics() -> Arc<Metrics> {
        Arc::new(Metrics::default())
    }

    #[test]
    fn hit_after_compute_and_identical_bytes() {
        let m = metrics();
        let e: Engine<String> = Engine::new(8, 1, m.clone());
        let (tx, rx) = channel();
        e.execute("k", tx, || "body".to_string());
        let (cold, src) = rx.recv().unwrap();
        assert_eq!(src, Source::Computed);
        let (tx, rx) = channel();
        e.execute("k", tx, || unreachable!("cached key must not recompute"));
        let (warm, src) = rx.recv().unwrap();
        assert_eq!(src, Source::CacheHit);
        assert_eq!(cold, warm, "cached response must be byte-identical");
        assert_eq!(m.cache_hits.load(Relaxed), 1);
        assert_eq!(m.cache_misses.load(Relaxed), 1);
    }

    #[test]
    fn single_flight_runs_compute_once_for_concurrent_same_key() {
        // N threads race on one key; the computation stalls until every
        // thread has had a chance to enter execute(). Exactly one compute
        // may run, and every thread must still get the value.
        const N: usize = 4;
        let m = metrics();
        let e: Arc<Engine<String>> = Arc::new(Engine::new(8, 1, m.clone()));
        let computes = Arc::new(AtomicUsize::new(0));
        let entered = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..N)
            .map(|_| {
                let (e, computes, entered) = (e.clone(), computes.clone(), entered.clone());
                std::thread::spawn(move || {
                    let (tx, rx) = channel();
                    entered.fetch_add(1, Relaxed);
                    e.execute("shared", tx, || {
                        // Hold the flight open until all threads arrived
                        // (they either coalesce or, post-completion,
                        // hit the cache — never recompute).
                        let deadline = std::time::Instant::now() + Duration::from_secs(5);
                        while entered.load(Relaxed) < N && std::time::Instant::now() < deadline {
                            std::thread::yield_now();
                        }
                        computes.fetch_add(1, Relaxed);
                        "value".to_string()
                    });
                    rx.recv_timeout(Duration::from_secs(10)).unwrap()
                })
            })
            .collect();
        for h in handles {
            let (v, _) = h.join().unwrap();
            assert_eq!(v, "value");
        }
        assert_eq!(computes.load(Relaxed), 1, "same key simulated twice");
        assert_eq!(m.cache_misses.load(Relaxed), 1);
        assert_eq!(
            m.cache_hits.load(Relaxed) + m.coalesced.load(Relaxed),
            (N - 1) as u64
        );
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let m = metrics();
        let e: Engine<u32> = Engine::new(8, 2, m.clone());
        for (i, key) in ["a", "b", "c"].iter().enumerate() {
            let (tx, rx) = channel();
            e.execute(key, tx, || i as u32);
            assert_eq!(rx.recv().unwrap().0, i as u32);
        }
        assert_eq!(m.cache_misses.load(Relaxed), 3);
        assert_eq!(m.coalesced.load(Relaxed), 0);
        assert_eq!(e.cache_len(), 3);
    }

    #[test]
    fn evictions_are_counted() {
        let m = metrics();
        let e: Engine<u32> = Engine::new(2, 1, m.clone());
        for (i, key) in ["a", "b", "c", "d"].iter().enumerate() {
            let (tx, _rx) = channel();
            e.execute(key, tx, || i as u32);
        }
        assert_eq!(m.evictions.load(Relaxed), 2);
        assert_eq!(e.cache_len(), 2);
    }

    #[test]
    fn abandoned_waiters_do_not_poison_the_flight() {
        let e: Engine<u32> = Engine::new(8, 1, metrics());
        let (tx, rx) = channel();
        drop(rx); // client gave up before the result arrived
        e.execute("k", tx, || 7);
        let (tx, rx) = channel();
        e.execute("k", tx, || unreachable!());
        assert_eq!(rx.recv().unwrap(), (7, Source::CacheHit));
    }
}
