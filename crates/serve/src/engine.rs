//! The caching / single-flight execution engine.
//!
//! Every request resolves through [`Engine::execute`], which consults the
//! sharded LRU first and otherwise elects exactly one **leader** per
//! canonical key to run the computation. Requests that arrive for a key
//! while its leader is still simulating are **coalesced**: their reply
//! channel is parked on the in-flight entry and the worker thread moves
//! on to the next job — no worker ever blocks waiting for another
//! worker's simulation. When the leader finishes it inserts the result
//! into the cache and fulfills every parked waiter.
//!
//! The classic single-flight race (a follower misses the cache, then
//! finds no in-flight entry because the leader just finished) is closed
//! by ordering: the leader inserts into the **cache before** removing the
//! in-flight entry, so a follower that misses the in-flight map re-checks
//! the cache and is guaranteed to find the value there.
//!
//! ## Panic isolation
//!
//! A panicking computation must not take the daemon down with it, and —
//! just as important — must not leave coalesced followers parked forever
//! on a flight that will never land. `execute` runs `compute` under
//! [`std::panic::catch_unwind`]; on panic it removes the in-flight entry,
//! delivers [`ComputeFailed`] to the leader's waiter *and every parked
//! follower*, caches nothing, and then resumes the unwind so the caller
//! (the worker supervisor) can count the panic and respawn.

use crate::cache::ShardedLru;
use crate::metrics::Metrics;
use crate::sync::lock_recover;
use std::collections::HashMap;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex};

/// Where a reply came from (reported via the `x-pmemflow-cache` header;
/// response *bodies* are source-independent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// Cache miss: this request's leader ran the computation.
    Computed,
    /// Served from the result cache.
    CacheHit,
    /// Coalesced onto another request's in-flight computation.
    Coalesced,
}

impl Source {
    /// Header value.
    pub fn label(self) -> &'static str {
        match self {
            Source::Computed => "miss",
            Source::CacheHit => "hit",
            Source::Coalesced => "coalesced",
        }
    }
}

/// The in-flight leader for this key panicked instead of producing a
/// value. Nothing was cached; retrying the request elects a new leader.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComputeFailed;

/// A parked reply channel: the outcome and its source are delivered when
/// the leader finishes — `Ok(value)` on success, `Err(ComputeFailed)` if
/// the leader panicked. Sends to abandoned receivers (deadline expired,
/// client gone) are silently dropped.
pub type Waiter<V> = Sender<(Result<V, ComputeFailed>, Source)>;

/// Cache + single-flight front over an arbitrary computation.
pub struct Engine<V> {
    cache: ShardedLru<V>,
    inflight: Mutex<HashMap<String, Vec<Waiter<V>>>>,
    metrics: Arc<Metrics>,
}

impl<V: Clone> Engine<V> {
    /// An engine with a result cache of `capacity` entries over `shards`
    /// shards, reporting into `metrics`.
    pub fn new(capacity: usize, shards: usize, metrics: Arc<Metrics>) -> Engine<V> {
        Engine {
            cache: ShardedLru::new(capacity, shards),
            inflight: Mutex::new(HashMap::new()),
            metrics,
        }
    }

    /// Resolve `key`, replying through `waiter` exactly once — either
    /// inline (cache hit, or this call computed as leader) or later, when
    /// the in-flight leader this call coalesced onto completes or
    /// panics. The caller's receive side decides how long it is willing
    /// to wait.
    ///
    /// `compute` runs at most once per key across all concurrent callers;
    /// it must be deterministic in `key` for the cache to be sound. If it
    /// panics, every waiter (leader and followers) receives
    /// [`ComputeFailed`] and the panic is propagated to this call's
    /// caller via [`std::panic::resume_unwind`].
    pub fn execute<F: FnOnce() -> V>(&self, key: &str, waiter: Waiter<V>, compute: F) {
        if let Some(v) = self.cache.get(key) {
            self.metrics.cache_hits.fetch_add(1, Relaxed);
            let _ = waiter.send((Ok(v), Source::CacheHit));
            return;
        }
        {
            let mut inflight = lock_recover(&self.inflight);
            if let Some(waiters) = inflight.get_mut(key) {
                self.metrics.coalesced.fetch_add(1, Relaxed);
                waiters.push(waiter);
                return;
            }
            // The leader may have finished between our cache probe and
            // this lock: cache-insert happens-before entry removal, so a
            // second probe is conclusive.
            if let Some(v) = self.cache.get(key) {
                self.metrics.cache_hits.fetch_add(1, Relaxed);
                let _ = waiter.send((Ok(v), Source::CacheHit));
                return;
            }
            inflight.insert(key.to_string(), Vec::new());
        }
        // This call is the leader. Compute without holding any lock.
        // AssertUnwindSafe: on panic the result is discarded, nothing is
        // cached, and the engine's own mutexes are not held across
        // `compute` — no engine state can be observed torn.
        self.metrics.cache_misses.fetch_add(1, Relaxed);
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(compute)) {
            Ok(value) => {
                if self.cache.insert(key, value.clone()).is_some() {
                    self.metrics.evictions.fetch_add(1, Relaxed);
                }
                let waiters = lock_recover(&self.inflight).remove(key).unwrap_or_default();
                let _ = waiter.send((Ok(value.clone()), Source::Computed));
                for w in waiters {
                    let _ = w.send((Ok(value.clone()), Source::Coalesced));
                }
            }
            Err(payload) => {
                // Land the flight with an error so no follower hangs,
                // then let the panic continue into the supervisor.
                self.metrics.panics.fetch_add(1, Relaxed);
                let waiters = lock_recover(&self.inflight).remove(key).unwrap_or_default();
                let _ = waiter.send((Err(ComputeFailed), Source::Computed));
                for w in waiters {
                    let _ = w.send((Err(ComputeFailed), Source::Coalesced));
                }
                std::panic::resume_unwind(payload);
            }
        }
    }

    /// Entries currently cached.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc::channel;
    use std::time::Duration;

    fn metrics() -> Arc<Metrics> {
        Arc::new(Metrics::default())
    }

    #[test]
    fn hit_after_compute_and_identical_bytes() {
        let m = metrics();
        let e: Engine<String> = Engine::new(8, 1, m.clone());
        let (tx, rx) = channel();
        e.execute("k", tx, || "body".to_string());
        let (cold, src) = rx.recv().unwrap();
        assert_eq!(src, Source::Computed);
        let (tx, rx) = channel();
        e.execute("k", tx, || unreachable!("cached key must not recompute"));
        let (warm, src) = rx.recv().unwrap();
        assert_eq!(src, Source::CacheHit);
        assert_eq!(cold, warm, "cached response must be byte-identical");
        assert_eq!(m.cache_hits.load(Relaxed), 1);
        assert_eq!(m.cache_misses.load(Relaxed), 1);
    }

    #[test]
    fn single_flight_runs_compute_once_for_concurrent_same_key() {
        // N threads race on one key; the computation stalls until every
        // thread has had a chance to enter execute(). Exactly one compute
        // may run, and every thread must still get the value.
        const N: usize = 4;
        let m = metrics();
        let e: Arc<Engine<String>> = Arc::new(Engine::new(8, 1, m.clone()));
        let computes = Arc::new(AtomicUsize::new(0));
        let entered = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..N)
            .map(|_| {
                let (e, computes, entered) = (e.clone(), computes.clone(), entered.clone());
                std::thread::spawn(move || {
                    let (tx, rx) = channel();
                    entered.fetch_add(1, Relaxed);
                    e.execute("shared", tx, || {
                        // Hold the flight open until all threads arrived
                        // (they either coalesce or, post-completion,
                        // hit the cache — never recompute).
                        let deadline = std::time::Instant::now() + Duration::from_secs(5);
                        while entered.load(Relaxed) < N && std::time::Instant::now() < deadline {
                            std::thread::yield_now();
                        }
                        computes.fetch_add(1, Relaxed);
                        "value".to_string()
                    });
                    rx.recv_timeout(Duration::from_secs(10)).unwrap()
                })
            })
            .collect();
        for h in handles {
            let (v, _) = h.join().unwrap();
            assert_eq!(v.unwrap(), "value");
        }
        assert_eq!(computes.load(Relaxed), 1, "same key simulated twice");
        assert_eq!(m.cache_misses.load(Relaxed), 1);
        assert_eq!(
            m.cache_hits.load(Relaxed) + m.coalesced.load(Relaxed),
            (N - 1) as u64
        );
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let m = metrics();
        let e: Engine<u32> = Engine::new(8, 2, m.clone());
        for (i, key) in ["a", "b", "c"].iter().enumerate() {
            let (tx, rx) = channel();
            e.execute(key, tx, || i as u32);
            assert_eq!(rx.recv().unwrap().0.unwrap(), i as u32);
        }
        assert_eq!(m.cache_misses.load(Relaxed), 3);
        assert_eq!(m.coalesced.load(Relaxed), 0);
        assert_eq!(e.cache_len(), 3);
    }

    #[test]
    fn evictions_are_counted() {
        let m = metrics();
        let e: Engine<u32> = Engine::new(2, 1, m.clone());
        for (i, key) in ["a", "b", "c", "d"].iter().enumerate() {
            let (tx, _rx) = channel();
            e.execute(key, tx, || i as u32);
        }
        assert_eq!(m.evictions.load(Relaxed), 2);
        assert_eq!(e.cache_len(), 2);
    }

    #[test]
    fn abandoned_waiters_do_not_poison_the_flight() {
        let e: Engine<u32> = Engine::new(8, 1, metrics());
        let (tx, rx) = channel();
        drop(rx); // client gave up before the result arrived
        e.execute("k", tx, || 7);
        let (tx, rx) = channel();
        e.execute("k", tx, || unreachable!());
        assert_eq!(rx.recv().unwrap(), (Ok(7), Source::CacheHit));
    }

    #[test]
    fn panicking_leader_fails_all_waiters_and_caches_nothing() {
        let m = metrics();
        let e: Arc<Engine<u32>> = Arc::new(Engine::new(8, 1, m.clone()));
        let entered = Arc::new(AtomicUsize::new(0));
        // Leader thread: panics mid-compute after the follower coalesced.
        let (leader_tx, leader_rx) = channel();
        let leader = {
            let (e, entered) = (e.clone(), entered.clone());
            std::thread::spawn(move || {
                e.execute("doomed", leader_tx, || {
                    entered.store(1, Relaxed);
                    let deadline = std::time::Instant::now() + Duration::from_secs(5);
                    while entered.load(Relaxed) < 2 && std::time::Instant::now() < deadline {
                        std::thread::yield_now();
                    }
                    panic!("injected fault");
                });
            })
        };
        while entered.load(Relaxed) < 1 {
            std::thread::yield_now();
        }
        let (follower_tx, follower_rx) = channel();
        e.execute("doomed", follower_tx, || unreachable!("must coalesce"));
        entered.store(2, Relaxed);
        // The panic propagates out of execute() into the leader thread...
        assert!(leader.join().is_err(), "panic must resume past execute()");
        // ...but both waiters got a definite error instead of hanging.
        let (lv, lsrc) = leader_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!((lv, lsrc), (Err(ComputeFailed), Source::Computed));
        let (fv, fsrc) = follower_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!((fv, fsrc), (Err(ComputeFailed), Source::Coalesced));
        assert_eq!(m.panics.load(Relaxed), 1);
        assert_eq!(e.cache_len(), 0, "failed computes must not be cached");
        // The key is fully released: a retry elects a fresh leader.
        let (tx, rx) = channel();
        e.execute("doomed", tx, || 9);
        assert_eq!(rx.recv().unwrap(), (Ok(9), Source::Computed));
    }
}
