//! Lock-free serving metrics with a Prometheus-style text exposition.
//!
//! Everything is a relaxed atomic — scrapes are cheap and never block the
//! request path; the exposition is a point-in-time approximation, which
//! is all a scraper ever gets anyway. Latencies go into a fixed
//! log-spaced histogram (powers of two in microseconds) from which
//! p50/p95/p99 are estimated by linear interpolation within the bucket.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// The endpoints the daemon tracks individually.
pub const ENDPOINTS: [&str; 7] = [
    "/v1/sweep",
    "/v1/recommend",
    "/v1/predict",
    "/v1/coschedule",
    "/healthz",
    "/metrics",
    "other",
];

/// Histogram bucket upper bounds in microseconds: 1µs · 4^i, 16 buckets
/// spanning 1µs to ~4.3ks, plus an implicit +Inf.
const BUCKETS: usize = 16;

fn bucket_upper_us(i: usize) -> u64 {
    1u64 << (2 * i)
}

/// A fixed-bucket latency histogram.
#[derive(Default)]
pub struct Histogram {
    counts: [AtomicU64; BUCKETS],
    overflow: AtomicU64,
    sum_us: AtomicU64,
    total: AtomicU64,
}

impl Histogram {
    /// Record one observation.
    pub fn observe_us(&self, us: u64) {
        let idx = BUCKETS; // sentinel: overflow
        let mut slot = idx;
        for i in 0..BUCKETS {
            if us <= bucket_upper_us(i) {
                slot = i;
                break;
            }
        }
        if slot == BUCKETS {
            self.overflow.fetch_add(1, Relaxed);
        } else {
            self.counts[slot].fetch_add(1, Relaxed);
        }
        self.sum_us.fetch_add(us, Relaxed);
        self.total.fetch_add(1, Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total.load(Relaxed)
    }

    /// Sum of observations, seconds.
    pub fn sum_seconds(&self) -> f64 {
        self.sum_us.load(Relaxed) as f64 / 1e6
    }

    /// Estimate quantile `q` (0..1) in seconds by linear interpolation
    /// within the containing bucket. Returns 0.0 on an empty histogram.
    pub fn quantile_seconds(&self, q: f64) -> f64 {
        let total = self.total.load(Relaxed);
        if total == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for i in 0..BUCKETS {
            let c = self.counts[i].load(Relaxed);
            if seen + c >= target {
                let lower = if i == 0 { 0 } else { bucket_upper_us(i - 1) };
                let upper = bucket_upper_us(i);
                let frac = if c == 0 {
                    1.0
                } else {
                    (target - seen) as f64 / c as f64
                };
                return (lower as f64 + frac * (upper - lower) as f64) / 1e6;
            }
            seen += c;
        }
        // Overflow bucket: report its lower bound.
        bucket_upper_us(BUCKETS - 1) as f64 / 1e6
    }
}

/// All counters the daemon exposes.
#[derive(Default)]
pub struct Metrics {
    /// Requests received, per endpoint (ENDPOINTS order).
    pub requests: [AtomicU64; ENDPOINTS.len()],
    /// Responses sent, by status class bucket (see [`status_bucket`]).
    pub responses: [AtomicU64; STATUS_BUCKETS.len()],
    /// Result-cache hits (includes single-flight followers).
    pub cache_hits: AtomicU64,
    /// Result-cache misses that ran a simulation.
    pub cache_misses: AtomicU64,
    /// Requests coalesced onto an already-in-flight identical simulation.
    pub coalesced: AtomicU64,
    /// Cache evictions.
    pub evictions: AtomicU64,
    /// Requests shed with 429 because the queue was full.
    pub shed: AtomicU64,
    /// Requests that missed their deadline (504).
    pub deadline_missed: AtomicU64,
    /// Worker panics caught while computing (each one answered 500).
    pub panics: AtomicU64,
    /// Workers respawned by the supervisor after a panic.
    pub worker_restarts: AtomicU64,
    /// Current depth of the admission queue.
    pub queue_depth: AtomicU64,
    /// End-to-end request latency (parse to response write).
    pub latency: Histogram,
}

/// The status codes tracked individually.
pub const STATUS_BUCKETS: [u16; 14] = [
    200, 400, 404, 405, 408, 413, 422, 429, 431, 500, 501, 503, 504, 505,
];

/// Index into [`Metrics::responses`] for a status code.
pub fn status_bucket(status: u16) -> usize {
    STATUS_BUCKETS
        .iter()
        .position(|&s| s == status)
        .unwrap_or(STATUS_BUCKETS.len() - 1)
}

impl Metrics {
    /// Index into [`Metrics::requests`] for a request path.
    pub fn endpoint_index(path: &str) -> usize {
        ENDPOINTS
            .iter()
            .position(|&e| e == path)
            .unwrap_or(ENDPOINTS.len() - 1)
    }

    /// Count one received request.
    pub fn on_request(&self, path: &str) {
        self.requests[Self::endpoint_index(path)].fetch_add(1, Relaxed);
    }

    /// Count one response by status.
    pub fn on_response(&self, status: u16) {
        self.responses[status_bucket(status)].fetch_add(1, Relaxed);
    }

    /// Render the Prometheus-style text exposition.
    pub fn exposition(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("# TYPE pmemflow_serve_requests_total counter\n");
        for (i, name) in ENDPOINTS.iter().enumerate() {
            out.push_str(&format!(
                "pmemflow_serve_requests_total{{endpoint=\"{name}\"}} {}\n",
                self.requests[i].load(Relaxed)
            ));
        }
        out.push_str("# TYPE pmemflow_serve_responses_total counter\n");
        for (i, status) in STATUS_BUCKETS.iter().enumerate() {
            out.push_str(&format!(
                "pmemflow_serve_responses_total{{status=\"{status}\"}} {}\n",
                self.responses[i].load(Relaxed)
            ));
        }
        for (name, v) in [
            ("cache_hits_total", &self.cache_hits),
            ("cache_misses_total", &self.cache_misses),
            ("coalesced_total", &self.coalesced),
            ("cache_evictions_total", &self.evictions),
            ("shed_total", &self.shed),
            ("deadline_missed_total", &self.deadline_missed),
            ("panics_total", &self.panics),
            ("worker_restarts_total", &self.worker_restarts),
        ] {
            out.push_str(&format!(
                "# TYPE pmemflow_serve_{name} counter\npmemflow_serve_{name} {}\n",
                v.load(Relaxed)
            ));
        }
        out.push_str(&format!(
            "# TYPE pmemflow_serve_queue_depth gauge\npmemflow_serve_queue_depth {}\n",
            self.queue_depth.load(Relaxed)
        ));
        out.push_str("# TYPE pmemflow_serve_request_latency_seconds summary\n");
        for (label, q) in [("0.5", 0.5), ("0.95", 0.95), ("0.99", 0.99)] {
            out.push_str(&format!(
                "pmemflow_serve_request_latency_seconds{{quantile=\"{label}\"}} {:.6}\n",
                self.latency.quantile_seconds(q)
            ));
        }
        out.push_str(&format!(
            "pmemflow_serve_request_latency_seconds_sum {:.6}\n",
            self.latency.sum_seconds()
        ));
        out.push_str(&format!(
            "pmemflow_serve_request_latency_seconds_count {}\n",
            self.latency.count()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_observations() {
        let h = Histogram::default();
        assert_eq!(h.quantile_seconds(0.5), 0.0);
        for us in [10u64, 20, 30, 40, 1000, 1000, 1000, 1000, 1000, 100_000] {
            h.observe_us(us);
        }
        assert_eq!(h.count(), 10);
        let p50 = h.quantile_seconds(0.5);
        // Half the mass is at 1000µs, inside the (256, 1024] bucket.
        assert!(p50 > 200e-6 && p50 <= 1024e-6, "p50 {p50}");
        let p99 = h.quantile_seconds(0.99);
        assert!(p99 > 1024e-6, "p99 {p99}");
        assert!(p99 >= p50);
        assert!(
            (h.sum_seconds() - 0.1051).abs() < 1e-9,
            "{}",
            h.sum_seconds()
        );
    }

    #[test]
    fn histogram_overflow_is_counted() {
        let h = Histogram::default();
        h.observe_us(u64::MAX / 2);
        assert_eq!(h.count(), 1);
        assert!(h.quantile_seconds(0.5) > 1000.0);
    }

    #[test]
    fn exposition_lists_every_series() {
        let m = Metrics::default();
        m.on_request("/v1/sweep");
        m.on_request("/nope");
        m.on_response(200);
        m.on_response(429);
        m.cache_hits.fetch_add(3, Relaxed);
        m.latency.observe_us(500);
        let text = m.exposition();
        for needle in [
            "pmemflow_serve_requests_total{endpoint=\"/v1/sweep\"} 1",
            "pmemflow_serve_requests_total{endpoint=\"other\"} 1",
            "pmemflow_serve_responses_total{status=\"200\"} 1",
            "pmemflow_serve_responses_total{status=\"429\"} 1",
            "pmemflow_serve_cache_hits_total 3",
            "pmemflow_serve_cache_misses_total 0",
            "pmemflow_serve_shed_total 0",
            "pmemflow_serve_panics_total 0",
            "pmemflow_serve_worker_restarts_total 0",
            "pmemflow_serve_queue_depth 0",
            "pmemflow_serve_request_latency_seconds{quantile=\"0.5\"}",
            "pmemflow_serve_request_latency_seconds{quantile=\"0.99\"}",
            "pmemflow_serve_request_latency_seconds_count 1",
        ] {
            assert!(text.contains(needle), "missing {needle}\n{text}");
        }
    }

    #[test]
    fn status_buckets_cover_the_daemons_codes() {
        assert_eq!(status_bucket(200), 0);
        assert_ne!(status_bucket(504), status_bucket(200));
        assert_ne!(status_bucket(408), STATUS_BUCKETS.len() - 1);
        // Unknown codes fold into the last bucket instead of panicking.
        assert_eq!(status_bucket(418), STATUS_BUCKETS.len() - 1);
    }
}
