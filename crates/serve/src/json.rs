//! A minimal, dependency-free JSON value parser for request bodies.
//!
//! The daemon only needs to *read* small client-supplied documents —
//! responses are rendered directly with [`pmemflow_des::json`] helpers —
//! so this is a strict recursive-descent parser over the full JSON
//! grammar with a depth limit, returning a tree of [`Json`] values.
//! Numbers are held as `f64` (every endpoint field fits), object keys
//! keep insertion order, and duplicate keys resolve to the last value,
//! matching what serde_json does by default.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Nesting depth limit: adversarial bodies like `[[[[...` must not blow
/// the parser's stack.
const MAX_DEPTH: usize = 64;

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }

    /// Object field lookup (last occurrence wins, like serde_json).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number that
    /// fits exactly (rejects 8.5, -1, 1e300).
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= u32::MAX as f64 => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { at: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, msg: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("expected a JSON value"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("document nested too deeply"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let c = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            match c {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let e = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u', "expected low surrogate")?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                0x00..=0x1f => return Err(self.err("raw control character in string")),
                _ => {
                    // Consume one UTF-8 scalar (input is &str, so valid).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..end]).unwrap());
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: one zero, or a nonzero digit run.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected a digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected a digit after '.'"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected a digit in exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("number out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(Json::parse("0").unwrap(), Json::Num(0.0));
        assert_eq!(
            Json::parse("\"hi \\n \\u0041\\ud83d\\ude80\"").unwrap(),
            Json::Str("hi \n A🚀".into())
        );
    }

    #[test]
    fn parses_nested_documents() {
        let v = Json::parse(r#"{"a":[1,2,{"b":null}],"c":{"d":"e"},"a":3}"#).unwrap();
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_str(), Some("e"));
        // Duplicate keys: last wins through get().
        assert_eq!(v.get("a").unwrap().as_f64(), Some(3.0));
        assert_eq!(Json::parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(Json::parse("{}").unwrap(), Json::Obj(vec![]));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "nul",
            "tru",
            "01",
            "1.",
            "1e",
            "+1",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"\\ud800 lone\"",
            "\"raw \u{1} control\"",
            "[1] trailing",
            "{\"a\":1,}",
            "NaN",
            "Infinity",
            "'single'",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn depth_limit_holds() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        let e = Json::parse(&deep).unwrap_err();
        assert_eq!(e.msg, "document nested too deeply");
        let ok = "[".repeat(32) + &"]".repeat(32);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn accessor_conversions() {
        let v = Json::parse(r#"{"n":8,"bad":8.5,"neg":-1,"s":"x","a":[1]}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_usize(), Some(8));
        assert_eq!(v.get("bad").unwrap().as_usize(), None);
        assert_eq!(v.get("neg").unwrap().as_usize(), None);
        assert_eq!(v.get("s").unwrap().as_usize(), None);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 1);
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Num(1.0).get("x"), None);
    }
}
