//! End-to-end tests of the daemon over real loopback TCP.

use pmemflow_serve::model::{Answer, Backend};
use pmemflow_serve::query::Query;
use pmemflow_serve::{Server, ServerConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// A parsed response: status, headers (lowercased names), body.
struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Response {
    fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

fn read_response(reader: &mut BufReader<TcpStream>) -> Response {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).unwrap();
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .expect("status line")
        .parse()
        .unwrap();
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let (k, v) = line.split_once(':').unwrap();
        headers.push((k.to_ascii_lowercase(), v.trim().to_string()));
    }
    let len: usize = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.parse().unwrap())
        .unwrap_or(0);
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body).unwrap();
    Response {
        status,
        headers,
        body: String::from_utf8(body).unwrap(),
    }
}

fn raw_request(method: &str, path: &str, body: &str) -> String {
    format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
}

/// One request on a fresh connection.
fn call(addr: SocketAddr, method: &str, path: &str, body: &str) -> Response {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    stream
        .write_all(raw_request(method, path, body).as_bytes())
        .unwrap();
    read_response(&mut BufReader::new(stream))
}

fn small_config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        cache_capacity: 32,
        ..ServerConfig::default()
    }
}

#[test]
fn serves_every_endpoint_and_shuts_down_cleanly() {
    let server = Server::start(small_config()).unwrap();
    let addr = server.addr();

    let health = call(addr, "GET", "/healthz", "");
    assert_eq!(health.status, 200);
    assert_eq!(health.body, "ok\n");

    let sweep = call(
        addr,
        "POST",
        "/v1/sweep",
        r#"{"workload":"micro-2kb","ranks":8}"#,
    );
    assert_eq!(sweep.status, 200, "{}", sweep.body);
    assert!(sweep.body.contains("\"runs\":["));
    assert_eq!(sweep.header("x-pmemflow-cache"), Some("miss"));

    let rec = call(
        addr,
        "POST",
        "/v1/recommend",
        r#"{"workload":"micro-2kb","ranks":8}"#,
    );
    assert_eq!(rec.status, 200, "{}", rec.body);
    assert!(rec.body.contains("\"rule_based\""));
    assert!(rec.body.contains("\"model_driven\""));

    let pred = call(
        addr,
        "POST",
        "/v1/predict",
        r#"{"workload":"micro-2kb","ranks":8,"config":"S-LocW"}"#,
    );
    assert_eq!(pred.status, 200, "{}", pred.body);
    assert!(pred.body.contains("\"predicted_runtime_s\":"));

    let co = call(
        addr,
        "POST",
        "/v1/coschedule",
        r#"{"tenants":[{"workload":"micro-2kb","ranks":8,"config":"S-LocW"},
                       {"workload":"micro-2kb","ranks":8,"config":"P-LocR"}]}"#,
    );
    assert_eq!(co.status, 200, "{}", co.body);
    assert!(co.body.contains("\"makespan_s\":"));

    // Error mapping.
    assert_eq!(call(addr, "POST", "/v1/sweep", "{not json").status, 400);
    assert_eq!(
        call(addr, "POST", "/v1/sweep", r#"{"workload":"hpl","ranks":8}"#).status,
        400
    );
    assert_eq!(call(addr, "GET", "/v1/sweep", "").status, 405);
    assert_eq!(call(addr, "POST", "/healthz", "").status, 405);
    assert_eq!(call(addr, "GET", "/nope", "").status, 404);

    // Metrics reflect the traffic above.
    let metrics = call(addr, "GET", "/metrics", "");
    assert_eq!(metrics.status, 200);
    assert!(metrics
        .body
        .contains("pmemflow_serve_requests_total{endpoint=\"/v1/sweep\"} 4"));
    assert!(metrics.body.contains("pmemflow_serve_cache_misses_total 4"));
    assert!(metrics
        .body
        .contains("pmemflow_serve_request_latency_seconds{quantile=\"0.99\"}"));

    // Graceful drain: in-band shutdown, then the port must refuse work.
    let bye = call(addr, "POST", "/admin/shutdown", "");
    assert_eq!(bye.status, 200);
    assert_eq!(server.join(), 0, "connections leaked past the drain");
}

#[test]
fn cached_response_is_byte_identical_to_cold() {
    let server = Server::start(small_config()).unwrap();
    let addr = server.addr();
    let body = r#"{"workload":"micro-2kb","ranks":8}"#;
    let cold = call(addr, "POST", "/v1/predict", body);
    let warm = call(addr, "POST", "/v1/predict", body);
    assert_eq!(cold.status, 200);
    assert_eq!(cold.header("x-pmemflow-cache"), Some("miss"));
    assert_eq!(warm.header("x-pmemflow-cache"), Some("hit"));
    assert_eq!(cold.body, warm.body, "cache must not change the bytes");
    // A different spelling of the same question shares the cache line.
    let folded = call(
        addr,
        "POST",
        "/v1/predict",
        r#"{"workload":"MICRO-2KB","ranks":8,"stack":"NVStream"}"#,
    );
    assert_eq!(folded.header("x-pmemflow-cache"), Some("hit"));
    assert_eq!(folded.body, cold.body);
    assert_eq!(server.cache_len(), 1);
    server.shutdown();
    server.join();
}

#[test]
fn keep_alive_carries_multiple_requests() {
    let server = Server::start(small_config()).unwrap();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    for _ in 0..3 {
        stream
            .write_all(raw_request("GET", "/healthz", "").as_bytes())
            .unwrap();
        let r = read_response(&mut reader);
        assert_eq!(r.status, 200);
        assert_eq!(r.header("connection"), Some("keep-alive"));
    }
    drop(stream);
    server.shutdown();
    server.join();
}

/// A backend that takes `delay` per answer — for probing queueing,
/// shedding and deadlines without paying for simulations.
struct SlowBackend {
    delay: Duration,
}

impl Backend for SlowBackend {
    fn answer(&self, query: &Query) -> Answer {
        std::thread::sleep(self.delay);
        Answer {
            status: 200,
            body: format!("{{\"key\":\"{}\"}}", query.canonical_key()),
        }
    }
}

#[test]
fn overload_sheds_with_429_and_retry_after() {
    let server = Server::start_with_backend(
        ServerConfig {
            workers: 1,
            queue_capacity: 1,
            deadline: Duration::from_secs(30),
            ..ServerConfig::default()
        },
        Arc::new(SlowBackend {
            delay: Duration::from_millis(1200),
        }),
    )
    .unwrap();
    let addr = server.addr();

    // Distinct keys so nothing coalesces: r1 occupies the worker, r2
    // fills the queue, r3 must be shed.
    let fire = |ranks: usize| {
        let mut s = TcpStream::connect(addr).unwrap();
        let body = format!("{{\"workload\":\"micro-2kb\",\"ranks\":{ranks}}}");
        s.write_all(raw_request("POST", "/v1/predict", &body).as_bytes())
            .unwrap();
        s
    };
    let _r1 = fire(1);
    std::thread::sleep(Duration::from_millis(400)); // worker surely busy on r1
    let _r2 = fire(2);
    std::thread::sleep(Duration::from_millis(200)); // r2 parked in the queue
    let shed = call(
        addr,
        "POST",
        "/v1/predict",
        r#"{"workload":"micro-2kb","ranks":3}"#,
    );
    assert_eq!(shed.status, 429);
    assert_eq!(shed.header("retry-after"), Some("1"));
    assert!(shed.body.contains("queue full"));

    let metrics = call(addr, "GET", "/metrics", "");
    assert!(metrics.body.contains("pmemflow_serve_shed_total 1"));
    server.shutdown();
    server.join();
}

#[test]
fn deadline_miss_answers_504() {
    let server = Server::start_with_backend(
        ServerConfig {
            workers: 1,
            deadline: Duration::from_millis(100),
            ..ServerConfig::default()
        },
        Arc::new(SlowBackend {
            delay: Duration::from_millis(800),
        }),
    )
    .unwrap();
    let addr = server.addr();
    let r = call(
        addr,
        "POST",
        "/v1/predict",
        r#"{"workload":"micro-2kb","ranks":8}"#,
    );
    assert_eq!(r.status, 504);
    assert!(r.body.contains("deadline"));
    let metrics = call(addr, "GET", "/metrics", "");
    assert!(metrics
        .body
        .contains("pmemflow_serve_deadline_missed_total 1"));
    server.shutdown();
    server.join();
}

/// Panics exactly once — on the first `/v1/predict` for `ranks == 13` —
/// after lingering long enough for followers to coalesce onto the doomed
/// flight. Every other call answers instantly.
struct PanicOnceBackend {
    tripped: std::sync::atomic::AtomicBool,
}

impl Backend for PanicOnceBackend {
    fn answer(&self, query: &Query) -> Answer {
        use std::sync::atomic::Ordering::Relaxed;
        if matches!(query, Query::Predict { ranks: 13, .. }) && !self.tripped.swap(true, Relaxed) {
            std::thread::sleep(Duration::from_millis(500));
            panic!("injected worker fault");
        }
        Answer {
            status: 200,
            body: format!("{{\"key\":\"{}\"}}", query.canonical_key()),
        }
    }
}

#[test]
fn worker_panic_answers_500_everywhere_and_the_pool_self_heals() {
    let server = Server::start_with_backend(
        small_config(),
        Arc::new(PanicOnceBackend {
            tripped: std::sync::atomic::AtomicBool::new(false),
        }),
    )
    .unwrap();
    let addr = server.addr();
    let body = r#"{"workload":"micro-2kb","ranks":13}"#;

    // Leader: its computation will panic ~500ms in.
    let mut leader = TcpStream::connect(addr).unwrap();
    leader
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    leader
        .write_all(raw_request("POST", "/v1/predict", body).as_bytes())
        .unwrap();
    std::thread::sleep(Duration::from_millis(200));
    // Follower: same canonical key, coalesces onto the doomed flight.
    let mut follower = TcpStream::connect(addr).unwrap();
    follower
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    follower
        .write_all(raw_request("POST", "/v1/predict", body).as_bytes())
        .unwrap();

    // Both get a definite 500 — nobody hangs until the 504 deadline.
    let lr = read_response(&mut BufReader::new(leader));
    assert_eq!(lr.status, 500, "{}", lr.body);
    let fr = read_response(&mut BufReader::new(follower));
    assert_eq!(fr.status, 500, "{}", fr.body);

    // The pool self-healed: the same endpoint answers 200 afterwards,
    // and nothing poisonous was cached from the failed flight.
    let ok = call(addr, "POST", "/v1/predict", body);
    assert_eq!(ok.status, 200, "{}", ok.body);
    assert_eq!(ok.header("x-pmemflow-cache"), Some("miss"));

    let metrics = call(addr, "GET", "/metrics", "");
    assert!(metrics.body.contains("pmemflow_serve_panics_total 1"));
    assert!(metrics
        .body
        .contains("pmemflow_serve_worker_restarts_total 1"));
    assert!(metrics
        .body
        .contains("pmemflow_serve_responses_total{status=\"500\"} 2"));
    server.shutdown();
    assert_eq!(server.join(), 0, "connections leaked after a panic");
}

#[test]
fn slowloris_is_reaped_with_408_without_occupying_a_worker() {
    let server = Server::start_with_backend(
        ServerConfig {
            workers: 1,
            read_deadline: Duration::from_millis(700),
            ..ServerConfig::default()
        },
        Arc::new(SlowBackend {
            delay: Duration::from_millis(10),
        }),
    )
    .unwrap();
    let addr = server.addr();

    // The slowloris client: opens a request and then trickles header
    // bytes forever, never finishing.
    let mut victim = TcpStream::connect(addr).unwrap();
    victim
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    victim.write_all(b"POST /v1/predict HT").unwrap();
    let writer = {
        let mut stream = victim.try_clone().unwrap();
        std::thread::spawn(move || {
            // Fast enough to dodge any per-read socket timeout; the
            // absolute deadline must reap it anyway.
            for _ in 0..200 {
                std::thread::sleep(Duration::from_millis(50));
                if stream.write_all(b"x").is_err() {
                    return; // server closed the connection: reaped
                }
            }
        })
    };

    // Meanwhile the single worker is not occupied by the slow client:
    // a well-behaved request completes normally.
    std::thread::sleep(Duration::from_millis(100));
    let ok = call(
        addr,
        "POST",
        "/v1/predict",
        r#"{"workload":"micro-2kb","ranks":8}"#,
    );
    assert_eq!(ok.status, 200, "{}", ok.body);

    // The slowloris connection itself gets a definite 408 and is closed.
    let r = read_response(&mut BufReader::new(victim));
    assert_eq!(r.status, 408, "{}", r.body);
    assert_eq!(r.header("connection"), Some("close"));
    writer.join().unwrap();

    let metrics = call(addr, "GET", "/metrics", "");
    assert!(metrics
        .body
        .contains("pmemflow_serve_responses_total{status=\"408\"} 1"));
    server.shutdown();
    assert_eq!(server.join(), 0, "slowloris connection leaked");
}

#[test]
fn content_length_smuggling_is_rejected_on_the_wire() {
    let server = Server::start_with_backend(
        small_config(),
        Arc::new(SlowBackend {
            delay: Duration::from_millis(0),
        }),
    )
    .unwrap();
    let addr = server.addr();
    for raw in [
        // Two frame lengths, even agreeing ones.
        "POST /v1/predict HTTP/1.1\r\nHost: t\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nbody",
        // Signed length parses as usize but is not the RFC grammar.
        "POST /v1/predict HTTP/1.1\r\nHost: t\r\nContent-Length: +4\r\n\r\nbody",
    ] {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        stream.write_all(raw.as_bytes()).unwrap();
        let r = read_response(&mut BufReader::new(stream));
        assert_eq!(r.status, 400, "{raw:?}: {}", r.body);
        assert_eq!(r.header("connection"), Some("close"));
    }
    server.shutdown();
    server.join();
}

#[test]
fn responses_are_byte_identical_across_worker_counts() {
    let queries: [(&str, &str); 4] = [
        ("/v1/sweep", r#"{"workload":"micro-2kb","ranks":8}"#),
        ("/v1/recommend", r#"{"workload":"micro-2kb","ranks":8}"#),
        (
            "/v1/predict",
            r#"{"workload":"micro-2kb","ranks":8,"stack":"nova"}"#,
        ),
        (
            "/v1/coschedule",
            r#"{"tenants":[{"workload":"micro-2kb","ranks":8,"config":"S-LocW"},
                           {"workload":"micro-2kb","ranks":8,"config":"P-LocR"}]}"#,
        ),
    ];
    let answers = |workers: usize| -> Vec<String> {
        let server = Server::start(ServerConfig {
            workers,
            ..small_config()
        })
        .unwrap();
        let out = queries
            .iter()
            .map(|(path, body)| {
                let r = call(server.addr(), "POST", path, body);
                assert_eq!(r.status, 200, "{path}: {}", r.body);
                r.body
            })
            .collect();
        server.shutdown();
        server.join();
        out
    };
    assert_eq!(answers(1), answers(4), "worker count changed the bytes");
}
