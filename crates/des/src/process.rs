//! Processes: the actors of the simulation.
//!
//! A process models one execution context — in this system, one MPI rank of
//! a workflow component. Processes are written as explicit state machines:
//! the engine calls [`Process::next`] whenever the previous action completes,
//! and the process returns the next [`Action`] to perform. This avoids any
//! need for coroutines while keeping rank scripts (compute → I/O → publish →
//! repeat) easy to express.

use crate::flow::FlowAttrs;
use crate::time::{SimDuration, SimTime};

/// Identifier of a process within a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcessId(pub usize);

/// Identifier of a fluid resource (e.g. one PMEM device) within a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResourceId(pub usize);

/// Identifier of a version channel used for writer/reader synchronization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChannelId(pub usize);

/// What a process asks the engine to do next.
#[derive(Debug, Clone)]
pub enum Action {
    /// Spend `0` seconds of pure CPU time (a compute phase). The engine
    /// assumes ranks are pinned 1:1 to cores, so compute never contends.
    Compute(SimDuration),
    /// Move bytes through a fluid resource. Completes when all bytes have
    /// been transferred at the allocator-assigned (time-varying) rate.
    Io {
        /// Which resource carries the flow.
        resource: ResourceId,
        /// Total bytes to move (object payloads of one I/O phase or batch).
        bytes: f64,
        /// Flow attributes used by the rate allocator.
        attrs: FlowAttrs,
    },
    /// Park until `version` (or later) has been published on `channel`.
    /// Completes immediately if it already has been.
    WaitVersion {
        /// Channel to watch.
        channel: ChannelId,
        /// Minimum version to wait for.
        version: u64,
    },
    /// Publish `version` on `channel`, waking any processes waiting for it
    /// or an earlier version. Instantaneous.
    Publish {
        /// Channel to publish on.
        channel: ChannelId,
        /// Version number being made visible.
        version: u64,
    },
    /// Record a named instant in the process's timeline (e.g. "io-start").
    /// Instantaneous; used to split end-to-end time into phases.
    Mark(&'static str),
    /// The process has finished.
    Done,
}

/// Why `Process::next` is being called.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resume {
    /// First call after the process was spawned.
    Start,
    /// The previous action completed.
    ActionDone,
}

/// A simulated actor. Implementations are state machines: each call to
/// [`Process::next`] returns the following action. The engine guarantees
/// `next` is called exactly once per completed action, in deterministic
/// order.
pub trait Process: Send {
    /// Return the next action. `now` is the current virtual time.
    fn next(&mut self, now: SimTime, resume: Resume) -> Action;

    /// Descriptive name used in traces and per-process reports.
    fn name(&self) -> String {
        "proc".to_string()
    }
}

/// A process defined by a pre-built list of actions. Convenient for tests
/// and for simple workloads whose scripts can be fully materialized.
pub struct ScriptProcess {
    name: String,
    actions: std::vec::IntoIter<Action>,
}

impl ScriptProcess {
    /// Build from a name and an action list (executed in order).
    pub fn new(name: impl Into<String>, actions: Vec<Action>) -> Self {
        Self {
            name: name.into(),
            actions: actions.into_iter(),
        }
    }
}

impl Process for ScriptProcess {
    fn next(&mut self, _now: SimTime, _resume: Resume) -> Action {
        self.actions.next().unwrap_or(Action::Done)
    }

    fn name(&self) -> String {
        self.name.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_process_replays_then_done() {
        let mut p = ScriptProcess::new(
            "w0",
            vec![Action::Compute(SimDuration(1.0)), Action::Mark("io-start")],
        );
        assert!(matches!(
            p.next(SimTime::ZERO, Resume::Start),
            Action::Compute(_)
        ));
        assert!(matches!(
            p.next(SimTime::ZERO, Resume::ActionDone),
            Action::Mark("io-start")
        ));
        assert!(matches!(
            p.next(SimTime::ZERO, Resume::ActionDone),
            Action::Done
        ));
        // Stays Done forever.
        assert!(matches!(
            p.next(SimTime::ZERO, Resume::ActionDone),
            Action::Done
        ));
    }
}
