//! The discrete-event engine.
//!
//! The engine advances a virtual clock through a heap of timestamped events.
//! Two event kinds exist: process wake-ups (compute phases ending) and
//! resource checks (the earliest moment a fluid flow can complete under the
//! current rate assignment). Whenever the set of flows on a resource changes,
//! rates are recomputed by the resource's [`RateAllocator`] and a fresh check
//! is scheduled; stale checks are invalidated by an epoch counter.
//!
//! Determinism: events are ordered by `(time, sequence)`, all arithmetic is
//! pure `f64`, and no randomness or wall-clock input exists anywhere in the
//! engine, so identical inputs yield bit-identical reports.

use crate::flow::{ActiveFlow, FlowId, FlowView, RateAllocator};
use crate::process::{Action, ChannelId, Process, ProcessId, ResourceId, Resume};
use crate::stats::{ProcessReport, ResourceReport, SimReport};
use crate::time::{SimDuration, SimTime};
use crate::trace::{ProcessTimeline, Span, SpanKind, Timeline};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Bytes below which a flow is considered complete (guards float residue).
const EPS_BYTES: f64 = 1e-3;
/// Smallest admissible flow rate, bytes/s. Prevents a zero-rate stall.
const MIN_RATE: f64 = 1.0;

/// Errors a run can end with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The event budget was exhausted — almost certainly a model bug
    /// (e.g. a process spinning on instantaneous actions).
    EventBudgetExhausted {
        /// The configured budget.
        budget: u64,
    },
    /// The clock passed the configured horizon before all processes
    /// finished.
    HorizonExceeded {
        /// The configured horizon.
        horizon: SimTime,
    },
    /// Processes remain blocked with no pending events: a synchronization
    /// deadlock (e.g. a reader waiting for a version nobody publishes).
    Deadlock {
        /// Names of the blocked processes.
        blocked: Vec<String>,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::EventBudgetExhausted { budget } => {
                write!(f, "event budget of {budget} exhausted")
            }
            SimError::HorizonExceeded { horizon } => {
                write!(f, "simulation horizon {horizon} exceeded")
            }
            SimError::Deadlock { blocked } => {
                write!(f, "deadlock; blocked processes: {}", blocked.join(", "))
            }
        }
    }
}

impl std::error::Error for SimError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    Wake(ProcessId),
    ResourceCheck { resource: ResourceId, epoch: u64 },
}

#[derive(Debug, Clone, Copy)]
struct Event {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProcState {
    /// Waiting for a scheduled wake (fresh, or in a compute phase).
    Scheduled,
    /// Waiting for an I/O flow to complete.
    InIo {
        io_started: SimTime,
    },
    /// Parked on a version channel.
    WaitingVersion {
        channel: ChannelId,
        version: u64,
        since: SimTime,
    },
    Done,
}

struct ProcSlot {
    proc: Box<dyn Process>,
    state: ProcState,
    report: ProcessReport,
    timeline: ProcessTimeline,
}

struct ResourceState {
    allocator: Box<dyn RateAllocator>,
    flows: Vec<ActiveFlow>,
    last_update: SimTime,
    epoch: u64,
    report: ResourceReport,
}

#[derive(Debug, Default)]
struct ChannelState {
    published: u64,
    has_published: bool,
}

/// A configured simulation: resources, channels, and processes, plus run
/// limits. Build one, then call [`Simulation::run`].
pub struct Simulation {
    now: SimTime,
    seq: u64,
    events: BinaryHeap<Reverse<Event>>,
    procs: Vec<ProcSlot>,
    resources: Vec<ResourceState>,
    channels: Vec<ChannelState>,
    next_flow_id: u64,
    event_budget: u64,
    horizon: SimTime,
    events_processed: u64,
    max_heap_depth: usize,
    record_timeline: bool,
}

impl Default for Simulation {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulation {
    /// An empty simulation with default limits (200 M events, 10^9 s).
    pub fn new() -> Self {
        Self {
            now: SimTime::ZERO,
            seq: 0,
            events: BinaryHeap::new(),
            procs: Vec::new(),
            resources: Vec::new(),
            channels: Vec::new(),
            next_flow_id: 0,
            event_budget: 200_000_000,
            horizon: SimTime(1e9),
            events_processed: 0,
            max_heap_depth: 0,
            record_timeline: false,
        }
    }

    /// Record per-process span timelines (compute/io/wait) for rendering
    /// Gantt charts or Chrome traces. Off by default (costs memory
    /// proportional to the number of actions).
    pub fn with_timeline(mut self) -> Self {
        self.record_timeline = true;
        self
    }

    /// Cap the number of events processed before the run aborts.
    pub fn with_event_budget(mut self, budget: u64) -> Self {
        self.event_budget = budget;
        self
    }

    /// Cap the virtual clock before the run aborts.
    pub fn with_horizon(mut self, horizon: SimTime) -> Self {
        self.horizon = horizon;
        self
    }

    /// Register a fluid resource governed by `allocator`.
    pub fn add_resource(&mut self, allocator: Box<dyn RateAllocator>) -> ResourceId {
        let id = ResourceId(self.resources.len());
        let name = allocator.name().to_string();
        self.resources.push(ResourceState {
            allocator,
            flows: Vec::new(),
            last_update: SimTime::ZERO,
            epoch: 0,
            report: ResourceReport {
                name,
                ..Default::default()
            },
        });
        id
    }

    /// Create a version channel (monotone watermark writers publish to and
    /// readers wait on).
    pub fn add_channel(&mut self) -> ChannelId {
        let id = ChannelId(self.channels.len());
        self.channels.push(ChannelState::default());
        id
    }

    /// Spawn a process; it receives its first `next` call at t = 0 when the
    /// run starts (in spawn order).
    pub fn spawn(&mut self, proc: Box<dyn Process>) -> ProcessId {
        let id = ProcessId(self.procs.len());
        let name = proc.name();
        self.procs.push(ProcSlot {
            proc,
            state: ProcState::Scheduled,
            report: ProcessReport {
                name: name.clone(),
                ..Default::default()
            },
            timeline: ProcessTimeline {
                name,
                spans: Vec::new(),
            },
        });
        id
    }

    fn push_event(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.events.push(Reverse(Event { time, seq, kind }));
        self.max_heap_depth = self.max_heap_depth.max(self.events.len());
    }

    /// Run to completion of every process, returning the collected reports.
    pub fn run(mut self) -> Result<SimReport, SimError> {
        // Kick every process at t = 0 in spawn order.
        for i in 0..self.procs.len() {
            self.push_event(SimTime::ZERO, EventKind::Wake(ProcessId(i)));
        }
        let mut first_call = vec![true; self.procs.len()];

        while let Some(Reverse(ev)) = self.events.pop() {
            self.events_processed += 1;
            if self.events_processed > self.event_budget {
                return Err(SimError::EventBudgetExhausted {
                    budget: self.event_budget,
                });
            }
            debug_assert!(ev.time >= self.now, "event heap violated time order");
            if ev.time > self.horizon {
                return Err(SimError::HorizonExceeded {
                    horizon: self.horizon,
                });
            }
            self.now = ev.time;
            match ev.kind {
                EventKind::Wake(pid) => {
                    let resume = if std::mem::take(&mut first_call[pid.0]) {
                        Resume::Start
                    } else {
                        Resume::ActionDone
                    };
                    self.step_process(pid, resume);
                }
                EventKind::ResourceCheck { resource, epoch } => {
                    if self.resources[resource.0].epoch != epoch {
                        continue; // stale: membership changed since scheduling
                    }
                    self.resource_check(resource);
                }
            }
        }

        // No more events. Every process must be Done, otherwise we deadlocked.
        let blocked: Vec<String> = self
            .procs
            .iter()
            .filter(|p| p.state != ProcState::Done)
            .map(|p| p.report.name.clone())
            .collect();
        if !blocked.is_empty() {
            return Err(SimError::Deadlock { blocked });
        }

        let timeline = if self.record_timeline {
            Some(Timeline {
                processes: self.procs.iter().map(|p| p.timeline.clone()).collect(),
                end_time: self.now,
            })
        } else {
            None
        };
        Ok(SimReport {
            end_time: self.now,
            processes: self.procs.into_iter().map(|p| p.report).collect(),
            resources: self.resources.into_iter().map(|r| r.report).collect(),
            events_processed: self.events_processed,
            max_heap_depth: self.max_heap_depth,
            timeline,
        })
    }

    /// Drive one process until it blocks (compute, I/O, wait) or finishes.
    fn step_process(&mut self, pid: ProcessId, mut resume: Resume) {
        loop {
            let action = {
                let slot = &mut self.procs[pid.0];
                if slot.state == ProcState::Done {
                    return;
                }
                slot.proc.next(self.now, resume)
            };
            resume = Resume::ActionDone;
            match action {
                Action::Compute(d) => {
                    self.procs[pid.0].report.compute_time += d;
                    self.procs[pid.0].state = ProcState::Scheduled;
                    if self.record_timeline {
                        self.procs[pid.0].timeline.spans.push(Span {
                            start: self.now,
                            end: self.now + d,
                            kind: SpanKind::Compute,
                        });
                    }
                    self.push_event(self.now + d, EventKind::Wake(pid));
                    return;
                }
                Action::Io {
                    resource,
                    bytes,
                    attrs,
                } => {
                    assert!(
                        bytes.is_finite() && bytes > 0.0,
                        "I/O action must move a positive, finite byte count"
                    );
                    self.procs[pid.0].state = ProcState::InIo {
                        io_started: self.now,
                    };
                    let fid = FlowId(self.next_flow_id);
                    self.next_flow_id += 1;
                    self.settle(resource);
                    let res = &mut self.resources[resource.0];
                    res.flows.push(ActiveFlow {
                        id: fid,
                        owner: pid,
                        attrs,
                        total: bytes,
                        remaining: bytes,
                        rate: 0.0,
                    });
                    self.reallocate(resource);
                    return;
                }
                Action::WaitVersion { channel, version } => {
                    let ch = &self.channels[channel.0];
                    if ch.has_published && ch.published >= version {
                        continue; // already satisfied, no time passes
                    }
                    self.procs[pid.0].report.channel_waits += 1;
                    self.procs[pid.0].state = ProcState::WaitingVersion {
                        channel,
                        version,
                        since: self.now,
                    };
                    return;
                }
                Action::Publish { channel, version } => {
                    let ch = &mut self.channels[channel.0];
                    ch.has_published = true;
                    ch.published = ch.published.max(version);
                    let published = ch.published;
                    // Wake satisfied waiters via events at the current time
                    // (deterministic order by process id).
                    let mut to_wake: Vec<ProcessId> = Vec::new();
                    for (i, p) in self.procs.iter().enumerate() {
                        if let ProcState::WaitingVersion {
                            channel: c,
                            version: v,
                            ..
                        } = p.state
                        {
                            if c == channel && v <= published {
                                to_wake.push(ProcessId(i));
                            }
                        }
                    }
                    for wid in to_wake {
                        if let ProcState::WaitingVersion { since, .. } = self.procs[wid.0].state {
                            self.procs[wid.0].report.wait_time += self.now.since(since);
                            if self.record_timeline {
                                self.procs[wid.0].timeline.spans.push(Span {
                                    start: since,
                                    end: self.now,
                                    kind: SpanKind::Wait,
                                });
                            }
                        }
                        self.procs[wid.0].state = ProcState::Scheduled;
                        self.push_event(self.now, EventKind::Wake(wid));
                    }
                    continue;
                }
                Action::Mark(label) => {
                    self.procs[pid.0].report.marks.push((self.now, label));
                    continue;
                }
                Action::Done => {
                    self.procs[pid.0].state = ProcState::Done;
                    self.procs[pid.0].report.finished_at = Some(self.now);
                    return;
                }
            }
        }
    }

    /// Advance all flows on `rid` to the current time at their last rates.
    fn settle(&mut self, rid: ResourceId) {
        let res = &mut self.resources[rid.0];
        let dt = self.now.since(res.last_update);
        if !dt.is_zero() {
            let n = res.flows.len();
            res.report.record_interval(dt, n);
            for fl in &mut res.flows {
                let moved = (fl.rate * dt.seconds()).min(fl.remaining);
                fl.remaining -= moved;
                res.report
                    .record_bytes(fl.attrs.direction, fl.attrs.locality, moved);
            }
        }
        res.last_update = self.now;
    }

    /// Recompute rates after a membership change and schedule the next
    /// completion check. Must be called with flows settled to `self.now`.
    fn reallocate(&mut self, rid: ResourceId) {
        let res = &mut self.resources[rid.0];
        res.epoch += 1;
        if res.flows.is_empty() {
            return;
        }
        let views: Vec<FlowView> = res
            .flows
            .iter()
            .map(|f| FlowView {
                attrs: f.attrs,
                remaining: f.remaining,
            })
            .collect();
        let rates = res.allocator.allocate(&views);
        assert_eq!(
            rates.len(),
            res.flows.len(),
            "allocator returned {} rates for {} flows",
            rates.len(),
            res.flows.len()
        );
        let mut next_done = f64::INFINITY;
        for (fl, &r) in res.flows.iter_mut().zip(rates.iter()) {
            let r = r.min(fl.attrs.intrinsic_rate()).max(MIN_RATE);
            fl.rate = r;
            next_done = next_done.min(fl.remaining / r);
        }
        let epoch = res.epoch;
        let t = self.now + SimDuration::from_secs(next_done);
        self.push_event(
            t,
            EventKind::ResourceCheck {
                resource: rid,
                epoch,
            },
        );
    }

    /// Handle a (non-stale) resource check: settle, complete finished flows,
    /// wake their owners, reallocate.
    fn resource_check(&mut self, rid: ResourceId) {
        self.settle(rid);
        let res = &mut self.resources[rid.0];
        let mut finished: Vec<ActiveFlow> = Vec::new();
        let mut i = 0;
        while i < res.flows.len() {
            if res.flows[i].remaining <= EPS_BYTES {
                finished.push(res.flows.remove(i));
            } else {
                i += 1;
            }
        }
        if finished.is_empty() {
            // Float residue left every flow marginally unfinished: force the
            // nearest one to completion so the clock always advances.
            if let Some(min_idx) = res
                .flows
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.remaining.total_cmp(&b.1.remaining))
                .map(|(i, _)| i)
            {
                let mut fl = res.flows.remove(min_idx);
                res.report
                    .record_bytes(fl.attrs.direction, fl.attrs.locality, fl.remaining);
                fl.remaining = 0.0;
                finished.push(fl);
            }
        }
        res.report.flows_completed += finished.len() as u64;
        res.report.peak_concurrency = res
            .report
            .peak_concurrency
            .max(res.flows.len() + finished.len());
        self.reallocate(rid);
        // Wake owners in flow-id order (== submission order): deterministic.
        finished.sort_by_key(|f| f.id);
        for fl in finished {
            let slot = &mut self.procs[fl.owner.0];
            if let ProcState::InIo { io_started } = slot.state {
                slot.report.io_time += self.now.since(io_started);
                if self.record_timeline {
                    slot.timeline.spans.push(Span {
                        start: io_started,
                        end: self.now,
                        kind: SpanKind::Io,
                    });
                }
            }
            slot.report.io_bytes += fl.total;
            slot.state = ProcState::Scheduled;
            self.step_process(fl.owner, Resume::ActionDone);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{Direction, FairShareAllocator, FlowAttrs, Locality, UncontendedAllocator};
    use crate::process::ScriptProcess;

    fn io(resource: ResourceId, bytes: f64, peak: f64) -> Action {
        Action::Io {
            resource,
            bytes,
            attrs: FlowAttrs {
                direction: Direction::Write,
                locality: Locality::Local,
                access_bytes: 1 << 20,
                sw_time_per_byte: 0.0,
                peak_device_rate: peak,
            },
        }
    }

    #[test]
    fn single_compute_process() {
        let mut sim = Simulation::new();
        sim.spawn(Box::new(ScriptProcess::new(
            "c",
            vec![Action::Compute(SimDuration(2.5))],
        )));
        let rep = sim.run().unwrap();
        assert_eq!(rep.end_time, SimTime(2.5));
        assert_eq!(rep.processes[0].compute_time.seconds(), 2.5);
    }

    #[test]
    fn single_flow_takes_bytes_over_rate() {
        let mut sim = Simulation::new();
        let r = sim.add_resource(Box::new(UncontendedAllocator));
        sim.spawn(Box::new(ScriptProcess::new(
            "w",
            vec![io(r, 10e9, 2e9)], // 10 GB at 2 GB/s -> 5 s
        )));
        let rep = sim.run().unwrap();
        assert!((rep.end_time.seconds() - 5.0).abs() < 1e-6);
        assert!((rep.processes[0].io_time.seconds() - 5.0).abs() < 1e-6);
        assert!((rep.resources[0].total_bytes() - 10e9).abs() < 1.0);
    }

    #[test]
    fn two_flows_share_fairly() {
        let mut sim = Simulation::new();
        let r = sim.add_resource(Box::new(FairShareAllocator::new(2e9)));
        for i in 0..2 {
            sim.spawn(Box::new(ScriptProcess::new(
                format!("w{i}"),
                vec![io(r, 2e9, 10e9)],
            )));
        }
        // Each gets 1 GB/s, both finish at t = 2.
        let rep = sim.run().unwrap();
        assert!((rep.end_time.seconds() - 2.0).abs() < 1e-6);
        assert_eq!(rep.resources[0].peak_concurrency, 2);
    }

    #[test]
    fn departure_releases_bandwidth() {
        let mut sim = Simulation::new();
        let r = sim.add_resource(Box::new(FairShareAllocator::new(2e9)));
        // A short and a long flow: short (1 GB) finishes at t=1 at 1 GB/s,
        // then long (3 GB) runs at 2 GB/s: 1 GB done by t=1, 2 GB left ->
        // finishes at t = 2.
        sim.spawn(Box::new(ScriptProcess::new(
            "short",
            vec![io(r, 1e9, 10e9)],
        )));
        sim.spawn(Box::new(ScriptProcess::new("long", vec![io(r, 3e9, 10e9)])));
        let rep = sim.run().unwrap();
        let short_done = rep.processes[0].finished_at.unwrap().seconds();
        let long_done = rep.processes[1].finished_at.unwrap().seconds();
        assert!((short_done - 1.0).abs() < 1e-6, "short at {short_done}");
        assert!((long_done - 2.0).abs() < 1e-6, "long at {long_done}");
    }

    #[test]
    fn staggered_arrival_reallocates() {
        let mut sim = Simulation::new();
        let r = sim.add_resource(Box::new(FairShareAllocator::new(2e9)));
        // P0 starts I/O at t=0: 3 GB. P1 computes 1 s then 1 GB of I/O.
        // t in [0,1): p0 alone at 2 GB/s -> 2 GB done, 1 GB left.
        // t in [1,?): both at 1 GB/s. p1 needs 1 s (done t=2); p0 1 GB (t=2).
        sim.spawn(Box::new(ScriptProcess::new("p0", vec![io(r, 3e9, 10e9)])));
        sim.spawn(Box::new(ScriptProcess::new(
            "p1",
            vec![Action::Compute(SimDuration(1.0)), io(r, 1e9, 10e9)],
        )));
        let rep = sim.run().unwrap();
        assert!((rep.end_time.seconds() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn version_channel_pipelines() {
        let mut sim = Simulation::new();
        let ch_handle;
        {
            ch_handle = sim.add_channel();
        }
        let ch = ch_handle;
        // Writer computes 1 s then publishes v1, again for v2.
        sim.spawn(Box::new(ScriptProcess::new(
            "writer",
            vec![
                Action::Compute(SimDuration(1.0)),
                Action::Publish {
                    channel: ch,
                    version: 1,
                },
                Action::Compute(SimDuration(1.0)),
                Action::Publish {
                    channel: ch,
                    version: 2,
                },
            ],
        )));
        // Reader waits v1, computes 0.2, waits v2.
        sim.spawn(Box::new(ScriptProcess::new(
            "reader",
            vec![
                Action::WaitVersion {
                    channel: ch,
                    version: 1,
                },
                Action::Compute(SimDuration(0.2)),
                Action::WaitVersion {
                    channel: ch,
                    version: 2,
                },
                Action::Mark("got-v2"),
            ],
        )));
        let rep = sim.run().unwrap();
        assert!((rep.end_time.seconds() - 2.0).abs() < 1e-9);
        let reader = &rep.processes[1];
        assert!((reader.wait_time.seconds() - 1.8).abs() < 1e-9);
        assert_eq!(reader.mark("got-v2"), Some(SimTime(2.0)));
    }

    #[test]
    fn wait_on_already_published_version_is_instant() {
        let mut sim = Simulation::new();
        let ch = sim.add_channel();
        sim.spawn(Box::new(ScriptProcess::new(
            "w",
            vec![Action::Publish {
                channel: ch,
                version: 5,
            }],
        )));
        sim.spawn(Box::new(ScriptProcess::new(
            "r",
            vec![
                Action::Compute(SimDuration(1.0)),
                Action::WaitVersion {
                    channel: ch,
                    version: 3,
                },
            ],
        )));
        let rep = sim.run().unwrap();
        assert_eq!(rep.processes[1].wait_time.seconds(), 0.0);
        assert_eq!(rep.end_time, SimTime(1.0));
    }

    #[test]
    fn deadlock_detected() {
        let mut sim = Simulation::new();
        let ch = sim.add_channel();
        sim.spawn(Box::new(ScriptProcess::new(
            "r",
            vec![Action::WaitVersion {
                channel: ch,
                version: 1,
            }],
        )));
        match sim.run() {
            Err(SimError::Deadlock { blocked }) => assert_eq!(blocked, vec!["r"]),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn event_budget_enforced() {
        let mut sim = Simulation::new().with_event_budget(10);
        let mut actions = Vec::new();
        for _ in 0..100 {
            actions.push(Action::Compute(SimDuration(0.001)));
        }
        sim.spawn(Box::new(ScriptProcess::new("spin", actions)));
        assert!(matches!(
            sim.run(),
            Err(SimError::EventBudgetExhausted { .. })
        ));
    }

    #[test]
    fn horizon_enforced() {
        let mut sim = Simulation::new().with_horizon(SimTime(1.0));
        sim.spawn(Box::new(ScriptProcess::new(
            "slow",
            vec![Action::Compute(SimDuration(5.0))],
        )));
        assert!(matches!(sim.run(), Err(SimError::HorizonExceeded { .. })));
    }

    #[test]
    fn determinism_bitwise() {
        let build = || {
            let mut sim = Simulation::new();
            let r = sim.add_resource(Box::new(FairShareAllocator::new(3.1e9)));
            let ch = sim.add_channel();
            for i in 0..7 {
                sim.spawn(Box::new(ScriptProcess::new(
                    format!("w{i}"),
                    vec![
                        Action::Compute(SimDuration(0.1 * (i + 1) as f64)),
                        io(r, 1.7e9 + i as f64 * 3e8, 5e9),
                        Action::Publish {
                            channel: ch,
                            version: i as u64 + 1,
                        },
                    ],
                )));
            }
            sim.spawn(Box::new(ScriptProcess::new(
                "r",
                vec![
                    Action::WaitVersion {
                        channel: ch,
                        version: 7,
                    },
                    io(r, 9e9, 8e9),
                ],
            )));
            sim.run().unwrap()
        };
        let a = build();
        let b = build();
        assert_eq!(
            a.end_time.seconds().to_bits(),
            b.end_time.seconds().to_bits()
        );
        assert_eq!(a.events_processed, b.events_processed);
        for (pa, pb) in a.processes.iter().zip(b.processes.iter()) {
            assert_eq!(
                pa.io_time.seconds().to_bits(),
                pb.io_time.seconds().to_bits()
            );
        }
    }

    #[test]
    fn engine_counters_are_recorded() {
        let mut sim = Simulation::new();
        let ch = sim.add_channel();
        sim.spawn(Box::new(ScriptProcess::new(
            "w",
            vec![
                Action::Compute(SimDuration(1.0)),
                Action::Publish {
                    channel: ch,
                    version: 1,
                },
            ],
        )));
        sim.spawn(Box::new(ScriptProcess::new(
            "r",
            vec![
                // Parks once (v1 not yet published at t=0) ...
                Action::WaitVersion {
                    channel: ch,
                    version: 1,
                },
                // ... then this wait is satisfied instantly: not counted.
                Action::WaitVersion {
                    channel: ch,
                    version: 1,
                },
            ],
        )));
        let rep = sim.run().unwrap();
        assert_eq!(rep.processes[0].channel_waits, 0);
        assert_eq!(rep.processes[1].channel_waits, 1);
        assert!(rep.max_heap_depth >= 2, "both start events coexist");
        assert!(rep.max_heap_depth as u64 <= rep.events_processed);
    }

    #[test]
    fn software_overhead_reduces_rate() {
        // One flow, sw time 1 ns/byte, device 2e9 B/s -> intrinsic
        // 1/(1e-9 + 0.5e-9) = 2/3 GB/s; 2 GB should take 3 s.
        let mut sim = Simulation::new();
        let r = sim.add_resource(Box::new(UncontendedAllocator));
        sim.spawn(Box::new(ScriptProcess::new(
            "w",
            vec![Action::Io {
                resource: r,
                bytes: 2e9,
                attrs: FlowAttrs {
                    direction: Direction::Write,
                    locality: Locality::Local,
                    access_bytes: 2048,
                    sw_time_per_byte: 1e-9,
                    peak_device_rate: 2e9,
                },
            }],
        )));
        let rep = sim.run().unwrap();
        assert!((rep.end_time.seconds() - 3.0).abs() < 1e-6);
    }

    #[test]
    fn resource_reports_track_classes() {
        let mut sim = Simulation::new();
        let r = sim.add_resource(Box::new(UncontendedAllocator));
        sim.spawn(Box::new(ScriptProcess::new(
            "w",
            vec![Action::Io {
                resource: r,
                bytes: 1e9,
                attrs: FlowAttrs {
                    direction: Direction::Read,
                    locality: Locality::Remote,
                    access_bytes: 4096,
                    sw_time_per_byte: 0.0,
                    peak_device_rate: 1e9,
                },
            }],
        )));
        let rep = sim.run().unwrap();
        let b = rep.resources[0].bytes_by_class.get(&("R", "rem")).copied();
        assert!((b.unwrap() - 1e9).abs() < 1.0);
        assert_eq!(rep.resources[0].flows_completed, 1);
    }
}
