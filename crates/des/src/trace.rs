//! Execution timelines: per-process event traces and exports.
//!
//! The paper's split bar graphs and our debugging both need to know *when*
//! each rank computed, moved bytes, and waited. The engine can record a
//! [`Timeline`] of span events per process; this module renders it as an
//! ASCII Gantt chart (for terminals and docs) and as Chrome trace-event
//! JSON (load `chrome://tracing` or Perfetto and drop the file in).

use crate::time::SimTime;
use std::fmt::Write as _;

/// What a process was doing during a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// Kernel compute.
    Compute,
    /// An I/O flow in flight.
    Io,
    /// Parked on a version channel.
    Wait,
}

impl SpanKind {
    /// Single-character glyph for ASCII rendering.
    pub fn glyph(self) -> char {
        match self {
            SpanKind::Compute => '#',
            SpanKind::Io => '=',
            SpanKind::Wait => '.',
        }
    }

    /// Name used in trace exports.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Compute => "compute",
            SpanKind::Io => "io",
            SpanKind::Wait => "wait",
        }
    }
}

/// One closed span in a process's timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// Span start.
    pub start: SimTime,
    /// Span end (≥ start).
    pub end: SimTime,
    /// What the process was doing.
    pub kind: SpanKind,
}

impl Span {
    /// Span length in seconds.
    pub fn seconds(&self) -> f64 {
        (self.end.seconds() - self.start.seconds()).max(0.0)
    }
}

/// A per-process sequence of spans, in time order.
#[derive(Debug, Clone, Default)]
pub struct ProcessTimeline {
    /// Process name.
    pub name: String,
    /// Closed spans in start order.
    pub spans: Vec<Span>,
}

impl ProcessTimeline {
    /// Total seconds spent in `kind`.
    pub fn total(&self, kind: SpanKind) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.kind == kind)
            .map(Span::seconds)
            .sum()
    }
}

/// Timelines for every process of a run.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    /// One timeline per process, in spawn order.
    pub processes: Vec<ProcessTimeline>,
    /// End of the run.
    pub end_time: SimTime,
}

impl Timeline {
    /// Render an ASCII Gantt chart `width` characters wide.
    ///
    /// `#` = compute, `=` = I/O, `.` = waiting, space = finished/idle.
    pub fn ascii_gantt(&self, width: usize) -> String {
        let width = width.max(10);
        let end = self.end_time.seconds().max(1e-12);
        let mut out = String::new();
        let name_w = self
            .processes
            .iter()
            .map(|p| p.name.len())
            .max()
            .unwrap_or(4)
            .min(24);
        for p in &self.processes {
            let mut row = vec![' '; width];
            for span in &p.spans {
                let a = ((span.start.seconds() / end) * width as f64).floor() as usize;
                let b = ((span.end.seconds() / end) * width as f64).ceil() as usize;
                for cell in row.iter_mut().take(b.min(width)).skip(a.min(width)) {
                    *cell = span.kind.glyph();
                }
            }
            let _ = writeln!(
                out,
                "{:<name_w$} |{}|",
                &p.name[..p.name.len().min(name_w)],
                row.into_iter().collect::<String>()
            );
        }
        let _ = writeln!(
            out,
            "{:<name_w$}  0s{:>pad$}",
            "",
            format!("{:.2}s", end),
            pad = width.saturating_sub(2)
        );
        out.push_str("legend: # compute  = io  . wait\n");
        out
    }

    /// Export as Chrome trace-event JSON (complete events, microseconds).
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::from("[");
        let mut first = true;
        for (pid, p) in self.processes.iter().enumerate() {
            for span in &p.spans {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(
                    out,
                    "\n{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{},\"args\":{{\"process\":\"{}\"}}}}",
                    span.kind.name(),
                    span.kind.name(),
                    crate::json::json_f64((span.start.seconds() * 1e6 * 1e3).round() / 1e3),
                    crate::json::json_f64((span.seconds() * 1e6 * 1e3).round() / 1e3),
                    pid,
                    crate::json::json_escape(&p.name)
                );
            }
        }
        out.push_str("\n]\n");
        out
    }

    /// Fraction of the run during which at least `k` processes were in I/O
    /// simultaneously — a quick view of device pressure.
    pub fn io_overlap_fraction(&self, k: usize) -> f64 {
        let end = self.end_time.seconds();
        if end <= 0.0 {
            return 0.0;
        }
        // Sweep over span boundaries.
        let mut events: Vec<(f64, i64)> = Vec::new();
        for p in &self.processes {
            for s in p.spans.iter().filter(|s| s.kind == SpanKind::Io) {
                events.push((s.start.seconds(), 1));
                events.push((s.end.seconds(), -1));
            }
        }
        events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut active = 0i64;
        let mut covered = 0.0;
        let mut last = 0.0;
        for (t, d) in events {
            if active >= k as i64 {
                covered += t - last;
            }
            active += d;
            last = t;
        }
        covered / end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tl() -> Timeline {
        Timeline {
            processes: vec![
                ProcessTimeline {
                    name: "writer-0".into(),
                    spans: vec![
                        Span {
                            start: SimTime(0.0),
                            end: SimTime(1.0),
                            kind: SpanKind::Compute,
                        },
                        Span {
                            start: SimTime(1.0),
                            end: SimTime(2.0),
                            kind: SpanKind::Io,
                        },
                    ],
                },
                ProcessTimeline {
                    name: "reader-0".into(),
                    spans: vec![
                        Span {
                            start: SimTime(0.0),
                            end: SimTime(1.5),
                            kind: SpanKind::Wait,
                        },
                        Span {
                            start: SimTime(1.5),
                            end: SimTime(2.5),
                            kind: SpanKind::Io,
                        },
                    ],
                },
            ],
            end_time: SimTime(2.5),
        }
    }

    #[test]
    fn totals_per_kind() {
        let t = tl();
        assert!((t.processes[0].total(SpanKind::Compute) - 1.0).abs() < 1e-12);
        assert!((t.processes[0].total(SpanKind::Io) - 1.0).abs() < 1e-12);
        assert!((t.processes[1].total(SpanKind::Wait) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn ascii_gantt_shape() {
        let g = tl().ascii_gantt(40);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 4); // two rows + axis + legend
        assert!(lines[0].contains('#') && lines[0].contains('='));
        assert!(lines[1].contains('.') && lines[1].contains('='));
        assert!(g.contains("legend"));
    }

    #[test]
    fn chrome_trace_is_wellformed_json_array() {
        let j = tl().chrome_trace_json();
        assert!(j.trim_start().starts_with('['));
        assert!(j.trim_end().ends_with(']'));
        assert_eq!(j.matches("\"ph\":\"X\"").count(), 4);
        assert!(j.contains("\"name\":\"compute\""));
        // Balanced braces (cheap sanity check without a JSON dep).
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn chrome_trace_survives_hostile_names_and_times() {
        // A process name with quotes/control characters must be escaped,
        // and non-finite span times must degrade to null, not "NaN".
        let t = Timeline {
            processes: vec![ProcessTimeline {
                name: "rank \"0\"\n\u{1}".into(),
                spans: vec![Span {
                    start: SimTime(f64::NAN),
                    end: SimTime(1.0),
                    kind: SpanKind::Io,
                }],
            }],
            end_time: SimTime(1.0),
        };
        let j = t.chrome_trace_json();
        assert!(j.contains("rank \\\"0\\\"\\n\\u0001"), "{j}");
        assert!(j.contains("\"ts\":null"), "{j}");
        assert!(!j.contains("NaN"), "{j}");
        // Still a balanced document: the quote in the name did not
        // terminate the string literal early.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn io_overlap_fraction_counts_concurrent_io() {
        let t = tl();
        // I/O spans: [1,2] and [1.5,2.5] -> overlap of 2 flows on [1.5,2].
        let f2 = t.io_overlap_fraction(2);
        assert!((f2 - 0.5 / 2.5).abs() < 1e-9, "{f2}");
        let f1 = t.io_overlap_fraction(1);
        assert!((f1 - 1.5 / 2.5).abs() < 1e-9, "{f1}");
    }

    #[test]
    fn empty_timeline_renders() {
        let t = Timeline::default();
        assert!(t.ascii_gantt(20).contains("legend"));
        assert_eq!(t.io_overlap_fraction(1), 0.0);
    }
}
