//! Per-process and per-resource accounting collected during a run.

use crate::flow::{Direction, Locality};
use crate::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Everything measured about one process over a run.
#[derive(Debug, Clone, Default)]
pub struct ProcessReport {
    /// Name supplied by the [`crate::process::Process`] implementation.
    pub name: String,
    /// Total virtual time spent in `Compute` actions.
    pub compute_time: SimDuration,
    /// Total virtual time spent with an active I/O flow (submission to
    /// completion, software overhead included).
    pub io_time: SimDuration,
    /// Total bytes moved by this process's flows.
    pub io_bytes: f64,
    /// Total virtual time spent parked on `WaitVersion`.
    pub wait_time: SimDuration,
    /// Number of times the process actually parked on a version channel
    /// (waits satisfied instantly are not counted).
    pub channel_waits: u64,
    /// Instant the process returned `Done`, if it did.
    pub finished_at: Option<SimTime>,
    /// Named instants recorded via `Action::Mark`, in order.
    pub marks: Vec<(SimTime, &'static str)>,
}

impl ProcessReport {
    /// The first mark with the given label, if any.
    pub fn mark(&self, label: &str) -> Option<SimTime> {
        self.marks
            .iter()
            .find(|(_, l)| *l == label)
            .map(|(t, _)| *t)
    }

    /// The last mark with the given label, if any.
    pub fn last_mark(&self, label: &str) -> Option<SimTime> {
        self.marks
            .iter()
            .rev()
            .find(|(_, l)| *l == label)
            .map(|(t, _)| *t)
    }
}

/// Traffic and occupancy accounting for one fluid resource.
#[derive(Debug, Clone, Default)]
pub struct ResourceReport {
    /// Allocator name.
    pub name: String,
    /// Bytes moved, keyed by flow class.
    pub bytes_by_class: BTreeMap<(&'static str, &'static str), f64>,
    /// Virtual time during which at least one flow was active.
    pub busy_time: SimDuration,
    /// Time-integral of the number of active flows (divide by the run length
    /// for average concurrency).
    pub concurrency_integral: f64,
    /// Largest number of simultaneously active flows observed.
    pub peak_concurrency: usize,
    /// Number of flow completions.
    pub flows_completed: u64,
}

impl ResourceReport {
    pub(crate) fn record_interval(&mut self, dt: SimDuration, n_active: usize) {
        if n_active > 0 {
            self.busy_time += dt;
            self.concurrency_integral += dt.seconds() * n_active as f64;
        }
    }

    pub(crate) fn record_bytes(&mut self, dir: Direction, loc: Locality, bytes: f64) {
        *self
            .bytes_by_class
            .entry((dir.label(), loc.label()))
            .or_insert(0.0) += bytes;
    }

    /// Total bytes moved through the resource.
    pub fn total_bytes(&self) -> f64 {
        self.bytes_by_class.values().sum()
    }

    /// Average concurrency while busy (0 if never busy).
    pub fn mean_busy_concurrency(&self) -> f64 {
        if self.busy_time.is_zero() {
            0.0
        } else {
            self.concurrency_integral / self.busy_time.seconds()
        }
    }

    /// Effective throughput while busy, bytes/second.
    pub fn busy_throughput(&self) -> f64 {
        if self.busy_time.is_zero() {
            0.0
        } else {
            self.total_bytes() / self.busy_time.seconds()
        }
    }
}

/// Complete result of a simulation run.
#[derive(Debug, Clone, Default)]
pub struct SimReport {
    /// Instant the last process finished (or the clock when the run stopped).
    pub end_time: SimTime,
    /// One report per spawned process, in spawn order.
    pub processes: Vec<ProcessReport>,
    /// One report per resource, in registration order.
    pub resources: Vec<ResourceReport>,
    /// Number of events processed (diagnostics; deterministic).
    pub events_processed: u64,
    /// Largest event-heap depth observed (diagnostics; deterministic).
    pub max_heap_depth: usize,
    /// Per-process span timelines, if requested via
    /// [`crate::Simulation::with_timeline`].
    pub timeline: Option<crate::trace::Timeline>,
}

impl SimReport {
    /// Latest finish time across processes whose name passes `pred`.
    pub fn finish_time_where(&self, pred: impl Fn(&str) -> bool) -> Option<SimTime> {
        self.processes
            .iter()
            .filter(|p| pred(&p.name))
            .filter_map(|p| p.finished_at)
            .max()
    }

    /// Earliest mark with `label` across processes whose name passes `pred`.
    pub fn first_mark_where(&self, label: &str, pred: impl Fn(&str) -> bool) -> Option<SimTime> {
        self.processes
            .iter()
            .filter(|p| pred(&p.name))
            .filter_map(|p| p.mark(label))
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resource_report_accumulates() {
        let mut r = ResourceReport::default();
        r.record_interval(SimDuration(2.0), 3);
        r.record_interval(SimDuration(1.0), 0);
        r.record_bytes(Direction::Read, Locality::Local, 10.0);
        r.record_bytes(Direction::Read, Locality::Local, 5.0);
        assert_eq!(r.busy_time.seconds(), 2.0);
        assert!((r.mean_busy_concurrency() - 3.0).abs() < 1e-12);
        assert_eq!(r.total_bytes(), 15.0);
        assert!((r.busy_throughput() - 7.5).abs() < 1e-12);
    }

    #[test]
    fn process_report_mark_lookup() {
        let p = ProcessReport {
            marks: vec![
                (SimTime(1.0), "io-start"),
                (SimTime(2.0), "io-start"),
                (SimTime(3.0), "done"),
            ],
            ..Default::default()
        };
        assert_eq!(p.mark("io-start"), Some(SimTime(1.0)));
        assert_eq!(p.last_mark("io-start"), Some(SimTime(2.0)));
        assert_eq!(p.mark("missing"), None);
    }
}
