//! Virtual time for the simulation.
//!
//! The engine runs on a continuous virtual clock measured in seconds and
//! represented as `f64`. All arithmetic in the engine is deterministic (no
//! wall-clock reads, no randomness), so two runs with identical inputs
//! produce bit-identical timelines. `SimTime` and `SimDuration` are newtypes
//! so that instants and spans cannot be confused, and both provide a total
//! order via [`f64::total_cmp`] so they can key ordered collections.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant on the virtual clock, in seconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimTime(pub f64);

/// A span of virtual time, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimDuration(pub f64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0.0);

    /// Seconds since simulation start.
    #[inline]
    pub fn seconds(self) -> f64 {
        self.0
    }

    /// The span from `earlier` to `self`. Panics in debug builds if
    /// `earlier` is later than `self` by more than floating-point noise.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(
            self.0 - earlier.0 > -1e-9,
            "time went backwards: {} -> {}",
            earlier.0,
            self.0
        );
        SimDuration((self.0 - earlier.0).max(0.0))
    }

    /// True if the instant is finite (not saturated by a runaway model).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0.0);

    /// Construct from seconds. Negative or NaN inputs are clamped to zero;
    /// durations are spans and can never be negative.
    #[inline]
    pub fn from_secs(s: f64) -> SimDuration {
        if s.is_nan() {
            return SimDuration(0.0);
        }
        SimDuration(s.max(0.0))
    }

    /// Construct from microseconds.
    #[inline]
    pub fn from_micros(us: f64) -> SimDuration {
        Self::from_secs(us * 1e-6)
    }

    /// Construct from nanoseconds.
    #[inline]
    pub fn from_nanos(ns: f64) -> SimDuration {
        Self::from_secs(ns * 1e-9)
    }

    /// The span in seconds.
    #[inline]
    pub fn seconds(self) -> f64 {
        self.0
    }

    /// True if this span is zero (or numerically indistinguishable from it).
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 <= 0.0
    }
}

impl Eq for SimTime {}
impl Ord for SimTime {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}
impl PartialOrd for SimTime {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Eq for SimDuration {}
impl Ord for SimDuration {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}
impl PartialOrd for SimDuration {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs(self.0 * rhs)
    }
}

impl Div<f64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1.0 {
            write!(f, "{:.3}s", self.0)
        } else if self.0 >= 1e-3 {
            write!(f, "{:.3}ms", self.0 * 1e3)
        } else if self.0 >= 1e-6 {
            write!(f, "{:.3}us", self.0 * 1e6)
        } else {
            write!(f, "{:.1}ns", self.0 * 1e9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_plus_duration() {
        let t = SimTime(1.5) + SimDuration(0.25);
        assert_eq!(t, SimTime(1.75));
    }

    #[test]
    fn since_is_nonnegative() {
        let d = SimTime(2.0).since(SimTime(1.0));
        assert_eq!(d.seconds(), 1.0);
        // Floating-point noise below the epoch is clamped.
        let d = SimTime(1.0).since(SimTime(1.0 + 1e-12));
        assert_eq!(d.seconds(), 0.0);
    }

    #[test]
    fn duration_clamps_negative_and_nan() {
        assert_eq!(SimDuration::from_secs(-1.0).seconds(), 0.0);
        assert_eq!(SimDuration::from_secs(f64::NAN).seconds(), 0.0);
    }

    #[test]
    fn total_order_handles_equal_times() {
        let a = SimTime(3.0);
        let b = SimTime(3.0);
        assert_eq!(a.cmp(&b), Ordering::Equal);
        assert!(SimTime(2.0) < SimTime(3.0));
    }

    #[test]
    fn unit_constructors() {
        assert!((SimDuration::from_micros(1.0).seconds() - 1e-6).abs() < 1e-18);
        assert!((SimDuration::from_nanos(90.0).seconds() - 9e-8).abs() < 1e-20);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDuration(2.5)), "2.500s");
        assert_eq!(format!("{}", SimDuration(2.5e-3)), "2.500ms");
        assert_eq!(format!("{}", SimDuration(2.5e-6)), "2.500us");
        assert_eq!(format!("{}", SimDuration(9.0e-8)), "90.0ns");
    }

    #[test]
    fn duration_arithmetic_saturates_at_zero() {
        let d = SimDuration(1.0) - SimDuration(2.0);
        assert_eq!(d.seconds(), 0.0);
    }
}
