//! # pmemflow-des — deterministic fluid discrete-event engine
//!
//! The simulation substrate for the `pmemflow` reproduction of *Scheduling
//! HPC Workflows with Intel Optane Persistent Memory* (IPDPS 2021).
//!
//! The engine combines two classical techniques:
//!
//! * **Discrete events** for compute phases and synchronization (version
//!   channels between workflow writers and readers), and
//! * **Fluid-flow modeling** for I/O: a rank's whole I/O phase is a *flow*
//!   with a byte total; a pluggable [`RateAllocator`] (the Optane device
//!   model lives in `pmemflow-pmem`) assigns every concurrent flow a rate,
//!   re-evaluated exactly at the instants the flow set changes. Between
//!   changes rates are constant, so the integration is exact.
//!
//! This keeps event counts bounded by the number of *phases*, not the number
//! of object operations — essential when a single 2 KB-object workload from
//! the paper performs half a million operations per rank per iteration.
//!
//! Everything is deterministic: same inputs, bit-identical output.
//!
//! ```
//! use pmemflow_des::{
//!     Action, FairShareAllocator, Direction, FlowAttrs, Locality,
//!     ScriptProcess, SimDuration, Simulation,
//! };
//!
//! let mut sim = Simulation::new();
//! let dev = sim.add_resource(Box::new(FairShareAllocator::new(2e9)));
//! sim.spawn(Box::new(ScriptProcess::new(
//!     "rank0",
//!     vec![
//!         Action::Compute(SimDuration(1.0)),
//!         Action::Io {
//!             resource: dev,
//!             bytes: 4e9,
//!             attrs: FlowAttrs {
//!                 direction: Direction::Write,
//!                 locality: Locality::Local,
//!                 access_bytes: 64 << 20,
//!                 sw_time_per_byte: 0.0,
//!                 peak_device_rate: 2.3e9,
//!             },
//!         },
//!     ],
//! )));
//! let report = sim.run().unwrap();
//! assert!(report.end_time.seconds() > 1.0);
//! ```

#![warn(missing_docs)]

mod engine;
mod flow;
pub mod json;
mod process;
pub mod rng;
mod stats;
mod time;
pub mod trace;

pub use engine::{SimError, Simulation};
pub use flow::{
    water_fill, Direction, FairShareAllocator, FlowAttrs, FlowId, FlowView, Locality,
    RateAllocator, UncontendedAllocator,
};
pub use json::{json_escape, json_f64};
pub use process::{Action, ChannelId, Process, ProcessId, ResourceId, Resume, ScriptProcess};
pub use stats::{ProcessReport, ResourceReport, SimReport};
pub use time::{SimDuration, SimTime};
pub use trace::{ProcessTimeline, Span, SpanKind, Timeline};
