//! Fluid flows and rate allocation.
//!
//! A *flow* is a stream of bytes a process moves through a shared resource
//! (in this system: an Optane PMEM device). Instead of simulating every
//! object-sized operation as a discrete event — which for the paper's 2 KB
//! workloads would mean hundreds of millions of events — the engine treats a
//! rank's whole I/O phase as a fluid with a byte total and a *rate* that is
//! recomputed whenever the set of concurrent flows changes. Between set
//! changes, rates are constant, so progress is exact, not approximate.
//!
//! Per-operation software cost (system calls, journaling, metadata updates)
//! and device access latency are folded into the flow as
//! [`FlowAttrs::sw_time_per_byte`]: the CPU seconds the issuing rank spends
//! per byte *outside* the device. The allocator uses it to derive the flow's
//! device *duty cycle* — a rank that spends most of each operation in
//! software only occupies the device for a fraction of the time, which is
//! exactly the paper's "high software stack I/O overheads lower PMEM
//! contention" effect (§VIII).

/// Direction of a flow with respect to the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Load from the device into DRAM.
    Read,
    /// Store from DRAM into the device.
    Write,
}

impl Direction {
    /// Short label used in traces and reports.
    pub fn label(self) -> &'static str {
        match self {
            Direction::Read => "R",
            Direction::Write => "W",
        }
    }
}

/// NUMA locality of the issuing rank with respect to the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Locality {
    /// The rank is pinned to the socket the device is attached to.
    Local,
    /// The rank reaches the device across the inter-socket interconnect.
    Remote,
}

impl Locality {
    /// Short label used in traces and reports.
    pub fn label(self) -> &'static str {
        match self {
            Locality::Local => "loc",
            Locality::Remote => "rem",
        }
    }
}

/// Static description of a flow, consumed by the [`RateAllocator`].
///
/// These attributes are the complete set of knobs the paper identifies as
/// determining a workflow component's sensitivity to PMEM behaviour (§IV-A):
/// direction and locality of the access, the object granularity, and the
/// software overhead per operation.
#[derive(Debug, Clone, Copy)]
pub struct FlowAttrs {
    /// Read or write.
    pub direction: Direction,
    /// Local or remote relative to the device's socket.
    pub locality: Locality,
    /// Size of each application object moved by this flow, in bytes.
    /// Determines the stripe/granularity efficiency of the device.
    pub access_bytes: u64,
    /// CPU seconds spent per byte outside the device (software stack cost +
    /// per-operation access latency, amortized over the object size).
    pub sw_time_per_byte: f64,
    /// Upper bound on the *device* bandwidth a single thread can draw for
    /// this class of access, in bytes/second.
    pub peak_device_rate: f64,
}

impl FlowAttrs {
    /// The flow's *intrinsic* end-to-end rate if the device were idle:
    /// the harmonic combination of software time and device transfer time.
    /// This is the cap the allocator may never exceed.
    pub fn intrinsic_rate(&self) -> f64 {
        debug_assert!(self.peak_device_rate > 0.0);
        1.0 / (self.sw_time_per_byte + 1.0 / self.peak_device_rate)
    }

    /// Fraction of wall time this flow occupies the device when progressing
    /// at end-to-end rate `rate` (bytes/s). 1.0 means the rank is always on
    /// the device; small values mean software dominates.
    pub fn duty_cycle(&self, rate: f64) -> f64 {
        (1.0 - rate * self.sw_time_per_byte).clamp(0.0, 1.0)
    }

    /// Given a *device* rate grant `dev_rate` (bytes/s while on the device),
    /// the resulting end-to-end rate including software time.
    pub fn end_to_end_rate(&self, dev_rate: f64) -> f64 {
        if dev_rate <= 0.0 {
            return 0.0;
        }
        1.0 / (self.sw_time_per_byte + 1.0 / dev_rate)
    }

    /// Invert [`FlowAttrs::end_to_end_rate`]: the device rate needed to
    /// sustain end-to-end rate `rate`.
    pub fn device_rate_for(&self, rate: f64) -> f64 {
        let denom = 1.0 - rate * self.sw_time_per_byte;
        if denom <= 0.0 {
            f64::INFINITY
        } else {
            rate / denom
        }
    }
}

/// A live flow inside a resource, visible to the allocator.
#[derive(Debug, Clone)]
pub struct FlowView {
    /// Attributes supplied at submission.
    pub attrs: FlowAttrs,
    /// Bytes still to move.
    pub remaining: f64,
}

/// Identifier of a flow within the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub(crate) u64);

/// A rate-allocation policy for one shared resource.
///
/// Implementations receive every active flow and return an **end-to-end**
/// rate (bytes/s, software time included) per flow, in the same order. The
/// engine guarantees the slice is non-empty. Returned rates must be strictly
/// positive and no larger than each flow's [`FlowAttrs::intrinsic_rate`];
/// the engine clamps violations defensively but relies on allocators for
/// model fidelity.
pub trait RateAllocator: Send {
    /// Compute rates for the current flow set.
    fn allocate(&self, flows: &[FlowView]) -> Vec<f64>;

    /// A human-readable name for traces and reports.
    fn name(&self) -> &str {
        "allocator"
    }
}

/// Trivial allocator: every flow gets its intrinsic (uncontended) rate.
/// Useful for tests and as the "infinite device" baseline.
#[derive(Debug, Default, Clone)]
pub struct UncontendedAllocator;

impl RateAllocator for UncontendedAllocator {
    fn allocate(&self, flows: &[FlowView]) -> Vec<f64> {
        flows.iter().map(|f| f.attrs.intrinsic_rate()).collect()
    }

    fn name(&self) -> &str {
        "uncontended"
    }
}

/// Equal-share allocator over a fixed aggregate capacity (bytes/s).
/// A deliberately simple processor-sharing model used in tests and as an
/// ablation baseline against the full Optane allocator.
#[derive(Debug, Clone)]
pub struct FairShareAllocator {
    /// Aggregate capacity in bytes/second.
    pub capacity: f64,
}

impl FairShareAllocator {
    /// Create an allocator with `capacity` bytes/second total.
    pub fn new(capacity: f64) -> Self {
        assert!(capacity > 0.0, "capacity must be positive");
        Self { capacity }
    }
}

impl RateAllocator for FairShareAllocator {
    fn allocate(&self, flows: &[FlowView]) -> Vec<f64> {
        // Max-min fair (water-filling) against per-flow intrinsic caps.
        let caps: Vec<f64> = flows.iter().map(|f| f.attrs.intrinsic_rate()).collect();
        water_fill(&caps, self.capacity)
    }

    fn name(&self) -> &str {
        "fair-share"
    }
}

/// Max-min fair allocation of `capacity` across flows with `caps`.
///
/// Classic water-filling: repeatedly give every unfrozen flow an equal share;
/// flows whose cap is below the share are frozen at their cap and the slack
/// is redistributed. Runs in `O(n log n)`.
pub fn water_fill(caps: &[f64], capacity: f64) -> Vec<f64> {
    let n = caps.len();
    if n == 0 {
        return Vec::new();
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| caps[a].total_cmp(&caps[b]));
    let mut rates = vec![0.0; n];
    let mut left = capacity.max(0.0);
    let mut remaining = n;
    for &i in &order {
        let share = left / remaining as f64;
        let r = caps[i].min(share).max(0.0);
        rates[i] = r;
        left = (left - r).max(0.0);
        remaining -= 1;
    }
    rates
}

/// Internal state of a live flow.
#[derive(Debug)]
pub(crate) struct ActiveFlow {
    pub id: FlowId,
    pub owner: crate::process::ProcessId,
    pub attrs: FlowAttrs,
    pub total: f64,
    pub remaining: f64,
    pub rate: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attrs(sw_tpb: f64, peak: f64) -> FlowAttrs {
        FlowAttrs {
            direction: Direction::Write,
            locality: Locality::Local,
            access_bytes: 64 << 20,
            sw_time_per_byte: sw_tpb,
            peak_device_rate: peak,
        }
    }

    #[test]
    fn intrinsic_rate_is_harmonic() {
        // 1 GB/s device, software adds another 1s per GB -> 0.5 GB/s.
        let a = attrs(1e-9, 1e9);
        assert!((a.intrinsic_rate() - 0.5e9).abs() < 1.0);
    }

    #[test]
    fn duty_cycle_limits() {
        let a = attrs(0.0, 1e9);
        assert_eq!(a.duty_cycle(1e9), 1.0);
        let b = attrs(1e-9, 1e9);
        // At the intrinsic rate, half the time is software.
        let d = b.duty_cycle(b.intrinsic_rate());
        assert!((d - 0.5).abs() < 1e-9);
    }

    #[test]
    fn end_to_end_roundtrip() {
        let a = attrs(2e-10, 5e9);
        let dev = 3e9;
        let e2e = a.end_to_end_rate(dev);
        let back = a.device_rate_for(e2e);
        assert!((back - dev).abs() / dev < 1e-9);
    }

    #[test]
    fn end_to_end_zero_device_rate() {
        let a = attrs(1e-9, 1e9);
        assert_eq!(a.end_to_end_rate(0.0), 0.0);
        assert_eq!(a.end_to_end_rate(-1.0), 0.0);
    }

    #[test]
    fn water_fill_even_split() {
        let rates = water_fill(&[10.0, 10.0, 10.0], 9.0);
        for r in rates {
            assert!((r - 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn water_fill_respects_caps() {
        let rates = water_fill(&[1.0, 10.0], 8.0);
        assert!((rates[0] - 1.0).abs() < 1e-12);
        assert!((rates[1] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn water_fill_caps_below_capacity() {
        let rates = water_fill(&[1.0, 2.0], 100.0);
        assert_eq!(rates, vec![1.0, 2.0]);
    }

    #[test]
    fn water_fill_empty() {
        assert!(water_fill(&[], 5.0).is_empty());
    }

    #[test]
    fn water_fill_conserves_capacity() {
        let caps = [3.0, 5.0, 0.5, 9.0, 2.0];
        let rates = water_fill(&caps, 10.0);
        let total: f64 = rates.iter().sum();
        assert!(total <= 10.0 + 1e-9);
        // Capacity is scarce, so it should be fully used.
        assert!(total > 10.0 - 1e-9);
        for (r, c) in rates.iter().zip(caps.iter()) {
            assert!(*r <= c + 1e-12);
        }
    }

    #[test]
    fn fair_share_allocator_splits() {
        let alloc = FairShareAllocator::new(10e9);
        let f = FlowView {
            attrs: attrs(0.0, 100e9),
            remaining: 1e9,
        };
        let rates = alloc.allocate(&[f.clone(), f]);
        assert!((rates[0] - 5e9).abs() < 1.0);
    }

    #[test]
    fn uncontended_allocator_gives_intrinsic() {
        let alloc = UncontendedAllocator;
        let a = attrs(1e-9, 1e9);
        let rates = alloc.allocate(&[FlowView {
            attrs: a,
            remaining: 1.0,
        }]);
        assert!((rates[0] - a.intrinsic_rate()).abs() < 1e-6);
    }
}
