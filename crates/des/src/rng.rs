//! A small deterministic PRNG for tests, calibration search, and payload
//! generation.
//!
//! The engine itself is strictly deterministic and never consumes
//! randomness; this module exists so the *surrounding* tooling (randomized
//! property tests, the calibration tuner) has a seedable, dependency-free
//! source that behaves identically on every platform. SplitMix64 is the
//! standard 64-bit mixer from Steele et al., "Fast splittable pseudorandom
//! number generators" (OOPSLA 2014): a full-period counter-based generator
//! that passes BigCrush and costs three multiplies per draw.

/// A seedable SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed. Any seed (including 0) is fine.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)` (53 bits of precision).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform f64 in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform u64 in `[lo, hi)`. `hi` must be greater than `lo`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(hi > lo, "empty range [{lo}, {hi})");
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform usize in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// A fair coin flip.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Fill `buf` with pseudorandom bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&w[..rest.len()]);
        }
    }

    /// A pseudorandom byte vector of length `len`.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        let mut v = vec![0u8; len];
        self.fill_bytes(&mut v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = SplitMix64::new(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let f = r.range_f64(2.0, 3.0);
            assert!((2.0..3.0).contains(&f));
            let u = r.range_u64(10, 20);
            assert!((10..20).contains(&u));
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = SplitMix64::new(1);
        let v = r.bytes(13);
        assert_eq!(v.len(), 13);
        assert!(v.iter().any(|&b| b != 0));
    }

    #[test]
    fn f64_distribution_sane() {
        let mut r = SplitMix64::new(99);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
