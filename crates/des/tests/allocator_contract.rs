//! Contract tests for the `RateAllocator` abstraction: any allocator the
//! engine accepts must keep the engine's conservation and termination
//! guarantees, even adversarial ones that return pathological rates.

use pmemflow_des::{
    Action, Direction, FlowAttrs, FlowView, Locality, RateAllocator, ScriptProcess, Simulation,
};

fn attrs() -> FlowAttrs {
    FlowAttrs {
        direction: Direction::Write,
        locality: Locality::Local,
        access_bytes: 4096,
        sw_time_per_byte: 0.0,
        peak_device_rate: 1e9,
    }
}

/// Returns rates far above every flow's intrinsic rate: the engine must
/// clamp them rather than finish early.
struct OverpromisingAllocator;

impl RateAllocator for OverpromisingAllocator {
    fn allocate(&self, flows: &[FlowView]) -> Vec<f64> {
        flows.iter().map(|_| 1e18).collect()
    }
}

/// Returns zero/negative rates: the engine must still make progress via
/// its minimum-rate floor instead of hanging.
struct StingyAllocator;

impl RateAllocator for StingyAllocator {
    fn allocate(&self, flows: &[FlowView]) -> Vec<f64> {
        flows.iter().map(|_| 0.0).collect()
    }
}

#[test]
fn overpromised_rates_are_clamped_to_intrinsic() {
    let mut sim = Simulation::new();
    let r = sim.add_resource(Box::new(OverpromisingAllocator));
    sim.spawn(Box::new(ScriptProcess::new(
        "w",
        vec![Action::Io {
            resource: r,
            bytes: 2e9,
            attrs: attrs(),
        }],
    )));
    let rep = sim.run().unwrap();
    // 2 GB at the 1 GB/s intrinsic cap: exactly 2 s, not instantaneous.
    assert!((rep.end_time.seconds() - 2.0).abs() < 1e-6);
}

#[test]
fn zero_rates_still_terminate() {
    let mut sim = Simulation::new().with_horizon(pmemflow_des::SimTime(1e8));
    let r = sim.add_resource(Box::new(StingyAllocator));
    sim.spawn(Box::new(ScriptProcess::new(
        "w",
        vec![Action::Io {
            resource: r,
            bytes: 10.0, // tiny: at the 1 B/s floor this takes 10 virtual s
            attrs: attrs(),
        }],
    )));
    let rep = sim.run().unwrap();
    assert!((rep.end_time.seconds() - 10.0).abs() < 1e-6);
    assert!((rep.resources[0].total_bytes() - 10.0).abs() < 1e-9);
}

/// An allocator that alternates rates across calls must not break byte
/// conservation (rates only apply forward in time).
struct FlipFlopAllocator;

impl RateAllocator for FlipFlopAllocator {
    fn allocate(&self, flows: &[FlowView]) -> Vec<f64> {
        // Rate depends on the remaining bytes: decreasing as flows drain,
        // which exercises settle-then-reallocate paths.
        flows
            .iter()
            .map(|f| (f.remaining / 2.0).max(2.0).min(f.attrs.intrinsic_rate()))
            .collect()
    }
}

#[test]
fn time_varying_rates_conserve_bytes() {
    let mut sim = Simulation::new();
    let r = sim.add_resource(Box::new(FlipFlopAllocator));
    for i in 0..4 {
        sim.spawn(Box::new(ScriptProcess::new(
            format!("w{i}"),
            vec![Action::Io {
                resource: r,
                bytes: 1e6 * (i + 1) as f64,
                attrs: attrs(),
            }],
        )));
    }
    let rep = sim.run().unwrap();
    let expect: f64 = (1..=4).map(|i| 1e6 * i as f64).sum();
    assert!((rep.resources[0].total_bytes() - expect).abs() / expect < 1e-6);
    for (i, p) in rep.processes.iter().enumerate() {
        assert!((p.io_bytes - 1e6 * (i + 1) as f64).abs() < 1.0);
    }
}
