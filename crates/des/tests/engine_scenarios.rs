//! Scenario-level tests of the fluid DES: multi-resource topologies,
//! producer/consumer chains, and analytically solvable timelines.

use pmemflow_des::{
    Action, Direction, FairShareAllocator, FlowAttrs, Locality, ScriptProcess, SimDuration,
    Simulation, UncontendedAllocator,
};

fn attrs(peak: f64) -> FlowAttrs {
    FlowAttrs {
        direction: Direction::Write,
        locality: Locality::Local,
        access_bytes: 1 << 20,
        sw_time_per_byte: 0.0,
        peak_device_rate: peak,
    }
}

#[test]
fn two_independent_resources_do_not_interact() {
    // Two devices, one flow each: both finish as if alone.
    let mut sim = Simulation::new();
    let r0 = sim.add_resource(Box::new(FairShareAllocator::new(1e9)));
    let r1 = sim.add_resource(Box::new(FairShareAllocator::new(2e9)));
    sim.spawn(Box::new(ScriptProcess::new(
        "a",
        vec![Action::Io {
            resource: r0,
            bytes: 1e9,
            attrs: attrs(10e9),
        }],
    )));
    sim.spawn(Box::new(ScriptProcess::new(
        "b",
        vec![Action::Io {
            resource: r1,
            bytes: 1e9,
            attrs: attrs(10e9),
        }],
    )));
    let rep = sim.run().unwrap();
    assert!((rep.processes[0].finished_at.unwrap().seconds() - 1.0).abs() < 1e-6);
    assert!((rep.processes[1].finished_at.unwrap().seconds() - 0.5).abs() < 1e-6);
}

#[test]
fn three_stage_pipeline_throughput() {
    // producer -> relay -> consumer through two channels; each stage does
    // 1 s of compute per item. Pipeline of depth 3 over 5 items:
    // makespan = 5 + 2 (fill) = 7 s.
    let mut sim = Simulation::new();
    let c1 = sim.add_channel();
    let c2 = sim.add_channel();
    let items = 5u64;
    let mut producer = Vec::new();
    let mut relay = Vec::new();
    let mut consumer = Vec::new();
    for v in 1..=items {
        producer.push(Action::Compute(SimDuration(1.0)));
        producer.push(Action::Publish {
            channel: c1,
            version: v,
        });
        relay.push(Action::WaitVersion {
            channel: c1,
            version: v,
        });
        relay.push(Action::Compute(SimDuration(1.0)));
        relay.push(Action::Publish {
            channel: c2,
            version: v,
        });
        consumer.push(Action::WaitVersion {
            channel: c2,
            version: v,
        });
        consumer.push(Action::Compute(SimDuration(1.0)));
    }
    sim.spawn(Box::new(ScriptProcess::new("producer", producer)));
    sim.spawn(Box::new(ScriptProcess::new("relay", relay)));
    sim.spawn(Box::new(ScriptProcess::new("consumer", consumer)));
    let rep = sim.run().unwrap();
    assert!((rep.end_time.seconds() - 7.0).abs() < 1e-9);
}

#[test]
fn fluid_sharing_with_arrivals_and_departures_is_exact() {
    // Capacity 3 GB/s. F1: 6 GB from t=0. F2: 3 GB from t=1.
    // t in [0,1): F1 alone at 3 -> 3 GB done.
    // t in [1,?): both at 1.5. F2 needs 2 s (done t=3); F1 has 3 GB left,
    // 1.5 GB/s -> also t=3. Both finish exactly at 3.
    let mut sim = Simulation::new();
    let r = sim.add_resource(Box::new(FairShareAllocator::new(3e9)));
    sim.spawn(Box::new(ScriptProcess::new(
        "f1",
        vec![Action::Io {
            resource: r,
            bytes: 6e9,
            attrs: attrs(100e9),
        }],
    )));
    sim.spawn(Box::new(ScriptProcess::new(
        "f2",
        vec![
            Action::Compute(SimDuration(1.0)),
            Action::Io {
                resource: r,
                bytes: 3e9,
                attrs: attrs(100e9),
            },
        ],
    )));
    let rep = sim.run().unwrap();
    for p in &rep.processes {
        assert!(
            (p.finished_at.unwrap().seconds() - 3.0).abs() < 1e-6,
            "{} at {}",
            p.name,
            p.finished_at.unwrap()
        );
    }
    // Resource accounting: 9 GB total moved, busy the whole 3 s.
    assert!((rep.resources[0].total_bytes() - 9e9).abs() < 1.0);
    assert!((rep.resources[0].busy_time.seconds() - 3.0).abs() < 1e-6);
}

#[test]
fn per_flow_caps_limit_even_an_idle_resource() {
    let mut sim = Simulation::new();
    let r = sim.add_resource(Box::new(FairShareAllocator::new(100e9)));
    sim.spawn(Box::new(ScriptProcess::new(
        "capped",
        vec![Action::Io {
            resource: r,
            bytes: 2e9,
            attrs: attrs(1e9),
        }],
    )));
    let rep = sim.run().unwrap();
    assert!((rep.end_time.seconds() - 2.0).abs() < 1e-6);
}

#[test]
fn many_small_flows_complete_in_submission_order_groups() {
    // 50 equal flows on a shared resource: all finish simultaneously, and
    // the engine handles the mass completion in one pass.
    let mut sim = Simulation::new();
    let r = sim.add_resource(Box::new(FairShareAllocator::new(5e9)));
    for i in 0..50 {
        sim.spawn(Box::new(ScriptProcess::new(
            format!("f{i}"),
            vec![Action::Io {
                resource: r,
                bytes: 1e8,
                attrs: attrs(100e9),
            }],
        )));
    }
    let rep = sim.run().unwrap();
    let expect = 50.0 * 1e8 / 5e9;
    for p in &rep.processes {
        assert!((p.finished_at.unwrap().seconds() - expect).abs() < 1e-6);
    }
    assert_eq!(rep.resources[0].flows_completed, 50);
}

#[test]
fn mark_actions_segment_the_timeline() {
    let mut sim = Simulation::new();
    let r = sim.add_resource(Box::new(UncontendedAllocator));
    sim.spawn(Box::new(ScriptProcess::new(
        "phased",
        vec![
            Action::Mark("start"),
            Action::Compute(SimDuration(1.0)),
            Action::Mark("io-begin"),
            Action::Io {
                resource: r,
                bytes: 1e9,
                attrs: attrs(1e9),
            },
            Action::Mark("io-end"),
        ],
    )));
    let rep = sim.run().unwrap();
    let p = &rep.processes[0];
    assert_eq!(p.mark("start").unwrap().seconds(), 0.0);
    assert_eq!(p.mark("io-begin").unwrap().seconds(), 1.0);
    assert!((p.mark("io-end").unwrap().seconds() - 2.0).abs() < 1e-6);
}
