//! Corruption-detection tests: recovery and reads must *detect* damaged
//! persistent state, never silently return wrong data.

use pmemflow_iostack::{NovaFs, NvStore, ObjectStore, StoreError};
use pmemflow_pmem::{InterleaveGeometry, PmemRegion, StoreMode};

fn region(len: usize) -> PmemRegion {
    PmemRegion::new(
        len,
        InterleaveGeometry {
            dimms: 6,
            chunk_bytes: 4096,
        },
    )
}

/// Flip one byte somewhere in the region (simulating media corruption) and
/// persist the damage.
fn corrupt_byte(r: &mut PmemRegion, offset: u64) {
    let mut b = [0u8; 1];
    r.read(offset, &mut b);
    b[0] ^= 0xFF;
    r.write(offset, &b, StoreMode::NonTemporal);
    r.fence();
}

#[test]
fn nvstream_detects_corrupted_payload_on_recovery() {
    let mut s = NvStore::format(region(1 << 20)).unwrap();
    s.put("stream", 1, &vec![0x11u8; 10_000]).unwrap();
    let mut r = s.into_region();
    // Damage a byte in the middle of the payload area.
    corrupt_byte(&mut r, 4096);
    r.crash();
    match NvStore::recover(r) {
        Err(StoreError::Corrupt(msg)) => assert!(msg.contains("checksum") || msg.contains("magic")),
        other => panic!("corruption not detected: {:?}", other.err()),
    }
}

#[test]
fn nvstream_detects_bad_header_magic() {
    let mut s = NvStore::format(region(1 << 20)).unwrap();
    s.put("stream", 1, b"x").unwrap();
    let mut r = s.into_region();
    corrupt_byte(&mut r, 0); // header magic
    match NvStore::recover(r) {
        Err(StoreError::Corrupt(msg)) => assert!(msg.contains("magic")),
        other => panic!("bad magic not detected: {:?}", other.err()),
    }
}

#[test]
fn nova_detects_corrupted_payload_on_recovery() {
    let mut s = NovaFs::format(region(1 << 20), 8, 64 * 1024).unwrap();
    s.put("stream", 1, &vec![0x22u8; 20_000]).unwrap();
    let data_area_guess = (1 << 20) - 10_000; // payload sits near data bump start
    let mut r = s.into_region();
    // Find a byte that actually belongs to the payload: the data area
    // starts after the log area; corrupt several candidate offsets to be
    // sure we hit it.
    let _ = data_area_guess;
    for off in (70_000u64..90_000).step_by(4096) {
        corrupt_byte(&mut r, off);
    }
    r.crash();
    match NovaFs::recover(r) {
        Err(StoreError::Corrupt(_)) => {}
        Ok(mut fs) => {
            // If recovery succeeded, the read path must still detect it.
            match fs.get("stream", 1) {
                Err(StoreError::Corrupt(_)) => {}
                Ok(data) => assert_eq!(data, vec![0x22u8; 20_000], "silent corruption!"),
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        Err(e) => panic!("unexpected error {e}"),
    }
}

#[test]
fn nova_detects_bad_superblock() {
    let mut s = NovaFs::format(region(1 << 20), 8, 64 * 1024).unwrap();
    s.put("stream", 1, b"x").unwrap();
    let mut r = s.into_region();
    corrupt_byte(&mut r, 3);
    match NovaFs::recover(r) {
        Err(StoreError::Corrupt(msg)) => assert!(msg.contains("superblock")),
        other => panic!("bad superblock not detected: {:?}", other.err()),
    }
}

#[test]
fn stores_are_isolated_between_streams() {
    // Writing stream A must never change what stream B reads back.
    let mut s = NvStore::format(region(4 << 20)).unwrap();
    let a1 = vec![0xAAu8; 5000];
    s.put("a", 1, &a1).unwrap();
    for v in 1..=50u64 {
        s.put("b", v, &vec![v as u8; 3000]).unwrap();
    }
    assert_eq!(s.get("a", 1).unwrap(), a1);

    let mut f = NovaFs::format(region(4 << 20), 8, 256 * 1024).unwrap();
    f.put("a", 1, &a1).unwrap();
    for v in 1..=50u64 {
        f.put("b", v, &vec![v as u8; 3000]).unwrap();
    }
    assert_eq!(f.get("a", 1).unwrap(), a1);
}
