//! # pmemflow-iostack — the two PMEM I/O stacks of the paper
//!
//! The paper evaluates every workflow on two transports (§V) because the
//! software cost of the stack changes which scheduling configuration wins:
//!
//! * [`NovaFs`] — a user-level functional reimplementation of the NOVA
//!   log-structured PMEM filesystem (per-inode logs, separate data area,
//!   lightweight journaling, checksummed recovery), with the kernel-path
//!   costs captured in [`StackCostModel`].
//! * [`NvStore`] — an NVStream-like userspace versioned object store
//!   (append-only log, non-temporal payload stores, two-step tail commit).
//!
//! Both stacks store **real bytes** in a [`pmemflow_pmem::PmemRegion`] and survive
//! injected crashes ([`CrashPoint`]) with their consistency invariants
//! intact — the durability contract the paper's workflows assume of their
//! streaming channel. The [`StackCostModel`]s feed the fluid performance
//! model in `pmemflow-core`.

#![warn(missing_docs)]

mod codec;
mod cost;
mod hash;
mod nova;
mod nvstream;
mod store;

pub use cost::{StackCostModel, StackKind};
pub use hash::{fnv1a, fnv1a_multi};
pub use nova::NovaFs;
pub use nvstream::NvStore;
pub use store::{CrashPoint, ObjectStore, StoreError};
