//! NOVA-like log-structured PMEM filesystem (user-level reimplementation).
//!
//! A functional model of the NOVA design the paper uses as its
//! filesystem-based transport (§V; Xu & Swanson FAST'16), with the
//! mechanisms that matter for the study:
//!
//! * **Per-inode logs** — every stream (file) has its own chain of log
//!   entries, so concurrent writers never serialize on a shared log.
//! * **Data outside the log** — payloads are written to a separate data
//!   area (DAX-style non-temporal stores); log entries only carry
//!   metadata, keeping garbage collection cheap.
//! * **Lightweight journaling** — linking a new entry into an inode's log
//!   touches two locations (predecessor's `next` and the inode tail), so
//!   the update is journaled: recovery redoes a committed journal and
//!   discards an uncommitted one.
//! * **Checksummed entries and payloads** — recovery validates both and a
//!   torn write renders the version invisible, never the store corrupt.
//!
//! Layout:
//!
//! ```text
//! [ superblock 128 B | inode table | journal 64 B | log area | data area ]
//! ```
//!
//! NOVA's real implementation is a kernel filesystem; its syscall and VFS
//! costs appear in this crate's [`crate::cost::StackCostModel`], not in
//! this functional model.

use crate::codec::{align_up, get_u64, put_u64};
use crate::cost::StackKind;
use crate::hash::fnv1a;
use crate::store::{CrashPoint, ObjectStore, StoreError};
use pmemflow_pmem::{PmemRegion, StoreMode};
use std::collections::BTreeMap;

const SB_MAGIC: u64 = 0x4e4f_5641_4653_5f5f; // "NOVAFS__"
const ENTRY_MAGIC: u64 = 0x4e4f_5641_454e_5452; // "NOVAENTR"
const JOURNAL_COMMIT: u64 = 0x4e4f_5641_4a52_4e4c; // "NOVAJRNL"

const SB_BYTES: u64 = 128;
const INODE_BYTES: u64 = 64;
const JOURNAL_BYTES: u64 = 64;
const ENTRY_BYTES: u64 = 64;
const MAX_NAME: usize = 32;

// Superblock field offsets.
const SB_OFF_MAGIC: usize = 0;
const SB_OFF_MAX_INODES: usize = 8;
const SB_OFF_LOG_BUMP: usize = 16;
const SB_OFF_DATA_BUMP: usize = 24;
const SB_OFF_LOG_START: usize = 32;
const SB_OFF_DATA_START: usize = 40;

// Inode field offsets.
const INO_OFF_FLAGS: usize = 0;
const INO_OFF_HEAD: usize = 8;
const INO_OFF_TAIL: usize = 16;
const INO_OFF_NAME_LEN: usize = 24;
const INO_OFF_NAME: usize = 32;

// Log-entry field offsets. `next` (offset 40) is excluded from the entry
// checksum so linking does not require rewriting it.
const ENT_OFF_MAGIC: usize = 0;
const ENT_OFF_VERSION: usize = 8;
const ENT_OFF_DATA_OFF: usize = 16;
const ENT_OFF_DATA_LEN: usize = 24;
const ENT_OFF_DATA_SUM: usize = 32;
const ENT_OFF_NEXT: usize = 40;
const ENT_OFF_SELF_SUM: usize = 48;

// Journal field offsets.
const JRN_OFF_STATE: usize = 0;
const JRN_OFF_INODE: usize = 8;
const JRN_OFF_NEW: usize = 16;
const JRN_OFF_PREV: usize = 24;
const JRN_OFF_SUM: usize = 32;

/// The NOVA-like filesystem. Owns its backing region.
pub struct NovaFs {
    region: PmemRegion,
    max_inodes: u64,
    log_start: u64,
    data_start: u64,
    log_bump: u64,
    data_bump: u64,
    /// stream name → inode index.
    inodes: BTreeMap<String, u64>,
    /// (inode index, version) → (data offset, length, checksum).
    index: BTreeMap<(u64, u64), (u64, u64, u64)>,
}

impl NovaFs {
    fn journal_off(max_inodes: u64) -> u64 {
        SB_BYTES + max_inodes * INODE_BYTES
    }

    /// Format a filesystem over `region` with space for `max_inodes`
    /// streams and `log_capacity` bytes of log area.
    pub fn format(
        mut region: PmemRegion,
        max_inodes: u64,
        log_capacity: u64,
    ) -> Result<NovaFs, StoreError> {
        let log_start = Self::journal_off(max_inodes) + JOURNAL_BYTES;
        let data_start = align_up(log_start + log_capacity, 64);
        if data_start + 64 > region.len() as u64 {
            return Err(StoreError::Invalid("region too small for layout".into()));
        }
        // Zero the metadata area (inode table + journal).
        let zeros = vec![0u8; (log_start - SB_BYTES) as usize];
        region.write(SB_BYTES, &zeros, StoreMode::Cached);
        region.persist(SB_BYTES, zeros.len() as u64);
        let mut sb = [0u8; SB_BYTES as usize];
        put_u64(&mut sb, SB_OFF_MAGIC, SB_MAGIC);
        put_u64(&mut sb, SB_OFF_MAX_INODES, max_inodes);
        put_u64(&mut sb, SB_OFF_LOG_BUMP, log_start);
        put_u64(&mut sb, SB_OFF_DATA_BUMP, data_start);
        put_u64(&mut sb, SB_OFF_LOG_START, log_start);
        put_u64(&mut sb, SB_OFF_DATA_START, data_start);
        region.write(0, &sb, StoreMode::Cached);
        region.persist(0, SB_BYTES);
        Ok(NovaFs {
            region,
            max_inodes,
            log_start,
            data_start,
            log_bump: log_start,
            data_bump: data_start,
            inodes: BTreeMap::new(),
            index: BTreeMap::new(),
        })
    }

    /// Mount after a crash: replay the journal, then rebuild the volatile
    /// index by walking every inode's log chain, validating checksums.
    pub fn recover(mut region: PmemRegion) -> Result<NovaFs, StoreError> {
        let mut sb = [0u8; SB_BYTES as usize];
        region.read(0, &mut sb);
        if get_u64(&sb, SB_OFF_MAGIC) != SB_MAGIC {
            return Err(StoreError::Corrupt("bad NOVA superblock magic".into()));
        }
        let max_inodes = get_u64(&sb, SB_OFF_MAX_INODES);
        let mut fs = NovaFs {
            region,
            max_inodes,
            log_start: get_u64(&sb, SB_OFF_LOG_START),
            data_start: get_u64(&sb, SB_OFF_DATA_START),
            log_bump: get_u64(&sb, SB_OFF_LOG_BUMP),
            data_bump: get_u64(&sb, SB_OFF_DATA_BUMP),
            inodes: BTreeMap::new(),
            index: BTreeMap::new(),
        };
        fs.replay_journal()?;
        // Rebuild volatile maps from the inode table and log chains.
        for ino in 0..max_inodes {
            let ibuf = fs.read_inode(ino);
            if get_u64(&ibuf, INO_OFF_FLAGS) != 1 {
                continue;
            }
            let name_len = get_u64(&ibuf, INO_OFF_NAME_LEN) as usize;
            if name_len == 0 || name_len > MAX_NAME {
                return Err(StoreError::Corrupt(format!(
                    "inode {ino} has invalid name length {name_len}"
                )));
            }
            let name = String::from_utf8(ibuf[INO_OFF_NAME..INO_OFF_NAME + name_len].to_vec())
                .map_err(|_| StoreError::Corrupt(format!("inode {ino} name not UTF-8")))?;
            fs.inodes.insert(name, ino);
            let mut entry_off = get_u64(&ibuf, INO_OFF_HEAD);
            while entry_off != 0 {
                let ebuf = fs.read_entry_buf(entry_off)?;
                let version = get_u64(&ebuf, ENT_OFF_VERSION);
                let data_off = get_u64(&ebuf, ENT_OFF_DATA_OFF);
                let data_len = get_u64(&ebuf, ENT_OFF_DATA_LEN);
                let data_sum = get_u64(&ebuf, ENT_OFF_DATA_SUM);
                // Validate the payload too: a torn payload means the
                // journaled link should never have committed, so treat it
                // as corruption.
                let mut payload = vec![0u8; data_len as usize];
                fs.region.read(data_off, &mut payload);
                if fnv1a(&payload) != data_sum {
                    return Err(StoreError::Corrupt(format!(
                        "payload checksum mismatch in inode {ino} v{version}"
                    )));
                }
                fs.index
                    .insert((ino, version), (data_off, data_len, data_sum));
                entry_off = get_u64(&ebuf, ENT_OFF_NEXT);
            }
        }
        Ok(fs)
    }

    fn replay_journal(&mut self) -> Result<(), StoreError> {
        let joff = Self::journal_off(self.max_inodes);
        let mut j = [0u8; JOURNAL_BYTES as usize];
        self.region.read(joff, &mut j);
        if get_u64(&j, JRN_OFF_STATE) != JOURNAL_COMMIT {
            return Ok(()); // empty or uncommitted: discard
        }
        let sum = fnv1a(&j[JRN_OFF_INODE..JRN_OFF_SUM]);
        if sum != get_u64(&j, JRN_OFF_SUM) {
            // Torn journal record that happened to hit the commit magic:
            // treat as uncommitted.
            self.clear_journal();
            return Ok(());
        }
        let ino = get_u64(&j, JRN_OFF_INODE);
        let new_entry = get_u64(&j, JRN_OFF_NEW);
        let prev_entry = get_u64(&j, JRN_OFF_PREV);
        self.apply_link(ino, new_entry, prev_entry);
        self.clear_journal();
        Ok(())
    }

    fn clear_journal(&mut self) {
        let joff = Self::journal_off(self.max_inodes);
        let zero = [0u8; 8];
        self.region.write(joff, &zero, StoreMode::Cached);
        self.region.persist(joff, 8);
    }

    /// Link `new_entry` into inode `ino`'s chain after `prev_entry`
    /// (0 = chain was empty). Idempotent, as journal redo requires.
    fn apply_link(&mut self, ino: u64, new_entry: u64, prev_entry: u64) {
        if prev_entry == 0 {
            let off = self.inode_off(ino) + INO_OFF_HEAD as u64;
            let mut b = [0u8; 8];
            put_u64(&mut b, 0, new_entry);
            self.region.write(off, &b, StoreMode::Cached);
            self.region.flush(off, 8);
        } else {
            let off = prev_entry + ENT_OFF_NEXT as u64;
            let mut b = [0u8; 8];
            put_u64(&mut b, 0, new_entry);
            self.region.write(off, &b, StoreMode::Cached);
            self.region.flush(off, 8);
        }
        let tail_off = self.inode_off(ino) + INO_OFF_TAIL as u64;
        let mut b = [0u8; 8];
        put_u64(&mut b, 0, new_entry);
        self.region.write(tail_off, &b, StoreMode::Cached);
        self.region.flush(tail_off, 8);
        self.region.fence();
    }

    fn inode_off(&self, ino: u64) -> u64 {
        SB_BYTES + ino * INODE_BYTES
    }

    fn read_inode(&mut self, ino: u64) -> [u8; INODE_BYTES as usize] {
        let mut buf = [0u8; INODE_BYTES as usize];
        let off = self.inode_off(ino);
        self.region.read(off, &mut buf);
        buf
    }

    fn read_entry_buf(&mut self, off: u64) -> Result<[u8; ENTRY_BYTES as usize], StoreError> {
        if off < self.log_start || off + ENTRY_BYTES > self.data_start {
            return Err(StoreError::Corrupt(format!(
                "log entry offset {off} outside log area"
            )));
        }
        let mut buf = [0u8; ENTRY_BYTES as usize];
        self.region.read(off, &mut buf);
        if get_u64(&buf, ENT_OFF_MAGIC) != ENTRY_MAGIC {
            return Err(StoreError::Corrupt(format!("bad entry magic at {off}")));
        }
        if fnv1a(&buf[..ENT_OFF_NEXT]) != get_u64(&buf, ENT_OFF_SELF_SUM) {
            return Err(StoreError::Corrupt(format!(
                "entry checksum mismatch at {off}"
            )));
        }
        Ok(buf)
    }

    /// Create a stream (an inode). Idempotent: returns the existing inode
    /// if the name is already present.
    pub fn create(&mut self, name: &str) -> Result<u64, StoreError> {
        if name.is_empty() || name.len() > MAX_NAME {
            return Err(StoreError::Invalid(format!(
                "name must be 1..={MAX_NAME} bytes"
            )));
        }
        if let Some(&ino) = self.inodes.get(name) {
            return Ok(ino);
        }
        let used: std::collections::BTreeSet<u64> = self.inodes.values().copied().collect();
        let Some(ino) = (0..self.max_inodes).find(|i| !used.contains(i)) else {
            return Err(StoreError::OutOfSpace);
        };
        let mut ibuf = [0u8; INODE_BYTES as usize];
        put_u64(&mut ibuf, INO_OFF_FLAGS, 0); // flags last
        put_u64(&mut ibuf, INO_OFF_HEAD, 0);
        put_u64(&mut ibuf, INO_OFF_TAIL, 0);
        put_u64(&mut ibuf, INO_OFF_NAME_LEN, name.len() as u64);
        ibuf[INO_OFF_NAME..INO_OFF_NAME + name.len()].copy_from_slice(name.as_bytes());
        let off = self.inode_off(ino);
        self.region.write(off, &ibuf, StoreMode::Cached);
        self.region.persist(off, INODE_BYTES);
        // Commit point: set the used flag.
        let mut flag = [0u8; 8];
        put_u64(&mut flag, 0, 1);
        self.region.write(off, &flag, StoreMode::Cached);
        self.region.persist(off, 8);
        self.inodes.insert(name.to_string(), ino);
        Ok(ino)
    }

    fn persist_sb_bumps(&mut self) {
        let mut b = [0u8; 16];
        put_u64(&mut b, 0, self.log_bump);
        put_u64(&mut b, 8, self.data_bump);
        self.region
            .write(SB_OFF_LOG_BUMP as u64, &b, StoreMode::Cached);
        self.region.persist(SB_OFF_LOG_BUMP as u64, 16);
    }

    /// `put` with a crash injected at `crash` (testing API). With
    /// `CrashPoint::None` this is exactly [`ObjectStore::put`].
    pub fn put_with_crash(
        &mut self,
        stream: &str,
        version: u64,
        data: &[u8],
        crash: CrashPoint,
    ) -> Result<(), StoreError> {
        if data.is_empty() {
            return Err(StoreError::Invalid("zero-length object".into()));
        }
        let ino = self.create(stream)?;
        let latest = self
            .index
            .range((ino, 0)..=(ino, u64::MAX))
            .next_back()
            .map(|((_, v), _)| *v);
        if let Some(latest) = latest {
            if version <= latest {
                return Err(StoreError::Invalid(format!(
                    "version {version} not after latest {latest}"
                )));
            }
        }

        // 1. Allocate + write payload (DAX non-temporal stores).
        let data_off = self.data_bump;
        let new_data_bump = align_up(data_off + data.len() as u64, 64);
        if new_data_bump > self.region.len() as u64 {
            return Err(StoreError::OutOfSpace);
        }
        self.data_bump = new_data_bump;
        self.persist_sb_bumps();
        self.region.write(data_off, data, StoreMode::NonTemporal);
        if crash == CrashPoint::AfterDataWrite {
            return Ok(());
        }
        self.region.fence();
        if crash == CrashPoint::AfterDataPersist {
            return Ok(());
        }

        // 2. Allocate + write the log entry (not yet linked).
        let entry_off = self.log_bump;
        if entry_off + ENTRY_BYTES > self.data_start {
            return Err(StoreError::OutOfSpace);
        }
        self.log_bump += ENTRY_BYTES;
        self.persist_sb_bumps();
        let data_sum = fnv1a(data);
        let mut ebuf = [0u8; ENTRY_BYTES as usize];
        put_u64(&mut ebuf, ENT_OFF_MAGIC, ENTRY_MAGIC);
        put_u64(&mut ebuf, ENT_OFF_VERSION, version);
        put_u64(&mut ebuf, ENT_OFF_DATA_OFF, data_off);
        put_u64(&mut ebuf, ENT_OFF_DATA_LEN, data.len() as u64);
        put_u64(&mut ebuf, ENT_OFF_DATA_SUM, data_sum);
        put_u64(&mut ebuf, ENT_OFF_NEXT, 0);
        let self_sum = fnv1a(&ebuf[..ENT_OFF_NEXT]);
        put_u64(&mut ebuf, ENT_OFF_SELF_SUM, self_sum);
        self.region.write(entry_off, &ebuf, StoreMode::Cached);
        self.region.persist(entry_off, ENTRY_BYTES);
        if crash == CrashPoint::AfterLogRecord {
            return Ok(());
        }

        // 3. Journal the two-location link update, then apply it.
        let ibuf = self.read_inode(ino);
        let prev_entry = get_u64(&ibuf, INO_OFF_TAIL);
        let joff = Self::journal_off(self.max_inodes);
        let mut j = [0u8; JOURNAL_BYTES as usize];
        put_u64(&mut j, JRN_OFF_INODE, ino);
        put_u64(&mut j, JRN_OFF_NEW, entry_off);
        put_u64(&mut j, JRN_OFF_PREV, prev_entry);
        let jsum = fnv1a(&j[JRN_OFF_INODE..JRN_OFF_SUM]);
        put_u64(&mut j, JRN_OFF_SUM, jsum);
        self.region.write(joff + 8, &j[8..], StoreMode::Cached);
        self.region.persist(joff + 8, JOURNAL_BYTES - 8);
        // Commit record.
        let mut commit = [0u8; 8];
        put_u64(&mut commit, 0, JOURNAL_COMMIT);
        self.region.write(joff, &commit, StoreMode::Cached);
        self.region.persist(joff, 8);

        self.apply_link(ino, entry_off, prev_entry);
        self.clear_journal();

        self.index
            .insert((ino, version), (data_off, data.len() as u64, data_sum));
        Ok(())
    }

    /// Drop every version of `stream` older than `keep_from`. The inode's
    /// log head moves forward past the truncated prefix (an atomic 8-byte
    /// update, as in NOVA's log truncation); the freed log entries and
    /// payloads become garbage until a compactor reclaims them — exactly
    /// the trade NOVA makes to keep truncation O(1) in persistence ops.
    pub fn truncate_before(&mut self, stream: &str, keep_from: u64) -> Result<u64, StoreError> {
        let Some(&ino) = self.inodes.get(stream) else {
            return Err(StoreError::UnknownStream(stream.to_string()));
        };
        // Find the first surviving entry by walking the chain.
        let ibuf = self.read_inode(ino);
        let mut entry_off = get_u64(&ibuf, INO_OFF_HEAD);
        let mut dropped = 0u64;
        let mut new_head = 0u64;
        while entry_off != 0 {
            let ebuf = self.read_entry_buf(entry_off)?;
            let version = get_u64(&ebuf, ENT_OFF_VERSION);
            if version >= keep_from {
                new_head = entry_off;
                break;
            }
            self.index.remove(&(ino, version));
            dropped += 1;
            entry_off = get_u64(&ebuf, ENT_OFF_NEXT);
        }
        if entry_off == 0 {
            // Everything truncated: clear head and tail together via the
            // journal (two locations).
            let tail_probe = {
                let ibuf = self.read_inode(ino);
                get_u64(&ibuf, INO_OFF_TAIL)
            };
            if tail_probe != 0 {
                let off_head = self.inode_off(ino) + INO_OFF_HEAD as u64;
                let off_tail = self.inode_off(ino) + INO_OFF_TAIL as u64;
                let zero = [0u8; 8];
                self.region.write(off_head, &zero, StoreMode::Cached);
                self.region.write(off_tail, &zero, StoreMode::Cached);
                self.region.flush(off_head, 8);
                self.region.flush(off_tail, 8);
                self.region.fence();
            }
            return Ok(dropped);
        }
        // Atomic head advance.
        let off = self.inode_off(ino) + INO_OFF_HEAD as u64;
        let mut b = [0u8; 8];
        put_u64(&mut b, 0, new_head);
        self.region.write(off, &b, StoreMode::Cached);
        self.region.persist(off, 8);
        Ok(dropped)
    }

    /// Remove `stream` entirely: clears the inode's used flag (the commit
    /// point, one atomic persist) and forgets its versions. The log chain
    /// and payloads become garbage.
    pub fn unlink(&mut self, stream: &str) -> Result<(), StoreError> {
        let Some(&ino) = self.inodes.get(stream) else {
            return Err(StoreError::UnknownStream(stream.to_string()));
        };
        let off = self.inode_off(ino);
        let zero = [0u8; 8];
        self.region
            .write(off + INO_OFF_FLAGS as u64, &zero, StoreMode::Cached);
        self.region.persist(off + INO_OFF_FLAGS as u64, 8);
        self.inodes.remove(stream);
        let keys: Vec<(u64, u64)> = self
            .index
            .range((ino, 0)..=(ino, u64::MAX))
            .map(|(k, _)| *k)
            .collect();
        for k in keys {
            self.index.remove(&k);
        }
        Ok(())
    }

    /// Borrow the backing region (e.g. to inject a crash in tests).
    pub fn region_mut(&mut self) -> &mut PmemRegion {
        &mut self.region
    }

    /// Consume the filesystem, returning the region.
    pub fn into_region(self) -> PmemRegion {
        self.region
    }

    /// Bytes of data area used.
    pub fn data_bytes_used(&self) -> u64 {
        self.data_bump - self.data_start
    }

    /// Number of log entries allocated.
    pub fn log_entries_used(&self) -> u64 {
        (self.log_bump - self.log_start) / ENTRY_BYTES
    }
}

impl ObjectStore for NovaFs {
    fn put(&mut self, stream: &str, version: u64, data: &[u8]) -> Result<(), StoreError> {
        self.put_with_crash(stream, version, data, CrashPoint::None)
    }

    fn get(&mut self, stream: &str, version: u64) -> Result<Vec<u8>, StoreError> {
        let Some(&ino) = self.inodes.get(stream) else {
            return Err(StoreError::UnknownStream(stream.to_string()));
        };
        let Some(&(off, len, sum)) = self.index.get(&(ino, version)) else {
            return Err(StoreError::UnknownVersion {
                stream: stream.to_string(),
                version,
            });
        };
        let mut data = vec![0u8; len as usize];
        self.region.read(off, &mut data);
        if fnv1a(&data) != sum {
            return Err(StoreError::Corrupt(format!(
                "payload checksum mismatch for {stream:?} v{version}"
            )));
        }
        Ok(data)
    }

    fn streams(&self) -> Vec<String> {
        self.inodes.keys().cloned().collect()
    }

    fn versions(&self, stream: &str) -> Vec<u64> {
        let Some(&ino) = self.inodes.get(stream) else {
            return Vec::new();
        };
        self.index
            .range((ino, 0)..=(ino, u64::MAX))
            .map(|((_, v), _)| *v)
            .collect()
    }

    fn kind(&self) -> StackKind {
        StackKind::Nova
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmemflow_pmem::InterleaveGeometry;

    fn region(len: usize) -> PmemRegion {
        PmemRegion::new(
            len,
            InterleaveGeometry {
                dimms: 6,
                chunk_bytes: 4096,
            },
        )
    }

    fn fs() -> NovaFs {
        NovaFs::format(region(1 << 20), 16, 16 * 1024).unwrap()
    }

    #[test]
    fn put_get_roundtrip() {
        let mut f = fs();
        f.put("miniamr/rank0", 1, b"block-data").unwrap();
        assert_eq!(f.get("miniamr/rank0", 1).unwrap(), b"block-data");
    }

    #[test]
    fn multiple_versions_chain() {
        let mut f = fs();
        for v in 1..=10u64 {
            f.put("s", v, format!("payload-{v}").as_bytes()).unwrap();
        }
        assert_eq!(f.versions("s"), (1..=10).collect::<Vec<_>>());
        assert_eq!(f.get("s", 7).unwrap(), b"payload-7");
        assert_eq!(f.log_entries_used(), 10);
    }

    #[test]
    fn multiple_streams_have_independent_logs() {
        let mut f = fs();
        for v in 1..=3u64 {
            for s in ["a", "b", "c"] {
                f.put(s, v, format!("{s}{v}").as_bytes()).unwrap();
            }
        }
        assert_eq!(f.streams(), vec!["a", "b", "c"]);
        assert_eq!(f.get("b", 2).unwrap(), b"b2");
    }

    #[test]
    fn version_monotonicity_enforced() {
        let mut f = fs();
        f.put("s", 5, b"x").unwrap();
        assert!(matches!(f.put("s", 5, b"y"), Err(StoreError::Invalid(_))));
        assert!(matches!(f.put("s", 4, b"y"), Err(StoreError::Invalid(_))));
    }

    #[test]
    fn clean_recovery_preserves_everything() {
        let mut f = fs();
        for v in 1..=5u64 {
            f.put("s", v, &vec![v as u8; 1000]).unwrap();
        }
        let mut r = f.into_region();
        r.crash();
        let mut f2 = NovaFs::recover(r).unwrap();
        assert_eq!(f2.versions("s"), vec![1, 2, 3, 4, 5]);
        assert_eq!(f2.get("s", 3).unwrap(), vec![3u8; 1000]);
    }

    #[test]
    fn crash_after_data_write_loses_version_cleanly() {
        let mut f = fs();
        f.put("s", 1, b"one").unwrap();
        f.put_with_crash("s", 2, b"two", CrashPoint::AfterDataWrite)
            .unwrap();
        let mut r = f.into_region();
        r.crash();
        let mut f2 = NovaFs::recover(r).unwrap();
        assert_eq!(f2.versions("s"), vec![1]);
        assert_eq!(f2.get("s", 1).unwrap(), b"one");
        // Still writable.
        f2.put("s", 2, b"two-retry").unwrap();
        assert_eq!(f2.get("s", 2).unwrap(), b"two-retry");
    }

    #[test]
    fn crash_after_unlinked_log_entry_is_invisible() {
        let mut f = fs();
        f.put("s", 1, b"one").unwrap();
        f.put_with_crash("s", 2, b"two", CrashPoint::AfterLogRecord)
            .unwrap();
        let mut r = f.into_region();
        r.crash();
        let mut f2 = NovaFs::recover(r).unwrap();
        // The entry exists in the log area but no inode points at it.
        assert_eq!(f2.versions("s"), vec![1]);
        f2.put("s", 2, b"two-retry").unwrap();
        assert_eq!(f2.get("s", 2).unwrap(), b"two-retry");
    }

    #[test]
    fn committed_journal_is_redone_on_recovery() {
        // Simulate a crash after the journal commit but before the link was
        // applied, by hand-writing the journal state a committed put would
        // have produced. Recovery must redo the link and expose the version.
        let mut f = fs();
        f.put("s", 1, b"one").unwrap();
        f.put("s", 2, b"two").unwrap();
        // Forge: re-commit the journal describing the already-applied link
        // of version 2 (redo must be idempotent).
        let ino = *f.inodes.get("s").unwrap();
        let ibuf_tail = {
            let ibuf = f.read_inode(ino);
            get_u64(&ibuf, INO_OFF_TAIL)
        };
        let head = {
            let ibuf = f.read_inode(ino);
            get_u64(&ibuf, INO_OFF_HEAD)
        };
        let joff = NovaFs::journal_off(f.max_inodes);
        let mut j = [0u8; JOURNAL_BYTES as usize];
        put_u64(&mut j, JRN_OFF_INODE, ino);
        put_u64(&mut j, JRN_OFF_NEW, ibuf_tail);
        put_u64(&mut j, JRN_OFF_PREV, head);
        let jsum = fnv1a(&j[JRN_OFF_INODE..JRN_OFF_SUM]);
        put_u64(&mut j, JRN_OFF_SUM, jsum);
        put_u64(&mut j, JRN_OFF_STATE, JOURNAL_COMMIT);
        f.region.write(joff, &j, StoreMode::Cached);
        f.region.persist(joff, JOURNAL_BYTES);
        let mut r = f.into_region();
        r.crash();
        let mut f2 = NovaFs::recover(r).unwrap();
        assert_eq!(f2.versions("s"), vec![1, 2]);
        assert_eq!(f2.get("s", 2).unwrap(), b"two");
    }

    #[test]
    fn inode_exhaustion() {
        let mut f = NovaFs::format(region(1 << 20), 2, 4096).unwrap();
        f.put("a", 1, b"x").unwrap();
        f.put("b", 1, b"x").unwrap();
        assert!(matches!(f.put("c", 1, b"x"), Err(StoreError::OutOfSpace)));
    }

    #[test]
    fn log_area_exhaustion() {
        // Log area fits exactly 2 entries.
        let mut f = NovaFs::format(region(1 << 20), 4, 2 * 64).unwrap();
        f.put("s", 1, b"x").unwrap();
        f.put("s", 2, b"x").unwrap();
        assert!(matches!(f.put("s", 3, b"x"), Err(StoreError::OutOfSpace)));
        // Existing data still intact.
        assert_eq!(f.get("s", 2).unwrap(), b"x");
    }

    #[test]
    fn data_area_exhaustion() {
        let mut f = NovaFs::format(region(16 * 1024), 2, 1024).unwrap();
        assert!(matches!(
            f.put("s", 1, &vec![0u8; 64 * 1024]),
            Err(StoreError::OutOfSpace)
        ));
        f.put("s", 1, &vec![0u8; 512]).unwrap();
    }

    #[test]
    fn name_length_limits() {
        let mut f = fs();
        assert!(matches!(f.create(""), Err(StoreError::Invalid(_))));
        let long = "x".repeat(MAX_NAME + 1);
        assert!(matches!(f.create(&long), Err(StoreError::Invalid(_))));
        let ok = "x".repeat(MAX_NAME);
        f.create(&ok).unwrap();
    }

    #[test]
    fn create_is_idempotent() {
        let mut f = fs();
        let a = f.create("s").unwrap();
        let b = f.create("s").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn recovery_after_many_interleaved_streams() {
        let mut f = NovaFs::format(region(4 << 20), 8, 64 * 1024).unwrap();
        for v in 1..=20u64 {
            for s in 0..4 {
                f.put(
                    &format!("rank{s}"),
                    v,
                    &vec![(s * 37 + v as usize % 251) as u8; 777],
                )
                .unwrap();
            }
        }
        let mut r = f.into_region();
        r.crash();
        let mut f2 = NovaFs::recover(r).unwrap();
        for s in 0..4 {
            assert_eq!(f2.versions(&format!("rank{s}")).len(), 20);
            let d = f2.get(&format!("rank{s}"), 20).unwrap();
            assert_eq!(d, vec![(s * 37 + 20) as u8; 777]);
        }
    }

    #[test]
    fn kind_is_nova() {
        assert_eq!(fs().kind(), StackKind::Nova);
    }

    #[test]
    fn truncate_before_drops_prefix_and_survives_recovery() {
        let mut f = fs();
        for v in 1..=8u64 {
            f.put("s", v, format!("v{v}").as_bytes()).unwrap();
        }
        let dropped = f.truncate_before("s", 5).unwrap();
        assert_eq!(dropped, 4);
        assert_eq!(f.versions("s"), vec![5, 6, 7, 8]);
        assert!(f.get("s", 3).is_err());
        assert_eq!(f.get("s", 6).unwrap(), b"v6");
        // Durable: the head advance persists across a crash.
        let mut r = f.into_region();
        r.crash();
        let mut f2 = NovaFs::recover(r).unwrap();
        assert_eq!(f2.versions("s"), vec![5, 6, 7, 8]);
        assert_eq!(f2.get("s", 8).unwrap(), b"v8");
        // Appending continues to work after truncation.
        f2.put("s", 9, b"v9").unwrap();
        assert_eq!(f2.get("s", 9).unwrap(), b"v9");
    }

    #[test]
    fn truncate_everything_resets_stream() {
        let mut f = fs();
        for v in 1..=3u64 {
            f.put("s", v, b"x").unwrap();
        }
        assert_eq!(f.truncate_before("s", 100).unwrap(), 3);
        assert!(f.versions("s").is_empty());
        f.put("s", 101, b"fresh").unwrap();
        assert_eq!(f.get("s", 101).unwrap(), b"fresh");
        let mut r = f.into_region();
        r.crash();
        let f2 = NovaFs::recover(r).unwrap();
        assert_eq!(f2.versions("s"), vec![101]);
    }

    #[test]
    fn unlink_removes_stream_durably() {
        let mut f = fs();
        f.put("a", 1, b"x").unwrap();
        f.put("b", 1, b"y").unwrap();
        f.unlink("a").unwrap();
        assert!(matches!(f.get("a", 1), Err(StoreError::UnknownStream(_))));
        assert_eq!(f.get("b", 1).unwrap(), b"y");
        let mut r = f.into_region();
        r.crash();
        let mut f2 = NovaFs::recover(r).unwrap();
        assert_eq!(f2.streams(), vec!["b"]);
        // The inode slot is reusable.
        f2.put("c", 1, b"z").unwrap();
        assert_eq!(f2.get("c", 1).unwrap(), b"z");
    }

    #[test]
    fn truncate_unknown_stream_errors() {
        let mut f = fs();
        assert!(matches!(
            f.truncate_before("nope", 1),
            Err(StoreError::UnknownStream(_))
        ));
        assert!(matches!(
            f.unlink("nope"),
            Err(StoreError::UnknownStream(_))
        ));
    }
}
