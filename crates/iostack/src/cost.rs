//! Software cost models of the two I/O stacks.
//!
//! The paper's §IV-A identifies the per-operation software cost of the PMEM
//! stack as one of the three parameters governing a workflow's sensitivity
//! to PMEM behaviour: with small objects the aggregate software cost
//! dominates and the device is *under*-utilized; with large objects it
//! vanishes and the device saturates. The two stacks differ exactly here
//! (§V): NOVA pays a user/kernel crossing, journaling, and log management
//! per file operation, while NVStream runs entirely in userspace with a
//! lean versioned-log append.
//!
//! Costs are calibrated to the magnitudes published for NOVA (FAST'16 §6:
//! multi-microsecond small-file latencies) and NVStream (HPDC'18 §5:
//! several-times-lower software overhead than filesystem transports).

use pmemflow_des::Direction;

/// Which I/O stack carries the streaming channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StackKind {
    /// NOVA-like log-structured PMEM filesystem (kernel path).
    Nova,
    /// NVStream-like userspace versioned object store.
    NvStream,
}

impl StackKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            StackKind::Nova => "NOVA",
            StackKind::NvStream => "NVStream",
        }
    }

    /// Parse a stack from a user-facing name, case-insensitively. The
    /// single name table the CLI and the serving daemon resolve through.
    pub fn parse(name: &str) -> Option<StackKind> {
        match name.to_ascii_lowercase().as_str() {
            "nova" => Some(StackKind::Nova),
            "nvstream" => Some(StackKind::NvStream),
            _ => None,
        }
    }

    /// The cost model for this stack.
    pub fn cost_model(self) -> StackCostModel {
        match self {
            StackKind::Nova => StackCostModel {
                name: "NOVA",
                // write(): syscall entry/exit + VFS dispatch (~2.0 us),
                // per-inode log append + allocator (~1.4 us), metadata
                // journal update + flushes (~1.1 us).
                write_op_cost: 8.0e-6,
                // read(): syscall + VFS (~3.5 us), log/index lookup (~1.5 us).
                read_op_cost: 5.0e-6,
                // Checksumming and log-entry bookkeeping per byte.
                write_byte_cost: 0.45e-9,
                read_byte_cost: 0.33e-9,
            },
            StackKind::NvStream => StackCostModel {
                name: "NVStream",
                // Userspace versioned-log append: header build, allocator,
                // index insert, tail persist with two fences (~3.8 us
                // total; calibrated by bin/tune within the range NVStream's
                // authors report for small-object appends).
                write_op_cost: 3.49e-6,
                // Index lookup + entry validation, no kernel crossing.
                read_op_cost: 2.53e-6,
                // Payload checksumming per byte (the functional store
                // checksums every persisted byte).
                write_byte_cost: 0.13e-9,
                read_byte_cost: 0.167e-9,
            },
        }
    }
}

/// Per-operation and per-byte CPU costs of one stack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StackCostModel {
    /// Stack name.
    pub name: &'static str,
    /// CPU seconds per write operation (object put).
    pub write_op_cost: f64,
    /// CPU seconds per read operation (object get).
    pub read_op_cost: f64,
    /// CPU seconds per written byte beyond the device transfer itself.
    pub write_byte_cost: f64,
    /// CPU seconds per read byte beyond the device transfer itself.
    pub read_byte_cost: f64,
}

impl StackCostModel {
    /// CPU seconds per operation for the given direction.
    pub fn op_cost(&self, dir: Direction) -> f64 {
        match dir {
            Direction::Read => self.read_op_cost,
            Direction::Write => self.write_op_cost,
        }
    }

    /// CPU seconds per byte for the given direction.
    pub fn byte_cost(&self, dir: Direction) -> f64 {
        match dir {
            Direction::Read => self.read_byte_cost,
            Direction::Write => self.write_byte_cost,
        }
    }

    /// Software seconds per byte for objects of `object_bytes`, with
    /// `device_latency` (seconds) charged per operation. This is the
    /// `sw_time_per_byte` handed to the fluid model.
    pub fn sw_time_per_byte(&self, dir: Direction, object_bytes: u64, device_latency: f64) -> f64 {
        assert!(object_bytes > 0, "objects must be non-empty");
        (self.op_cost(dir) + device_latency) / object_bytes as f64 + self.byte_cost(dir)
    }

    /// Total software seconds for a snapshot of `objects` objects of
    /// `object_bytes` each.
    pub fn snapshot_sw_time(
        &self,
        dir: Direction,
        objects: u64,
        object_bytes: u64,
        device_latency: f64,
    ) -> f64 {
        self.sw_time_per_byte(dir, object_bytes, device_latency)
            * (objects as f64)
            * (object_bytes as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nova_is_heavier_than_nvstream() {
        let nova = StackKind::Nova.cost_model();
        let nvs = StackKind::NvStream.cost_model();
        assert!(nova.write_op_cost > 2.0 * nvs.write_op_cost);
        assert!(nova.read_op_cost > 1.5 * nvs.read_op_cost);
        assert!(nova.write_byte_cost > nvs.write_byte_cost);
    }

    #[test]
    fn small_objects_dominated_by_op_cost() {
        let m = StackKind::NvStream.cost_model();
        let small = m.sw_time_per_byte(Direction::Write, 2048, 90e-9);
        let large = m.sw_time_per_byte(Direction::Write, 64 << 20, 90e-9);
        // Per-byte software cost collapses for large objects (down to the
        // per-byte checksum floor).
        assert!(small / large > 5.0, "{small} vs {large}");
        assert!((large - m.write_byte_cost).abs() / large < 0.05);
    }

    #[test]
    fn snapshot_sw_time_scales_with_object_count() {
        let m = StackKind::Nova.cost_model();
        // 1 GB in 2 KB objects = 524288 ops at ~8 us: seconds of CPU work.
        let t_small = m.snapshot_sw_time(Direction::Write, 524_288, 2048, 90e-9);
        // 1 GB in 64 MB objects = 16 ops: only the per-byte floor remains.
        let t_large = m.snapshot_sw_time(Direction::Write, 16, 64 << 20, 90e-9);
        assert!(t_small > 1.0, "small-object software time {t_small}");
        assert!(t_large < 1.0, "large-object software time {t_large}");
        assert!(t_small / t_large > 4.0);
    }

    #[test]
    fn latency_asymmetry_visible_for_small_objects() {
        // With 2 KB objects, the extra ~140 ns of remote read latency per
        // op is a measurable per-byte cost; for writes the remote penalty
        // is tiny. This drives the paper's LocR preference for small,
        // non-saturating workloads.
        let m = StackKind::NvStream.cost_model();
        let r_local = m.sw_time_per_byte(Direction::Read, 2048, 169e-9);
        let r_remote = m.sw_time_per_byte(Direction::Read, 2048, 310e-9);
        let w_local = m.sw_time_per_byte(Direction::Write, 2048, 90e-9);
        let w_remote = m.sw_time_per_byte(Direction::Write, 2048, 115e-9);
        let read_penalty = r_remote / r_local;
        let write_penalty = w_remote / w_local;
        assert!(read_penalty > write_penalty);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_byte_objects_rejected() {
        StackKind::Nova
            .cost_model()
            .sw_time_per_byte(Direction::Write, 0, 0.0);
    }
}
