//! NVStream-like userspace versioned object store.
//!
//! A functional reimplementation of the NVStream design the paper uses as
//! its low-overhead transport (§V; Fernando et al. HPDC'18): a log-based
//! versioned object store living entirely in userspace. Properties
//! reproduced here:
//!
//! * **Append-only ring log of immutable versions** — snapshot data is
//!   never overwritten in place; readers address `(stream, version)`.
//!   Streaming workflows run indefinitely, so the log is a **ring**: once
//!   analytics has consumed a version ([`NvStore::consume`]), its space
//!   can be reclaimed ([`NvStore::reclaim`]) and the write position wraps
//!   around — bounded memory for unbounded streams.
//! * **Non-temporal stores for payload** — the writer streams snapshot
//!   bytes past the CPU cache ([`StoreMode::NonTemporal`]), maximizing
//!   PMEM bandwidth and avoiding cache pollution, since simulations never
//!   read their own output back.
//! * **Two-step commit** — payload and entry header become durable with
//!   one fence, then the 8-byte logical tail advances (atomic on x86). A
//!   crash between the two leaves the entry invisible but the store
//!   consistent; the same discipline covers head advances on reclaim.
//!
//! The on-PMEM layout:
//!
//! ```text
//! [ header 64 B | ring log ........................................... ]
//! entry = [ 40 B header | stream name | payload ] padded to 64 B
//! ```
//!
//! `head` and `tail` are *logical* (monotonically increasing) positions;
//! physical offsets are `LOG_START + logical % ring_len`. An entry never
//! straddles the physical end of the ring — a `PAD` record fills the gap.

use crate::codec::{align_up, get_u32, get_u64, put_u32, put_u64};
use crate::cost::StackKind;
use crate::hash::fnv1a_multi;
use crate::store::{CrashPoint, ObjectStore, StoreError};
use pmemflow_pmem::{PmemRegion, StoreMode};
use std::collections::BTreeMap;

const HEADER_MAGIC: u64 = 0x4e56_5354_5245_414d; // "NVSTREAM"
const ENTRY_MAGIC: u64 = 0x4e56_5345_4e54_5259; // "NVSENTRY"
const PAD_MAGIC: u64 = 0x4e56_5350_4144_5f5f; // "NVSPAD__"
const HEADER_BYTES: u64 = 64;
const ENTRY_HEADER_BYTES: u64 = 40;
const MAX_NAME: usize = 4096;

const HDR_OFF_MAGIC: usize = 0;
const HDR_OFF_TAIL: usize = 8;
const HDR_OFF_HEAD: usize = 16;

/// The NVStream-like store. Owns its backing region.
pub struct NvStore {
    region: PmemRegion,
    /// Logical write position (monotone).
    tail: u64,
    /// Logical reclaim position (monotone, ≤ tail).
    head: u64,
    /// (stream, version) → (logical payload position, length, checksum).
    index: BTreeMap<(String, u64), (u64, u32, u64)>,
    /// Oldest logical entry position per live (stream, version), used by
    /// reclaim to know when the head may pass an entry.
    entries: BTreeMap<u64, (String, u64, u64)>, // logical pos → (stream, version, end)
    /// stream → highest consumed version (reclaim may pass entries with
    /// version ≤ this).
    consumed: BTreeMap<String, u64>,
}

impl NvStore {
    fn ring_len(&self) -> u64 {
        self.region.len() as u64 - HEADER_BYTES
    }

    /// Format a fresh store over `region`.
    pub fn format(mut region: PmemRegion) -> Result<NvStore, StoreError> {
        if (region.len() as u64) < HEADER_BYTES + 256 {
            return Err(StoreError::Invalid("region too small".into()));
        }
        let mut hdr = [0u8; HEADER_BYTES as usize];
        put_u64(&mut hdr, HDR_OFF_MAGIC, HEADER_MAGIC);
        put_u64(&mut hdr, HDR_OFF_TAIL, 0);
        put_u64(&mut hdr, HDR_OFF_HEAD, 0);
        region.write(0, &hdr, StoreMode::Cached);
        region.persist(0, HEADER_BYTES);
        Ok(NvStore {
            region,
            tail: 0,
            head: 0,
            index: BTreeMap::new(),
            entries: BTreeMap::new(),
            consumed: BTreeMap::new(),
        })
    }

    /// Mount an existing store, rebuilding the index by scanning the ring
    /// from the persisted head to the persisted tail. Crash-recovery path.
    pub fn recover(mut region: PmemRegion) -> Result<NvStore, StoreError> {
        let mut hdr = [0u8; HEADER_BYTES as usize];
        region.read(0, &mut hdr);
        if get_u64(&hdr, HDR_OFF_MAGIC) != HEADER_MAGIC {
            return Err(StoreError::Corrupt("bad NVStream header magic".into()));
        }
        let tail = get_u64(&hdr, HDR_OFF_TAIL);
        let head = get_u64(&hdr, HDR_OFF_HEAD);
        let mut store = NvStore {
            region,
            tail,
            head,
            index: BTreeMap::new(),
            entries: BTreeMap::new(),
            consumed: BTreeMap::new(),
        };
        if head > tail || tail - head > store.ring_len() {
            return Err(StoreError::Corrupt(format!(
                "inconsistent ring pointers head={head} tail={tail}"
            )));
        }
        let mut pos = head;
        while pos < tail {
            let mut eh = [0u8; ENTRY_HEADER_BYTES as usize];
            store.read_ring(pos, &mut eh);
            let magic = get_u64(&eh, 0);
            if magic == PAD_MAGIC {
                let pad = get_u64(&eh, 8);
                pos += pad;
                continue;
            }
            if magic != ENTRY_MAGIC {
                return Err(StoreError::Corrupt(format!(
                    "bad entry magic at logical {pos}"
                )));
            }
            let stream_len = get_u32(&eh, 8) as u64;
            let data_len = get_u32(&eh, 12) as u64;
            let version = get_u64(&eh, 16);
            let checksum = get_u64(&eh, 24);
            let name_pos = pos + ENTRY_HEADER_BYTES;
            let data_pos = name_pos + stream_len;
            let end = align_up(data_pos + data_len, 64);
            if end > tail {
                return Err(StoreError::Corrupt(format!(
                    "entry at {pos} extends past tail"
                )));
            }
            let mut name = vec![0u8; stream_len as usize];
            store.read_ring(name_pos, &mut name);
            let mut data = vec![0u8; data_len as usize];
            store.read_ring(data_pos, &mut data);
            if fnv1a_multi(&[&name, &data]) != checksum {
                return Err(StoreError::Corrupt(format!(
                    "checksum mismatch for entry at logical {pos} (torn write \
                     inside committed log)"
                )));
            }
            let name = String::from_utf8(name)
                .map_err(|_| StoreError::Corrupt(format!("non-UTF8 name at {pos}")))?;
            store.index.insert(
                (name.clone(), version),
                (data_pos, data_len as u32, checksum),
            );
            store.entries.insert(pos, (name, version, end));
            pos = end;
        }
        Ok(store)
    }

    /// Ring-aware read at a logical position (handles wrap).
    fn read_ring(&mut self, logical: u64, out: &mut [u8]) {
        let ring = self.ring_len();
        let start = logical % ring;
        let first = ((ring - start) as usize).min(out.len());
        let phys = HEADER_BYTES + start;
        self.region.read(phys, &mut out[..first]);
        if first < out.len() {
            self.region.read(HEADER_BYTES, &mut out[first..]);
        }
    }

    /// Ring-aware non-temporal write at a logical position.
    fn write_ring(&mut self, logical: u64, data: &[u8]) {
        let ring = self.ring_len();
        let start = logical % ring;
        let first = ((ring - start) as usize).min(data.len());
        let phys = HEADER_BYTES + start;
        self.region
            .write(phys, &data[..first], StoreMode::NonTemporal);
        if first < data.len() {
            self.region
                .write(HEADER_BYTES, &data[first..], StoreMode::NonTemporal);
        }
    }

    fn persist_pointer(&mut self, offset: usize, value: u64) {
        let mut b = [0u8; 8];
        put_u64(&mut b, 0, value);
        self.region.write(offset as u64, &b, StoreMode::Cached);
        self.region.persist(offset as u64, 8);
    }

    /// `put` with a crash injected at `crash` (testing API; see
    /// [`CrashPoint`]). With `CrashPoint::None` this is exactly
    /// [`ObjectStore::put`].
    pub fn put_with_crash(
        &mut self,
        stream: &str,
        version: u64,
        data: &[u8],
        crash: CrashPoint,
    ) -> Result<(), StoreError> {
        if stream.is_empty() || stream.len() > MAX_NAME {
            return Err(StoreError::Invalid("stream name empty or too long".into()));
        }
        if data.is_empty() {
            return Err(StoreError::Invalid("zero-length object".into()));
        }
        if let Some(latest) = self.latest(stream) {
            if version <= latest {
                return Err(StoreError::Invalid(format!(
                    "version {version} not after latest {latest}"
                )));
            }
        }
        let name = stream.as_bytes();
        let body = ENTRY_HEADER_BYTES + name.len() as u64 + data.len() as u64;
        let need = align_up(body, 64);
        let ring = self.ring_len();
        if need > ring {
            return Err(StoreError::OutOfSpace);
        }

        // Avoid straddling the physical ring end: pad to the wrap point if
        // the entry would cross it.
        let mut start = self.tail;
        let until_wrap = ring - start % ring;
        let mut pad = 0u64;
        if need > until_wrap {
            pad = until_wrap;
        }
        if start + pad + need > self.head + ring {
            return Err(StoreError::OutOfSpace);
        }
        if pad > 0 {
            // A PAD record needs at least a header; if the residue is too
            // small to hold one, the recovery scan could not parse it, so
            // reject only in the (impossible by alignment) degenerate case.
            debug_assert!(pad >= ENTRY_HEADER_BYTES, "pad residue {pad} too small");
            let mut ph = [0u8; ENTRY_HEADER_BYTES as usize];
            put_u64(&mut ph, 0, PAD_MAGIC);
            put_u64(&mut ph, 8, pad);
            self.write_ring(start, &ph);
            start += pad;
        }

        let checksum = fnv1a_multi(&[name, data]);
        let mut eh = [0u8; ENTRY_HEADER_BYTES as usize];
        put_u64(&mut eh, 0, ENTRY_MAGIC);
        put_u32(&mut eh, 8, name.len() as u32);
        put_u32(&mut eh, 12, data.len() as u32);
        put_u64(&mut eh, 16, version);
        put_u64(&mut eh, 24, checksum);
        // Phase 1: stream the entry (header, name, payload).
        self.write_ring(start, &eh);
        self.write_ring(start + ENTRY_HEADER_BYTES, name);
        let data_pos = start + ENTRY_HEADER_BYTES + name.len() as u64;
        self.write_ring(data_pos, data);
        if crash == CrashPoint::AfterDataWrite {
            return Ok(()); // no fence: nothing guaranteed durable
        }
        self.region.fence();
        if crash == CrashPoint::AfterDataPersist || crash == CrashPoint::AfterLogRecord {
            return Ok(()); // entry durable but tail still points before it
        }
        // Phase 2: advance the logical tail (8-byte update, atomic).
        let end = start
            + align_up(
                ENTRY_HEADER_BYTES + name.len() as u64 + data.len() as u64,
                64,
            );
        self.persist_pointer(HDR_OFF_TAIL, end);
        self.tail = end;
        self.index.insert(
            (stream.to_string(), version),
            (data_pos, data.len() as u32, checksum),
        );
        self.entries
            .insert(start, (stream.to_string(), version, end));
        Ok(())
    }

    /// Read `len` bytes of `version` of `stream` starting at byte
    /// `offset` — partial reads are how analytics kernels fetch individual
    /// fields of a snapshot object.
    pub fn get_range(
        &mut self,
        stream: &str,
        version: u64,
        offset: u64,
        len: usize,
    ) -> Result<Vec<u8>, StoreError> {
        let key = (stream.to_string(), version);
        let Some(&(pos, total, _)) = self.index.get(&key) else {
            return self.missing(stream, version);
        };
        if offset + len as u64 > total as u64 {
            return Err(StoreError::Invalid(format!(
                "range [{offset}, +{len}) outside object of {total} bytes"
            )));
        }
        let mut out = vec![0u8; len];
        self.read_ring(pos + offset, &mut out);
        Ok(out)
    }

    fn missing(&self, stream: &str, version: u64) -> Result<Vec<u8>, StoreError> {
        if self.index.keys().any(|(s, _)| s == stream) {
            Err(StoreError::UnknownVersion {
                stream: stream.to_string(),
                version,
            })
        } else {
            Err(StoreError::UnknownStream(stream.to_string()))
        }
    }

    /// Mark `version` (and everything older) of `stream` as consumed by
    /// the analytics side; consumed versions may be reclaimed.
    pub fn consume(&mut self, stream: &str, version: u64) {
        let e = self.consumed.entry(stream.to_string()).or_insert(0);
        *e = (*e).max(version);
    }

    /// Advance the ring head past entries whose version has been consumed,
    /// returning the number of bytes reclaimed. The head only moves over a
    /// contiguous consumed prefix (it is a ring, not a free list).
    pub fn reclaim(&mut self) -> u64 {
        let start_head = self.head;
        while let Some((&pos, (stream, version, end))) = self.entries.iter().next() {
            debug_assert!(pos >= self.head);
            // Stop at the first unconsumed entry.
            let consumed = self.consumed.get(stream).copied().unwrap_or(0);
            if *version > consumed {
                break;
            }
            let key = (stream.clone(), *version);
            let end = *end;
            self.index.remove(&key);
            self.entries.remove(&pos);
            self.head = end;
        }
        if self.head != start_head {
            self.persist_pointer(HDR_OFF_HEAD, self.head);
        }
        self.head - start_head
    }

    /// Borrow the backing region (e.g. to inject a crash in tests).
    pub fn region_mut(&mut self) -> &mut PmemRegion {
        &mut self.region
    }

    /// Consume the store, returning the region (for crash/recover cycles).
    pub fn into_region(self) -> PmemRegion {
        self.region
    }

    /// Bytes of ring space currently occupied (tail − head).
    pub fn used_bytes(&self) -> u64 {
        self.tail - self.head
    }

    /// Total ring capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.ring_len()
    }
}

impl ObjectStore for NvStore {
    fn put(&mut self, stream: &str, version: u64, data: &[u8]) -> Result<(), StoreError> {
        self.put_with_crash(stream, version, data, CrashPoint::None)
    }

    fn get(&mut self, stream: &str, version: u64) -> Result<Vec<u8>, StoreError> {
        let key = (stream.to_string(), version);
        let Some(&(pos, len, checksum)) = self.index.get(&key) else {
            return self.missing(stream, version);
        };
        let mut data = vec![0u8; len as usize];
        self.read_ring(pos, &mut data);
        if fnv1a_multi(&[stream.as_bytes(), &data]) != checksum {
            return Err(StoreError::Corrupt(format!(
                "payload checksum mismatch for {stream:?} v{version}"
            )));
        }
        Ok(data)
    }

    fn streams(&self) -> Vec<String> {
        let mut names: Vec<String> = self.index.keys().map(|(s, _)| s.clone()).collect();
        names.sort();
        names.dedup();
        names
    }

    fn versions(&self, stream: &str) -> Vec<u64> {
        self.index
            .keys()
            .filter(|(s, _)| s == stream)
            .map(|(_, v)| *v)
            .collect()
    }

    fn kind(&self) -> StackKind {
        StackKind::NvStream
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmemflow_pmem::InterleaveGeometry;

    fn region(len: usize) -> PmemRegion {
        PmemRegion::new(
            len,
            InterleaveGeometry {
                dimms: 6,
                chunk_bytes: 4096,
            },
        )
    }

    fn store() -> NvStore {
        NvStore::format(region(1 << 20)).unwrap()
    }

    #[test]
    fn put_get_roundtrip() {
        let mut s = store();
        s.put("gtc/rank0", 1, b"particles-v1").unwrap();
        assert_eq!(s.get("gtc/rank0", 1).unwrap(), b"particles-v1");
    }

    #[test]
    fn multiple_versions_and_streams() {
        let mut s = store();
        for v in 1..=5u64 {
            s.put("a", v, format!("a{v}").as_bytes()).unwrap();
            s.put("b", v, format!("b{v}").as_bytes()).unwrap();
        }
        assert_eq!(s.streams(), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(s.versions("a"), vec![1, 2, 3, 4, 5]);
        assert_eq!(s.latest("b"), Some(5));
        assert_eq!(s.get("b", 3).unwrap(), b"b3");
    }

    #[test]
    fn version_monotonicity_enforced() {
        let mut s = store();
        s.put("a", 2, b"x").unwrap();
        assert!(matches!(s.put("a", 2, b"y"), Err(StoreError::Invalid(_))));
        assert!(matches!(s.put("a", 1, b"y"), Err(StoreError::Invalid(_))));
        s.put("a", 3, b"z").unwrap();
    }

    #[test]
    fn unknown_lookups() {
        let mut s = store();
        s.put("a", 1, b"x").unwrap();
        assert!(matches!(
            s.get("nope", 1),
            Err(StoreError::UnknownStream(_))
        ));
        assert!(matches!(
            s.get("a", 9),
            Err(StoreError::UnknownVersion { .. })
        ));
    }

    #[test]
    fn recovery_rebuilds_index() {
        let mut s = store();
        s.put("sim", 1, &vec![7u8; 10_000]).unwrap();
        s.put("sim", 2, &vec![9u8; 5_000]).unwrap();
        let mut region = s.into_region();
        region.crash();
        let mut s2 = NvStore::recover(region).unwrap();
        assert_eq!(s2.versions("sim"), vec![1, 2]);
        assert_eq!(s2.get("sim", 2).unwrap(), vec![9u8; 5_000]);
    }

    #[test]
    fn crash_before_any_fence_loses_entry_cleanly() {
        let mut s = store();
        s.put("sim", 1, b"one").unwrap();
        s.put_with_crash("sim", 2, b"two", CrashPoint::AfterDataWrite)
            .unwrap();
        let mut region = s.into_region();
        region.crash();
        let mut s2 = NvStore::recover(region).unwrap();
        assert_eq!(s2.versions("sim"), vec![1]);
        assert_eq!(s2.get("sim", 1).unwrap(), b"one");
    }

    #[test]
    fn crash_before_tail_update_hides_entry() {
        let mut s = store();
        s.put("sim", 1, b"one").unwrap();
        s.put_with_crash("sim", 2, b"two", CrashPoint::AfterDataPersist)
            .unwrap();
        let mut region = s.into_region();
        region.crash();
        let mut s2 = NvStore::recover(region).unwrap();
        assert_eq!(s2.versions("sim"), vec![1]);
        s2.put("sim", 2, b"two-again").unwrap();
        assert_eq!(s2.get("sim", 2).unwrap(), b"two-again");
    }

    #[test]
    fn out_of_space_without_consumption() {
        let mut s = NvStore::format(region(4096 + 64)).unwrap();
        assert!(matches!(
            s.put("big", 1, &vec![0u8; 8192]),
            Err(StoreError::OutOfSpace)
        ));
        s.put("small", 1, b"ok").unwrap();
    }

    #[test]
    fn ring_reclaims_consumed_space_and_wraps() {
        // Ring of ~4 KiB; each object ~1 KiB packed into 1152-byte
        // entries. Without reclaim it fills after ~3 puts; with consume +
        // reclaim the stream runs indefinitely, wrapping the ring.
        let mut s = NvStore::format(region(4096 + HEADER_BYTES as usize)).unwrap();
        let payload = vec![0x77u8; 1024];
        for v in 1..=20u64 {
            if v > 3 {
                s.consume("sim", v - 2);
                s.reclaim();
            }
            s.put("sim", v, &payload)
                .unwrap_or_else(|e| panic!("put v{v}: {e}"));
            assert_eq!(s.get("sim", v).unwrap(), payload);
        }
        // Old versions are gone, recent survive.
        assert!(s.get("sim", 1).is_err());
        assert_eq!(s.get("sim", 20).unwrap(), payload);
        assert!(s.used_bytes() <= s.capacity_bytes());
    }

    #[test]
    fn reclaim_stops_at_first_unconsumed_entry() {
        let mut s = store();
        s.put("a", 1, &vec![1u8; 500]).unwrap();
        s.put("b", 1, &vec![2u8; 500]).unwrap();
        s.put("a", 2, &vec![3u8; 500]).unwrap();
        s.consume("a", 2); // b/1 is NOT consumed
        let freed = s.reclaim();
        // Only a/1 can go; the head stops at b/1.
        assert!(freed > 0);
        assert!(s.get("a", 1).is_err());
        assert_eq!(s.get("b", 1).unwrap(), vec![2u8; 500]);
        assert_eq!(s.get("a", 2).unwrap(), vec![3u8; 500]);
    }

    #[test]
    fn recovery_after_reclaim_and_wrap() {
        let mut s = NvStore::format(region(8192 + HEADER_BYTES as usize)).unwrap();
        let payload = vec![0x42u8; 1500];
        for v in 1..=12u64 {
            if v > 2 {
                s.consume("sim", v - 2);
                s.reclaim();
            }
            s.put("sim", v, &payload).unwrap();
        }
        let mut r = s.into_region();
        r.crash();
        let mut s2 = NvStore::recover(r).unwrap();
        // The live suffix survives with correct contents.
        let versions = s2.versions("sim");
        assert!(versions.contains(&12));
        for v in versions {
            assert_eq!(s2.get("sim", v).unwrap(), payload);
        }
    }

    #[test]
    fn get_range_partial_reads() {
        let mut s = store();
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        s.put("obj", 1, &data).unwrap();
        assert_eq!(s.get_range("obj", 1, 0, 10).unwrap(), &data[..10]);
        assert_eq!(s.get_range("obj", 1, 500, 100).unwrap(), &data[500..600]);
        assert!(matches!(
            s.get_range("obj", 1, 950, 100),
            Err(StoreError::Invalid(_))
        ));
        assert!(s.get_range("obj", 2, 0, 1).is_err());
    }

    #[test]
    fn rejects_bad_arguments() {
        let mut s = store();
        assert!(matches!(s.put("", 1, b"x"), Err(StoreError::Invalid(_))));
        assert!(matches!(s.put("a", 1, b""), Err(StoreError::Invalid(_))));
    }

    #[test]
    fn payload_persists_after_put() {
        let mut s = store();
        s.put("a", 1, &vec![1u8; 4096]).unwrap();
        assert_eq!(s.region_mut().volatile_bytes(), 0);
    }

    #[test]
    fn large_snapshot_roundtrip() {
        let mut s = NvStore::format(region(8 << 20)).unwrap();
        let payload: Vec<u8> = (0..1_000_000u32).map(|i| (i % 255) as u8).collect();
        s.put("snap", 1, &payload).unwrap();
        assert_eq!(s.get("snap", 1).unwrap(), payload);
        let mut r = s.into_region();
        r.crash();
        let mut s2 = NvStore::recover(r).unwrap();
        assert_eq!(s2.get("snap", 1).unwrap(), payload);
    }

    #[test]
    fn kind_is_nvstream() {
        assert_eq!(store().kind(), StackKind::NvStream);
    }

    #[test]
    fn used_bytes_tracks_ring_occupancy() {
        let mut s = store();
        assert_eq!(s.used_bytes(), 0);
        s.put("a", 1, &vec![0u8; 1000]).unwrap();
        let used = s.used_bytes();
        assert!((1000..1300).contains(&used));
        s.consume("a", 1);
        s.reclaim();
        assert_eq!(s.used_bytes(), 0);
    }
}
