//! The common object-store interface both stacks implement.
//!
//! The paper's workflows exchange *versioned named objects*: each writer
//! rank instantiates its objects once, then publishes a new version of every
//! object per iteration (a checkpoint/snapshot), and reader ranks consume
//! versions in order (§V "Measurements"). This trait captures exactly that
//! contract; `NovaFs` and `NvStore` provide it over a [`pmemflow_pmem::PmemRegion`]
//! with different mechanisms and different software costs.

use crate::cost::StackKind;

/// Errors from store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The named stream/object has never been created.
    UnknownStream(String),
    /// The stream exists but the requested version does not.
    UnknownVersion {
        /// Stream name.
        stream: String,
        /// Version requested.
        version: u64,
    },
    /// Persistent state failed validation (torn write, bad checksum).
    Corrupt(String),
    /// The backing region is full.
    OutOfSpace,
    /// Invalid argument (empty name, name too long, zero-length object...).
    Invalid(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::UnknownStream(s) => write!(f, "unknown stream {s:?}"),
            StoreError::UnknownVersion { stream, version } => {
                write!(f, "stream {stream:?} has no version {version}")
            }
            StoreError::Corrupt(why) => write!(f, "corrupt store: {why}"),
            StoreError::OutOfSpace => write!(f, "out of space"),
            StoreError::Invalid(why) => write!(f, "invalid argument: {why}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// A versioned named-object store over persistent memory.
pub trait ObjectStore {
    /// Persist `data` as `version` of `stream`. Versions must be published
    /// in increasing order per stream; re-publishing an existing version is
    /// an error.
    fn put(&mut self, stream: &str, version: u64, data: &[u8]) -> Result<(), StoreError>;

    /// Fetch the payload of `version` of `stream`.
    fn get(&mut self, stream: &str, version: u64) -> Result<Vec<u8>, StoreError>;

    /// All stream names, sorted.
    fn streams(&self) -> Vec<String>;

    /// All versions of `stream`, ascending.
    fn versions(&self, stream: &str) -> Vec<u64>;

    /// Which stack this is.
    fn kind(&self) -> StackKind;

    /// Latest version of `stream`, if any.
    fn latest(&self, stream: &str) -> Option<u64> {
        self.versions(stream).last().copied()
    }
}

/// Where to abort a `put` protocol for crash-consistency testing.
///
/// Storage systems are validated by crashing them at every point of their
/// commit protocols; these are the interesting points shared by both
/// stacks' put paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Crash after object payload bytes were issued but before any fence.
    AfterDataWrite,
    /// Crash after the payload is durable but before the metadata/log
    /// record that names it is durable.
    AfterDataPersist,
    /// Crash after the log/journal record is durable but before the final
    /// commit (tail pointer / journal commit) is durable.
    AfterLogRecord,
    /// Run the full protocol (no crash).
    None,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = StoreError::UnknownVersion {
            stream: "s".into(),
            version: 3,
        };
        assert_eq!(e.to_string(), "stream \"s\" has no version 3");
        assert!(StoreError::OutOfSpace.to_string().contains("space"));
    }
}
