//! Little-endian field encoding for on-PMEM records.

/// Write a `u64` in little-endian at `buf[off..off+8]`.
pub fn put_u64(buf: &mut [u8], off: usize, v: u64) {
    buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

/// Read a little-endian `u64` from `buf[off..off+8]`.
pub fn get_u64(buf: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(buf[off..off + 8].try_into().unwrap())
}

/// Write a `u32` in little-endian at `buf[off..off+4]`.
pub fn put_u32(buf: &mut [u8], off: usize, v: u32) {
    buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

/// Read a little-endian `u32` from `buf[off..off+4]`.
pub fn get_u32(buf: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(buf[off..off + 4].try_into().unwrap())
}

/// Round `n` up to a multiple of `align` (power of two not required).
pub fn align_up(n: u64, align: u64) -> u64 {
    assert!(align > 0);
    n.div_ceil(align) * align
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrip() {
        let mut b = [0u8; 16];
        put_u64(&mut b, 3, 0xdead_beef_cafe_f00d);
        assert_eq!(get_u64(&b, 3), 0xdead_beef_cafe_f00d);
    }

    #[test]
    fn u32_roundtrip() {
        let mut b = [0u8; 8];
        put_u32(&mut b, 1, 0x1234_5678);
        assert_eq!(get_u32(&b, 1), 0x1234_5678);
    }

    #[test]
    fn align_up_cases() {
        assert_eq!(align_up(0, 64), 0);
        assert_eq!(align_up(1, 64), 64);
        assert_eq!(align_up(64, 64), 64);
        assert_eq!(align_up(65, 64), 128);
        assert_eq!(align_up(100, 24), 120);
    }
}
