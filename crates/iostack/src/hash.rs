//! Checksums for on-PMEM records.
//!
//! Both stacks checksum every persisted record so that recovery can detect
//! torn writes after a crash. FNV-1a is used: it is tiny, dependency-free,
//! and collision-resistant enough for torn-write detection (we are guarding
//! against truncation and interleaved zeroes, not adversaries).

/// 64-bit FNV-1a over a byte slice.
pub fn fnv1a(data: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0100_0000_01b3;
    let mut h = OFFSET;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// FNV-1a over several slices, as if concatenated.
pub fn fnv1a_multi(parts: &[&[u8]]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0100_0000_01b3;
    let mut h = OFFSET;
    for part in parts {
        for &b in *part {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // FNV-1a("") is the offset basis.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        // Standard test vector: fnv1a("a") = 0xaf63dc4c8601ec8c.
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn different_data_different_hash() {
        assert_ne!(fnv1a(b"hello"), fnv1a(b"hellp"));
        assert_ne!(fnv1a(b"\0"), fnv1a(b""));
    }

    #[test]
    fn multi_matches_concat() {
        let concat = fnv1a(b"abcdef");
        let multi = fnv1a_multi(&[b"ab", b"cd", b"ef"]);
        assert_eq!(concat, multi);
    }

    #[test]
    fn torn_write_detected() {
        let data = vec![0x5au8; 4096];
        let good = fnv1a(&data);
        let mut torn = data.clone();
        for b in &mut torn[2048..] {
            *b = 0;
        }
        assert_ne!(good, fnv1a(&torn));
    }
}
