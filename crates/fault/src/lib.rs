//! # pmemflow-fault — deterministic fault injection
//!
//! The paper's premise is that PMEM is *persistent*, yet a best-case
//! model never exercises that persistence. This crate provides the
//! failure side of the story as pure, seeded data: a [`FaultPlan`]
//! expands a [`FaultSpec`] into a reproducible schedule of node crashes,
//! repairs, and transient device-slowdown windows, plus a stateless
//! per-attempt job-failure draw. Everything is driven by the workspace's
//! SplitMix64 discipline ([`pmemflow_des::rng`]) so a plan replays
//! byte-identically for any worker count and across runs.
//!
//! Design rules that make the campaign loop's determinism easy:
//!
//! * **Per-node streams.** Every node owns two independent RNG streams
//!   (crash/repair and degrade windows) derived from `(seed, node)`, so
//!   node 3's schedule is identical whether the cluster has 4 nodes or
//!   40, and consuming one node's events never perturbs another's.
//! * **Stateless job draws.** Whether attempt `k` of job `j` dies — and
//!   how far in — is a pure hash of `(seed, j, k)`, independent of the
//!   order the scheduler happens to place jobs in.
//! * **Lazy, ordered expansion.** Streams are infinite; events are pulled
//!   one at a time in `(time, node, kind)` order, so a campaign only ever
//!   materializes the prefix it lives through.

#![warn(missing_docs)]

use pmemflow_des::rng::SplitMix64;

/// Parameters of a fault campaign. All times are seconds of simulated
/// campaign time; a zero `mtbf`/`degrade_mtbf`/`job_fail_prob` disables
/// that fault class, and [`FaultSpec::default`] disables everything.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Seed of the fault schedule (independent of the arrival seed so a
    /// failure trace can be replayed against different workloads).
    pub seed: u64,
    /// Mean time between crashes *per node* (exponential inter-arrival).
    /// `0.0` disables crashes.
    pub mtbf: f64,
    /// Mean node repair time (exponential); the node rejoins afterwards.
    pub repair: f64,
    /// Mean time between transient-degradation windows per node.
    /// `0.0` disables degradation.
    pub degrade_mtbf: f64,
    /// Mean duration of one degradation window (exponential).
    pub degrade_duration: f64,
    /// Progress-rate multiplier while a node is degraded (≥ 1.0): models
    /// the PMEM device dropping into a slower bandwidth class, so every
    /// resident's I/O stretches by this factor.
    pub degrade_factor: f64,
    /// Per-attempt probability (0..1) that a job dies mid-run from a
    /// cause of its own (application crash, rank failure).
    pub job_fail_prob: f64,
}

impl Default for FaultSpec {
    fn default() -> FaultSpec {
        FaultSpec {
            seed: 0,
            mtbf: 0.0,
            repair: 30.0,
            degrade_mtbf: 0.0,
            degrade_duration: 60.0,
            degrade_factor: 2.0,
            job_fail_prob: 0.0,
        }
    }
}

impl FaultSpec {
    /// Whether any fault class is active.
    pub fn enabled(&self) -> bool {
        self.mtbf > 0.0 || self.degrade_mtbf > 0.0 || self.job_fail_prob > 0.0
    }

    /// Validate ranges, returning a human-readable complaint.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("mtbf", self.mtbf),
            ("repair", self.repair),
            ("degrade_mtbf", self.degrade_mtbf),
            ("degrade_duration", self.degrade_duration),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!(
                    "{name} must be a finite non-negative time, got {v}"
                ));
            }
        }
        if self.mtbf > 0.0 && self.repair <= 0.0 {
            return Err("repair must be positive when crashes are enabled".into());
        }
        if self.degrade_factor < 1.0 || !self.degrade_factor.is_finite() {
            return Err(format!(
                "degrade_factor must be ≥ 1.0, got {}",
                self.degrade_factor
            ));
        }
        if !(0.0..1.0).contains(&self.job_fail_prob) {
            return Err(format!(
                "job_fail_prob must be in [0, 1), got {}",
                self.job_fail_prob
            ));
        }
        Ok(())
    }
}

/// Checkpoint/restart parameters for jobs under a fault plan. Checkpoints
/// are written into node-local PMEM and charged through the I/O-stack
/// cost model by the campaign loop; this struct only carries the knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointSpec {
    /// Solo-seconds of useful progress between checkpoints. `0.0`
    /// disables checkpointing: an interrupted job restarts from scratch.
    pub interval: f64,
    /// How many restarts a job is granted before it is reported failed.
    pub retry_budget: u32,
    /// Base of the exponential requeue backoff: after restart `k` the job
    /// becomes eligible again `backoff_base * 2^k` seconds later.
    pub backoff_base: f64,
    /// Checkpoint image size in bytes (application state per job).
    pub state_bytes: u64,
    /// Object granularity the image is written in — small objects pay the
    /// stack's per-operation software cost, exactly the paper's coupling.
    pub object_bytes: u64,
}

impl Default for CheckpointSpec {
    fn default() -> CheckpointSpec {
        CheckpointSpec {
            interval: 0.0,
            retry_budget: 3,
            backoff_base: 5.0,
            state_bytes: 1 << 30,
            object_bytes: 64 << 20,
        }
    }
}

impl CheckpointSpec {
    /// Validate ranges, returning a human-readable complaint.
    pub fn validate(&self) -> Result<(), String> {
        if !self.interval.is_finite() || self.interval < 0.0 {
            return Err(format!(
                "checkpoint interval must be finite and non-negative, got {}",
                self.interval
            ));
        }
        if !self.backoff_base.is_finite() || self.backoff_base < 0.0 {
            return Err(format!(
                "backoff base must be finite and non-negative, got {}",
                self.backoff_base
            ));
        }
        if self.interval > 0.0 && (self.state_bytes == 0 || self.object_bytes == 0) {
            return Err("checkpoint state and object sizes must be positive".into());
        }
        if self.interval > 0.0 && self.object_bytes > self.state_bytes {
            return Err("checkpoint objects cannot be larger than the image".into());
        }
        Ok(())
    }
}

/// What happened to a node at a [`FaultEvent`]'s instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEventKind {
    /// The node dies; every resident job is interrupted.
    Crash,
    /// The node rejoins the cluster, empty.
    Repair,
    /// The node's PMEM drops into a degraded bandwidth class.
    DegradeStart,
    /// The degradation window ends.
    DegradeEnd,
}

impl FaultEventKind {
    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            FaultEventKind::Crash => "crash",
            FaultEventKind::Repair => "repair",
            FaultEventKind::DegradeStart => "degrade-start",
            FaultEventKind::DegradeEnd => "degrade-end",
        }
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When it happens (campaign seconds).
    pub time: f64,
    /// Which node it happens to.
    pub node: usize,
    /// What happens.
    pub kind: FaultEventKind,
}

/// An alternating on/off renewal process: `Exp(mean_up)` until the next
/// "on" event, then `Exp(mean_down)` until the matching "off" event.
struct Alternator {
    rng: SplitMix64,
    node: usize,
    mean_up: f64,
    mean_down: f64,
    on_kind: FaultEventKind,
    off_kind: FaultEventKind,
    /// The next event, pre-drawn so peeking is cheap; `None` = disabled.
    next: Option<FaultEvent>,
}

/// Exponential draw with the workspace RNG: inverse CDF of `Exp(1/mean)`.
fn exp_draw(rng: &mut SplitMix64, mean: f64) -> f64 {
    // next_f64 ∈ [0, 1); 1-u ∈ (0, 1] keeps ln() finite.
    -mean * (1.0 - rng.next_f64()).ln()
}

/// Derive an independent per-(seed, node, class) stream seed.
fn stream_seed(seed: u64, node: usize, class: u64) -> u64 {
    // One SplitMix64 step over a mixed key: cheap, stable, and distinct
    // streams never share state whatever the node count is.
    SplitMix64::new(
        seed ^ (node as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15)
            ^ (class + 1).wrapping_mul(0xd1b54a32d192ed03),
    )
    .next_u64()
}

impl Alternator {
    fn new(
        seed: u64,
        node: usize,
        class: u64,
        mean_up: f64,
        mean_down: f64,
        on_kind: FaultEventKind,
        off_kind: FaultEventKind,
    ) -> Alternator {
        let mut a = Alternator {
            rng: SplitMix64::new(stream_seed(seed, node, class)),
            node,
            mean_up,
            mean_down,
            on_kind,
            off_kind,
            next: None,
        };
        if mean_up > 0.0 && mean_down > 0.0 {
            let t = exp_draw(&mut a.rng, mean_up);
            a.next = Some(FaultEvent {
                time: t,
                node,
                kind: on_kind,
            });
        }
        a
    }

    fn peek(&self) -> Option<&FaultEvent> {
        self.next.as_ref()
    }

    fn pop(&mut self) -> Option<FaultEvent> {
        let event = self.next?;
        let (mean, kind) = if event.kind == self.on_kind {
            (self.mean_down, self.off_kind)
        } else {
            (self.mean_up, self.on_kind)
        };
        let dt = exp_draw(&mut self.rng, mean);
        self.next = Some(FaultEvent {
            time: event.time + dt,
            node: self.node,
            kind,
        });
        Some(event)
    }
}

/// A fully deterministic, lazily expanded fault schedule over `nodes`
/// nodes, plus the stateless job-failure oracle.
///
/// Events are consumed in global `(time, node, kind-priority)` order via
/// [`FaultPlan::peek_time`] / [`FaultPlan::pop`]; the streams are
/// infinite, so the consumer decides when to stop pulling (a campaign
/// stops once no work remains).
pub struct FaultPlan {
    spec: FaultSpec,
    streams: Vec<Alternator>,
}

impl FaultPlan {
    /// Expand `spec` over `nodes` nodes.
    pub fn new(spec: &FaultSpec, nodes: usize) -> FaultPlan {
        let mut streams = Vec::with_capacity(nodes * 2);
        for node in 0..nodes {
            streams.push(Alternator::new(
                spec.seed,
                node,
                0,
                spec.mtbf,
                spec.repair,
                FaultEventKind::Crash,
                FaultEventKind::Repair,
            ));
            streams.push(Alternator::new(
                spec.seed,
                node,
                1,
                spec.degrade_mtbf,
                spec.degrade_duration,
                FaultEventKind::DegradeStart,
                FaultEventKind::DegradeEnd,
            ));
        }
        FaultPlan {
            spec: spec.clone(),
            streams,
        }
    }

    /// The spec this plan was expanded from.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Index of the stream holding the globally next event, by total
    /// `(time, node, stream)` order.
    fn next_stream(&self) -> Option<usize> {
        self.streams
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.peek().map(|e| (e.time, e.node, i)))
            .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)))
            .map(|(_, _, i)| i)
    }

    /// Time of the next scheduled event, if any fault class is active.
    pub fn peek_time(&self) -> Option<f64> {
        self.next_stream()
            .and_then(|i| self.streams[i].peek().map(|e| e.time))
    }

    /// Consume and return the next scheduled event.
    pub fn pop(&mut self) -> Option<FaultEvent> {
        let i = self.next_stream()?;
        self.streams[i].pop()
    }

    /// Stateless per-attempt job failure draw: does attempt `attempt`
    /// (0-based) of job `job` die of its own cause, and if so at which
    /// fraction of the attempt's remaining work? Pure in
    /// `(seed, job, attempt)` — scheduling order cannot perturb it.
    pub fn job_failure(&self, job: u64, attempt: u64) -> Option<f64> {
        if self.spec.job_fail_prob <= 0.0 {
            return None;
        }
        let mut rng = SplitMix64::new(
            self.spec.seed
                ^ (job + 1).wrapping_mul(0x8cb92ba72f3d8dd7)
                ^ (attempt + 1).wrapping_mul(0xaef17502108ef2d9),
        );
        if rng.next_f64() < self.spec.job_fail_prob {
            // Die somewhere in the middle 90% of the attempt — never at
            // 0 (a no-op) or 1 (indistinguishable from completion).
            Some(0.05 + 0.9 * rng.next_f64())
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_spec() -> FaultSpec {
        FaultSpec {
            seed: 7,
            mtbf: 50.0,
            repair: 10.0,
            degrade_mtbf: 80.0,
            degrade_duration: 20.0,
            degrade_factor: 2.0,
            job_fail_prob: 0.2,
        }
    }

    fn first_events(plan: &mut FaultPlan, n: usize) -> Vec<FaultEvent> {
        (0..n).filter_map(|_| plan.pop()).collect()
    }

    #[test]
    fn default_spec_is_silent() {
        let spec = FaultSpec::default();
        assert!(!spec.enabled());
        spec.validate().unwrap();
        let mut plan = FaultPlan::new(&spec, 8);
        assert_eq!(plan.peek_time(), None);
        assert_eq!(plan.pop(), None);
        assert_eq!(plan.job_failure(3, 0), None);
    }

    #[test]
    fn same_seed_replays_byte_identically() {
        let spec = dense_spec();
        let a = first_events(&mut FaultPlan::new(&spec, 4), 64);
        let b = first_events(&mut FaultPlan::new(&spec, 4), 64);
        assert_eq!(a, b);
        let mut other = spec.clone();
        other.seed = 8;
        let c = first_events(&mut FaultPlan::new(&other, 4), 64);
        assert_ne!(a, c, "a different seed must be a different schedule");
    }

    #[test]
    fn events_are_time_ordered_and_alternate_per_node() {
        let mut plan = FaultPlan::new(&dense_spec(), 3);
        let events = first_events(&mut plan, 200);
        let mut last = 0.0f64;
        let mut down = [false; 3];
        let mut degraded = [false; 3];
        for e in &events {
            assert!(e.time >= last, "events out of order: {e:?}");
            last = e.time;
            assert!(e.time.is_finite() && e.time > 0.0);
            match e.kind {
                FaultEventKind::Crash => {
                    assert!(!down[e.node], "node {} crashed while down", e.node);
                    down[e.node] = true;
                }
                FaultEventKind::Repair => {
                    assert!(down[e.node], "node {} repaired while up", e.node);
                    down[e.node] = false;
                }
                FaultEventKind::DegradeStart => {
                    assert!(!degraded[e.node]);
                    degraded[e.node] = true;
                }
                FaultEventKind::DegradeEnd => {
                    assert!(degraded[e.node]);
                    degraded[e.node] = false;
                }
            }
        }
        assert!(
            events.iter().any(|e| e.kind == FaultEventKind::Crash),
            "a 50s-MTBF stream must crash within 200 events"
        );
    }

    #[test]
    fn node_streams_are_independent_of_cluster_size() {
        // Node 0's schedule must not change when more nodes exist.
        let spec = dense_spec();
        let solo: Vec<FaultEvent> = first_events(&mut FaultPlan::new(&spec, 1), 40);
        let wide: Vec<FaultEvent> = first_events(&mut FaultPlan::new(&spec, 4), 400)
            .into_iter()
            .filter(|e| e.node == 0)
            .take(40)
            .collect();
        assert_eq!(solo, wide);
    }

    #[test]
    fn job_failure_is_stateless_and_roughly_calibrated() {
        let plan = FaultPlan::new(&dense_spec(), 2);
        // Pure in (job, attempt): repeated queries agree.
        for job in 0..50 {
            for attempt in 0..4 {
                assert_eq!(
                    plan.job_failure(job, attempt),
                    plan.job_failure(job, attempt)
                );
                if let Some(frac) = plan.job_failure(job, attempt) {
                    assert!((0.05..=0.95).contains(&frac), "{frac}");
                }
            }
        }
        // Empirical rate within a loose band of the configured 20%.
        let hits = (0..2000)
            .filter(|&j| plan.job_failure(j, 0).is_some())
            .count();
        assert!((250..=550).contains(&hits), "rate off: {hits}/2000");
    }

    #[test]
    fn validation_rejects_nonsense() {
        let mut s = dense_spec();
        s.degrade_factor = 0.5;
        assert!(s.validate().is_err());
        let mut s = dense_spec();
        s.job_fail_prob = 1.5;
        assert!(s.validate().is_err());
        let mut s = dense_spec();
        s.mtbf = f64::NAN;
        assert!(s.validate().is_err());
        let mut s = dense_spec();
        s.repair = 0.0;
        assert!(s.validate().is_err(), "crashes without repair never heal");

        let c = CheckpointSpec {
            interval: -1.0,
            ..CheckpointSpec::default()
        };
        assert!(c.validate().is_err());
        let mut c = CheckpointSpec {
            interval: 10.0,
            ..CheckpointSpec::default()
        };
        c.object_bytes = 0;
        assert!(c.validate().is_err());
        CheckpointSpec::default().validate().unwrap();
    }
}
