//! Node, socket and core descriptions.

/// Identifier of a socket on a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SocketId(pub usize);

impl SocketId {
    /// The other socket of a dual-socket node.
    pub fn peer(self) -> SocketId {
        SocketId(1 - self.0)
    }
}

/// Identifier of a physical core, unique node-wide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CoreId(pub usize);

/// One CPU socket with its locally attached memory.
#[derive(Debug, Clone)]
pub struct Socket {
    /// Socket identifier.
    pub id: SocketId,
    /// Physical cores on this socket.
    pub cores: Vec<CoreId>,
    /// Locally attached DRAM capacity, bytes.
    pub dram_bytes: u64,
    /// Locally attached PMEM capacity, bytes (0 if none).
    pub pmem_bytes: u64,
}

/// A server node: the unit the paper schedules workflow components onto.
#[derive(Debug, Clone)]
pub struct Node {
    /// Sockets in id order.
    pub sockets: Vec<Socket>,
}

impl Node {
    /// The paper's testbed shape: two sockets, 28 physical cores each,
    /// 192 GB DRAM and 6 × 512 GB PMEM per socket.
    pub fn paper_testbed() -> Node {
        Node::dual_socket(28, 192 * 1_000_000_000, 6 * 512 * 1_000_000_000)
    }

    /// A dual-socket node with `cores_per_socket` cores and the given
    /// per-socket DRAM/PMEM capacities.
    pub fn dual_socket(cores_per_socket: usize, dram_bytes: u64, pmem_bytes: u64) -> Node {
        assert!(cores_per_socket > 0);
        let mut sockets = Vec::with_capacity(2);
        for s in 0..2 {
            sockets.push(Socket {
                id: SocketId(s),
                cores: (0..cores_per_socket)
                    .map(|c| CoreId(s * cores_per_socket + c))
                    .collect(),
                dram_bytes,
                pmem_bytes,
            });
        }
        Node { sockets }
    }

    /// The socket with the given id.
    pub fn socket(&self, id: SocketId) -> &Socket {
        &self.sockets[id.0]
    }

    /// Total core count.
    pub fn total_cores(&self) -> usize {
        self.sockets.iter().map(|s| s.cores.len()).sum()
    }

    /// Cores per socket (assumes a homogeneous node).
    pub fn cores_per_socket(&self) -> usize {
        self.sockets[0].cores.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_shape() {
        let n = Node::paper_testbed();
        assert_eq!(n.sockets.len(), 2);
        assert_eq!(n.total_cores(), 56);
        assert_eq!(n.cores_per_socket(), 28);
        assert_eq!(n.socket(SocketId(1)).pmem_bytes, 6 * 512 * 1_000_000_000);
    }

    #[test]
    fn core_ids_are_node_unique() {
        let n = Node::dual_socket(4, 1, 1);
        let mut all: Vec<usize> = n
            .sockets
            .iter()
            .flat_map(|s| s.cores.iter().map(|c| c.0))
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 8);
    }

    #[test]
    fn peer_socket() {
        assert_eq!(SocketId(0).peer(), SocketId(1));
        assert_eq!(SocketId(1).peer(), SocketId(0));
    }
}
