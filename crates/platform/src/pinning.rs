//! Rank-to-core pinning.
//!
//! The paper pins writer and reader ranks to distinct sockets (§II-A
//! excludes core/socket sharing between components, and §V pins every MPI
//! rank). A [`PinPolicy`] names the intent; [`Pinning`] is the validated
//! assignment of ranks to physical cores.

use crate::topology::{CoreId, Node, SocketId};

/// How to place a component's ranks on the node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PinPolicy {
    /// All ranks on the given socket, one rank per physical core, filling
    /// cores in id order. This is the paper's deployment.
    Socket(SocketId),
}

/// Errors from building a pinning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PinError {
    /// More ranks than cores available on the requested socket.
    NotEnoughCores {
        /// Cores requested.
        requested: usize,
        /// Cores available.
        available: usize,
        /// Socket involved.
        socket: SocketId,
    },
}

impl std::fmt::Display for PinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PinError::NotEnoughCores {
                requested,
                available,
                socket,
            } => write!(
                f,
                "socket {} has {} cores, {} requested",
                socket.0, available, requested
            ),
        }
    }
}

impl std::error::Error for PinError {}

/// A validated rank → core assignment for one workflow component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pinning {
    /// The socket every rank lives on.
    pub socket: SocketId,
    /// Core for each rank, indexed by rank.
    pub cores: Vec<CoreId>,
}

impl Pinning {
    /// Pin `ranks` ranks according to `policy` on `node`.
    pub fn new(node: &Node, policy: PinPolicy, ranks: usize) -> Result<Pinning, PinError> {
        match policy {
            PinPolicy::Socket(socket) => {
                let cores = &node.socket(socket).cores;
                if ranks > cores.len() {
                    return Err(PinError::NotEnoughCores {
                        requested: ranks,
                        available: cores.len(),
                        socket,
                    });
                }
                Ok(Pinning {
                    socket,
                    cores: cores[..ranks].to_vec(),
                })
            }
        }
    }

    /// Number of pinned ranks.
    pub fn ranks(&self) -> usize {
        self.cores.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pins_in_core_order() {
        let n = Node::dual_socket(4, 1, 1);
        let p = Pinning::new(&n, PinPolicy::Socket(SocketId(1)), 3).unwrap();
        assert_eq!(p.socket, SocketId(1));
        assert_eq!(p.cores, vec![CoreId(4), CoreId(5), CoreId(6)]);
    }

    #[test]
    fn rejects_oversubscription() {
        let n = Node::dual_socket(4, 1, 1);
        let err = Pinning::new(&n, PinPolicy::Socket(SocketId(0)), 5).unwrap_err();
        assert_eq!(
            err,
            PinError::NotEnoughCores {
                requested: 5,
                available: 4,
                socket: SocketId(0)
            }
        );
    }

    #[test]
    fn paper_concurrency_levels_fit() {
        let n = Node::paper_testbed();
        for ranks in [8, 16, 24] {
            assert!(Pinning::new(&n, PinPolicy::Socket(SocketId(0)), ranks).is_ok());
        }
    }
}
