//! # pmemflow-platform — dual-socket node topology and rank pinning
//!
//! Models the server platform of the paper's testbed (§V): a dual-socket
//! Intel Xeon Scalable node, 28 physical cores per socket, each socket with
//! locally attached DRAM and a PMEM interleave set behind two memory
//! controllers, connected by a UPI interconnect. Workflow deployment
//! decisions (Fig. 2) are expressed against this topology: which socket a
//! component's ranks are pinned to, and which socket's PMEM holds the
//! streaming I/O channel — together determining each component's
//! [`Locality`] with respect to the channel.

#![warn(missing_docs)]

use pmemflow_des::Locality;

mod pinning;
mod topology;

pub use pinning::{PinError, PinPolicy, Pinning};
pub use topology::{CoreId, Node, Socket, SocketId};

/// The locality of a rank pinned to `rank_socket` accessing PMEM attached
/// to `pmem_socket`.
pub fn locality_of(rank_socket: SocketId, pmem_socket: SocketId) -> Locality {
    if rank_socket == pmem_socket {
        Locality::Local
    } else {
        Locality::Remote
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locality_matches_sockets() {
        assert_eq!(locality_of(SocketId(0), SocketId(0)), Locality::Local);
        assert_eq!(locality_of(SocketId(0), SocketId(1)), Locality::Remote);
        assert_eq!(locality_of(SocketId(1), SocketId(1)), Locality::Local);
    }
}
