//! The 18-workload evaluation suite (§IV-C) with the paper's findings.
//!
//! Every entry records which figure panel it reproduces and the
//! configuration the paper found optimal (Table II + §VI), so the
//! calibration tests and the Table II bench can check the model's winners
//! against the paper's.

use crate::apps;
use crate::spec::WorkflowSpec;

/// The six workload families of the suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// 64 MB-object microbenchmark (Fig. 4).
    Micro64MB,
    /// 2 KB-object microbenchmark (Fig. 5).
    Micro2KB,
    /// GTC + Read-Only (Fig. 6).
    GtcReadOnly,
    /// GTC + MatrixMult (Fig. 7).
    GtcMatMul,
    /// miniAMR + Read-Only (Fig. 8).
    MiniAmrReadOnly,
    /// miniAMR + MatrixMult (Fig. 9).
    MiniAmrMatMul,
}

impl Family {
    /// All families.
    pub fn all() -> [Family; 6] {
        [
            Family::Micro64MB,
            Family::Micro2KB,
            Family::GtcReadOnly,
            Family::GtcMatMul,
            Family::MiniAmrReadOnly,
            Family::MiniAmrMatMul,
        ]
    }

    /// Build the family's workflow at the given rank count.
    pub fn build(self, ranks: usize) -> WorkflowSpec {
        match self {
            Family::Micro64MB => apps::micro_64mb(ranks),
            Family::Micro2KB => apps::micro_2kb(ranks),
            Family::GtcReadOnly => apps::gtc_readonly(ranks),
            Family::GtcMatMul => apps::gtc_matmul(ranks),
            Family::MiniAmrReadOnly => apps::miniamr_readonly(ranks),
            Family::MiniAmrMatMul => apps::miniamr_matmul(ranks),
        }
    }

    /// Parse a family from a user-facing name. Accepts the CLI spellings
    /// (`micro-64mb`, `gtc-matmult`, ...), the display names
    /// (`GTC+MatrixMult`, ...), and the `-matmul`/`-matmult` variants,
    /// case-insensitively. This is the single name table the CLI, the
    /// arrival-stream parser, and the serving daemon all resolve through.
    pub fn parse(name: &str) -> Option<Family> {
        match name.to_ascii_lowercase().as_str() {
            "micro-64mb" => Some(Family::Micro64MB),
            "micro-2kb" => Some(Family::Micro2KB),
            "gtc-readonly" | "gtc+readonly" => Some(Family::GtcReadOnly),
            "gtc-matmult" | "gtc-matmul" | "gtc+matrixmult" => Some(Family::GtcMatMul),
            "miniamr-readonly" | "miniamr+readonly" => Some(Family::MiniAmrReadOnly),
            "miniamr-matmult" | "miniamr-matmul" | "miniamr+matrixmult" => {
                Some(Family::MiniAmrMatMul)
            }
            _ => None,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Family::Micro64MB => "micro-64MB",
            Family::Micro2KB => "micro-2KB",
            Family::GtcReadOnly => "GTC+ReadOnly",
            Family::GtcMatMul => "GTC+MatrixMult",
            Family::MiniAmrReadOnly => "miniAMR+ReadOnly",
            Family::MiniAmrMatMul => "miniAMR+MatrixMult",
        }
    }

    /// The paper figure this family's panels belong to.
    pub fn figure(self) -> &'static str {
        match self {
            Family::Micro64MB => "Fig. 4",
            Family::Micro2KB => "Fig. 5",
            Family::GtcReadOnly => "Fig. 6",
            Family::GtcMatMul => "Fig. 7",
            Family::MiniAmrReadOnly => "Fig. 8",
            Family::MiniAmrMatMul => "Fig. 9",
        }
    }
}

/// One suite entry: a workflow at a concurrency level plus the paper's
/// result for it.
#[derive(Debug, Clone)]
pub struct SuiteEntry {
    /// Workload family.
    pub family: Family,
    /// Ranks per component.
    pub ranks: usize,
    /// The built workflow.
    pub spec: WorkflowSpec,
    /// Figure panel, e.g. "Fig. 4c".
    pub panel: &'static str,
    /// The configuration the paper found optimal ("S-LocW", "S-LocR",
    /// "P-LocW" or "P-LocR"); Table II + §VI.
    pub paper_winner: &'static str,
    /// Table II row number this workload illustrates (1-based).
    pub table2_row: u8,
}

/// Build the full 18-workload suite with the paper's winners.
pub fn paper_suite() -> Vec<SuiteEntry> {
    // (family, ranks, panel, winner, table2 row)
    let rows: [(Family, usize, &'static str, &'static str, u8); 18] = [
        (Family::Micro64MB, 8, "Fig. 4a", "S-LocW", 1),
        (Family::Micro64MB, 16, "Fig. 4b", "S-LocW", 1),
        (Family::Micro64MB, 24, "Fig. 4c", "S-LocW", 1),
        (Family::Micro2KB, 8, "Fig. 5a", "P-LocR", 9),
        (Family::Micro2KB, 16, "Fig. 5b", "P-LocR", 9),
        (Family::Micro2KB, 24, "Fig. 5c", "S-LocR", 5),
        (Family::GtcReadOnly, 8, "Fig. 6a", "P-LocR", 10),
        (Family::GtcReadOnly, 16, "Fig. 6b", "S-LocR", 6),
        (Family::GtcReadOnly, 24, "Fig. 6c", "S-LocW", 2),
        (Family::GtcMatMul, 8, "Fig. 7a", "P-LocR", 10),
        (Family::GtcMatMul, 16, "Fig. 7b", "P-LocR", 10),
        (Family::GtcMatMul, 24, "Fig. 7c", "S-LocW", 2),
        (Family::MiniAmrReadOnly, 8, "Fig. 8a", "P-LocR", 9),
        (Family::MiniAmrReadOnly, 16, "Fig. 8b", "S-LocR", 7),
        (Family::MiniAmrReadOnly, 24, "Fig. 8c", "S-LocW", 3),
        (Family::MiniAmrMatMul, 8, "Fig. 9a", "P-LocW", 8),
        (Family::MiniAmrMatMul, 16, "Fig. 9b", "S-LocW", 4),
        (Family::MiniAmrMatMul, 24, "Fig. 9c", "S-LocW", 4),
    ];
    rows.into_iter()
        .map(
            |(family, ranks, panel, paper_winner, table2_row)| SuiteEntry {
                family,
                ranks,
                spec: family.build(ranks),
                panel,
                paper_winner,
                table2_row,
            },
        )
        .collect()
}

/// Valid workload names for user-facing `--workload`-style options.
pub const WORKLOAD_CHOICES: &str =
    "micro-64mb, micro-2kb, gtc-readonly, gtc-matmult, miniamr-readonly, miniamr-matmult";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_cli_and_display_spellings() {
        for f in Family::all() {
            assert_eq!(Family::parse(f.name()), Some(f), "{}", f.name());
            assert_eq!(
                Family::parse(&f.name().to_ascii_uppercase()),
                Some(f),
                "{}",
                f.name()
            );
        }
        assert_eq!(Family::parse("micro-64mb"), Some(Family::Micro64MB));
        assert_eq!(Family::parse("GTC-MatMult"), Some(Family::GtcMatMul));
        assert_eq!(Family::parse("gtc-matmul"), Some(Family::GtcMatMul));
        assert_eq!(
            Family::parse("miniamr-readonly"),
            Some(Family::MiniAmrReadOnly)
        );
        assert_eq!(Family::parse("hpl"), None);
        assert_eq!(Family::parse(""), None);
    }

    #[test]
    fn choices_list_every_family() {
        for name in WORKLOAD_CHOICES.split(", ") {
            assert!(Family::parse(name).is_some(), "{name}");
        }
    }

    #[test]
    fn suite_has_18_entries() {
        let suite = paper_suite();
        assert_eq!(suite.len(), 18);
        for e in &suite {
            e.spec.validate().unwrap();
            assert!(matches!(
                e.paper_winner,
                "S-LocW" | "S-LocR" | "P-LocW" | "P-LocR"
            ));
            assert!((1..=10).contains(&e.table2_row));
        }
    }

    #[test]
    fn every_family_at_every_level() {
        let suite = paper_suite();
        for f in Family::all() {
            for ranks in [8, 16, 24] {
                assert_eq!(
                    suite
                        .iter()
                        .filter(|e| e.family == f && e.ranks == ranks)
                        .count(),
                    1,
                    "{f:?} @{ranks}"
                );
            }
        }
    }

    #[test]
    fn all_four_configs_appear_as_winners() {
        // §VII "No single optimal configuration".
        let suite = paper_suite();
        for cfg in ["S-LocW", "S-LocR", "P-LocW", "P-LocR"] {
            assert!(
                suite.iter().any(|e| e.paper_winner == cfg),
                "{cfg} never wins"
            );
        }
    }

    #[test]
    fn all_table2_rows_covered() {
        let suite = paper_suite();
        for row in 1..=10u8 {
            assert!(
                suite.iter().any(|e| e.table2_row == row),
                "Table II row {row} not illustrated"
            );
        }
    }

    #[test]
    fn panels_are_unique() {
        let suite = paper_suite();
        let mut panels: Vec<_> = suite.iter().map(|e| e.panel).collect();
        panels.sort();
        panels.dedup();
        assert_eq!(panels.len(), 18);
    }
}
