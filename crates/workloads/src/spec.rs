//! Workflow component and workflow specifications.
//!
//! A workflow couples a **simulation** (writer) and an **analytics**
//! (reader) component in a 1:1 rank exchange (paper §IV-C): both components
//! run the same number of ranks, every writer rank streams a snapshot of
//! named objects per iteration, and the matching reader rank consumes every
//! object of every snapshot at the same granularity.

/// The shape of one component's per-iteration I/O (§IV-A "Object size").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoPattern {
    /// Objects written/read per rank per iteration.
    pub objects_per_snapshot: u64,
    /// Bytes per object.
    pub object_bytes: u64,
}

impl IoPattern {
    /// Total bytes a rank moves per iteration.
    pub fn snapshot_bytes(&self) -> u64 {
        self.objects_per_snapshot * self.object_bytes
    }

    /// Classify granularity the way the paper's Table II does.
    pub fn size_class(&self) -> SizeClass {
        if self.object_bytes >= 1 << 20 {
            SizeClass::Large
        } else {
            SizeClass::Small
        }
    }
}

/// Table II's object-size classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeClass {
    /// Sub-megabyte objects (2 KB microbenchmark, 4.5 KB miniAMR blocks).
    Small,
    /// Megabyte-and-up objects (64 MB microbenchmark, 229 MB GTC arrays).
    Large,
}

/// Table II's concurrency classes (§IV-B: 8 / 16 / 24 ranks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ConcurrencyClass {
    /// 8 ranks per component.
    Low,
    /// 16 ranks per component.
    Medium,
    /// 24 ranks per component.
    High,
}

impl ConcurrencyClass {
    /// Rank count for the class.
    pub fn ranks(self) -> usize {
        match self {
            ConcurrencyClass::Low => 8,
            ConcurrencyClass::Medium => 16,
            ConcurrencyClass::High => 24,
        }
    }

    /// The class for a rank count (nearest paper level).
    pub fn from_ranks(ranks: usize) -> ConcurrencyClass {
        if ranks <= 11 {
            ConcurrencyClass::Low
        } else if ranks <= 20 {
            ConcurrencyClass::Medium
        } else {
            ConcurrencyClass::High
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            ConcurrencyClass::Low => "low",
            ConcurrencyClass::Medium => "medium",
            ConcurrencyClass::High => "high",
        }
    }
}

/// One workflow component (simulation or analytics).
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentSpec {
    /// Component name (e.g. "gtc", "matmult").
    pub name: String,
    /// Virtual seconds of kernel compute per rank per iteration,
    /// interleaved with the I/O phase. Derived from the proxy kernels in
    /// [`crate::kernels`]; constant across rank counts (weak scaling).
    pub compute_per_iteration: f64,
    /// Per-iteration I/O shape.
    pub io: IoPattern,
}

/// A complete coupled workflow.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkflowSpec {
    /// Workflow name (e.g. "gtc+readonly").
    pub name: String,
    /// The simulation (writer) component.
    pub writer: ComponentSpec,
    /// The analytics (reader) component. Its `io` must equal the writer's
    /// (1:1 exchange at identical granularity, §IV-C).
    pub reader: ComponentSpec,
    /// Ranks per component.
    pub ranks: usize,
    /// Iterations (snapshots) per rank.
    pub iterations: u64,
}

impl WorkflowSpec {
    /// Validate the 1:1 exchange invariant and basic sanity.
    pub fn validate(&self) -> Result<(), String> {
        if self.writer.io != self.reader.io {
            return Err(format!(
                "writer and reader I/O patterns differ in {:?}",
                self.name
            ));
        }
        if self.ranks == 0 {
            return Err("ranks must be positive".into());
        }
        if self.iterations == 0 {
            return Err("iterations must be positive".into());
        }
        if self.writer.io.objects_per_snapshot == 0 || self.writer.io.object_bytes == 0 {
            return Err("I/O pattern must move data".into());
        }
        if self.writer.compute_per_iteration < 0.0 || self.reader.compute_per_iteration < 0.0 {
            return Err("compute time cannot be negative".into());
        }
        Ok(())
    }

    /// Total bytes streamed through PMEM over the whole run
    /// (ranks × iterations × snapshot, written once and read once).
    pub fn total_bytes_written(&self) -> u64 {
        self.ranks as u64 * self.iterations * self.writer.io.snapshot_bytes()
    }

    /// Concurrency class of this workflow.
    pub fn concurrency_class(&self) -> ConcurrencyClass {
        ConcurrencyClass::from_ranks(self.ranks)
    }

    /// A copy with a different rank count.
    pub fn with_ranks(&self, ranks: usize) -> WorkflowSpec {
        let mut w = self.clone();
        w.ranks = ranks;
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WorkflowSpec {
        WorkflowSpec {
            name: "t".into(),
            writer: ComponentSpec {
                name: "w".into(),
                compute_per_iteration: 1.0,
                io: IoPattern {
                    objects_per_snapshot: 16,
                    object_bytes: 64 << 20,
                },
            },
            reader: ComponentSpec {
                name: "r".into(),
                compute_per_iteration: 0.0,
                io: IoPattern {
                    objects_per_snapshot: 16,
                    object_bytes: 64 << 20,
                },
            },
            ranks: 8,
            iterations: 10,
        }
    }

    #[test]
    fn validates_ok() {
        assert!(spec().validate().is_ok());
    }

    #[test]
    fn rejects_mismatched_io() {
        let mut s = spec();
        s.reader.io.object_bytes = 2048;
        assert!(s.validate().is_err());
    }

    #[test]
    fn rejects_degenerate() {
        let mut s = spec();
        s.ranks = 0;
        assert!(s.validate().is_err());
        let mut s = spec();
        s.iterations = 0;
        assert!(s.validate().is_err());
        let mut s = spec();
        s.writer.io.object_bytes = 0;
        s.reader.io.object_bytes = 0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn totals() {
        let s = spec();
        assert_eq!(s.writer.io.snapshot_bytes(), 1 << 30);
        assert_eq!(s.total_bytes_written(), 8 * 10 * (1u64 << 30)); // 80 GB
    }

    #[test]
    fn size_classes() {
        assert_eq!(
            IoPattern {
                objects_per_snapshot: 1,
                object_bytes: 2048
            }
            .size_class(),
            SizeClass::Small
        );
        assert_eq!(
            IoPattern {
                objects_per_snapshot: 1,
                object_bytes: 229 << 20
            }
            .size_class(),
            SizeClass::Large
        );
    }

    #[test]
    fn concurrency_classes() {
        assert_eq!(ConcurrencyClass::from_ranks(8), ConcurrencyClass::Low);
        assert_eq!(ConcurrencyClass::from_ranks(16), ConcurrencyClass::Medium);
        assert_eq!(ConcurrencyClass::from_ranks(24), ConcurrencyClass::High);
        assert_eq!(ConcurrencyClass::High.ranks(), 24);
    }
}
