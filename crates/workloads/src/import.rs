//! Import workflow specifications from a plain-text table.
//!
//! Users bring their own workflows: one line per workflow, comma-separated
//! fields, `#` comments. This is the interchange point between real
//! workflow descriptions (job scripts, instrumentation output) and the
//! simulator — the same shape the paper's Table II characterizes workloads
//! by.
//!
//! ```text
//! # name, ranks, iterations, writer_compute_s, reader_compute_s, objects, object_bytes
//! lammps-vis,   16, 10, 1.2, 0.1, 64,    4194304
//! ml-ingest,     8, 20, 0.0, 0.8, 50000, 2048
//! ```

use crate::spec::{ComponentSpec, IoPattern, WorkflowSpec};

/// A parse failure with its location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn field<'a>(
    parts: &'a [&'a str],
    idx: usize,
    name: &str,
    line: usize,
) -> Result<&'a str, ParseError> {
    parts.get(idx).map(|s| s.trim()).ok_or_else(|| ParseError {
        line,
        message: format!("missing field {name} (column {})", idx + 1),
    })
}

fn parse_num<T: std::str::FromStr>(s: &str, name: &str, line: usize) -> Result<T, ParseError> {
    s.parse().map_err(|_| ParseError {
        line,
        message: format!("field {name}: cannot parse {s:?}"),
    })
}

/// Parse a workflow table. Returns every workflow, validated.
pub fn parse_workflows(text: &str) -> Result<Vec<WorkflowSpec>, ParseError> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let parts: Vec<&str> = line.split(',').collect();
        if parts.len() != 7 {
            return Err(ParseError {
                line: line_no,
                message: format!("expected 7 comma-separated fields, got {}", parts.len()),
            });
        }
        let name = field(&parts, 0, "name", line_no)?.to_string();
        if name.is_empty() {
            return Err(ParseError {
                line: line_no,
                message: "empty workflow name".into(),
            });
        }
        let ranks: usize = parse_num(field(&parts, 1, "ranks", line_no)?, "ranks", line_no)?;
        let iterations: u64 = parse_num(
            field(&parts, 2, "iterations", line_no)?,
            "iterations",
            line_no,
        )?;
        let wc: f64 = parse_num(
            field(&parts, 3, "writer_compute_s", line_no)?,
            "writer_compute_s",
            line_no,
        )?;
        let rc: f64 = parse_num(
            field(&parts, 4, "reader_compute_s", line_no)?,
            "reader_compute_s",
            line_no,
        )?;
        let objects: u64 = parse_num(field(&parts, 5, "objects", line_no)?, "objects", line_no)?;
        let object_bytes: u64 = parse_num(
            field(&parts, 6, "object_bytes", line_no)?,
            "object_bytes",
            line_no,
        )?;
        let io = IoPattern {
            objects_per_snapshot: objects,
            object_bytes,
        };
        let spec = WorkflowSpec {
            name,
            writer: ComponentSpec {
                name: "writer".into(),
                compute_per_iteration: wc,
                io,
            },
            reader: ComponentSpec {
                name: "reader".into(),
                compute_per_iteration: rc,
                io,
            },
            ranks,
            iterations,
        };
        spec.validate().map_err(|e| ParseError {
            line: line_no,
            message: e,
        })?;
        out.push(spec);
    }
    Ok(out)
}

/// Render workflows back to the table format (inverse of
/// [`parse_workflows`], modulo whitespace).
pub fn format_workflows(specs: &[WorkflowSpec]) -> String {
    let mut out = String::from(
        "# name, ranks, iterations, writer_compute_s, reader_compute_s, objects, object_bytes\n",
    );
    for s in specs {
        out.push_str(&format!(
            "{}, {}, {}, {}, {}, {}, {}\n",
            s.name,
            s.ranks,
            s.iterations,
            s.writer.compute_per_iteration,
            s.reader.compute_per_iteration,
            s.writer.io.objects_per_snapshot,
            s.writer.io.object_bytes
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# comment line
lammps-vis, 16, 10, 1.2, 0.1, 64, 4194304
ml-ingest, 8, 20, 0.0, 0.8, 50000, 2048   # trailing comment

";

    #[test]
    fn parses_table() {
        let specs = parse_workflows(SAMPLE).unwrap();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].name, "lammps-vis");
        assert_eq!(specs[0].ranks, 16);
        assert_eq!(specs[0].writer.io.object_bytes, 4 << 20);
        assert_eq!(specs[1].reader.compute_per_iteration, 0.8);
    }

    #[test]
    fn roundtrip() {
        let specs = parse_workflows(SAMPLE).unwrap();
        let text = format_workflows(&specs);
        let again = parse_workflows(&text).unwrap();
        assert_eq!(specs, again);
    }

    #[test]
    fn reports_line_numbers() {
        let err = parse_workflows("a, 1, 1, 0, 0, 1, 1\nbad-line, 1, 2").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("7 comma-separated"));
    }

    #[test]
    fn rejects_bad_numbers_and_invalid_specs() {
        let err = parse_workflows("w, many, 1, 0, 0, 1, 1").unwrap_err();
        assert!(err.message.contains("ranks"));
        // Zero iterations fails spec validation.
        let err = parse_workflows("w, 4, 0, 0, 0, 1, 1").unwrap_err();
        assert!(err.message.contains("positive"));
        // Empty name.
        let err = parse_workflows(" , 4, 1, 0, 0, 1, 1").unwrap_err();
        assert!(err.message.contains("name"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        assert!(parse_workflows("# nothing\n\n   \n").unwrap().is_empty());
    }
}
