//! Real compute kernels behind the proxy applications.
//!
//! The DES executes *virtual* compute durations, but the durations come
//! from somewhere: these are runnable implementations of the three kernel
//! families the paper's workflows use — a 7-point stencil (miniAMR), a
//! particle-in-cell step (GTC), and dense matrix multiplication (the
//! compute-heavy analytics kernel). They serve three purposes:
//!
//! * examples and the native executor run them for real,
//! * [`calibrate_seconds`] measures a kernel's wall time so users can
//!   derive `compute_per_iteration` values for their own hardware,
//! * correctness tests pin down that the proxies compute what they claim.

/// Dense `n × n` matrix multiplication, `c = a · b` (row-major).
/// The analytics kernel the paper couples with GTC and miniAMR (§IV-B).
pub fn matmul(n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    assert_eq!(a.len(), n * n);
    assert_eq!(b.len(), n * n);
    assert_eq!(c.len(), n * n);
    // i-k-j loop order: streams through b and c rows, cache-friendly.
    for ci in c.iter_mut() {
        *ci = 0.0;
    }
    for i in 0..n {
        for k in 0..n {
            let aik = a[i * n + k];
            let (brow, crow) = (&b[k * n..k * n + n], &mut c[i * n..i * n + n]);
            for (cj, bj) in crow.iter_mut().zip(brow.iter()) {
                *cj += aik * bj;
            }
        }
    }
}

/// One 7-point stencil sweep over an `nx × ny × nz` grid (the miniAMR
/// block kernel, §IV-B): every interior cell becomes the average of itself
/// and its six face neighbours. Boundary cells are copied unchanged.
pub fn stencil7(nx: usize, ny: usize, nz: usize, src: &[f64], dst: &mut [f64]) {
    assert_eq!(src.len(), nx * ny * nz);
    assert_eq!(dst.len(), nx * ny * nz);
    let idx = |x: usize, y: usize, z: usize| (x * ny + y) * nz + z;
    dst.copy_from_slice(src);
    for x in 1..nx.saturating_sub(1) {
        for y in 1..ny.saturating_sub(1) {
            for z in 1..nz.saturating_sub(1) {
                let sum = src[idx(x, y, z)]
                    + src[idx(x - 1, y, z)]
                    + src[idx(x + 1, y, z)]
                    + src[idx(x, y - 1, z)]
                    + src[idx(x, y + 1, z)]
                    + src[idx(x, y, z - 1)]
                    + src[idx(x, y, z + 1)];
                dst[idx(x, y, z)] = sum / 7.0;
            }
        }
    }
}

/// A particle for the PIC proxy kernel.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Particle {
    /// Position in a periodic unit domain.
    pub x: f64,
    /// Velocity.
    pub v: f64,
    /// Charge weight.
    pub w: f64,
}

/// One particle-in-cell step (the GTC proxy, §IV-B): deposit particle
/// charge onto a 1-D periodic grid with linear weighting, derive a toy
/// field, then push particles. Returns total deposited charge (conserved).
pub fn pic_step(particles: &mut [Particle], grid: &mut [f64], dt: f64) -> f64 {
    let n = grid.len();
    assert!(n >= 2, "grid needs at least two cells");
    for g in grid.iter_mut() {
        *g = 0.0;
    }
    // Charge deposition (linear / cloud-in-cell weighting).
    for p in particles.iter() {
        let xg = p.x.rem_euclid(1.0) * n as f64;
        let i0 = xg.floor() as usize % n;
        let i1 = (i0 + 1) % n;
        let frac = xg - xg.floor();
        grid[i0] += p.w * (1.0 - frac);
        grid[i1] += p.w * frac;
    }
    let total_charge: f64 = grid.iter().sum();
    // Toy field: negative gradient of charge density.
    let field: Vec<f64> = (0..n)
        .map(|i| {
            let left = grid[(i + n - 1) % n];
            let right = grid[(i + 1) % n];
            -(right - left) * 0.5
        })
        .collect();
    // Push.
    for p in particles.iter_mut() {
        let xg = p.x.rem_euclid(1.0) * n as f64;
        let i0 = xg.floor() as usize % n;
        let i1 = (i0 + 1) % n;
        let frac = xg - xg.floor();
        let e = field[i0] * (1.0 - frac) + field[i1] * frac;
        p.v += e * dt;
        p.x = (p.x + p.v * dt).rem_euclid(1.0);
    }
    total_charge
}

/// Wall-clock seconds for `f`, averaged over `reps` runs after one warmup.
/// Intended for deriving `compute_per_iteration` values on real hardware;
/// never used inside the deterministic simulator.
pub fn calibrate_seconds(reps: u32, mut f: impl FnMut()) -> f64 {
    assert!(reps > 0);
    f(); // warmup
    let start = std::time::Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_secs_f64() / reps as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let n = 8;
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            a[i * n + i] = 1.0;
        }
        let b: Vec<f64> = (0..n * n).map(|i| i as f64).collect();
        let mut c = vec![0.0; n * n];
        matmul(n, &a, &b, &mut c);
        assert_eq!(c, b);
    }

    #[test]
    fn matmul_known_product() {
        // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut c = [0.0; 4];
        matmul(2, &a, &b, &mut c);
        assert_eq!(c, [19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn stencil_preserves_constant_field() {
        let (nx, ny, nz) = (6, 5, 4);
        let src = vec![3.25; nx * ny * nz];
        let mut dst = vec![0.0; nx * ny * nz];
        stencil7(nx, ny, nz, &src, &mut dst);
        for v in dst {
            assert!((v - 3.25).abs() < 1e-12);
        }
    }

    #[test]
    fn stencil_smooths_spike() {
        let (nx, ny, nz) = (5, 5, 5);
        let mut src = vec![0.0; nx * ny * nz];
        let center = (2 * ny + 2) * nz + 2;
        src[center] = 7.0;
        let mut dst = vec![0.0; nx * ny * nz];
        stencil7(nx, ny, nz, &src, &mut dst);
        assert!((dst[center] - 1.0).abs() < 1e-12); // 7/7
        let neighbour = (ny + 2) * nz + 2;
        assert!((dst[neighbour] - 1.0).abs() < 1e-12); // spike/7
    }

    #[test]
    fn pic_conserves_charge() {
        let mut particles: Vec<Particle> = (0..1000)
            .map(|i| Particle {
                x: (i as f64 * 0.618_034) % 1.0,
                v: 0.0,
                w: 1.0,
            })
            .collect();
        let mut grid = vec![0.0; 64];
        let q = pic_step(&mut particles, &mut grid, 0.01);
        assert!((q - 1000.0).abs() < 1e-9);
        // Positions remain in the unit domain.
        for p in &particles {
            assert!((0.0..1.0).contains(&p.x));
        }
    }

    #[test]
    fn pic_uniform_plasma_is_stable() {
        // Perfectly uniform particles on grid points produce zero field:
        // velocities stay zero.
        let n = 32;
        let mut particles: Vec<Particle> = (0..n)
            .map(|i| Particle {
                x: i as f64 / n as f64,
                v: 0.0,
                w: 1.0,
            })
            .collect();
        let mut grid = vec![0.0; n];
        pic_step(&mut particles, &mut grid, 0.1);
        for p in &particles {
            assert!(p.v.abs() < 1e-12);
        }
    }

    #[test]
    fn calibrate_returns_positive() {
        let t = calibrate_seconds(3, || {
            let mut c = [0.0; 4];
            matmul(2, &[1.0; 4], &[2.0; 4], &mut c);
            std::hint::black_box(&c);
        });
        assert!(t >= 0.0);
    }
}
