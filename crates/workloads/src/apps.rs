//! The paper's workload builders (§IV-B).
//!
//! Six workflow families: two microbenchmarks (64 MB / 2 KB objects, pure
//! I/O) and four application workflows (GTC and miniAMR simulations, each
//! coupled with a read-only or a matrix-multiplication analytics kernel).
//!
//! Virtual compute durations are the calibration constants of the proxy
//! kernels; each is documented with the workload property it encodes. The
//! paper characterizes components *qualitatively* (Table II: compute
//! high/low, I/O index high/low); the constants below are chosen so the
//! characterization matches and can be re-derived on real hardware with
//! [`crate::kernels::calibrate_seconds`].

use crate::spec::{ComponentSpec, ConcurrencyClass, IoPattern, WorkflowSpec};

/// Iterations per rank for every suite workflow (§IV-B: "Each thread in
/// the microbenchmark performs 10 iterations"; application runs use the
/// same depth).
pub const SUITE_ITERATIONS: u64 = 10;

/// GTC object size: a few large 2-D/3-D checkpoint arrays (§VI-A: "GTC
/// uses 229 MB objects").
pub const GTC_OBJECT_BYTES: u64 = 229 << 20;
/// GTC objects per rank snapshot (a handful of large arrays).
pub const GTC_OBJECTS: u64 = 2;
/// GTC simulation compute per iteration: the paper classes GTC's
/// simulation as compute-heavy with a *low* simulation I/O index
/// (Table II rows 2/6/10).
pub const GTC_COMPUTE_SECONDS: f64 = 0.544;
/// Compute per iteration of the GTC-coupled MatrixMult analytics: "10
/// million matrix multiplications of large 2D arrays" — a long compute
/// phase interleaving PMEM reads (Table II: analytics compute high).
pub const GTC_MATMUL_SECONDS: f64 = 0.629;

/// miniAMR object size: many small blocks (§VI-A: 4.5 KB objects).
pub const MINIAMR_OBJECT_BYTES: u64 = 4608;
/// miniAMR objects per rank snapshot (the paper's snapshots hold 528 K
/// small objects across the job; per-rank counts weak-scale).
pub const MINIAMR_OBJECTS: u64 = 33_000;
/// miniAMR simulation compute per iteration: a light stencil sweep —
/// the paper classes miniAMR's simulation as I/O-heavy (sim write high,
/// compute low; Table II rows 3/4/7/8).
pub const MINIAMR_COMPUTE_SECONDS: f64 = 0.0127;
/// Compute per iteration of the miniAMR-coupled MatrixMult analytics:
/// 5 small matrix multiplications per object × 33 K objects — "the
/// compute phase length is still relatively large" (§IV-B).
pub const MINIAMR_MATMUL_SECONDS: f64 = 0.307;

/// Microbenchmark snapshot: 1 GB per rank per iteration (§IV-B).
pub const MICRO_SNAPSHOT_BYTES: u64 = 1 << 30;

fn micro(name: &str, object_bytes: u64, ranks: usize) -> WorkflowSpec {
    let objects = MICRO_SNAPSHOT_BYTES / object_bytes;
    let io = IoPattern {
        objects_per_snapshot: objects,
        object_bytes,
    };
    WorkflowSpec {
        name: format!("{name}x{ranks}"),
        writer: ComponentSpec {
            name: "micro-writer".into(),
            compute_per_iteration: 0.0,
            io,
        },
        reader: ComponentSpec {
            name: "micro-reader".into(),
            compute_per_iteration: 0.0,
            io,
        },
        ranks,
        iterations: SUITE_ITERATIONS,
    }
}

/// The 64 MB-object microbenchmark (Fig. 4): pure I/O both sides, large
/// objects, 1 GB snapshots.
pub fn micro_64mb(ranks: usize) -> WorkflowSpec {
    micro("micro-64MB", 64 << 20, ranks)
}

/// The 2 KB-object microbenchmark (Fig. 5): pure I/O both sides, half a
/// million objects per snapshot, software-overhead dominated.
pub fn micro_2kb(ranks: usize) -> WorkflowSpec {
    micro("micro-2KB", 2048, ranks)
}

fn gtc_writer() -> ComponentSpec {
    ComponentSpec {
        name: "gtc".into(),
        compute_per_iteration: GTC_COMPUTE_SECONDS,
        io: IoPattern {
            objects_per_snapshot: GTC_OBJECTS,
            object_bytes: GTC_OBJECT_BYTES,
        },
    }
}

fn miniamr_writer() -> ComponentSpec {
    ComponentSpec {
        name: "miniamr".into(),
        compute_per_iteration: MINIAMR_COMPUTE_SECONDS,
        io: IoPattern {
            objects_per_snapshot: MINIAMR_OBJECTS,
            object_bytes: MINIAMR_OBJECT_BYTES,
        },
    }
}

fn read_only(io: IoPattern) -> ComponentSpec {
    ComponentSpec {
        name: "readonly".into(),
        compute_per_iteration: 0.0,
        io,
    }
}

fn matmul_kernel(io: IoPattern, seconds: f64) -> ComponentSpec {
    ComponentSpec {
        name: "matmult".into(),
        compute_per_iteration: seconds,
        io,
    }
}

/// GTC + Read-Only (Fig. 6): compute-heavy simulation with large objects,
/// I/O-only analytics.
pub fn gtc_readonly(ranks: usize) -> WorkflowSpec {
    let w = gtc_writer();
    let io = w.io;
    WorkflowSpec {
        name: format!("gtc+readonly x{ranks}"),
        writer: w,
        reader: read_only(io),
        ranks,
        iterations: SUITE_ITERATIONS,
    }
}

/// GTC + MatrixMult (Fig. 7): compute-heavy simulation and compute-heavy
/// analytics.
pub fn gtc_matmul(ranks: usize) -> WorkflowSpec {
    let w = gtc_writer();
    let io = w.io;
    WorkflowSpec {
        name: format!("gtc+matmult x{ranks}"),
        writer: w,
        reader: matmul_kernel(io, GTC_MATMUL_SECONDS),
        ranks,
        iterations: SUITE_ITERATIONS,
    }
}

/// miniAMR + Read-Only (Fig. 8): I/O-heavy simulation with many small
/// objects, I/O-only analytics.
pub fn miniamr_readonly(ranks: usize) -> WorkflowSpec {
    let w = miniamr_writer();
    let io = w.io;
    WorkflowSpec {
        name: format!("miniamr+readonly x{ranks}"),
        writer: w,
        reader: read_only(io),
        ranks,
        iterations: SUITE_ITERATIONS,
    }
}

/// miniAMR + MatrixMult (Fig. 9): I/O-heavy simulation, compute-heavy
/// analytics.
pub fn miniamr_matmul(ranks: usize) -> WorkflowSpec {
    let w = miniamr_writer();
    let io = w.io;
    WorkflowSpec {
        name: format!("miniamr+matmult x{ranks}"),
        writer: w,
        reader: matmul_kernel(io, MINIAMR_MATMUL_SECONDS),
        ranks,
        iterations: SUITE_ITERATIONS,
    }
}

/// Convenience: the three paper concurrency levels.
pub fn paper_rank_levels() -> [usize; 3] {
    [
        ConcurrencyClass::Low.ranks(),
        ConcurrencyClass::Medium.ranks(),
        ConcurrencyClass::High.ranks(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SizeClass;

    #[test]
    fn all_builders_validate() {
        for ranks in paper_rank_levels() {
            for spec in [
                micro_64mb(ranks),
                micro_2kb(ranks),
                gtc_readonly(ranks),
                gtc_matmul(ranks),
                miniamr_readonly(ranks),
                miniamr_matmul(ranks),
            ] {
                spec.validate().unwrap();
            }
        }
    }

    #[test]
    fn micro_data_sizes_match_figures() {
        // Fig. 4: "Threads: 8, Data size: 80GB" etc. — 1 GB × 10
        // iterations per rank.
        assert_eq!(micro_64mb(8).total_bytes_written(), 80 << 30);
        assert_eq!(micro_64mb(16).total_bytes_written(), 160 << 30);
        assert_eq!(micro_64mb(24).total_bytes_written(), 240 << 30);
        assert_eq!(micro_2kb(8).total_bytes_written(), 80 << 30);
    }

    #[test]
    fn micro_2kb_has_half_million_objects() {
        let s = micro_2kb(16);
        // §VIII: "The 2K workflow at 16 MPI ranks has large number (528K)
        // of small objects in a snapshot."
        assert_eq!(s.writer.io.objects_per_snapshot, 524_288);
    }

    #[test]
    fn size_classes_match_table2() {
        assert_eq!(micro_64mb(8).writer.io.size_class(), SizeClass::Large);
        assert_eq!(micro_2kb(8).writer.io.size_class(), SizeClass::Small);
        assert_eq!(gtc_readonly(8).writer.io.size_class(), SizeClass::Large);
        assert_eq!(miniamr_matmul(8).writer.io.size_class(), SizeClass::Small);
    }

    #[test]
    fn gtc_is_compute_heavy_miniamr_io_heavy() {
        let gtc = gtc_readonly(16);
        let amr = miniamr_readonly(16);
        // Compute per unit of written data: GTC computes far longer per
        // byte than miniAMR (the calibrated absolute values are small
        // because weak-scaled per-rank snapshots are sub-GB).
        let gtc_ratio = gtc.writer.compute_per_iteration / gtc.writer.io.snapshot_bytes() as f64;
        let amr_ratio = amr.writer.compute_per_iteration / amr.writer.io.snapshot_bytes() as f64;
        assert!(gtc_ratio > 5.0 * amr_ratio, "{gtc_ratio} vs {amr_ratio}");
        assert!(amr.writer.compute_per_iteration < 0.5);
        // GTC objects are huge, miniAMR objects tiny.
        assert!(gtc.writer.io.object_bytes > 100 << 20);
        assert!(amr.writer.io.object_bytes < 10 << 10);
    }

    #[test]
    fn readonly_kernels_have_no_compute() {
        assert_eq!(gtc_readonly(8).reader.compute_per_iteration, 0.0);
        assert_eq!(miniamr_readonly(8).reader.compute_per_iteration, 0.0);
        assert!(gtc_matmul(8).reader.compute_per_iteration > 0.0);
        assert!(miniamr_matmul(8).reader.compute_per_iteration > 0.0);
    }
}
