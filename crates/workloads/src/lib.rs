//! # pmemflow-workloads — the paper's workflow suite
//!
//! Specifications ([`WorkflowSpec`]) and builders for the six workload
//! families of §IV-B — 64 MB and 2 KB microbenchmarks, GTC and miniAMR
//! simulation proxies, read-only and matrix-multiplication analytics — at
//! the three concurrency levels (8/16/24 ranks), together with the paper's
//! per-workload optimal configuration ([`paper_suite`], Table II).
//!
//! The [`kernels`] module contains runnable implementations of the compute
//! kernels the proxies stand for (7-point stencil, particle-in-cell step,
//! dense matmul), used by the examples, the native executor, and for
//! calibrating virtual compute durations on real hardware.

#![warn(missing_docs)]

pub mod apps;
mod import;
pub mod kernels;
mod spec;
mod suite;

pub use apps::{
    gtc_matmul, gtc_readonly, micro_2kb, micro_64mb, miniamr_matmul, miniamr_readonly,
    paper_rank_levels, SUITE_ITERATIONS,
};
pub use import::{format_workflows, parse_workflows, ParseError};
pub use spec::{ComponentSpec, ConcurrencyClass, IoPattern, SizeClass, WorkflowSpec};
pub use suite::{paper_suite, Family, SuiteEntry, WORKLOAD_CHOICES};
