//! Property tests on workflow specifications and the suite builders.

use pmemflow_workloads::{
    gtc_matmul, gtc_readonly, micro_2kb, micro_64mb, miniamr_matmul, miniamr_readonly,
    ConcurrencyClass, IoPattern, SizeClass,
};
use proptest::prelude::*;

proptest! {
    /// Snapshot bytes = objects × object size for any pattern.
    #[test]
    fn snapshot_bytes_is_product(objects in 1u64..1_000_000, size in 1u64..(1 << 28)) {
        prop_assume!(objects.checked_mul(size).is_some());
        let io = IoPattern { objects_per_snapshot: objects, object_bytes: size };
        prop_assert_eq!(io.snapshot_bytes(), objects * size);
    }

    /// Size classification boundary sits exactly at 1 MiB.
    #[test]
    fn size_class_boundary(size in 1u64..(1 << 30)) {
        let io = IoPattern { objects_per_snapshot: 1, object_bytes: size };
        if size >= 1 << 20 {
            prop_assert_eq!(io.size_class(), SizeClass::Large);
        } else {
            prop_assert_eq!(io.size_class(), SizeClass::Small);
        }
    }

    /// Concurrency classes partition the rank axis without gaps, and the
    /// canonical rank of each class maps back to it.
    #[test]
    fn concurrency_classes_partition(ranks in 1usize..56) {
        let c = ConcurrencyClass::from_ranks(ranks);
        prop_assert!(matches!(
            c,
            ConcurrencyClass::Low | ConcurrencyClass::Medium | ConcurrencyClass::High
        ));
        prop_assert_eq!(ConcurrencyClass::from_ranks(c.ranks()), c);
    }

    /// Every builder yields a valid workflow at any feasible rank count,
    /// with total bytes linear in ranks and iterations.
    #[test]
    fn builders_validate_at_any_rank_count(ranks in 1usize..28) {
        for spec in [
            micro_64mb(ranks),
            micro_2kb(ranks),
            gtc_readonly(ranks),
            gtc_matmul(ranks),
            miniamr_readonly(ranks),
            miniamr_matmul(ranks),
        ] {
            prop_assert!(spec.validate().is_ok());
            prop_assert_eq!(
                spec.total_bytes_written(),
                spec.ranks as u64 * spec.iterations * spec.writer.io.snapshot_bytes()
            );
            // 1:1 exchange invariant.
            prop_assert_eq!(spec.writer.io, spec.reader.io);
        }
    }

    /// with_ranks preserves everything but the rank count.
    #[test]
    fn with_ranks_only_changes_ranks(a in 1usize..28, b in 1usize..28) {
        let s = gtc_matmul(a);
        let t = s.with_ranks(b);
        prop_assert_eq!(t.ranks, b);
        prop_assert_eq!(t.writer, s.writer);
        prop_assert_eq!(t.reader, s.reader);
        prop_assert_eq!(t.iterations, s.iterations);
    }
}
