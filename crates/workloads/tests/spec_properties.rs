//! Randomized-but-deterministic tests on workflow specifications and the
//! suite builders (seeded generator, reproducible failures).

use pmemflow_des::rng::SplitMix64;
use pmemflow_workloads::{
    gtc_matmul, gtc_readonly, micro_2kb, micro_64mb, miniamr_matmul, miniamr_readonly,
    ConcurrencyClass, IoPattern, SizeClass,
};

/// Snapshot bytes = objects × object size for any pattern.
#[test]
fn snapshot_bytes_is_product() {
    let mut rng = SplitMix64::new(0x3bec_0001);
    let mut cases = 0;
    while cases < 256 {
        let objects = rng.range_u64(1, 1_000_000);
        let size = rng.range_u64(1, 1 << 28);
        if objects.checked_mul(size).is_none() {
            continue;
        }
        cases += 1;
        let io = IoPattern {
            objects_per_snapshot: objects,
            object_bytes: size,
        };
        assert_eq!(io.snapshot_bytes(), objects * size);
    }
}

/// Size classification boundary sits exactly at 1 MiB.
#[test]
fn size_class_boundary() {
    let mut rng = SplitMix64::new(0x3bec_0002);
    // Sweep random sizes plus the exact boundary neighborhood.
    let mut sizes: Vec<u64> = (0..256).map(|_| rng.range_u64(1, 1 << 30)).collect();
    sizes.extend([1, (1 << 20) - 1, 1 << 20, (1 << 20) + 1, 1 << 29]);
    for size in sizes {
        let io = IoPattern {
            objects_per_snapshot: 1,
            object_bytes: size,
        };
        if size >= 1 << 20 {
            assert_eq!(io.size_class(), SizeClass::Large);
        } else {
            assert_eq!(io.size_class(), SizeClass::Small);
        }
    }
}

/// Concurrency classes partition the rank axis without gaps, and the
/// canonical rank of each class maps back to it.
#[test]
fn concurrency_classes_partition() {
    for ranks in 1..56usize {
        let c = ConcurrencyClass::from_ranks(ranks);
        assert!(matches!(
            c,
            ConcurrencyClass::Low | ConcurrencyClass::Medium | ConcurrencyClass::High
        ));
        assert_eq!(ConcurrencyClass::from_ranks(c.ranks()), c);
    }
}

/// Every builder yields a valid workflow at any feasible rank count, with
/// total bytes linear in ranks and iterations.
#[test]
fn builders_validate_at_any_rank_count() {
    for ranks in 1..28usize {
        for spec in [
            micro_64mb(ranks),
            micro_2kb(ranks),
            gtc_readonly(ranks),
            gtc_matmul(ranks),
            miniamr_readonly(ranks),
            miniamr_matmul(ranks),
        ] {
            spec.validate().unwrap();
            assert_eq!(
                spec.total_bytes_written(),
                spec.ranks as u64 * spec.iterations * spec.writer.io.snapshot_bytes()
            );
            // 1:1 exchange invariant.
            assert_eq!(spec.writer.io, spec.reader.io);
        }
    }
}

/// with_ranks preserves everything but the rank count.
#[test]
fn with_ranks_only_changes_ranks() {
    let mut rng = SplitMix64::new(0x3bec_0003);
    for _case in 0..64 {
        let a = rng.range_usize(1, 28);
        let b = rng.range_usize(1, 28);
        let s = gtc_matmul(a);
        let t = s.with_ranks(b);
        assert_eq!(t.ranks, b);
        assert_eq!(t.writer, s.writer);
        assert_eq!(t.reader, s.reader);
        assert_eq!(t.iterations, s.iterations);
    }
}
