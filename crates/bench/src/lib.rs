//! # pmemflow-bench — benchmark and figure-regeneration harness
//!
//! One binary per paper table/figure (see `src/bin/`), plus dependency-free
//! microbenchmarks of the substrates (see `benches/` and [`harness`]). This
//! library holds the shared harness: sweeping the 18-workload suite and
//! formatting results next to the paper's claims.

#![warn(missing_docs)]

pub mod harness;

use pmemflow_core::report::panel_table;
use pmemflow_core::{run_matrix, ConfigSweep, ExecutionParams, RunRequest, SchedConfig};
use pmemflow_workloads::{paper_suite, Family, SuiteEntry};

/// A suite entry together with its measured sweep.
pub struct SuiteResult {
    /// The workload and the paper's finding.
    pub entry: SuiteEntry,
    /// Measured results under all four configurations.
    pub sweep: ConfigSweep,
}

impl SuiteResult {
    /// The configuration the model found fastest.
    pub fn model_winner(&self) -> SchedConfig {
        self.sweep.best().config
    }

    /// The configuration the paper found fastest.
    pub fn paper_winner(&self) -> SchedConfig {
        SchedConfig::parse(self.entry.paper_winner).expect("suite labels are valid")
    }

    /// Whether the model reproduces the paper's winner.
    pub fn matches_paper(&self) -> bool {
        self.model_winner() == self.paper_winner()
    }

    /// Normalized runtime of the paper's winner under the model
    /// (1.0 = the model agrees it is fastest).
    pub fn paper_winner_normalized(&self) -> f64 {
        self.sweep.normalized(self.paper_winner())
    }
}

/// The default worker count for suite fan-out: one per available core.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Run the full 18-workload suite under `params`, fanning the 72 runs
/// over `jobs` worker threads. Results are independent deterministic
/// simulations, so the output is identical for any `jobs ≥ 1`.
pub fn run_suite_jobs(params: &ExecutionParams, jobs: usize) -> Vec<SuiteResult> {
    let entries = paper_suite();
    let mut requests = Vec::with_capacity(entries.len() * SchedConfig::ALL.len());
    for entry in &entries {
        for config in SchedConfig::ALL {
            requests.push(RunRequest {
                workflow: entry.family.name().to_string(),
                ranks: entry.ranks,
                stack: params.stack,
                config,
                spec: entry.spec.clone(),
            });
        }
    }
    let outcomes = run_matrix(requests, params, jobs);
    entries
        .into_iter()
        .zip(outcomes.chunks(SchedConfig::ALL.len()))
        .map(|(entry, chunk)| {
            let runs = chunk
                .iter()
                .map(|o| o.result.clone().expect("suite workloads execute"))
                .collect();
            let sweep = ConfigSweep {
                workflow: entry.spec.name.clone(),
                runs,
            };
            SuiteResult { entry, sweep }
        })
        .collect()
}

/// Run the full 18-workload suite under `params` with one worker per core.
pub fn run_suite(params: &ExecutionParams) -> Vec<SuiteResult> {
    run_suite_jobs(params, default_jobs())
}

/// Format a one-line-per-workload comparison against Table II.
pub fn suite_table(results: &[SuiteResult]) -> String {
    let mut out = String::new();
    out.push_str(
        "panel     workload                 ranks  S-LocW    S-LocR    P-LocW    P-LocR    model    paper    ok\n",
    );
    for r in results {
        let t = |c: SchedConfig| r.sweep.run(c).total;
        out.push_str(&format!(
            "{:<9} {:<24} {:>5}  {:>8.2}  {:>8.2}  {:>8.2}  {:>8.2}  {:<7}  {:<7}  {}\n",
            r.entry.panel,
            r.entry.family.name(),
            r.entry.ranks,
            t(SchedConfig::S_LOC_W),
            t(SchedConfig::S_LOC_R),
            t(SchedConfig::P_LOC_W),
            t(SchedConfig::P_LOC_R),
            r.model_winner().label(),
            r.entry.paper_winner,
            if r.matches_paper() { "yes" } else { "NO" },
        ));
    }
    let agree = results.iter().filter(|r| r.matches_paper()).count();
    out.push_str(&format!(
        "\nagreement with Table II: {agree}/{} workloads\n",
        results.len()
    ));
    out
}

/// Regenerate one figure (a workload family across the three concurrency
/// levels): one panel per rank count, runtimes under all four
/// configurations with serial runs split into writer/reader phases —
/// the layout of the paper's Figs. 4–9.
pub fn figure_for_family(family: Family, params: &ExecutionParams) -> String {
    let entries: Vec<SuiteEntry> = paper_suite()
        .into_iter()
        .filter(|e| e.family == family)
        .collect();
    let requests: Vec<RunRequest> = entries
        .iter()
        .flat_map(|entry| {
            SchedConfig::ALL.map(|config| RunRequest {
                workflow: entry.family.name().to_string(),
                ranks: entry.ranks,
                stack: params.stack,
                config,
                spec: entry.spec.clone(),
            })
        })
        .collect();
    let outcomes = run_matrix(requests, params, default_jobs());
    let mut out = String::new();
    out.push_str(&format!("{}: {}\n", family.figure(), family.name()));
    for (entry, chunk) in entries.iter().zip(outcomes.chunks(SchedConfig::ALL.len())) {
        let sweep = ConfigSweep {
            workflow: entry.spec.name.clone(),
            runs: chunk
                .iter()
                .map(|o| o.result.clone().expect("suite workload executes"))
                .collect(),
        };
        let data_gib = entry.spec.total_bytes_written() as f64 / (1u64 << 30) as f64;
        out.push_str(&format!(
            "\n({}) Threads: {}, Data size: {:.0}GiB — paper winner: {}\n",
            entry.panel, entry.ranks, data_gib, entry.paper_winner
        ));
        out.push_str(&panel_table(&sweep));
    }
    out
}
