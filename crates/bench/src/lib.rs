//! # pmemflow-bench — benchmark and figure-regeneration harness
//!
//! One binary per paper table/figure (see `src/bin/`), plus Criterion
//! microbenchmarks of the substrates (see `benches/`). This library holds
//! the shared harness: sweeping the 18-workload suite and formatting
//! results next to the paper's claims.

#![warn(missing_docs)]

use pmemflow_core::report::panel_table;
use pmemflow_core::{sweep, ConfigSweep, ExecutionParams, SchedConfig};
use pmemflow_workloads::{paper_suite, Family, SuiteEntry};

/// A suite entry together with its measured sweep.
pub struct SuiteResult {
    /// The workload and the paper's finding.
    pub entry: SuiteEntry,
    /// Measured results under all four configurations.
    pub sweep: ConfigSweep,
}

impl SuiteResult {
    /// The configuration the model found fastest.
    pub fn model_winner(&self) -> SchedConfig {
        self.sweep.best().config
    }

    /// The configuration the paper found fastest.
    pub fn paper_winner(&self) -> SchedConfig {
        SchedConfig::parse(self.entry.paper_winner).expect("suite labels are valid")
    }

    /// Whether the model reproduces the paper's winner.
    pub fn matches_paper(&self) -> bool {
        self.model_winner() == self.paper_winner()
    }

    /// Normalized runtime of the paper's winner under the model
    /// (1.0 = the model agrees it is fastest).
    pub fn paper_winner_normalized(&self) -> f64 {
        self.sweep.normalized(self.paper_winner())
    }
}

/// Run the full 18-workload suite under `params`.
pub fn run_suite(params: &ExecutionParams) -> Vec<SuiteResult> {
    paper_suite()
        .into_iter()
        .map(|entry| {
            let sweep = sweep(&entry.spec, params).expect("suite workloads execute");
            SuiteResult { entry, sweep }
        })
        .collect()
}

/// Format a one-line-per-workload comparison against Table II.
pub fn suite_table(results: &[SuiteResult]) -> String {
    let mut out = String::new();
    out.push_str(
        "panel     workload                 ranks  S-LocW    S-LocR    P-LocW    P-LocR    model    paper    ok\n",
    );
    for r in results {
        let t = |c: SchedConfig| r.sweep.run(c).total;
        out.push_str(&format!(
            "{:<9} {:<24} {:>5}  {:>8.2}  {:>8.2}  {:>8.2}  {:>8.2}  {:<7}  {:<7}  {}\n",
            r.entry.panel,
            r.entry.family.name(),
            r.entry.ranks,
            t(SchedConfig::S_LOC_W),
            t(SchedConfig::S_LOC_R),
            t(SchedConfig::P_LOC_W),
            t(SchedConfig::P_LOC_R),
            r.model_winner().label(),
            r.entry.paper_winner,
            if r.matches_paper() { "yes" } else { "NO" },
        ));
    }
    let agree = results.iter().filter(|r| r.matches_paper()).count();
    out.push_str(&format!(
        "\nagreement with Table II: {agree}/{} workloads\n",
        results.len()
    ));
    out
}

/// Regenerate one figure (a workload family across the three concurrency
/// levels): one panel per rank count, runtimes under all four
/// configurations with serial runs split into writer/reader phases —
/// the layout of the paper's Figs. 4–9.
pub fn figure_for_family(family: Family, params: &ExecutionParams) -> String {
    let mut out = String::new();
    out.push_str(&format!("{}: {}\n", family.figure(), family.name()));
    for entry in paper_suite().into_iter().filter(|e| e.family == family) {
        let sweep = sweep(&entry.spec, params).expect("suite workload executes");
        let data_gib = entry.spec.total_bytes_written() as f64 / (1u64 << 30) as f64;
        out.push_str(&format!(
            "\n({}) Threads: {}, Data size: {:.0}GiB — paper winner: {}\n",
            entry.panel, entry.ranks, data_gib, entry.paper_winner
        ));
        out.push_str(&panel_table(&sweep));
    }
    out
}
