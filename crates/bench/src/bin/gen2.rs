//! What-if: the paper's study on second-generation Optane.
//!
//! Reruns the 18-workload suite on the gen-2 extrapolated profile
//! (`DeviceProfile::optane_gen2`: +32 % bandwidth everywhere, same
//! latencies) and reports which Table II winners change. Because the
//! gen-2 uplift scales read, write and remote paths together, the
//! asymmetries that drive the paper's recommendations persist — the main
//! movement is workloads near a saturation boundary getting un-saturated.

use pmemflow_bench::run_suite;
use pmemflow_core::ExecutionParams;
use pmemflow_pmem::DeviceProfile;

fn main() {
    let gen1 = run_suite(&ExecutionParams::default());
    let gen2 = run_suite(&ExecutionParams::default().with_profile(DeviceProfile::optane_gen2()));
    println!(
        "{:<22} {:>5}  {:>8} {:>8}  {:>9} {:>9}",
        "workload", "ranks", "gen1", "gen2", "t1(s)", "t2(s)"
    );
    let mut changed = 0;
    for (a, b) in gen1.iter().zip(gen2.iter()) {
        let differs = a.model_winner() != b.model_winner();
        if differs {
            changed += 1;
        }
        println!(
            "{:<22} {:>5}  {:>8} {:>8}  {:>9.1} {:>9.1} {}",
            a.entry.family.name(),
            a.entry.ranks,
            a.model_winner().label(),
            b.model_winner().label(),
            a.sweep.best().total,
            b.sweep.best().total,
            if differs { "<-- flips" } else { "" },
        );
    }
    println!(
        "\n{changed}/18 winners change on gen-2; the placement and mode\n\
         asymmetries scale together, so the recommendation structure holds."
    );
}
