//! Regenerate the paper's Table II: configuration recommendations.
//!
//! Prints the ten recommendation rows, then validates three recommenders
//! against the paper's winner for each of the 18 suite workloads:
//! the model-driven oracle (simulate all four configurations), the
//! rule-based engine (§VIII distilled), and the Table II row lookup.

use pmemflow_bench::run_suite;
use pmemflow_core::ExecutionParams;
use pmemflow_sched::{characterize, classify, recommend, table2, RuleThresholds};

fn main() {
    let params = ExecutionParams::default();

    println!("TABLE II: Configuration recommendations for Workflows\n");
    println!(
        "{:>3}  {:<11} {:<9} {:<11} {:<9} {:<7} {:<7}  Illustrated by",
        "#", "SimCompute", "SimWrite", "AnaCompute", "AnaRead", "ObjSize", "Config"
    );
    for row in table2() {
        let levels = |ls: &[pmemflow_sched::Level]| {
            ls.iter().map(|l| l.label()).collect::<Vec<_>>().join("/")
        };
        println!(
            "{:>3}  {:<11} {:<9} {:<11} {:<9} {:<7} {:<7}  {}",
            row.row,
            levels(row.sim_compute),
            levels(row.sim_write),
            levels(row.analytics_compute),
            levels(row.analytics_read),
            match row.object_size {
                pmemflow_workloads::SizeClass::Small => "small",
                pmemflow_workloads::SizeClass::Large => "large",
            },
            row.config.label(),
            row.illustrated_by,
        );
    }

    println!("\nValidation against the 18-workload suite:\n");
    println!(
        "{:<20} {:>5}  {:>6}  {:>6}  {:>6}  {:>8}  paper",
        "workload", "ranks", "oracle", "rules", "lookup", "row"
    );
    let thresholds = RuleThresholds::default();
    let results = run_suite(&params);
    let (mut oracle_ok, mut rules_ok, mut lookup_ok, mut lookup_n) = (0, 0, 0, 0);
    for r in &results {
        let profile = characterize(&r.entry.spec, &params).expect("characterize");
        let rules = recommend(&profile, &thresholds).config;
        let lookup = classify(&profile).map(|row| (row.row, row.config));
        let paper = r.paper_winner();
        if r.model_winner() == paper {
            oracle_ok += 1;
        }
        if rules == paper {
            rules_ok += 1;
        }
        if let Some((_, c)) = lookup {
            lookup_n += 1;
            if c == paper {
                lookup_ok += 1;
            }
        }
        println!(
            "{:<20} {:>5}  {:>6}  {:>6}  {:>6}  {:>8}  {}",
            r.entry.family.name(),
            r.entry.ranks,
            r.model_winner().label(),
            rules.label(),
            lookup.map(|(_, c)| c.label()).unwrap_or("—"),
            lookup.map(|(n, _)| n.to_string()).unwrap_or_default(),
            r.entry.paper_winner,
        );
    }
    println!(
        "\nagreement with the paper: oracle {oracle_ok}/18, rules {rules_ok}/18, \
         Table II lookup {lookup_ok}/{lookup_n} (of workloads the table covers)."
    );
}
