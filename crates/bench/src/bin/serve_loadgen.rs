//! Load generator for the `pmemflow_serve` daemon.
//!
//! Boots an in-process server, then drives a **seeded, Zipf-skewed**
//! query stream at it over real loopback TCP with keep-alive, closed-loop
//! clients — the access pattern of a cluster scheduler that keeps asking
//! about the same popular workloads. Two passes over the *identical*
//! request sequence:
//!
//! * **cold** — empty cache: most requests pay for simulations (or
//!   coalesce onto one);
//! * **warm** — same sequence again: everything should hit the result
//!   cache at microsecond latencies.
//!
//! Reports throughput and p50/p99 latency for both passes, the warm/cold
//! speedup, and the cache hit rate — and cross-checks that every response
//! body is **byte-identical** between the passes and across `--workers 1`
//! vs `--workers N` servers for the same seed.
//!
//! ```text
//! serve_loadgen [--requests N] [--clients C] [--workers W] [--seed S]
//!               [--fault-rate R]
//! ```
//!
//! With `--fault-rate R > 0` a third pass replays the same sequence
//! against a server whose backend panics on a deterministic cadence
//! (`FaultInjectingBackend`): every client retries 500s with seeded,
//! jittered exponential backoff, and the pass reports **goodput** — the
//! rate of requests that ultimately succeeded — plus the daemon's panic
//! and worker-restart counters. The pass asserts no request hangs and no
//! retry budget is exhausted: the daemon degrades, it does not wedge.

use pmemflow_des::rng::SplitMix64;
use pmemflow_serve::{Server, ServerConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One query of the universe: an endpoint plus a JSON body.
#[derive(Clone)]
struct LoadQuery {
    path: &'static str,
    body: String,
}

/// The query universe the Zipf stream draws from: every family at two
/// rank counts across three endpoints, plus co-schedule pairs. Popular
/// entries (low index) dominate under Zipf — exactly the redundancy the
/// cache and single-flight are built to exploit.
fn universe() -> Vec<LoadQuery> {
    let families = [
        "micro-2kb",
        "micro-64mb",
        "gtc-readonly",
        "gtc-matmult",
        "miniamr-readonly",
        "miniamr-matmult",
    ];
    let mut queries = Vec::new();
    for ranks in [8usize, 16] {
        for family in families {
            for path in ["/v1/predict", "/v1/sweep", "/v1/recommend"] {
                queries.push(LoadQuery {
                    path,
                    body: format!("{{\"workload\":\"{family}\",\"ranks\":{ranks}}}"),
                });
            }
        }
    }
    for (a, b) in [
        ("micro-2kb", "micro-64mb"),
        ("gtc-readonly", "miniamr-matmult"),
    ] {
        queries.push(LoadQuery {
            path: "/v1/coschedule",
            body: format!(
                "{{\"tenants\":[{{\"workload\":\"{a}\",\"ranks\":8,\"config\":\"S-LocW\"}},\
                 {{\"workload\":\"{b}\",\"ranks\":8,\"config\":\"P-LocR\"}}]}}"
            ),
        });
    }
    queries
}

/// Zipf(s) sampler over `n` items by inverse-CDF binary search.
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, s: f64) -> Zipf {
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    fn sample(&self, rng: &mut SplitMix64) -> usize {
        let u = rng.next_f64();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

fn http_exchange(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    q: &LoadQuery,
) -> (u16, String) {
    stream
        .write_all(
            format!(
                "POST {} HTTP/1.1\r\nHost: l\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{}",
                q.path,
                q.body.len(),
                q.body
            )
            .as_bytes(),
        )
        .expect("request written");
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let mut len = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            len = v.trim().parse().expect("content length");
        }
    }
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body).expect("body");
    (status, String::from_utf8(body).expect("utf8 body"))
}

struct PassStats {
    elapsed: Duration,
    latencies_us: Vec<u64>,
    bodies: Vec<String>, // per sequence position
}

fn quantile(sorted_us: &[u64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((q * sorted_us.len() as f64).ceil() as usize).clamp(1, sorted_us.len()) - 1;
    sorted_us[idx] as f64 / 1e3
}

/// Replay `sequence` (indices into `queries`) with `clients` closed-loop
/// keep-alive connections.
fn run_pass(
    addr: SocketAddr,
    queries: &[LoadQuery],
    sequence: &[usize],
    clients: usize,
) -> PassStats {
    let next = AtomicUsize::new(0);
    let bodies: Vec<Mutex<String>> = sequence.iter().map(|_| Mutex::new(String::new())).collect();
    let latencies = Mutex::new(Vec::with_capacity(sequence.len()));
    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients.max(1) {
            scope.spawn(|| {
                let mut stream = TcpStream::connect(addr).expect("connect");
                stream
                    .set_read_timeout(Some(Duration::from_secs(120)))
                    .unwrap();
                let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                let mut local_lat = Vec::new();
                loop {
                    let pos = next.fetch_add(1, Relaxed);
                    if pos >= sequence.len() {
                        break;
                    }
                    let q = &queries[sequence[pos]];
                    let t0 = Instant::now();
                    let (status, body) = http_exchange(&mut stream, &mut reader, q);
                    local_lat.push(t0.elapsed().as_micros() as u64);
                    assert_eq!(status, 200, "{}: {body}", q.path);
                    *bodies[pos].lock().unwrap() = body;
                }
                latencies.lock().unwrap().extend(local_lat);
            });
        }
    });
    PassStats {
        elapsed: started.elapsed(),
        latencies_us: latencies.into_inner().unwrap(),
        bodies: bodies
            .into_iter()
            .map(|m| m.into_inner().unwrap())
            .collect(),
    }
}

fn report(label: &str, stats: &PassStats) -> f64 {
    let mut sorted = stats.latencies_us.clone();
    sorted.sort_unstable();
    let throughput = stats.bodies.len() as f64 / stats.elapsed.as_secs_f64();
    println!(
        "{label:<5}  {:>6} req in {:>7.3}s = {:>9.1} req/s   p50 {:>8.3}ms  p99 {:>8.3}ms",
        stats.bodies.len(),
        stats.elapsed.as_secs_f64(),
        throughput,
        quantile(&sorted, 0.50),
        quantile(&sorted, 0.99),
    );
    throughput
}

fn arg<T: std::str::FromStr>(name: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Replay `sequence` against a fault-injecting server: every request
/// retries on 500 with seeded jittered exponential backoff. Returns
/// `(elapsed, succeeded, retries, exhausted)`.
fn run_chaos_pass(
    addr: SocketAddr,
    queries: &[LoadQuery],
    sequence: &[usize],
    clients: usize,
    seed: u64,
) -> (Duration, usize, usize, usize) {
    let next = AtomicUsize::new(0);
    let ok = AtomicUsize::new(0);
    let retries = AtomicUsize::new(0);
    let exhausted = AtomicUsize::new(0);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..clients.max(1) {
            let (next, ok, retries, exhausted) = (&next, &ok, &retries, &exhausted);
            scope.spawn(move || {
                let mut rng =
                    SplitMix64::new(seed ^ (client as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15));
                let mut stream = TcpStream::connect(addr).expect("connect");
                stream
                    .set_read_timeout(Some(Duration::from_secs(120)))
                    .unwrap();
                let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                loop {
                    let pos = next.fetch_add(1, Relaxed);
                    if pos >= sequence.len() {
                        break;
                    }
                    let q = &queries[sequence[pos]];
                    let mut attempt = 0u32;
                    loop {
                        // A read timeout here would panic the client: that
                        // is the no-hung-requests assertion — every 500 is
                        // delivered promptly, never left to rot.
                        let (status, body) = http_exchange(&mut stream, &mut reader, q);
                        if status == 200 {
                            ok.fetch_add(1, Relaxed);
                            break;
                        }
                        assert_eq!(status, 500, "{}: unexpected {status}: {body}", q.path);
                        attempt += 1;
                        if attempt >= 8 {
                            exhausted.fetch_add(1, Relaxed);
                            break;
                        }
                        retries.fetch_add(1, Relaxed);
                        // 2^attempt ms plus up to 1ms of seeded jitter, so
                        // retry storms decorrelate without losing replay
                        // determinism of the schedule itself.
                        let backoff_us =
                            (1u64 << attempt.min(6)) * 1000 + (rng.next_f64() * 1000.0) as u64;
                        std::thread::sleep(Duration::from_micros(backoff_us));
                    }
                }
            });
        }
    });
    (
        started.elapsed(),
        ok.load(Relaxed),
        retries.load(Relaxed),
        exhausted.load(Relaxed),
    )
}

fn main() {
    let requests: usize = arg("--requests", 400);
    let clients: usize = arg("--clients", 4);
    let workers: usize = arg("--workers", 2);
    let seed: u64 = arg("--seed", 42);
    let fault_rate: f64 = arg("--fault-rate", 0.0);

    let queries = universe();
    let zipf = Zipf::new(queries.len(), 1.1);
    let mut rng = SplitMix64::new(seed);
    let sequence: Vec<usize> = (0..requests).map(|_| zipf.sample(&mut rng)).collect();
    let distinct: std::collections::BTreeSet<usize> = sequence.iter().copied().collect();

    println!(
        "serve_loadgen: {requests} requests over {} distinct queries (universe {}), \
         Zipf s=1.1 seed {seed}, {clients} client(s), {workers} worker(s)\n",
        distinct.len(),
        queries.len()
    );

    let server = Server::start(ServerConfig {
        workers,
        ..ServerConfig::default()
    })
    .expect("server boots");
    let addr = server.addr();

    let cold = run_pass(addr, &queries, &sequence, clients);
    let cold_tput = report("cold", &cold);
    let warm = run_pass(addr, &queries, &sequence, clients);
    let warm_tput = report("warm", &warm);

    for (pos, (c, w)) in cold.bodies.iter().zip(&warm.bodies).enumerate() {
        assert_eq!(c, w, "response #{pos} changed between cold and warm");
    }

    let m = server.metrics();
    let hits = m.cache_hits.load(Relaxed);
    let misses = m.cache_misses.load(Relaxed);
    let coalesced = m.coalesced.load(Relaxed);
    let hit_rate = hits as f64 / (hits + coalesced + misses).max(1) as f64;
    println!(
        "\ncache: {hits} hits, {misses} misses, {coalesced} coalesced — {:.1}% hit rate",
        hit_rate * 100.0
    );
    println!("warm/cold speedup: {:.1}x", warm_tput / cold_tput);
    server.shutdown();
    server.join();

    // Byte-identity across worker counts: a single-worker server must
    // produce exactly the bytes the multi-worker server did.
    let reference = Server::start(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    })
    .expect("reference server boots");
    let distinct_seq: Vec<usize> = distinct.into_iter().collect();
    let single = run_pass(reference.addr(), &queries, &distinct_seq, 1);
    for (i, &qi) in distinct_seq.iter().enumerate() {
        let multi = &warm.bodies[sequence.iter().position(|&s| s == qi).expect("seen")];
        assert_eq!(
            &single.bodies[i], multi,
            "query {qi} differs between --workers 1 and --workers {workers}"
        );
    }
    println!(
        "byte-identity: {} distinct responses identical across --workers 1 and --workers {workers}",
        distinct_seq.len()
    );
    reference.shutdown();
    reference.join();

    if fault_rate > 0.0 {
        println!("\nchaos: same sequence against --fault-rate {fault_rate} (panic every ~{:.0}th compute)",
            1.0 / fault_rate);
        // Injected panics are the point of this pass; keep their
        // backtraces out of the report while leaving real panics loud.
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains("injected backend fault"));
            if !injected {
                default_hook(info);
            }
        }));
        let chaos = Server::start(ServerConfig {
            workers,
            fault_rate,
            ..ServerConfig::default()
        })
        .expect("chaos server boots");
        let (elapsed, ok, retries, exhausted) =
            run_chaos_pass(chaos.addr(), &queries, &sequence, clients, seed);
        // Let the last respawn land before scraping counters.
        std::thread::sleep(Duration::from_millis(200));
        let m = chaos.metrics();
        let panics = m.panics.load(Relaxed);
        let restarts = m.worker_restarts.load(Relaxed);
        println!(
            "chaos: {ok}/{} ok ({retries} retries, {exhausted} gave up) in {:.3}s = {:.1} req/s goodput",
            sequence.len(),
            elapsed.as_secs_f64(),
            ok as f64 / elapsed.as_secs_f64(),
        );
        println!("chaos: {panics} injected panics, {restarts} worker respawns, 0 hung requests");
        assert!(
            panics > 0,
            "fault injection never fired; raise --requests or --fault-rate"
        );
        assert!(
            restarts > 0 && restarts <= panics,
            "respawns ({restarts}) out of line with panics ({panics})"
        );
        assert_eq!(exhausted, 0, "requests exhausted their retry budget");
        assert_eq!(ok, sequence.len(), "every request must eventually succeed");
        chaos.shutdown();
        assert_eq!(chaos.join(), 0, "hung connections after the chaos pass");
    }

    if warm_tput / cold_tput < 10.0 {
        println!("WARNING: warm/cold speedup below 10x");
    }
}
