//! Regenerate the paper's §II-B raw-device characterization: bandwidth
//! versus concurrency per direction and locality, and the headline ratios
//! (15× remote write drop vs 1.3× for reads at 24 ops; 90 ns write vs
//! 169 ns read idle latency).

use pmemflow_pmem::{bandwidth_table, headline_ratios, DeviceProfile, GB};

fn main() {
    let profile = DeviceProfile::optane_gen1();
    println!("Optane gen-1 model: bandwidth vs concurrency (GB/s)\n");
    println!(
        "{:>7} {:>10} {:>11} {:>11} {:>12} {:>14}",
        "threads", "local-read", "local-write", "remote-read", "remote-write", "rw-random-4K"
    );
    for row in bandwidth_table(
        &profile,
        &[1.0, 2.0, 3.0, 4.0, 8.0, 12.0, 16.0, 17.0, 24.0, 48.0],
    ) {
        println!(
            "{:>7.0} {:>10.1} {:>11.1} {:>11.1} {:>12.1} {:>14.2}",
            row.threads,
            row.local_read / GB,
            row.local_write / GB,
            row.remote_read / GB,
            row.remote_write / GB,
            row.remote_write_random / GB,
        );
    }

    println!("\nloaded latency vs concurrency (ns):");
    println!(
        "{:>7} {:>11} {:>11}",
        "threads", "read-local", "write-local"
    );
    for n in [0.0, 1.0, 4.0, 8.0, 17.0, 24.0] {
        use pmemflow_des::{Direction, Locality};
        println!(
            "{:>7.0} {:>11.0} {:>11.0}",
            n,
            profile.loaded_latency(Direction::Read, Locality::Local, n) * 1e9,
            profile.loaded_latency(Direction::Write, Locality::Local, n) * 1e9,
        );
    }

    let h = headline_ratios(&profile);
    println!("\n§II-B headline numbers:");
    println!(
        "  peak local read  {:.1} GB/s (paper: 39.4, scaling to ~17 threads)",
        profile.local_read_bw.peak() / GB
    );
    println!(
        "  peak local write {:.1} GB/s (paper: 13.9, saturating at 4 threads)",
        profile.local_write_bw.peak() / GB
    );
    println!(
        "  remote random-write drop at 24 ops: {:.1}x (paper: ~15x)",
        h.write_drop_at_24
    );
    println!(
        "  remote read slowdown at 24 ops: {:.2}x (paper: 1.3x)",
        h.read_drop_at_24
    );
    println!(
        "  idle latency: write {:.0} ns / read {:.0} ns (paper: 90 / 169)",
        h.write_latency * 1e9,
        h.read_latency * 1e9
    );
}
