//! Model calibration search.
//!
//! The device model has a handful of free constants the paper does not pin
//! down numerically (mid-curve remote-write bandwidth, mixing budgets,
//! proxy-kernel compute durations, stack op costs). This binary searches
//! that space — randomized exploration followed by hill-climbing — scoring
//! each candidate by agreement with the paper's Table II winners plus the
//! closeness of near-misses, and prints the best parameter set found.
//!
//! The chosen values are then frozen into `DeviceProfile::optane_gen1`,
//! the stack cost models, and the workload constants; this tool documents
//! how they were derived and lets anyone re-derive them.

use pmemflow_core::{sweep, ExecutionParams, SchedConfig};
use pmemflow_des::rng::SplitMix64;
use pmemflow_iostack::{StackCostModel, StackKind};
use pmemflow_pmem::{Curve, DeviceProfile, GB};
use pmemflow_workloads::{paper_suite, Family};

#[derive(Debug, Clone, Copy)]
struct Knobs {
    // Remote streaming write curve values (GB/s) at 3/8/16/24 threads.
    rw3: f64,
    rw8: f64,
    rw12: f64,
    rw16: f64,
    rw24: f64,
    /// Remote read penalty at low concurrency (paper pins 1.3 at 24).
    rr_low: f64,
    // Large-access mixed budget: 1.0 until `mix_knee`, then through
    // `mix_mid` at `mix_knee + 8`, linear to `mix_floor` at 48.
    mix_knee: f64,
    mix_mid: f64,
    mix_floor: f64,
    // Small-access extra mixing multiplier: same shape with the midpoint
    // at `smix_knee + 6`.
    smix_knee: f64,
    smix_mid: f64,
    smix_floor: f64,
    // Proxy kernel compute seconds.
    gtc_c: f64,
    gtc_mm: f64,
    amr_c: f64,
    amr_mm: f64,
    // NVStream costs.
    nvs_wop: f64,
    nvs_rop: f64,
    nvs_wb: f64,
    nvs_rb: f64,
    // Rank stagger fraction.
    stagger: f64,
}

impl Knobs {
    fn current() -> Knobs {
        Knobs {
            rw3: 11.0,
            rw8: 10.5,
            rw12: 10.5,
            rw16: 7.6,
            rw24: 4.7,
            rr_low: 1.21,
            mix_knee: 8.1,
            mix_mid: 0.43,
            mix_floor: 0.43,
            smix_knee: 6.9,
            smix_mid: 0.85,
            smix_floor: 0.55,
            gtc_c: 0.544,
            gtc_mm: 0.629,
            amr_c: 0.0127,
            amr_mm: 0.307,
            nvs_wop: 3.49e-6,
            nvs_rop: 2.53e-6,
            nvs_wb: 0.13e-9,
            nvs_rb: 0.167e-9,
            stagger: 2.46,
        }
    }

    fn random(rng: &mut SplitMix64) -> Knobs {
        Knobs {
            rw3: rng.range_f64(5.5, 11.0),
            rw8: rng.range_f64(5.0, 12.0),
            rw12: rng.range_f64(4.5, 10.5),
            rw16: rng.range_f64(3.5, 8.0),
            rw24: rng.range_f64(2.4, 5.5),
            rr_low: rng.range_f64(1.02, 1.22),
            mix_knee: rng.range_f64(8.0, 28.0),
            mix_mid: rng.range_f64(0.35, 1.0),
            mix_floor: rng.range_f64(0.2, 0.95),
            smix_knee: rng.range_f64(6.0, 24.0),
            smix_mid: rng.range_f64(0.3, 1.0),
            smix_floor: rng.range_f64(0.15, 0.85),
            gtc_c: rng.range_f64(0.4, 2.5),
            gtc_mm: rng.range_f64(0.2, 2.2),
            amr_c: rng.range_f64(0.01, 0.3),
            amr_mm: rng.range_f64(0.2, 1.5),
            nvs_wop: rng.range_f64(1.5e-6, 6.0e-6),
            nvs_rop: rng.range_f64(0.5e-6, 2.6e-6),
            nvs_wb: rng.range_f64(0.1e-9, 0.5e-9),
            nvs_rb: rng.range_f64(0.1e-9, 0.45e-9),
            stagger: rng.range_f64(0.0, 2.5),
        }
    }

    fn perturb(&self, rng: &mut SplitMix64, scale: f64) -> Knobs {
        let mut k = *self;
        let m = |rng: &mut SplitMix64, v: f64, lo: f64, hi: f64| {
            (v * (1.0 + rng.range_f64(-scale, scale))).clamp(lo, hi)
        };
        k.rw3 = m(rng, k.rw3, 5.5, 11.0);
        k.rw8 = m(rng, k.rw8, 5.0, 12.0);
        k.rw12 = m(rng, k.rw12, 4.5, 10.5);
        k.rw16 = m(rng, k.rw16, 3.5, 8.0);
        k.rw24 = m(rng, k.rw24, 2.4, 5.5);
        k.rr_low = m(rng, k.rr_low, 1.02, 1.22);
        k.mix_knee = m(rng, k.mix_knee, 8.0, 28.0);
        k.mix_mid = m(rng, k.mix_mid, 0.35, 1.0);
        k.mix_floor = m(rng, k.mix_floor, 0.2, 0.95);
        k.smix_knee = m(rng, k.smix_knee, 6.0, 24.0);
        k.smix_mid = m(rng, k.smix_mid, 0.3, 1.0);
        k.smix_floor = m(rng, k.smix_floor, 0.15, 0.85);
        k.gtc_c = m(rng, k.gtc_c, 0.4, 2.5);
        k.gtc_mm = m(rng, k.gtc_mm, 0.2, 2.2);
        k.amr_c = m(rng, k.amr_c, 0.01, 0.3);
        k.amr_mm = m(rng, k.amr_mm, 0.2, 1.5);
        k.nvs_wop = m(rng, k.nvs_wop, 1.5e-6, 6.0e-6);
        k.nvs_rop = m(rng, k.nvs_rop, 0.5e-6, 2.6e-6);
        k.nvs_wb = m(rng, k.nvs_wb, 0.1e-9, 0.5e-9);
        k.nvs_rb = m(rng, k.nvs_rb, 0.1e-9, 0.45e-9);
        k.stagger = (k.stagger + rng.range_f64(-scale, scale)).clamp(0.0, 2.5);
        k
    }

    fn params(&self) -> ExecutionParams {
        let mut profile = DeviceProfile::optane_gen1();
        profile.remote_write_bw = Curve::from_points(&[
            (0.0, 0.0),
            (1.0, (self.rw3 * 0.75).min(5.4) * GB),
            (3.0, self.rw3 * GB),
            (8.0, self.rw8 * GB),
            (12.0, self.rw12 * GB),
            (16.0, self.rw16 * GB),
            (24.0, self.rw24 * GB),
            (48.0, self.rw24 * 0.75 * GB),
        ]);
        profile.remote_read_penalty = Curve::from_points(&[
            (0.0, self.rr_low),
            (8.0, ((self.rr_low + 1.3) / 2.0 - 0.08).max(self.rr_low)),
            (16.0, 1.2f64.max(self.rr_low)),
            (24.0, 1.3),
            (48.0, 1.55),
        ]);
        profile.mix_budget = Curve::from_points(&[
            (0.0, 1.0),
            (self.mix_knee, 1.0),
            (self.mix_knee + 8.0, self.mix_mid.min(1.0)),
            (48.0, self.mix_floor.min(self.mix_mid)),
        ]);
        profile.small_mix_budget = Curve::from_points(&[
            (0.0, 1.0),
            (self.smix_knee, 1.0),
            (self.smix_knee + 6.0, self.smix_mid.min(1.0)),
            (48.0, self.smix_floor.min(self.smix_mid)),
        ]);
        let mut p = ExecutionParams::default().with_profile(profile);
        p.stagger = self.stagger;
        p.cost_override = Some(StackCostModel {
            name: "NVStream-tuned",
            write_op_cost: self.nvs_wop,
            read_op_cost: self.nvs_rop,
            write_byte_cost: self.nvs_wb,
            read_byte_cost: self.nvs_rb,
        });
        p.stack = StackKind::NvStream;
        p
    }
}

/// Score: 100 per matching winner, minus the normalized-excess of the
/// paper winner when it loses (so near-misses rank above blowouts).
fn evaluate(k: &Knobs) -> (usize, f64) {
    let params = k.params();
    let mut agree = 0usize;
    let mut score = 0.0;
    for entry in paper_suite() {
        let mut spec = entry.spec.clone();
        match entry.family {
            Family::GtcReadOnly | Family::GtcMatMul => {
                spec.writer.compute_per_iteration = k.gtc_c;
                if entry.family == Family::GtcMatMul {
                    spec.reader.compute_per_iteration = k.gtc_mm;
                }
            }
            Family::MiniAmrReadOnly | Family::MiniAmrMatMul => {
                spec.writer.compute_per_iteration = k.amr_c;
                if entry.family == Family::MiniAmrMatMul {
                    spec.reader.compute_per_iteration = k.amr_mm;
                }
            }
            _ => {}
        }
        let Ok(sw) = sweep(&spec, &params) else {
            return (0, f64::NEG_INFINITY);
        };
        let paper = SchedConfig::parse(entry.paper_winner).unwrap();
        let norm = sw.normalized(paper);
        if sw.best().config == paper {
            agree += 1;
            // Reward a decisive (but capped) margin over the runner-up so
            // ties break toward the paper.
            let second = sw
                .runs
                .iter()
                .filter(|r| r.config != paper)
                .map(|r| r.total)
                .fold(f64::INFINITY, f64::min);
            let margin = (second / sw.best().total - 1.0).min(0.08);
            score += 100.0 + margin * 100.0;
        } else {
            score -= (norm - 1.0) * 50.0;
        }
    }
    (agree, score)
}

fn main() {
    let iters: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);
    let mut rng = SplitMix64::new(0x5eed);
    let mut best = Knobs::current();
    let (mut best_agree, mut best_score) = evaluate(&best);
    println!("start: agree={best_agree}/18 score={best_score:.1}");
    let batch = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut i = 0usize;
    while i < iters {
        let cands: Vec<Knobs> = (0..batch)
            .map(|j| match (i + j) % 3 {
                0 => Knobs::random(&mut rng),
                1 => best.perturb(&mut rng, 0.25),
                _ => best.perturb(&mut rng, 0.08),
            })
            .collect();
        let results: Vec<(usize, f64)> = std::thread::scope(|sc| {
            let handles: Vec<_> = cands
                .iter()
                .map(|c| sc.spawn(move || evaluate(c)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (cand, (agree, score)) in cands.into_iter().zip(results) {
            if score > best_score {
                best = cand;
                best_agree = agree;
                best_score = score;
                println!("iter {i}: agree={agree}/18 score={score:.1}\n  {best:?}");
            }
        }
        i += batch;
    }
    println!("\nBEST: agree={best_agree}/18 score={best_score:.1}\n{best:#?}");
    // Per-panel detail for the best candidate.
    let params = best.params();
    println!("\npanel     workload              S-LocW  S-LocR  P-LocW  P-LocR  model   paper");
    for entry in paper_suite() {
        let mut spec = entry.spec.clone();
        match entry.family {
            Family::GtcReadOnly | Family::GtcMatMul => {
                spec.writer.compute_per_iteration = best.gtc_c;
                if entry.family == Family::GtcMatMul {
                    spec.reader.compute_per_iteration = best.gtc_mm;
                }
            }
            Family::MiniAmrReadOnly | Family::MiniAmrMatMul => {
                spec.writer.compute_per_iteration = best.amr_c;
                if entry.family == Family::MiniAmrMatMul {
                    spec.reader.compute_per_iteration = best.amr_mm;
                }
            }
            _ => {}
        }
        let sw = sweep(&spec, &params).unwrap();
        let t = |c: SchedConfig| sw.run(c).total;
        println!(
            "{:<9} {:<20} {:>7.2} {:>7.2} {:>7.2} {:>7.2}  {:<7} {}{}",
            entry.panel,
            entry.family.name(),
            t(SchedConfig::S_LOC_W),
            t(SchedConfig::S_LOC_R),
            t(SchedConfig::P_LOC_W),
            t(SchedConfig::P_LOC_R),
            sw.best().config.label(),
            entry.paper_winner,
            if sw.best().config.label() == entry.paper_winner {
                ""
            } else {
                "  <-- MISS"
            },
        );
    }
}
