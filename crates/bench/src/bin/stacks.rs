//! Regenerate the paper's §VII cross-stack claim: the configuration
//! problem is not an artifact of one storage mechanism.
//!
//! Runs representative workloads on both the NOVA-like filesystem cost
//! model and the NVStream-like store cost model, showing (a) similar
//! winner trends for large objects, and (b) the shift the paper reports
//! for small-object workloads, where NOVA's higher software cost lowers
//! effective PMEM contention.

use pmemflow_core::{sweep, ExecutionParams, SchedConfig};
use pmemflow_iostack::StackKind;
use pmemflow_workloads::{gtc_readonly, micro_2kb, micro_64mb, miniamr_readonly};

fn main() {
    let workloads = [
        micro_64mb(24),
        gtc_readonly(24),
        micro_2kb(16),
        miniamr_readonly(16),
    ];
    println!(
        "{:<22} {:<9} {:>8} {:>8} {:>8} {:>8}  winner",
        "workload", "stack", "S-LocW", "S-LocR", "P-LocW", "P-LocR"
    );
    for spec in &workloads {
        let mut winners = Vec::new();
        for stack in [StackKind::NvStream, StackKind::Nova] {
            let params = ExecutionParams::default().with_stack(stack);
            let sw = sweep(spec, &params).expect("workload executes");
            let t = |c: SchedConfig| sw.run(c).total;
            println!(
                "{:<22} {:<9} {:>8.2} {:>8.2} {:>8.2} {:>8.2}  {}",
                spec.name,
                stack.name(),
                t(SchedConfig::S_LOC_W),
                t(SchedConfig::S_LOC_R),
                t(SchedConfig::P_LOC_W),
                t(SchedConfig::P_LOC_R),
                sw.best().config.label(),
            );
            winners.push(sw.best().config);
        }
        let agree = winners[0] == winners[1];
        println!(
            "    -> winners {} across stacks\n",
            if agree {
                "agree"
            } else {
                "differ (software-overhead effect)"
            }
        );
    }
    println!(
        "Paper §VII: \"We actually see similar trends with both NOVA and\n\
         NVStream for large objects, especially with GTC. However, NVStream\n\
         reduces the software I/O costs … which has an impact on the\n\
         observations made for workflows which perform I/O using many small\n\
         objects.\""
    );
}
