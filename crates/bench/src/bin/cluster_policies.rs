//! Compare the four campaign queue policies over a shared arrival stream.
//!
//! Serves the same mixed GTC/miniAMR Poisson stream — the paper's two
//! proxy applications, the workloads whose PMEM contention the device
//! model prices — over a 4-node cluster at three offered loads, under
//! every policy. The headline: once jobs queue, interference-aware
//! placement beats FCFS on mean bounded slowdown, because the classic
//! policies treat cores as the only resource while the real constraint
//! is the shared PMEM device.
//!
//! Everything here is deterministic (seeded streams, submission-order
//! reduction), so the table regenerates byte-identically.

use pmemflow_cluster::{
    all_policies, run_campaign_with_oracle, ArrivalSpec, CampaignConfig, Oracle,
};
use pmemflow_core::{map_ordered, ExecutionParams};

fn main() {
    let jobs = std::thread::available_parallelism().map_or(1, |n| n.get());
    let exec = ExecutionParams::default();
    let seed = 42;

    println!("CAMPAIGN POLICY COMPARISON — mixed GTC + miniAMR stream, 4 nodes, seed {seed}\n");

    // Offered load sweep: idle, loaded, saturated.
    let streams = [
        (
            "light  (rate 0.05/s)",
            "poisson:rate=0.05,n=200,mix=gtc+miniamr",
        ),
        (
            "heavy  (rate 0.5/s)",
            "poisson:rate=0.5,n=200,mix=gtc+miniamr",
        ),
        ("burst  (rate 2/s)", "poisson:rate=2,n=200,mix=gtc+miniamr"),
    ];

    let mut headline: Option<(f64, f64)> = None; // (fcfs, interference) at heavy load
    for (label, spec) in streams {
        let config = CampaignConfig {
            nodes: 4,
            arrivals: ArrivalSpec::parse(spec).expect("stream spec"),
            seed,
            exec: exec.clone(),
            ..CampaignConfig::default()
        };
        let oracle =
            Oracle::build(&config.arrivals.alphabet(), &config.exec, jobs).expect("oracle warm-up");
        let outcomes = map_ordered(all_policies(), jobs, |policy| {
            run_campaign_with_oracle(&config, policy.as_ref(), &oracle)
        });

        println!("{label}  — 200 arrivals");
        println!(
            "  {:<13} {:>10} {:>12} {:>11} {:>10} {:>9}",
            "policy", "makespan_s", "mean_wait_s", "mean_bsld", "max_bsld", "util%"
        );
        let mut fcfs_bsld = None;
        let mut intf_bsld = None;
        for outcome in outcomes {
            let o = outcome.expect("no panic").expect("campaign runs");
            let util = o.utilization();
            let mean_util = 100.0 * util.iter().sum::<f64>() / util.len() as f64;
            println!(
                "  {:<13} {:>10.1} {:>12.1} {:>11.2} {:>10.2} {:>9.0}",
                o.policy,
                o.makespan,
                o.mean_wait(),
                o.mean_bounded_slowdown(),
                o.max_bounded_slowdown(),
                mean_util
            );
            match o.policy.as_str() {
                "fcfs" => fcfs_bsld = Some(o.mean_bounded_slowdown()),
                "interference" => intf_bsld = Some(o.mean_bounded_slowdown()),
                _ => {}
            }
        }
        println!();
        if label.starts_with("heavy") {
            headline = fcfs_bsld.zip(intf_bsld);
        }
    }

    let (fcfs, intf) = headline.expect("heavy-load campaigns ran");
    println!(
        "headline: under load, interference-aware placement cuts mean bounded slowdown \
         {fcfs:.2} -> {intf:.2} ({:+.0}% vs FCFS)",
        100.0 * (intf - fcfs) / fcfs
    );
    assert!(
        intf < fcfs,
        "interference-aware ({intf:.3}) must beat FCFS ({fcfs:.3}) under load"
    );
}
