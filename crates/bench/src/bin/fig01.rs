//! Regenerate the paper's Fig. 1 (motivation): two miniAMR workflows that
//! share the same simulation but differ in the analytics kernel prefer
//! different configurations — tuning for one component is not enough.
//!
//! The paper shows normalized runtime of miniAMR+ReadOnly and
//! miniAMR+MatrixMult under two fixed configurations: a configuration tuned
//! for one workflow loses 1.4–1.6× on the other.

use pmemflow_core::{sweep, ExecutionParams, SchedConfig};
use pmemflow_workloads::{miniamr_matmul, miniamr_readonly};

fn main() {
    let params = ExecutionParams::default();
    let ranks = 16;
    let ro = sweep(&miniamr_readonly(ranks), &params).unwrap();
    let mm = sweep(&miniamr_matmul(ranks), &params).unwrap();

    println!(
        "Fig. 1: miniAMR workflows at {ranks} ranks, runtime normalized to each workflow's best\n"
    );
    println!("{:<22} {:>10} {:>10}", "config", "+ReadOnly", "+MatrixMult");
    for config in SchedConfig::ALL {
        println!(
            "{:<22} {:>9.2}x {:>9.2}x",
            config.label(),
            ro.normalized(config),
            mm.normalized(config)
        );
    }
    let ro_best = ro.best().config;
    let mm_best = mm.best().config;
    println!(
        "\nbest for +ReadOnly: {} — best for +MatrixMult: {}",
        ro_best, mm_best
    );
    println!(
        "running +MatrixMult in +ReadOnly's best configuration costs {:.2}x;",
        mm.normalized(ro_best)
    );
    println!(
        "running +ReadOnly in +MatrixMult's best configuration costs {:.2}x.",
        ro.normalized(mm_best)
    );
    println!(
        "\nPaper: \"a change in the analytics kernel can result in a 1.4-1.6x\n\
         loss in performance, unless some other parameters of how the\n\
         workflow or its use of the PMEM resources are changed\" (§I)."
    );
}
