//! Regenerate the paper's Fig. 2: the considered workflow deployment
//! alternatives, rendered from the actual platform/pinning machinery (the
//! same code the executor uses), so the diagram is guaranteed to match
//! the implementation.

use pmemflow_core::SchedConfig;
use pmemflow_platform::{locality_of, Node, PinPolicy, Pinning, SocketId};

fn main() {
    let node = Node::paper_testbed();
    let ranks = 8;
    println!(
        "Fig. 2: deployment alternatives on a dual-socket node \
         ({} cores/socket, PMEM on socket 0)\n",
        node.cores_per_socket()
    );
    for config in SchedConfig::ALL {
        let writer_socket = match config.placement {
            pmemflow_core::Placement::LocW => SocketId(0),
            pmemflow_core::Placement::LocR => SocketId(1),
        };
        let reader_socket = writer_socket.peer();
        let wp = Pinning::new(&node, PinPolicy::Socket(writer_socket), ranks).unwrap();
        let rp = Pinning::new(&node, PinPolicy::Socket(reader_socket), ranks).unwrap();
        println!("{} ({:?} execution):", config, config.mode);
        println!(
            "  socket 0 [PMEM channel here]: {}",
            if writer_socket == SocketId(0) {
                format!("simulation ranks on cores {:?}..", wp.cores[0].0)
            } else {
                format!("analytics ranks on cores {:?}..", rp.cores[0].0)
            }
        );
        println!(
            "  socket 1                    : {}",
            if writer_socket == SocketId(1) {
                format!("simulation ranks on cores {:?}..", wp.cores[0].0)
            } else {
                format!("analytics ranks on cores {:?}..", rp.cores[0].0)
            }
        );
        println!(
            "  simulation writes are {:?}, analytics reads are {:?}\n",
            locality_of(writer_socket, SocketId(0)),
            locality_of(reader_socket, SocketId(0)),
        );
    }
    println!(
        "Serial configurations schedule the analytics component after the\n\
         simulation completes; parallel configurations pipeline them with\n\
         overlapping PMEM access (§II-A)."
    );
}
