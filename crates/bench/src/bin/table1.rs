//! Regenerate the paper's Table I: the scheduler configuration space.

use pmemflow_core::{ExecMode, SchedConfig};

fn main() {
    println!("TABLE I: Summary of configurations\n");
    println!("{:<14} {:<16} Placement", "Config label", "Execution Mode");
    for config in SchedConfig::ALL {
        let mode = match config.mode {
            ExecMode::Serial => "Serial",
            ExecMode::Parallel => "Parallel",
        };
        let placement = match config.placement {
            pmemflow_core::Placement::LocW => "local-write-remote-read",
            pmemflow_core::Placement::LocR => "remote-write-local-read",
        };
        println!("{:<14} {:<16} {}", config.label(), mode, placement);
    }
}
