//! Regenerate the paper's Fig. 3: the workflow parameter space.
//!
//! The radar chart's axes — simulation I/O index, analytics I/O index,
//! object size, concurrency — plus the scheduling decision, for the nine
//! application-kernel workflows (the paper omits the microbenchmarks from
//! the figure for legibility; we print all 18).

use pmemflow_core::ExecutionParams;
use pmemflow_sched::characterize;
use pmemflow_workloads::paper_suite;

fn main() {
    let params = ExecutionParams::default();
    println!("Fig. 3: workflow parameter space\n");
    println!(
        "{:<20} {:>5}  {:>10} {:>10}  {:>9}  {:>11}  {:>6}",
        "workload", "ranks", "sim-IOidx", "ana-IOidx", "obj-size", "n_eff(dev)", "paper"
    );
    for entry in paper_suite() {
        let p = characterize(&entry.spec, &params).expect("characterization runs");
        println!(
            "{:<20} {:>5}  {:>10.2} {:>10.2}  {:>9}  {:>11.1}  {:>6}",
            entry.family.name(),
            entry.ranks,
            p.sim_io_index,
            p.analytics_io_index,
            match p.object_size {
                pmemflow_workloads::SizeClass::Small => "small",
                pmemflow_workloads::SizeClass::Large => "large",
            },
            p.combined_device_concurrency(),
            entry.paper_winner,
        );
    }
    println!(
        "\nNo single axis determines the scheduling decision: every level of\n\
         every axis appears with at least two different optimal configs (§IV-C)."
    );
}
