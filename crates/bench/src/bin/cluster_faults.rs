//! Campaign policies under a dense, seeded failure trace.
//!
//! Replays the same mixed GTC/miniAMR arrival stream over a 4-node
//! cluster whose nodes crash and recover on a seeded alternating-renewal
//! process, degrade transiently (a neighbour hammering the shared PMEM
//! DIMMs), and whose jobs carry an independent per-attempt failure
//! probability — then compares every queue policy twice: **without**
//! checkpointing (a crash loses the whole attempt) and **with** periodic
//! PMEM checkpoints priced through the iostack cost model (a crash loses
//! only the progress since the last snapshot, but every interval pays the
//! snapshot write tax).
//!
//! The headline is the paper's durability argument made quantitative:
//! checkpointing to the PMEM tier trades a small, bounded overhead for a
//! large cut in lost work, and interference-aware placement keeps its
//! bounded-slowdown lead even while nodes are flapping.
//!
//! Everything is seeded (fault plan, arrivals, job-failure draws), so the
//! table regenerates byte-identically.
//!
//! ```text
//! cluster_faults [--jobs N]
//! ```

use pmemflow_cluster::{
    all_policies, run_campaign_with_oracle, ArrivalSpec, CampaignConfig, CampaignOutcome,
    CheckpointSpec, FaultSpec, Oracle,
};
use pmemflow_core::{map_ordered, ExecutionParams};

/// A dense failure trace: mean node up-time shorter than the campaign,
/// frequent transient degradation, and a visible per-attempt job-failure
/// probability. Dense enough that every policy takes real damage.
fn faults() -> FaultSpec {
    FaultSpec {
        seed: 1234,
        mtbf: 150.0,
        repair: 30.0,
        degrade_mtbf: 300.0,
        degrade_duration: 60.0,
        degrade_factor: 2.0,
        job_fail_prob: 0.05,
    }
}

fn config(checkpoint: CheckpointSpec) -> CampaignConfig {
    CampaignConfig {
        nodes: 4,
        arrivals: ArrivalSpec::parse("poisson:rate=0.5,n=200,mix=gtc+miniamr").expect("stream"),
        seed: 42,
        exec: ExecutionParams::default(),
        faults: faults(),
        checkpoint,
    }
}

fn print_table(label: &str, outcomes: &[CampaignOutcome]) {
    println!("{label}");
    println!(
        "  {:<13} {:>5} {:>6} {:>8} {:>9} {:>8} {:>10} {:>9} {:>8}",
        "policy",
        "done",
        "failed",
        "restarts",
        "lost_s",
        "ckpt_s",
        "makespan_s",
        "mean_bsld",
        "max_bsld"
    );
    for o in outcomes {
        println!(
            "  {:<13} {:>5} {:>6} {:>8} {:>9.0} {:>8.0} {:>10.1} {:>9.2} {:>8.2}",
            o.policy,
            o.completed(),
            o.failed(),
            o.total_restarts(),
            o.total_lost_work(),
            o.total_ckpt_overhead(),
            o.makespan,
            o.mean_bounded_slowdown(),
            o.max_bounded_slowdown(),
        );
    }
    println!();
}

fn main() {
    let jobs = std::env::args()
        .skip_while(|a| a != "--jobs")
        .nth(1)
        .map(|v| v.parse().expect("--jobs expects a count"))
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));

    println!("CAMPAIGN POLICIES UNDER FAILURES — 4 nodes, 200 arrivals, fault seed 1234\n");
    println!(
        "fault plan: node MTBF 150s / repair 30s, PMEM degradation every ~300s for 60s (2x),\n\
         job-attempt failure probability 5%, retry budget 3 with exponential backoff\n"
    );

    let bare = config(CheckpointSpec {
        interval: 0.0,
        ..CheckpointSpec::default()
    });
    // Jobs in this stream run seconds, not hours, so the checkpoint
    // interval is scaled to match: snapshot every 5s of progress.
    let ckpt = config(CheckpointSpec {
        interval: 5.0,
        ..CheckpointSpec::default()
    });

    let oracle = Oracle::build(&bare.arrivals.alphabet(), &bare.exec, jobs).expect("oracle");
    let run = |cfg: &CampaignConfig| {
        map_ordered(all_policies(), jobs, |policy| {
            run_campaign_with_oracle(cfg, policy.as_ref(), &oracle)
        })
        .into_iter()
        .map(|o| o.expect("no panic").expect("campaign runs"))
        .collect::<Vec<_>>()
    };

    let bare_out = run(&bare);
    let ckpt_out = run(&ckpt);

    print_table(
        "no checkpoints — a crash loses the whole attempt",
        &bare_out,
    );
    print_table(
        "PMEM checkpoints every 5s — a crash resumes from the last snapshot",
        &ckpt_out,
    );

    // Headline 1: checkpointing cuts lost work for every policy.
    let lost = |outs: &[CampaignOutcome]| outs.iter().map(|o| o.total_lost_work()).sum::<f64>();
    let (bare_lost, ckpt_lost) = (lost(&bare_out), lost(&ckpt_out));
    let tax = ckpt_out
        .iter()
        .map(|o| o.total_ckpt_overhead())
        .sum::<f64>();
    println!(
        "headline: 5s PMEM checkpoints cut lost work {bare_lost:.0}s -> {ckpt_lost:.0}s \
         ({:+.0}%) for a {tax:.0}s snapshot tax across all policies",
        100.0 * (ckpt_lost - bare_lost) / bare_lost
    );
    assert!(
        ckpt_lost < bare_lost,
        "checkpointing must reduce lost work ({ckpt_lost:.1} vs {bare_lost:.1})"
    );

    // Headline 2: interference-aware placement still beats FCFS on
    // bounded slowdown while nodes are flapping.
    let bsld = |outs: &[CampaignOutcome], name: &str| {
        outs.iter()
            .find(|o| o.policy == name)
            .map(|o| o.mean_bounded_slowdown())
            .expect("policy present")
    };
    let (fcfs, intf) = (bsld(&ckpt_out, "fcfs"), bsld(&ckpt_out, "interference"));
    println!(
        "headline: under failures, interference-aware placement holds mean bounded slowdown \
         {fcfs:.2} -> {intf:.2} ({:+.0}% vs FCFS)",
        100.0 * (intf - fcfs) / fcfs
    );

    // Accounting invariant: every arrival either completed or exhausted
    // its retry budget — nothing vanishes.
    for o in bare_out.iter().chain(&ckpt_out) {
        assert_eq!(
            o.completed() + o.failed(),
            o.jobs.len(),
            "{}: jobs must complete or fail, never vanish",
            o.policy
        );
    }
}
