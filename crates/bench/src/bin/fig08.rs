//! Regenerate the paper's Fig. 08 panels (runtime of the
//! workload family under all four Table I configurations at 8/16/24
//! ranks, serial runs split into writer/reader phases).

use pmemflow_bench::figure_for_family;
use pmemflow_core::ExecutionParams;
use pmemflow_workloads::Family;

fn main() {
    print!(
        "{}",
        figure_for_family(Family::MiniAmrReadOnly, &ExecutionParams::default())
    );
}
