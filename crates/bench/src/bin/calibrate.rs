//! Calibration harness: run the 18-workload suite and compare model
//! winners against the paper's Table II.

use pmemflow_bench::{run_suite, suite_table};
use pmemflow_core::ExecutionParams;

fn main() {
    let params = ExecutionParams::default();
    let results = run_suite(&params);
    print!("{}", suite_table(&results));
}
