//! Ablation study: which model mechanisms carry the paper's results?
//!
//! DESIGN.md calls out the load-bearing modeling decisions; this binary
//! removes them one at a time and reports how Table II agreement and the
//! headline misconfiguration loss change:
//!
//! * **symmetric device** — no locality or direction asymmetry at all:
//!   every placement effect must vanish.
//! * **no remote-write collapse** — remote writes behave like local ones.
//! * **no mixing penalty** — reads and writes time-share perfectly.
//! * **no small-access penalty** — granularity has no device effect.
//! * **no duty-cycle modeling** — software overhead still throttles each
//!   rank, but the device is charged as if every rank were always on it
//!   (approximated by zeroing the software time seen by the allocator).
//! * **lockstep ranks** — no stagger.

use pmemflow_bench::run_suite;
use pmemflow_core::ExecutionParams;
use pmemflow_pmem::{Curve, DeviceProfile, GB};

struct Variant {
    name: &'static str,
    params: ExecutionParams,
}

fn variants() -> Vec<Variant> {
    let base = ExecutionParams::default();

    let mut no_collapse = base.clone();
    no_collapse.profile.remote_write_bw = no_collapse.profile.local_write_bw.clone();

    let mut no_mix = base.clone();
    no_mix.profile.mix_budget = Curve::from_points(&[(0.0, 1.0)]);
    no_mix.profile.small_mix_budget = Curve::from_points(&[(0.0, 1.0)]);

    let mut no_small = base.clone();
    no_small.profile.small_access_efficiency = 1.0;
    no_small.profile.small_mix_budget = Curve::from_points(&[(0.0, 1.0)]);

    let mut lockstep = base.clone();
    lockstep.stagger = 0.0;

    let mut symmetric = base.clone();
    symmetric.profile = DeviceProfile::symmetric_ideal(13.9 * GB);

    vec![
        Variant {
            name: "full model",
            params: base,
        },
        Variant {
            name: "no remote-write collapse",
            params: no_collapse,
        },
        Variant {
            name: "no mixing penalty",
            params: no_mix,
        },
        Variant {
            name: "no small-access penalty",
            params: no_small,
        },
        Variant {
            name: "lockstep ranks (no stagger)",
            params: lockstep,
        },
        Variant {
            name: "symmetric ideal device",
            params: symmetric,
        },
    ]
}

fn main() {
    println!(
        "{:<30} {:>14} {:>18} {:>16}",
        "variant", "Table II agree", "worst misconfig %", "winners seen"
    );
    for v in variants() {
        let results = run_suite(&v.params);
        let agree = results.iter().filter(|r| r.matches_paper()).count();
        let worst = results
            .iter()
            .map(|r| r.sweep.worst_case_loss_percent())
            .fold(0.0f64, f64::max);
        let mut winners: Vec<&str> = results
            .iter()
            .map(|r| r.sweep.best().config.label())
            .collect();
        winners.sort_unstable();
        winners.dedup();
        println!(
            "{:<30} {:>11}/18 {:>17.0}% {:>16}",
            v.name,
            agree,
            worst,
            winners.len(),
        );
    }
    println!(
        "\nReading: the full model reproduces the paper's winners; removing\n\
         the remote-write collapse or the device asymmetries erases the\n\
         placement dimension (fewer distinct winners, lower misconfiguration\n\
         cost), and removing the mixing penalty erases the serial-vs-parallel\n\
         dimension — the two effects §VI builds its recommendations on."
    );
}
