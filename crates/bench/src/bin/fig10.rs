//! Regenerate the paper's Fig. 10: workflow runtimes normalized to the
//! best configuration, for the four application workflow families —
//! demonstrating that no single configuration is optimal and quantifying
//! the cost of misconfiguration (up to ~70%, §VII).

use pmemflow_bench::run_suite;
use pmemflow_core::{ExecutionParams, SchedConfig};
use pmemflow_workloads::Family;

fn main() {
    let params = ExecutionParams::default();
    let results = run_suite(&params);
    let panels = [
        ("10a", Family::GtcReadOnly),
        ("10b", Family::GtcMatMul),
        ("10c", Family::MiniAmrReadOnly),
        ("10d", Family::MiniAmrMatMul),
    ];
    let mut worst_loss: f64 = 0.0;
    for (panel, family) in panels {
        println!(
            "(Fig. {panel}) {} — normalized runtime (1.00 = best)",
            family.name()
        );
        println!(
            "  {:<6} {:>8} {:>8} {:>8} {:>8}",
            "ranks", "S-LocW", "S-LocR", "P-LocW", "P-LocR"
        );
        for r in results.iter().filter(|r| r.entry.family == family) {
            let n = |c: SchedConfig| r.sweep.normalized(c);
            println!(
                "  {:<6} {:>8.2} {:>8.2} {:>8.2} {:>8.2}   best={} paper={}",
                r.entry.ranks,
                n(SchedConfig::S_LOC_W),
                n(SchedConfig::S_LOC_R),
                n(SchedConfig::P_LOC_W),
                n(SchedConfig::P_LOC_R),
                r.model_winner().label(),
                r.entry.paper_winner,
            );
            worst_loss = worst_loss.max(r.sweep.worst_case_loss_percent());
        }
        println!();
    }
    println!(
        "worst-case misconfiguration loss across the app suite: {worst_loss:.0}% \
         (paper §VII/§X: up to ~70%)."
    );
}
