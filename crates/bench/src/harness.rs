//! A minimal wall-clock micro-benchmark harness.
//!
//! The workspace builds offline with no external crates, so the bench
//! targets use this dependency-free harness instead of Criterion: each
//! routine is warmed up, then timed over enough iterations to fill a fixed
//! measurement window, and the per-iteration time is printed in a
//! `name ... ns/iter` format. Statistical rigor is deliberately modest —
//! these benches exist to catch order-of-magnitude regressions and to
//! document how the substrates scale, not to resolve single-percent deltas.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target wall-clock time spent measuring one routine.
const MEASURE_WINDOW: Duration = Duration::from_millis(300);
/// Target wall-clock time spent warming one routine up.
const WARMUP_WINDOW: Duration = Duration::from_millis(50);

/// Measured result of one routine.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Mean nanoseconds per iteration over the measurement window.
    pub ns_per_iter: f64,
    /// Iterations executed inside the window.
    pub iters: u64,
}

fn run_window<F: FnMut()>(window: Duration, f: &mut F) -> Measurement {
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed() < window {
        f();
        iters += 1;
    }
    let elapsed = start.elapsed();
    Measurement {
        ns_per_iter: elapsed.as_nanos() as f64 / iters.max(1) as f64,
        iters,
    }
}

/// Time `f` and print `name: X ns/iter`. Returns the measurement so
/// callers can derive throughputs.
pub fn bench<F: FnMut()>(name: &str, mut f: F) -> Measurement {
    run_window(WARMUP_WINDOW, &mut f);
    let m = run_window(MEASURE_WINDOW, &mut f);
    println!(
        "{name:<44} {:>12.0} ns/iter  ({} iters)",
        m.ns_per_iter, m.iters
    );
    m
}

/// Time `routine` over values produced by `setup`, excluding setup cost.
/// Used where the routine consumes its input (e.g. crash-recovery).
pub fn bench_with_setup<T, S, R, O>(name: &str, mut setup: S, mut routine: R) -> Measurement
where
    S: FnMut() -> T,
    R: FnMut(T) -> O,
{
    // Warm up (setup + routine together).
    let warm_start = Instant::now();
    while warm_start.elapsed() < WARMUP_WINDOW {
        black_box(routine(setup()));
    }
    let mut total = Duration::ZERO;
    let mut iters = 0u64;
    while total < MEASURE_WINDOW {
        let input = setup();
        let t0 = Instant::now();
        black_box(routine(input));
        total += t0.elapsed();
        iters += 1;
    }
    let m = Measurement {
        ns_per_iter: total.as_nanos() as f64 / iters.max(1) as f64,
        iters,
    };
    println!(
        "{name:<44} {:>12.0} ns/iter  ({} iters)",
        m.ns_per_iter, m.iters
    );
    m
}

/// Print a `GB/s`-style throughput line for a byte-moving measurement.
pub fn report_throughput(name: &str, bytes_per_iter: u64, m: Measurement) {
    let gbps = bytes_per_iter as f64 / m.ns_per_iter;
    println!("{name:<44} {gbps:>12.2} GB/s");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_something() {
        let mut x = 0u64;
        let m = run_window(Duration::from_millis(5), &mut || {
            x = x.wrapping_add(black_box(1));
        });
        assert!(m.iters > 0);
        assert!(m.ns_per_iter > 0.0);
    }

    #[test]
    fn setup_cost_excluded() {
        // A deliberately slow setup with a trivial routine: per-iter cost
        // must reflect the routine, not the setup.
        let m = {
            let mut total = Duration::ZERO;
            let mut iters = 0u64;
            while total < Duration::from_millis(5) {
                let v = vec![0u8; 1 << 16];
                let t0 = Instant::now();
                black_box(v.len());
                total += t0.elapsed();
                iters += 1;
            }
            Measurement {
                ns_per_iter: total.as_nanos() as f64 / iters as f64,
                iters,
            }
        };
        assert!(
            m.ns_per_iter < 10_000.0,
            "routine cost {} ns",
            m.ns_per_iter
        );
    }
}
