//! Benchmarks of the discrete-event engine itself: how fast the simulator
//! turns workflow specifications into timelines. Relevant because the
//! model-driven scheduler runs four simulations per decision, the adaptive
//! benches run hundreds, and the suite runner fans 144 of them out at once.

use pmemflow_bench::harness::bench;
use pmemflow_core::{execute, sweep, ExecutionParams, SchedConfig};
use pmemflow_workloads::{gtc_matmul, micro_2kb, micro_64mb};

fn main() {
    let params = ExecutionParams::default();
    for (name, spec) in [
        ("execute/micro-64MB@24", micro_64mb(24)),
        ("execute/micro-2KB@24", micro_2kb(24)),
        ("execute/gtc+matmult@16", gtc_matmul(16)),
    ] {
        bench(name, || {
            execute(&spec, SchedConfig::P_LOC_R, &params).unwrap();
        });
    }

    let spec = micro_64mb(24);
    bench("sweep/micro-64MB@24 (4 configs)", || {
        sweep(&spec, &params).unwrap();
    });

    for ranks in [8usize, 16, 24] {
        let spec = micro_64mb(ranks);
        bench(&format!("execute-scaling/micro-64MB@{ranks}"), || {
            execute(&spec, SchedConfig::P_LOC_R, &params).unwrap();
        });
    }
}
