//! Criterion benchmarks of the discrete-event engine itself: how fast the
//! simulator turns workflow specifications into timelines. Relevant
//! because the model-driven scheduler runs four simulations per decision
//! and the adaptive benches run hundreds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pmemflow_core::{execute, sweep, ExecutionParams, SchedConfig};
use pmemflow_workloads::{gtc_matmul, micro_2kb, micro_64mb};

fn bench_single_execution(c: &mut Criterion) {
    let params = ExecutionParams::default();
    let mut group = c.benchmark_group("execute");
    group.sample_size(10);
    for (name, spec) in [
        ("micro-64MB@24", micro_64mb(24)),
        ("micro-2KB@24", micro_2kb(24)),
        ("gtc+matmult@16", gtc_matmul(16)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &spec, |b, spec| {
            b.iter(|| execute(spec, SchedConfig::P_LOC_R, &params).unwrap());
        });
    }
    group.finish();
}

fn bench_full_sweep(c: &mut Criterion) {
    let params = ExecutionParams::default();
    let spec = micro_64mb(24);
    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);
    group.bench_function("micro-64MB@24 (4 configs)", |b| {
        b.iter(|| sweep(&spec, &params).unwrap());
    });
    group.finish();
}

fn bench_scaling_with_ranks(c: &mut Criterion) {
    let params = ExecutionParams::default();
    let mut group = c.benchmark_group("execute-scaling");
    group.sample_size(10);
    for ranks in [4usize, 8, 16, 24] {
        let spec = micro_64mb(ranks);
        group.bench_with_input(BenchmarkId::from_parameter(ranks), &spec, |b, spec| {
            b.iter(|| execute(spec, SchedConfig::P_LOC_W, &params).unwrap());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_single_execution,
    bench_full_sweep,
    bench_scaling_with_ranks
);
criterion_main!(benches);
