//! Benchmarks of the functional I/O stacks: put/get throughput and
//! crash-recovery cost for the NOVA-like filesystem and the NVStream-like
//! store over the simulated PMEM region.

use pmemflow_bench::harness::{bench, bench_with_setup, report_throughput};
use pmemflow_iostack::{NovaFs, NvStore, ObjectStore};
use pmemflow_pmem::{InterleaveGeometry, PmemRegion};
use std::hint::black_box;

fn region(len: usize) -> PmemRegion {
    PmemRegion::new(
        len,
        InterleaveGeometry {
            dimms: 6,
            chunk_bytes: 4096,
        },
    )
}

fn main() {
    // put: 16 versions of one stream per iteration, fresh store each time.
    for &size in &[2048usize, 64 * 1024, 1 << 20] {
        let payload = vec![0x5au8; size];
        let m = bench_with_setup(
            &format!("put/nvstream/{size}"),
            || NvStore::format(region(64 << 20)).unwrap(),
            |mut s| {
                for v in 1..=16u64 {
                    s.put("bench", v, &payload).unwrap();
                }
                s
            },
        );
        report_throughput(&format!("put/nvstream/{size}"), 16 * size as u64, m);
        let m = bench_with_setup(
            &format!("put/nova/{size}"),
            || NovaFs::format(region(64 << 20), 16, 1 << 20).unwrap(),
            |mut s| {
                for v in 1..=16u64 {
                    s.put("bench", v, &payload).unwrap();
                }
                s
            },
        );
        report_throughput(&format!("put/nova/{size}"), 16 * size as u64, m);
    }

    // get: read one committed 64 KiB version.
    let payload = vec![0xa5u8; 64 * 1024];
    let mut nvs = NvStore::format(region(16 << 20)).unwrap();
    let mut nova = NovaFs::format(region(16 << 20), 16, 1 << 20).unwrap();
    for v in 1..=8u64 {
        nvs.put("bench", v, &payload).unwrap();
        nova.put("bench", v, &payload).unwrap();
    }
    let m = bench("get-64KiB/nvstream", || {
        black_box(nvs.get("bench", 5).unwrap());
    });
    report_throughput("get-64KiB/nvstream", payload.len() as u64, m);
    let m = bench("get-64KiB/nova", || {
        black_box(nova.get("bench", 5).unwrap());
    });
    report_throughput("get-64KiB/nova", payload.len() as u64, m);

    // recovery: 256 committed 4 KiB objects, crash, recover.
    bench_with_setup(
        "recovery-256-objects/nvstream",
        || {
            let mut s = NvStore::format(region(32 << 20)).unwrap();
            for v in 1..=256u64 {
                s.put("stream", v, &vec![1u8; 4096]).unwrap();
            }
            let mut r = s.into_region();
            r.crash();
            r
        },
        |r| NvStore::recover(r).unwrap(),
    );
    bench_with_setup(
        "recovery-256-objects/nova",
        || {
            let mut s = NovaFs::format(region(32 << 20), 16, 1 << 20).unwrap();
            for v in 1..=256u64 {
                s.put("stream", v, &vec![1u8; 4096]).unwrap();
            }
            let mut r = s.into_region();
            r.crash();
            r
        },
        |r| NovaFs::recover(r).unwrap(),
    );
}
