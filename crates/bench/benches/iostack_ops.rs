//! Criterion benchmarks of the functional I/O stacks: put/get throughput
//! and crash-recovery cost for the NOVA-like filesystem and the
//! NVStream-like store over the simulated PMEM region.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pmemflow_iostack::{NovaFs, NvStore, ObjectStore};
use pmemflow_pmem::{InterleaveGeometry, PmemRegion};

fn region(len: usize) -> PmemRegion {
    PmemRegion::new(
        len,
        InterleaveGeometry {
            dimms: 6,
            chunk_bytes: 4096,
        },
    )
}

fn bench_put(c: &mut Criterion) {
    let mut group = c.benchmark_group("put");
    group.sample_size(10);
    for &size in &[2048usize, 64 * 1024, 1 << 20] {
        let payload = vec![0x5au8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("nvstream", size), &payload, |b, p| {
            b.iter_batched(
                || NvStore::format(region(64 << 20)).unwrap(),
                |mut s| {
                    for v in 1..=16u64 {
                        s.put("bench", v, p).unwrap();
                    }
                    s
                },
                criterion::BatchSize::LargeInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("nova", size), &payload, |b, p| {
            b.iter_batched(
                || NovaFs::format(region(64 << 20), 16, 1 << 20).unwrap(),
                |mut s| {
                    for v in 1..=16u64 {
                        s.put("bench", v, p).unwrap();
                    }
                    s
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_get(c: &mut Criterion) {
    let payload = vec![0xa5u8; 64 * 1024];
    let mut nvs = NvStore::format(region(16 << 20)).unwrap();
    let mut nova = NovaFs::format(region(16 << 20), 16, 1 << 20).unwrap();
    for v in 1..=8u64 {
        nvs.put("bench", v, &payload).unwrap();
        nova.put("bench", v, &payload).unwrap();
    }
    let mut group = c.benchmark_group("get-64KiB");
    group.throughput(Throughput::Bytes(payload.len() as u64));
    group.bench_function("nvstream", |b| {
        b.iter(|| nvs.get("bench", 5).unwrap());
    });
    group.bench_function("nova", |b| {
        b.iter(|| nova.get("bench", 5).unwrap());
    });
    group.finish();
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("recovery-256-objects");
    group.sample_size(10);
    group.bench_function("nvstream", |b| {
        b.iter_batched(
            || {
                let mut s = NvStore::format(region(32 << 20)).unwrap();
                for v in 1..=256u64 {
                    s.put("stream", v, &vec![1u8; 4096]).unwrap();
                }
                let mut r = s.into_region();
                r.crash();
                r
            },
            |r| NvStore::recover(r).unwrap(),
            criterion::BatchSize::LargeInput,
        );
    });
    group.bench_function("nova", |b| {
        b.iter_batched(
            || {
                let mut s = NovaFs::format(region(32 << 20), 16, 1 << 20).unwrap();
                for v in 1..=256u64 {
                    s.put("stream", v, &vec![1u8; 4096]).unwrap();
                }
                let mut r = s.into_region();
                r.crash();
                r
            },
            |r| NovaFs::recover(r).unwrap(),
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_put, bench_get, bench_recovery);
criterion_main!(benches);
