//! Criterion benchmarks of the real proxy compute kernels — the
//! measurements behind the virtual `compute_per_iteration` constants
//! (run these on target hardware and scale the workload specs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pmemflow_workloads::kernels::{matmul, pic_step, stencil7, Particle};

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &n in &[16usize, 64, 128] {
        let a: Vec<f64> = (0..n * n).map(|i| (i % 97) as f64).collect();
        let b_: Vec<f64> = (0..n * n).map(|i| (i % 89) as f64).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, &n| {
            let mut out = vec![0.0; n * n];
            bch.iter(|| matmul(n, &a, &b_, &mut out));
        });
    }
    group.finish();
}

fn bench_stencil(c: &mut Criterion) {
    let (nx, ny, nz) = (32, 32, 32);
    let src = vec![1.0; nx * ny * nz];
    let mut dst = vec![0.0; nx * ny * nz];
    c.bench_function("stencil7/32^3", |b| {
        b.iter(|| stencil7(nx, ny, nz, &src, &mut dst));
    });
}

fn bench_pic(c: &mut Criterion) {
    let mut particles: Vec<Particle> = (0..10_000)
        .map(|i| Particle {
            x: (i as f64 * 0.618_033_988) % 1.0,
            v: 0.0,
            w: 1.0,
        })
        .collect();
    let mut grid = vec![0.0; 256];
    c.bench_function("pic_step/10k-particles", |b| {
        b.iter(|| pic_step(&mut particles, &mut grid, 0.01));
    });
}

criterion_group!(benches, bench_matmul, bench_stencil, bench_pic);
criterion_main!(benches);
