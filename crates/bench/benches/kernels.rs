//! Benchmarks of the real proxy compute kernels — the measurements behind
//! the virtual `compute_per_iteration` constants (run these on target
//! hardware and scale the workload specs).

use pmemflow_bench::harness::bench;
use pmemflow_workloads::kernels::{matmul, pic_step, stencil7, Particle};
use std::hint::black_box;

fn main() {
    for &n in &[16usize, 64, 128] {
        let a: Vec<f64> = (0..n * n).map(|i| (i % 97) as f64).collect();
        let b: Vec<f64> = (0..n * n).map(|i| (i % 89) as f64).collect();
        let mut out = vec![0.0; n * n];
        bench(&format!("matmul/{n}"), || {
            matmul(n, black_box(&a), black_box(&b), &mut out);
        });
    }

    let (nx, ny, nz) = (32, 32, 32);
    let src = vec![1.0; nx * ny * nz];
    let mut dst = vec![0.0; nx * ny * nz];
    bench("stencil7/32^3", || {
        stencil7(nx, ny, nz, black_box(&src), &mut dst);
    });

    let mut particles: Vec<Particle> = (0..10_000)
        .map(|i| Particle {
            x: (i as f64 * 0.618_033_988) % 1.0,
            v: 0.0,
            w: 1.0,
        })
        .collect();
    let mut grid = vec![0.0; 256];
    bench("pic_step/10k-particles", || {
        pic_step(&mut particles, &mut grid, 0.01);
    });
}
