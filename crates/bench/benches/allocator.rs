//! Criterion benchmarks of the Optane rate allocator — the innermost loop
//! of the fluid engine (called on every flow arrival/departure).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pmemflow_des::{Direction, FlowAttrs, FlowView, Locality, RateAllocator};
use pmemflow_pmem::{DeviceProfile, OptaneAllocator};

fn flows(n: usize) -> Vec<FlowView> {
    let p = DeviceProfile::optane_gen1();
    (0..n)
        .map(|i| {
            let dir = if i % 2 == 0 { Direction::Write } else { Direction::Read };
            let loc = if i % 3 == 0 { Locality::Remote } else { Locality::Local };
            let access = if i % 2 == 0 { 2048 } else { 64 << 20 };
            FlowView {
                attrs: FlowAttrs {
                    direction: dir,
                    locality: loc,
                    access_bytes: access,
                    sw_time_per_byte: 1e-10 * (i % 5) as f64,
                    peak_device_rate: p.single_thread_rate(dir, loc, access),
                },
                remaining: 1e9,
            }
        })
        .collect()
}

fn bench_allocate(c: &mut Criterion) {
    let alloc = OptaneAllocator::new(DeviceProfile::optane_gen1());
    let mut group = c.benchmark_group("allocate");
    for n in [1usize, 8, 16, 48] {
        let fs = flows(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &fs, |b, fs| {
            b.iter(|| alloc.allocate(fs));
        });
    }
    group.finish();
}

fn bench_water_fill(c: &mut Criterion) {
    let caps: Vec<f64> = (0..48).map(|i| 1.0 + (i % 7) as f64).collect();
    c.bench_function("water_fill/48", |b| {
        b.iter(|| pmemflow_des::water_fill(&caps, 20.0));
    });
}

criterion_group!(benches, bench_allocate, bench_water_fill);
criterion_main!(benches);
