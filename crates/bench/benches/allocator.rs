//! Benchmarks of the Optane rate allocator — the innermost loop of the
//! fluid engine (called on every flow arrival/departure).

use pmemflow_bench::harness::bench;
use pmemflow_des::{Direction, FlowAttrs, FlowView, Locality, RateAllocator};
use pmemflow_pmem::{DeviceProfile, OptaneAllocator};
use std::hint::black_box;

fn flows(n: usize) -> Vec<FlowView> {
    let p = DeviceProfile::optane_gen1();
    (0..n)
        .map(|i| {
            let dir = if i % 2 == 0 {
                Direction::Write
            } else {
                Direction::Read
            };
            let loc = if i % 3 == 0 {
                Locality::Remote
            } else {
                Locality::Local
            };
            let access = if i % 2 == 0 { 2048 } else { 64 << 20 };
            FlowView {
                attrs: FlowAttrs {
                    direction: dir,
                    locality: loc,
                    access_bytes: access,
                    sw_time_per_byte: 1e-10 * (i % 5) as f64,
                    peak_device_rate: p.single_thread_rate(dir, loc, access),
                },
                remaining: 1e9,
            }
        })
        .collect()
}

fn main() {
    let alloc = OptaneAllocator::new(DeviceProfile::optane_gen1());
    for n in [1usize, 8, 16, 48] {
        let fs = flows(n);
        bench(&format!("allocate/{n}"), || {
            black_box(alloc.allocate(black_box(&fs)));
        });
    }

    let caps: Vec<f64> = (0..48).map(|i| 1.0 + (i % 7) as f64).collect();
    bench("water_fill/48", || {
        black_box(pmemflow_des::water_fill(black_box(&caps), 20.0));
    });
}
