//! Invariants of sweeps and metrics that must hold for every workload,
//! checked over a seeded random sample of rank counts (fixed seed,
//! reproducible failures).

use pmemflow_core::{sweep, ExecMode, ExecutionParams, SchedConfig};
use pmemflow_des::rng::SplitMix64;
use pmemflow_workloads::{micro_2kb, micro_64mb, miniamr_matmul};

/// For any suite-like workload: totals positive, normalized ≥ 1, serial
/// splits add up, byte accounting matches the spec.
#[test]
fn sweep_invariants() {
    let mut rng = SplitMix64::new(0xc07e_0001);
    for _case in 0..12 {
        let ranks = rng.range_usize(1, 24);
        let spec = match rng.range_u64(0, 3) {
            0 => micro_64mb(ranks),
            1 => micro_2kb(ranks),
            _ => miniamr_matmul(ranks),
        };
        let sw = sweep(&spec, &ExecutionParams::default()).unwrap();
        let expect_bytes = spec.total_bytes_written() as f64;
        for run in &sw.runs {
            assert!(run.total > 0.0);
            assert!(sw.normalized(run.config) >= 1.0 - 1e-12);
            assert!((run.writer.bytes - expect_bytes).abs() / expect_bytes < 1e-6);
            assert!((run.reader.bytes - expect_bytes).abs() / expect_bytes < 1e-6);
            if run.config.mode == ExecMode::Serial {
                let (w, r) = run.serial_split();
                assert!((w + r - run.total).abs() < 1e-6);
                // In serial mode the reader can't finish before the writer.
                assert!(run.reader.finish_time >= run.writer.finish_time);
            }
            assert!(run.throughput() > 0.0);
        }
        // Exactly one best config, and it's in the run list.
        assert!(SchedConfig::ALL.contains(&sw.best().config));
        assert!(sw.worst().total >= sw.best().total);
    }
}

/// Misconfiguration loss is scale-free: doubling iterations leaves
/// normalized ratios roughly unchanged (steady-state pipeline).
#[test]
fn normalized_ratios_stable_in_iterations() {
    let mut rng = SplitMix64::new(0xc07e_0002);
    for _case in 0..6 {
        let ranks = rng.range_usize(2, 16);
        let mut short = micro_64mb(ranks);
        short.iterations = 5;
        let mut long = micro_64mb(ranks);
        long.iterations = 15;
        let params = ExecutionParams::default();
        let a = sweep(&short, &params).unwrap();
        let b = sweep(&long, &params).unwrap();
        for config in SchedConfig::ALL {
            let ra = a.normalized(config);
            let rb = b.normalized(config);
            assert!((ra - rb).abs() < 0.2, "{config}: {ra} vs {rb}");
        }
    }
}
