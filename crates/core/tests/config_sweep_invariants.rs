//! Invariants of sweeps and metrics that must hold for every workload.

use pmemflow_core::{sweep, ExecMode, ExecutionParams, SchedConfig};
use pmemflow_workloads::{micro_2kb, micro_64mb, miniamr_matmul};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For any suite-like workload: totals positive, normalized ≥ 1,
    /// serial splits add up, byte accounting matches the spec.
    #[test]
    fn sweep_invariants(ranks in 1usize..24, which in 0usize..3) {
        let spec = match which {
            0 => micro_64mb(ranks),
            1 => micro_2kb(ranks),
            _ => miniamr_matmul(ranks),
        };
        let sw = sweep(&spec, &ExecutionParams::default()).unwrap();
        let expect_bytes = spec.total_bytes_written() as f64;
        for run in &sw.runs {
            prop_assert!(run.total > 0.0);
            prop_assert!(sw.normalized(run.config) >= 1.0 - 1e-12);
            prop_assert!((run.writer.bytes - expect_bytes).abs() / expect_bytes < 1e-6);
            prop_assert!((run.reader.bytes - expect_bytes).abs() / expect_bytes < 1e-6);
            if run.config.mode == ExecMode::Serial {
                let (w, r) = run.serial_split();
                prop_assert!((w + r - run.total).abs() < 1e-6);
                // In serial mode the reader can't finish before the writer.
                prop_assert!(run.reader.finish_time >= run.writer.finish_time);
            }
            prop_assert!(run.throughput() > 0.0);
        }
        // Exactly one best config, and it's in the run list.
        prop_assert!(SchedConfig::ALL.contains(&sw.best().config));
        prop_assert!(sw.worst().total >= sw.best().total);
    }

    /// Misconfiguration loss is scale-free: doubling iterations leaves
    /// normalized ratios roughly unchanged (steady-state pipeline).
    #[test]
    fn normalized_ratios_stable_in_iterations(ranks in 2usize..16) {
        let mut short = micro_64mb(ranks);
        short.iterations = 5;
        let mut long = micro_64mb(ranks);
        long.iterations = 15;
        let params = ExecutionParams::default();
        let a = sweep(&short, &params).unwrap();
        let b = sweep(&long, &params).unwrap();
        for config in SchedConfig::ALL {
            let ra = a.normalized(config);
            let rb = b.normalized(config);
            prop_assert!((ra - rb).abs() < 0.2, "{config}: {ra} vs {rb}");
        }
    }
}
